#!/usr/bin/env python
"""Differential gate: guided search vs the exhaustive oracle.

Compares two ``repro explore --json`` payloads -- an exhaustive sweep (the
oracle) and a guided run over the same space -- and enforces the guided-DSE
fidelity contract:

1. **Exactness** -- the guided run recommends the *same* design point as
   the oracle: identical label, identical per-model energy and cycles
   (hence identical EDP, bit for bit).
2. **Efficiency** -- the guided run paid at most ``--max-eval-frac`` of
   the oracle's sweep size in full evaluations (default 1%).

Exit 0 when both hold, 1 otherwise, 2 on malformed inputs.

Usage::

    python scripts/check_guided_gate.py exhaustive.json guided.json \
        [--max-eval-frac 0.01]
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(message: str, code: int = 1) -> int:
    print(f"guided-gate: FAIL: {message}", file=sys.stderr)
    return code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("exhaustive", help="oracle explore --json payload")
    parser.add_argument("guided", help="guided explore --json payload")
    parser.add_argument(
        "--max-eval-frac",
        type=float,
        default=0.01,
        help="guided evaluations allowed, as a fraction of the oracle's "
        "sweep size (default: 0.01)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.exhaustive) as handle:
            oracle = json.load(handle)
        with open(args.guided) as handle:
            guided = json.load(handle)
    except (OSError, ValueError) as exc:
        return fail(str(exc), code=2)

    if oracle.get("strategy") != "exhaustive":
        return fail(
            f"{args.exhaustive} is not an exhaustive run "
            f"(strategy={oracle.get('strategy')!r})",
            code=2,
        )
    if guided.get("strategy") != "guided":
        return fail(
            f"{args.guided} is not a guided run "
            f"(strategy={guided.get('strategy')!r})",
            code=2,
        )
    for key in ("macs", "max_chiplet_mm2", "models", "resolution"):
        if oracle.get(key) != guided.get(key):
            return fail(
                f"runs disagree on {key}: oracle={oracle.get(key)!r} "
                f"guided={guided.get(key)!r}",
                code=2,
            )
    if oracle.get("memory_stride") != 1:
        return fail(
            "the oracle must sweep the full space (--stride 1), got "
            f"stride {oracle.get('memory_stride')!r}",
            code=2,
        )

    oracle_best = oracle.get("recommended_point")
    guided_best = guided.get("recommended_point")
    if not oracle_best:
        return fail("the oracle found no valid design point", code=2)
    if not guided_best:
        return fail("the guided run found no valid design point")

    problems = []
    if guided_best["config"] != oracle_best["config"]:
        problems.append(
            f"recommended label differs: oracle {oracle_best['config']}, "
            f"guided {guided_best['config']}"
        )
    else:
        for field in ("energy_pj", "cycles", "chiplet_area_mm2", "memory"):
            if guided_best.get(field) != oracle_best.get(field):
                problems.append(
                    f"recommended {field} differs: oracle "
                    f"{oracle_best.get(field)!r}, guided "
                    f"{guided_best.get(field)!r}"
                )

    swept = int(oracle.get("swept", 0))
    evaluated = int(guided.get("search", {}).get("evaluated", 0))
    budget = args.max_eval_frac * swept
    if swept <= 0:
        return fail("oracle reports an empty sweep", code=2)
    if evaluated > budget:
        problems.append(
            f"guided evaluated {evaluated} points, over the "
            f"{args.max_eval_frac:.2%} budget ({budget:.0f} of {swept})"
        )

    if problems:
        return fail("; ".join(problems))

    print(
        "guided-gate: PASS: guided found the exhaustive optimum "
        f"{oracle_best['config']} (EDP-exact) with {evaluated} evaluations "
        f"({evaluated / swept:.2%} of the {swept}-point sweep; "
        f"pruned {guided.get('search', {}).get('pruned', 0)}, "
        f"deduped {guided.get('search', {}).get('deduped', 0)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
