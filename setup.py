"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` requires building an editable wheel (PEP 660); offline
environments missing ``wheel`` can instead run ``python setup.py develop``.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
