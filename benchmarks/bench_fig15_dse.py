"""Figure 15: full design-space exploration for 4096-MAC accelerators.

Regenerates the area-vs-EDP scatter for the three benchmarks (VGG-16@512,
ResNet-50@512, DarkNet-19@224) over the Table II space under a 3 mm^2
chiplet area constraint, and reports the per-benchmark optimum's computation
and memory allocation.

The full memory sweep takes tens of minutes on one core; the default run
subsamples it with REPRO_FIG15_STRIDE=4 (the structural sweep size is
reported either way).
"""

from conftest import bench_jobs, fig15_stride
from repro.analysis.experiments import fig15_data
from repro.analysis.reporting import format_scatter, format_search_stats, format_table
from repro.core.parallel import SweepStats


def test_fig15_design_space(benchmark, record_bench):
    stats = SweepStats()
    data = benchmark.pedantic(
        fig15_data,
        kwargs={
            "memory_stride": fig15_stride(),
            "jobs": bench_jobs(),
            "stats": stats,
        },
        rounds=1,
        iterations=1,
    )
    valid = data.valid_points
    models = list(valid[0].energy_pj) if valid else []

    sections = [
        format_search_stats(stats),
        f"Figure 15 -- 4096-MAC DSE: {data.swept} sweep points (paper: >100,000), "
        f"{len(valid)} valid evaluated at stride {fig15_stride()} (paper: ~5,800), "
        f"chiplet area constraint {data.area_constraint_mm2} mm^2",
    ]
    opt_rows = []
    for model in models:
        optimum = data.optimum(model)
        mem = optimum.hw.memory
        opt_rows.append(
            [
                model,
                optimum.label,
                f"{optimum.chiplet_area_mm2:.2f}",
                f"{mem.a_l1_bytes // 1024}KB",
                f"{mem.w_l1_bytes // 1024}KB",
                f"{mem.a_l2_bytes // 1024}KB",
                f"{optimum.edp(model):.3e}",
            ]
        )
        scatter = format_scatter(
            [
                (p.chiplet_area_mm2, p.edp(model), str(p.hw.n_chiplets))
                for p in valid
            ],
            width=68,
            height=16,
            x_label="chiplet area mm^2",
            y_label=f"EDP (Js) [{model}] glyph = chiplet count",
        )
        sections.append(scatter)
    sections.insert(
        1,
        format_table(
            ["Benchmark", "Optimum", "Area", "A-L1", "W-L1", "A-L2", "EDP (Js)"],
            opt_rows,
            title="Per-benchmark optimum under the area constraint",
        ),
    )
    record_bench("fig15", "\n\n".join(sections))
    record_bench.values(
        swept=float(data.swept),
        valid_points=float(len(valid)),
        points_evaluated=float(stats.points_evaluated),
    )

    # Paper claims on the regenerated series:
    assert valid, "the sweep must evaluate some valid designs"
    # (1) validity is a small fraction of the sweep (paper: ~5.8%).
    assert len(valid) < 0.5 * data.swept / fig15_stride()
    # (2) the computation allocation of the optimum is shared across the
    #     benchmarks ("the optimal resource allocation for computing highly
    #     depends on the area constraint"): at most two distinct tuples.
    optimum_labels = [data.optimum(m).label for m in models]
    assert len(set(optimum_labels)) <= 2, optimum_labels
    # (3) the memory allocations differ per benchmark ("memory allocation is
    #     sensitive to the target model").
    optimum_memories = {
        (
            data.optimum(m).hw.memory.a_l1_bytes,
            data.optimum(m).hw.memory.w_l1_bytes,
            data.optimum(m).hw.memory.a_l2_bytes,
        )
        for m in models
    }
    assert len(optimum_memories) >= 2
    # (4) designs with fewer chiplets trend toward larger area / lower EDP:
    #     the mean chiplet area of 1-2 chiplet designs exceeds that of 4-8.
    small = [p.chiplet_area_mm2 for p in valid if p.hw.n_chiplets <= 2]
    large = [p.chiplet_area_mm2 for p in valid if p.hw.n_chiplets >= 4]
    if small and large:
        assert sum(small) / len(small) > sum(large) / len(large)
