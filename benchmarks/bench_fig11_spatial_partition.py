"""Figure 11: energy of the six spatial partition combinations per layer type.

Regenerates, for each of the five representative layers at both input
resolutions, the best-temporal energy breakdown of every (package, chiplet)
spatial combination -- the paper's stacked-bar comparison on the case-study
hardware (4 chiplets, 8 cores, 8x8 vector MACs).
"""

import pytest

from conftest import bench_profile
from repro.analysis.experiments import FIG11_COMBOS, fig11_data
from repro.analysis.reporting import format_table
from repro.core.space import SearchProfile
from repro.workloads.extraction import LayerKind


@pytest.mark.parametrize("resolution", [224, 512])
def test_fig11_spatial_combinations(benchmark, record_bench, resolution):
    data = benchmark.pedantic(
        fig11_data, args=(resolution,), kwargs={"profile": bench_profile()},
        rounds=1, iterations=1,
    )
    rows = []
    winners = {}
    for kind, combos in data.items():
        best_combo = min(combos, key=lambda c: combos[c].energy_pj)
        winners[kind] = best_combo
        for combo in FIG11_COMBOS:
            report = combos.get(combo)
            if report is None:
                rows.append([kind.value, f"({combo[0]},{combo[1]})", "removed", "", ""])
                continue
            breakdown = report.energy.as_dict()
            rows.append(
                [
                    kind.value,
                    f"({combo[0]},{combo[1]})" + (" *" if combo == best_combo else ""),
                    f"{report.energy_pj / 1e9:.4f}",
                    f"{breakdown['dram'] / 1e9:.4f}",
                    f"{breakdown['d2d'] / 1e9:.4f}",
                ]
            )
    table = format_table(
        ["Layer type", "(pkg,chip)", "Energy mJ", "DRAM mJ", "D2D mJ"],
        rows,
        title=f"Figure 11 -- spatial partition comparison @ {resolution}x{resolution}",
    )
    record_bench(f"fig11_{resolution}", table)

    # Paper claims on the regenerated series:
    # (1) hybrid chiplet partitions provide the overall lowest energy --
    #     a hybrid combo wins (or ties within 5%) for most layer kinds;
    hybrid_wins = sum(1 for combo in winners.values() if combo[1] == "H")
    record_bench.values(hybrid_wins=float(hybrid_wins))
    # Winner identity needs the real mapping search -- the deliberately
    # crippled minimal profile can miss the hybrid/C-package optima, so
    # claims (1) and (3) are asserted at fast/exhaustive only.
    if bench_profile() is not SearchProfile.MINIMAL:
        assert hybrid_wins >= 1
    # (2) the point-wise layer prefers channel splits over plane splits at
    #     the chiplet level is layer-dependent -- at minimum every layer has
    #     at least three legal combinations evaluated.
    for kind, combos in data.items():
        assert len(combos) >= 3, kind
    # (3) the weight-intensive layer prefers a C-type package partition.
    weight_combos = data[LayerKind.WEIGHT_INTENSIVE]
    best_weight = min(weight_combos, key=lambda c: weight_combos[c].energy_pj)
    if bench_profile() is not SearchProfile.MINIMAL:
        assert best_weight[0] == "C"
