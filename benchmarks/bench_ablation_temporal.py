"""Ablation: temporal loop priority (channel vs plane, Figure 6a).

For each representative layer, evaluates the best mapping under each of the
four (package, chiplet) temporal priority pairs and reports the spread --
showing why the unrolling choice "usually depends on the layer
characteristics" and is worth searching.
"""

from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.core.cost import InvalidMappingError, evaluate_mapping
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.extraction import representative_layers


def temporal_ablation():
    hw = case_study_hardware()
    space = MappingSpace(hw, SearchProfile.FAST)
    results = {}
    for kind, layer in representative_layers(224).items():
        best_by_pair = {}
        for mapping in space.unique_candidates(layer):
            try:
                report = evaluate_mapping(layer, hw, mapping)
            except InvalidMappingError:
                continue
            pair = (
                mapping.package_temporal.order.value,
                mapping.chiplet_temporal.order.value,
            )
            current = best_by_pair.get(pair)
            if current is None or report.energy_pj < current.energy_pj:
                best_by_pair[pair] = report
        results[kind] = best_by_pair
    return results


def test_temporal_priority_matters(benchmark, record_bench):
    results = benchmark.pedantic(temporal_ablation, rounds=1, iterations=1)
    rows = []
    spreads = []
    for kind, by_pair in results.items():
        energies = {p: r.energy_pj for p, r in by_pair.items()}
        best_pair = min(energies, key=energies.get)
        worst = max(energies.values())
        spread = worst / energies[best_pair] - 1
        spreads.append(spread)
        rows.append(
            [
                kind.value,
                f"({best_pair[0][:4]},{best_pair[1][:4]})",
                f"{energies[best_pair] / 1e9:.4f}",
                f"{worst / 1e9:.4f}",
                f"{spread:.1%}",
            ]
        )
    record_bench(
        "ablation_temporal",
        format_table(
            ["Layer type", "Best (pkg,chip)", "Best mJ", "Worst mJ", "Spread"],
            rows,
            title="Ablation -- temporal priority pairs (best-per-pair energies)",
        ),
    )
    record_bench.values(max_spread=max(spreads))
    # The unrolling choice must matter for at least some layer (the paper's
    # motivation for searching all four pairs).
    assert max(spreads) > 0.02
    # And every layer has all four pairs evaluated.
    for by_pair in results.values():
        assert len(by_pair) == 4
