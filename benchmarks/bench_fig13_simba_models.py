"""Figure 13: model-level energy, Simba baseline vs NN-Baton.

Regenerates the headline comparison -- VGG-16, ResNet-50 and DarkNet-19 at
224x224 and 512x512 inputs (CONV and FC layers, FC folded into pointwise).
The paper reports 22.5%-44% lower energy; EXPERIMENTS.md discusses where the
reproduction lands on total vs data-movement accounting.
"""

from conftest import bench_profile
from repro.analysis.experiments import fig13_data
from repro.analysis.reporting import format_table


def test_fig13_model_comparison(benchmark, record_bench):
    points = benchmark.pedantic(
        fig13_data, kwargs={"profile": bench_profile()}, rounds=1, iterations=1
    )
    rows = [
        [
            p.model,
            p.resolution,
            f"{p.simba_energy_pj / 1e9:.2f}",
            f"{p.baton_energy_pj / 1e9:.2f}",
            f"{p.saving:.1%}",
            f"{p.movement_saving:.1%}",
        ]
        for p in points
    ]
    table = format_table(
        ["Model", "Input", "Simba mJ", "NN-Baton mJ", "Total saving", "Movement saving"],
        rows,
        title="Figure 13 -- model-level Simba vs NN-Baton (paper: 22.5%~44% savings)",
    )
    record_bench("fig13", table)
    record_bench.values(
        **{f"{p.model}_{p.resolution}_saving": p.saving for p in points}
    )

    # Paper claims on the regenerated series:
    for p in points:
        # (1) NN-Baton saves energy on every (model, resolution) pair;
        assert p.saving > 0, (p.model, p.resolution)
    # (2) savings at 512x512 are at least those at 224x224 for each model
    #     (Simba is "weak in the layers with large feature maps").
    by_model = {}
    for p in points:
        by_model.setdefault(p.model, {})[p.resolution] = p.movement_saving
    for model, savings in by_model.items():
        assert savings[512] >= savings[224] - 0.02, model
