"""Consistency audit: the cost model and the simulator must agree.

Runs the ``repro audit`` cross-validation sweep over a representative model
sample and archives the JSON report with the benchmark artifacts, so every
recorded figure reproduction documents that the analytical C3P model and
the tile-pipeline DES still describe the same machine.
"""

from repro.arch.config import case_study_hardware
from repro.audit import run_audit
from repro.workloads.registry import get_model

AUDIT_MODELS = ("alexnet", "resnet50")


def test_audit_consistency(benchmark, record_bench):
    hw = case_study_hardware()
    models = {name: get_model(name) for name in AUDIT_MODELS}
    report = benchmark.pedantic(
        lambda: run_audit(models, hw, max_layers=3), rounds=1, iterations=1
    )
    record_bench("audit_consistency", report.summary())
    record_bench.json("audit", report.to_dict())
    record_bench.values(
        worst_ratio=max(a.worst_ratio for a in report.models),
        envelope=report.envelope,
    )

    assert report.ok, report.summary()
    # Every uncontended pair sits inside the documented envelope.
    for audit in report.models:
        assert audit.worst_ratio <= 1.0 + report.envelope
