"""Figure 10: the linear memory size -> area/energy relationship.

Regenerates the macro sample points and the regression fits NN-Baton uses to
"extend the exploration space of memory search using linear regression".
"""

from repro.analysis.experiments import fig10_data
from repro.analysis.reporting import format_table


def test_fig10_linear_fits(benchmark, record_bench):
    data = benchmark(fig10_data)
    rows = [
        [f"{p.size_kb:g}", f"{p.area_mm2:.4f}", f"{p.energy_pj_per_bit:.3f}"]
        for p in data.library.points
    ]
    rows.append(["--- fit ---", f"{data.area_fit.intercept:.4f} + {data.area_fit.slope:.5f}*KB",
                 f"{data.energy_fit.intercept:.3f} + {data.energy_fit.slope:.5f}*KB"])
    rows.append(["r^2", f"{data.area_fit.r_squared:.5f}", f"{data.energy_fit.r_squared:.5f}"])
    table = format_table(
        ["Size (KB)", "Area (mm^2)", "Energy (pJ/bit)"],
        rows,
        title="Figure 10 -- SRAM macro library and linear regression (16 nm)",
    )
    record_bench("fig10", table)
    record_bench.values(
        area_fit_slope=data.area_fit.slope,
        area_fit_r2=data.area_fit.r_squared,
        energy_fit_slope=data.energy_fit.slope,
        energy_fit_r2=data.energy_fit.r_squared,
    )

    # "the area and power approximately satisfy a linear relationship"
    assert data.area_fit.r_squared > 0.99
    assert data.energy_fit.r_squared > 0.99
    # The energy fit reproduces the two Table I anchors within 10%.
    assert abs(data.energy_fit(1.0) - 0.30) < 0.03
    assert abs(data.energy_fit(32.0) - 0.81) < 0.08


def test_fig10_extrapolation_speed(benchmark):
    data = fig10_data()
    point = benchmark(data.library.extrapolate, 192.0)
    assert point.area_mm2 > 0
