"""Ablation: the rotating transfer (Figure 3's mechanism).

Quantifies what the directional-ring rotating transfer buys: for each
representative layer, the best mapping's energy with rotation enabled vs the
same mapping with rotation stripped (shared data refetched from DRAM by
every chiplet).  Under Table I, one DRAM access plus N_P - 1 ring hops
should always beat N_P DRAM accesses.
"""

import dataclasses

from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.core.cost import evaluate_mapping
from repro.core.mapper import Mapper
from repro.core.primitives import RotationKind
from repro.core.space import SearchProfile
from repro.workloads.extraction import representative_layers


def rotation_ablation():
    hw = case_study_hardware()
    mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
    rows = []
    for kind, layer in representative_layers(224).items():
        best = mapper.search_layer(layer).best
        if best.mapping.rotation is RotationKind.NONE:
            rows.append((kind.value, best, None))
            continue
        stripped = dataclasses.replace(best.mapping, rotation=RotationKind.NONE)
        without = evaluate_mapping(layer, hw, stripped)
        rows.append((kind.value, best, without))
    return rows


def test_rotation_always_helps(benchmark, record_bench):
    rows = benchmark.pedantic(rotation_ablation, rounds=1, iterations=1)
    table_rows = []
    for name, with_rot, without_rot in rows:
        if without_rot is None:
            table_rows.append([name, f"{with_rot.energy_pj / 1e9:.4f}", "-", "-"])
            continue
        benefit = 1 - with_rot.energy_pj / without_rot.energy_pj
        table_rows.append(
            [
                name,
                f"{with_rot.energy_pj / 1e9:.4f}",
                f"{without_rot.energy_pj / 1e9:.4f}",
                f"{benefit:.1%}",
            ]
        )
    record_bench(
        "ablation_rotation",
        format_table(
            ["Layer type", "With rotation mJ", "Without mJ", "Benefit"],
            table_rows,
            title="Ablation -- rotating transfer on the 4-chiplet case-study machine",
        ),
    )
    record_bench.values(
        **{
            f"{name}_benefit": 1 - with_rot.energy_pj / without_rot.energy_pj
            for name, with_rot, without_rot in rows
            if without_rot is not None
        }
    )
    for name, with_rot, without_rot in rows:
        if without_rot is not None:
            assert with_rot.energy_pj < without_rot.energy_pj, name
