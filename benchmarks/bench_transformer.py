"""Transformer GEMM throughput through the scalar and batch cost models.

The matmul/attention path promises two things the conv benchmarks cannot
witness: GEMM-shaped candidate spaces keep the batch kernel's speedup, and
the mapper's shape cache collapses a transformer's repeated encoder blocks
into near-free lookups.  This bench times one BERT-base encoder block's
unique layer shapes through both cost-model paths (winner parity asserted
per shape), then maps the full 12-block model to record the cache leverage.
"""

import time

import pytest

from conftest import bench_profile
from repro.analysis.reporting import format_table
from repro.arch.config import build_hardware
from repro.core import batch
from repro.core.cost import InvalidMappingError, evaluate_mapping
from repro.core.mapper import Mapper
from repro.core.parallel import SweepStats
from repro.core.space import MappingSpace
from repro.workloads.transformer import bert_base, encoder_block

REPEATS = 3


def _scalar_pass(layer, hw, candidates):
    """The mapper's strict-< scan: winner index, evaluated count."""
    best_score, winner, evaluated = float("inf"), None, 0
    for index, mapping in enumerate(candidates):
        try:
            report = evaluate_mapping(layer, hw, mapping)
        except InvalidMappingError:
            continue
        evaluated += 1
        if report.energy_pj < best_score:
            best_score, winner = report.energy_pj, index
    return winner, evaluated


def _best_of(fn, *args):
    """Minimum wall time over REPEATS runs (and the last return value)."""
    best, value = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.mark.skipif(not batch.numpy_available(), reason="numpy backend unavailable")
def test_transformer_gemm_throughput(record_bench):
    hw = build_hardware(4, 8, 8, 8)
    profile = bench_profile()
    layers = encoder_block("enc0", seq=128, d_model=768, heads=12, ffn=3072)
    space = MappingSpace(hw, profile)

    rows = []
    total_candidates = scalar_time = batch_time = 0.0
    for layer in layers:
        candidates = space.unique_candidates(layer)
        if not candidates:
            continue
        t_scalar, (scalar_winner, _) = _best_of(_scalar_pass, layer, hw, candidates)
        t_batch, result = _best_of(batch.evaluate_batch, layer, hw, candidates)
        assert result.best_index("energy") == scalar_winner
        n = len(candidates)
        total_candidates += n
        scalar_time += t_scalar
        batch_time += t_batch
        rows.append(
            [
                layer.name,
                str(n),
                f"{n / t_scalar:,.0f}",
                f"{n / t_batch:,.0f}",
                f"{t_scalar / t_batch:.1f}x",
            ]
        )

    speedup = scalar_time / batch_time
    rows.append(
        [
            "total",
            f"{total_candidates:.0f}",
            f"{total_candidates / scalar_time:,.0f}",
            f"{total_candidates / batch_time:,.0f}",
            f"{speedup:.1f}x",
        ]
    )
    table = format_table(
        ["Layer", "Candidates", "Scalar cand/s", "Batch cand/s", "Speedup"],
        rows,
        title=(
            "Transformer GEMM cost-model throughput "
            f"({profile.value} profile, BERT-base encoder block)"
        ),
    )
    record_bench("transformer_gemm", table)
    record_bench.values(
        gemm_scalar_candidates_per_s=total_candidates / scalar_time,
        gemm_batch_candidates_per_s=total_candidates / batch_time,
        gemm_speedup=speedup,
    )
    assert speedup >= 1.0


def test_transformer_shape_cache_leverage(record_bench):
    hw = build_hardware(4, 8, 8, 8)
    profile = bench_profile()
    layers = bert_base()

    stats = SweepStats()
    start = time.perf_counter()
    results = Mapper(hw=hw, profile=profile).search_model(layers, stats=stats)
    elapsed = time.perf_counter() - start
    assert len(results) == len(layers)

    hits, misses = stats.cache_hits, stats.cache_misses
    hit_rate = hits / max(hits + misses, 1)
    table = format_table(
        ["Metric", "Value"],
        [
            ["layers", str(len(layers))],
            ["unique shapes searched", str(misses)],
            ["cache hits", str(hits)],
            ["hit rate", f"{hit_rate:.0%}"],
            ["wall time", f"{elapsed:.2f} s"],
        ],
        title=(
            "BERT-base full-model mapping -- shape-cache leverage "
            f"({profile.value} profile, 12 identical encoder blocks)"
        ),
    )
    record_bench("transformer_cache", table)
    record_bench.values(
        bert_layers=float(len(layers)),
        bert_unique_shapes=float(misses),
        bert_cache_hit_rate=hit_rate,
        bert_map_seconds=elapsed,
    )
    # 12 identical encoder blocks must collapse: strictly fewer unique
    # searches than layers, with a dominant hit rate.
    assert misses < len(layers)
    assert hit_rate > 0.5
