"""Extension: sensitivity of the Figure 14 conclusion to calibration.

DESIGN.md 5b documents one deliberately calibrated constant -- the SRAM area
slope -- chosen so the paper's area story holds.  This bench sweeps that
slope and re-runs the granularity study on ResNet-50, reporting how the
EDP winner and the 1-chiplet feasibility verdict move: the paper's
*qualitative* conclusion (area pushes designs to ~4 chiplets) should be
robust across a plausible density range, and the bench asserts exactly that.
"""

import dataclasses

from repro.analysis.reporting import format_table
from repro.arch.technology import DEFAULT_TECHNOLOGY
from repro.core.dse import best_point, granularity_study
from repro.core.space import SearchProfile
from repro.workloads.models import resnet50


def sensitivity_sweep(slopes_mm2_per_kb=(2.0e-3, 3.0e-3, 4.0e-3, 5.0e-3)):
    layers = {"resnet50": resnet50(include_fc=True)}
    rows = []
    for slope in slopes_mm2_per_kb:
        tech = dataclasses.replace(DEFAULT_TECHNOLOGY, sram_area_mm2_per_kb=slope)
        points = granularity_study(
            layers, total_macs=2048, profile=SearchProfile.MINIMAL, tech=tech
        )
        winner = best_point(points, "resnet50", objective="edp", max_chiplet_mm2=2.0)
        one_chip_fits = any(
            p.valid and p.hw.n_chiplets == 1 and p.meets_area(2.0) for p in points
        )
        rows.append(
            {
                "slope": slope,
                "winner": winner.label if winner else "none",
                "winner_chiplets": winner.hw.n_chiplets if winner else 0,
                "one_chiplet_feasible": one_chip_fits,
            }
        )
    return rows


def test_figure14_conclusion_is_robust(benchmark, record_bench):
    rows = benchmark.pedantic(sensitivity_sweep, rounds=1, iterations=1)
    record_bench(
        "ext_sensitivity",
        format_table(
            ["SRAM mm^2/KB", "EDP winner (2mm^2)", "Chiplets", "1-chiplet fits?"],
            [
                [
                    f"{r['slope']:.1e}",
                    r["winner"],
                    r["winner_chiplets"],
                    "yes" if r["one_chiplet_feasible"] else "no",
                ]
                for r in rows
            ],
            title=(
                "Extension -- sensitivity of the granularity conclusion to the "
                "calibrated SRAM density (ResNet-50, 2048 MACs, 2 mm^2 budget)"
            ),
        ),
    )
    record_bench.values(
        **{f"winner_chiplets_{r['slope']:.0e}": float(r["winner_chiplets"]) for r in rows}
    )
    # Across the plausible density range, a winner always exists and the
    # single-chiplet design never becomes feasible.
    for r in rows:
        assert r["winner"] != "none", r
        assert not r["one_chiplet_feasible"], r
    # Denser SRAM (lower slope) can only shift the winner toward *fewer*
    # chiplets, never more.
    chiplet_counts = [r["winner_chiplets"] for r in rows]
    assert chiplet_counts == sorted(chiplet_counts)
