"""Figure 14: chiplet granularity exploration with 2048 total MAC units.

Regenerates, for AlexNet / VGG-16 / ResNet-50 / DarkNet-19, the per-chiplet-
count best implementations with and without the 2 mm^2 chiplet area
constraint, plus the EDP winner (the paper's red dotted box: 4-4-16-8).
"""

from conftest import bench_jobs, bench_profile
from repro.core.space import SearchProfile
from repro.analysis.experiments import FIG14_MODELS, fig14_data
from repro.analysis.reporting import format_table


def test_fig14_granularity(benchmark, record_bench):
    data = benchmark.pedantic(
        fig14_data,
        kwargs={"profile": bench_profile(), "jobs": bench_jobs()},
        rounds=1,
        iterations=1,
    )
    rows = []
    for model in FIG14_MODELS:
        for n in (1, 2, 4, 8):
            unconstrained = data.best(model, n_chiplets=n, constrained=False)
            constrained = data.best(model, n_chiplets=n, constrained=True)
            rows.append(
                [
                    model,
                    n,
                    unconstrained.label if unconstrained else "-",
                    f"{unconstrained.energy_pj[model] / 1e9:.2f}" if unconstrained else "-",
                    constrained.label if constrained else "none <= 2mm^2",
                    f"{constrained.energy_pj[model] / 1e9:.2f}" if constrained else "-",
                ]
            )
        winner = data.edp_winner(model)
        rows.append(
            [
                model,
                "EDP pick",
                winner.label if winner else "-",
                f"{winner.edp(model):.3e} Js" if winner else "-",
                f"{winner.chiplet_area_mm2:.2f} mm^2" if winner else "-",
                "",
            ]
        )
    table = format_table(
        ["Model", "Chiplets", "Best (free)", "Energy mJ", "Best (2mm^2)", "Energy mJ"],
        rows,
        title=(
            "Figure 14 -- 2048-MAC granularity study "
            f"({len([p for p in data.points if p.valid])} evaluated configs; "
            "paper EDP pick: 4-4-16-8)"
        ),
    )
    record_bench("fig14", table)

    # Paper claims on the regenerated series:
    # (1) no single-chiplet implementation meets the 2 mm^2 constraint;
    for model in FIG14_MODELS:
        assert data.best(model, n_chiplets=1, constrained=True) is None
    # (2) without the constraint, fewer chiplets give lower energy: the
    #     unconstrained optimum never uses 8 chiplets;
    for model in FIG14_MODELS:
        best_free = data.best(model, constrained=False)
        assert best_free.hw.n_chiplets < 8, model
    # (3) under the constraint, the EDP winner is a 4-chiplet design for at
    #     least three of the four benchmarks, and 4-4-16-8 is the modal pick.
    winners = [data.edp_winner(model) for model in FIG14_MODELS]
    four_chiplet = [w for w in winners if w.hw.n_chiplets == 4]
    assert len(four_chiplet) >= 3
    labels = [w.label for w in winners]
    # The modal 4-4-16-8 pick needs the real mapping search; the minimal
    # profile's reduced candidate set finds different (worse) winners.
    if bench_profile() is not SearchProfile.MINIMAL:
        assert labels.count("4-4-16-8") >= 2, labels
    record_bench.values(
        evaluated_configs=float(len([p for p in data.points if p.valid])),
        four_chiplet_winners=float(len(four_chiplet)),
    )
