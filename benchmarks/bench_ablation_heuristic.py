"""Ablation: exhaustive search vs the paper's rules of thumb.

Section VI-A1's analysis yields rules (P-type packages for activation-heavy
layers, C-type for weight-heavy ones, hybrid chiplet splits, rotation when
sharing).  ``repro.core.heuristics`` codifies them into a one-shot mapper;
this bench measures, per model, how much energy the exhaustive search
recovers on top of the rules -- the quantified value of the mapping engine
over architectural intuition.
"""

from conftest import bench_profile
from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.core.heuristics import heuristic_map_model
from repro.core.mapper import Mapper
from repro.workloads.registry import get_model


def heuristic_ablation(models=("alexnet", "resnet50", "darknet19", "mobilenetv2")):
    hw = case_study_hardware()
    rows = []
    for name in models:
        layers = get_model(name, 224)
        searched = sum(
            r.best.energy_pj
            for r in Mapper(hw=hw, profile=bench_profile()).search_model(layers)
        )
        ruled = sum(r.energy_pj for r in heuristic_map_model(layers, hw))
        rows.append(
            {
                "model": name,
                "searched_pj": searched,
                "ruled_pj": ruled,
                "search_gain": 1 - searched / ruled,
            }
        )
    return rows


def test_search_beats_rules_of_thumb(benchmark, record_bench):
    rows = benchmark.pedantic(heuristic_ablation, rounds=1, iterations=1)
    record_bench(
        "ablation_heuristic",
        format_table(
            ["Model", "Searched mJ", "Rule-based mJ", "Search gain"],
            [
                [
                    r["model"],
                    f"{r['searched_pj'] / 1e9:.2f}",
                    f"{r['ruled_pj'] / 1e9:.2f}",
                    f"{r['search_gain']:.1%}",
                ]
                for r in rows
            ],
            title=(
                "Ablation -- exhaustive mapping search vs the paper's "
                "rules of thumb (case-study machine, 224x224)"
            ),
        ),
    )
    record_bench.values(
        **{f"{r['model']}_search_gain": r["search_gain"] for r in rows}
    )
    for r in rows:
        # The search never loses to the rules...
        assert r["searched_pj"] <= r["ruled_pj"] + 1e-6, r["model"]
        # ...and the rules stay within 2x (they encode real structure).
        assert r["ruled_pj"] < 2.0 * r["searched_pj"], r["model"]
    # The search recovers a measurable margin on at least one model.
    assert max(r["search_gain"] for r in rows) > 0.03
