"""Table I: per-operation energy of the 16 nm multichip system.

Regenerates the operation/energy/relative-cost rows and times the energy
model's hot path (per-bit lookups across configured buffer sizes).
"""

from repro.analysis.experiments import table1_rows
from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.arch.energy import EnergyModel


def test_table1_rows(benchmark, record_bench):
    rows = benchmark(table1_rows)
    table = format_table(
        ["Operation", "Energy (pJ/bit)", "Relative cost"],
        [[r.name, f"{r.energy_pj_per_bit:.3f}", f"{r.relative_cost:.2f}x"] for r in rows],
        title="Table I -- operation energies (paper values, modeled verbatim)",
    )
    record_bench("table1", table)
    record_bench.values(
        **{r.name.lower().replace(" ", "_"): r.energy_pj_per_bit for r in rows}
    )
    assert rows[0].energy_pj_per_bit == 8.75


def test_energy_model_lookup_throughput(benchmark):
    hw = case_study_hardware()

    def lookups():
        model = EnergyModel(hw)
        return (
            model.dram_pj_per_bit
            + model.d2d_pj_per_bit
            + model.a_l2_pj_per_bit
            + model.a_l1_pj_per_bit
            + model.w_l1_pj_per_bit
            + model.rf_rmw_pj_per_bit
            + model.mac_pj_per_op
        )

    total = benchmark(lookups)
    assert total > 0
