"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures: it prints
the same rows/series the paper reports and records them under
``benchmarks/results/`` so EXPERIMENTS.md can cite a concrete run.

Environment knobs:

* ``REPRO_BENCH_PROFILE`` -- mapping-search profile for the heavy benches
  (``exhaustive`` / ``fast`` / ``minimal``; default ``fast``).
* ``REPRO_FIG15_STRIDE`` -- memory-sweep subsampling for the Figure 15 DSE
  (default 4; 1 reproduces the full sweep and takes tens of minutes).
* ``REPRO_JOBS`` -- worker processes for the DSE sweeps (default serial;
  ``0`` uses every core).  Sweep results are bit-identical at every count.
* ``REPRO_CACHE_DIR`` -- persist the mapping cache across runs.
* ``REPRO_BENCH_RECORD_DIR`` -- set by the ``repro bench`` CLI: the
  ``record_bench`` fixture appends one structured JSON fragment per test
  there (wall time, reproduced values, obs counters) for cross-run
  regression tracking.  See ``docs/observability.md``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.parallel import resolve_jobs
from repro.core.space import SearchProfile
from repro.obs.bench import RECORD_DIR_ENV, BenchCapture

RESULTS_DIR = Path(__file__).parent / "results"


def bench_profile() -> SearchProfile:
    """The mapping-search profile selected via REPRO_BENCH_PROFILE."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "fast").lower()
    return SearchProfile(name)


def fig15_stride() -> int:
    """Memory-sweep stride for the Figure 15 DSE."""
    return int(os.environ.get("REPRO_FIG15_STRIDE", "4"))


def bench_jobs() -> int:
    """Worker-process count for the sweep benches (REPRO_JOBS, default 1)."""
    return resolve_jobs(None)


@pytest.fixture
def record(request):
    """Print a reproduced table/figure and persist it under results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture
def record_json(request):
    """Persist a JSON artifact under results/ (e.g. the audit report)."""
    import json

    def _record(name: str, payload) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        target = RESULTS_DIR / f"{name}.json"
        target.write_text(json.dumps(payload, indent=2) + "\n")
        return target

    return _record


@pytest.fixture
def record_bench(request):
    """The structured successor of ``record``: ``.txt`` plus a bench record.

    Calling the fixture writes the legacy ``.txt`` artifact byte-identically
    to ``record`` (and echoes it); ``record_bench.values(r_squared=...)``
    attaches scalar reproduced numbers, and ``record_bench.json(name, ...)``
    mirrors ``record_json``.  Under ``repro bench`` (REPRO_BENCH_RECORD_DIR
    set) the test body additionally runs under a live obs recorder and its
    wall time, values and counters are appended as one JSON fragment for
    the CLI to fold into ``BENCH_<gitsha>.json``.
    """
    capture = BenchCapture(
        node_id=request.node.nodeid,
        results_dir=RESULTS_DIR,
        record_dir=os.environ.get(RECORD_DIR_ENV) or None,
    )
    with capture:
        yield capture
