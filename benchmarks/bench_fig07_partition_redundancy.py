"""Figure 7: redundant memory access of planar partition patterns.

Regenerates the two curves (1:1 square vs 1:4 rectangle tiles) for
ResNet-50 conv1 (7x7 stride 2) and a VGG-16 3x3 layer at 512x512 input.
"""

from repro.analysis.experiments import fig7_data
from repro.analysis.reporting import format_table


def test_fig7_redundancy_curves(benchmark, record_bench):
    points = benchmark(fig7_data)
    table = format_table(
        ["Layer", "Tile elems", "Pattern", "Grid", "Redundant access"],
        [
            [p.layer, p.tile_elements, p.pattern, p.grid.describe(), f"{p.redundancy:.1%}"]
            for p in points
        ],
        title="Figure 7 -- halo-induced redundant memory access (512x512 input)",
    )
    record_bench("fig07", table)

    # Paper claims encoded as assertions on the regenerated series:
    by_key = {(p.layer, p.tile_elements, p.pattern): p.redundancy for p in points}
    record_bench.values(
        conv1_64_square=by_key[("conv1", 64, "1:1")],
        conv1_64_rect=by_key[("conv1", 64, "1:4")],
        conv1_4_rect=by_key[("conv1", 4, "1:4")],
    )
    # (1) square beats 1:4 at equal element count;
    assert by_key[("conv1", 64, "1:1")] < by_key[("conv1", 64, "1:4")]
    # (2) the 7x7-s2 layer pays more than the 3x3 layer;
    assert by_key[("conv1", 64, "1:1")] > by_key[("conv2", 64, "1:1")]
    # (3) fine tiles reach multi-hundred-percent overhead (paper: up to 650%).
    assert by_key[("conv1", 4, "1:4")] > 3.0
    # (4) the pattern gap shrinks as tiles grow.
    gap_fine = by_key[("conv1", 16, "1:4")] - by_key[("conv1", 16, "1:1")]
    gap_coarse = by_key[("conv1", 1024, "1:4")] - by_key[("conv1", 1024, "1:1")]
    assert gap_coarse < gap_fine
