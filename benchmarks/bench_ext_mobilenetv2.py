"""Extension: MobileNetV2 on the case-study machine (grouped convolutions).

The paper lists MobileNetV2 [53] among its workload sources but evaluates
dense models only.  This bench exercises the grouped/depthwise support:
NN-Baton still beats the baseline, the depthwise layers map with the
expected poor vector-MAC utilization, and the per-category energy split
shows the inverted-residual structure (pointwise layers dominate energy
while depthwise layers dominate neither energy nor utilization).
"""

from collections import defaultdict

from conftest import bench_profile
from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.core.mapper import Mapper
from repro.simba import evaluate_simba_model
from repro.workloads.extraction import LayerKind, classify_layer
from repro.workloads.models import mobilenetv2


def mobilenet_study():
    hw = case_study_hardware()
    layers = mobilenetv2(include_fc=True)
    mapper = Mapper(hw=hw, profile=bench_profile())
    results = mapper.search_model(layers)
    simba_energy, _, _ = evaluate_simba_model(layers, hw)

    by_kind = defaultdict(lambda: {"energy": 0.0, "count": 0, "util": 0.0})
    for result in results:
        kind = classify_layer(result.layer)
        bucket = by_kind[kind]
        bucket["energy"] += result.best.energy_pj
        bucket["count"] += 1
        bucket["util"] += result.best.utilization
    total = sum(r.best.energy_pj for r in results)
    return by_kind, total, simba_energy.total_pj


def test_mobilenetv2_grouped_support(benchmark, record_bench):
    by_kind, baton_total, simba_total = benchmark.pedantic(
        mobilenet_study, rounds=1, iterations=1
    )
    rows = []
    for kind, bucket in sorted(by_kind.items(), key=lambda kv: -kv[1]["energy"]):
        rows.append(
            [
                kind.value,
                bucket["count"],
                f"{bucket['energy'] / 1e9:.3f}",
                f"{bucket['energy'] / baton_total:.1%}",
                f"{bucket['util'] / bucket['count']:.1%}",
            ]
        )
    rows.append(
        [
            "TOTAL (vs Simba)",
            sum(b["count"] for b in by_kind.values()),
            f"{baton_total / 1e9:.3f}",
            f"saving {1 - baton_total / simba_total:.1%}",
            "",
        ]
    )
    record_bench(
        "ext_mobilenetv2",
        format_table(
            ["Layer kind", "Layers", "Energy mJ", "Share", "Mean util"],
            rows,
            title="Extension -- MobileNetV2@224 on the case-study machine",
        ),
    )

    record_bench.values(
        baton_total_pj=baton_total,
        simba_total_pj=simba_total,
        saving=1 - baton_total / simba_total,
    )
    # Structural expectations of the inverted-residual workload:
    assert baton_total < simba_total
    depthwise = by_kind[LayerKind.DEPTHWISE]
    pointwise = by_kind[LayerKind.POINTWISE]
    assert depthwise["count"] == 17
    # Depthwise layers: poor vector-MAC utilization (about 1/P), while the
    # pointwise expansions run near full utilization.
    assert depthwise["util"] / depthwise["count"] < 0.3
    assert pointwise["util"] / pointwise["count"] > 0.5
    # Pointwise layers carry most of the model's MACs and energy.
    assert pointwise["energy"] > depthwise["energy"]
