"""Overhead guard for the observability layer (docs/observability.md).

The design claim: with the null recorder installed (the default), every
instrumentation site costs one no-op method call, and the hot loops carry
no per-candidate instrumentation at all -- counters are batched after the
scan.  This bench pins that claim two ways:

* **Disabled-mode bound (< 2%, asserted).**  A tallying recorder counts
  how many hook crossings (span enters, counter bumps) one mapping sweep
  performs, a calibration loop measures the null recorder's per-hook cost,
  and the product bounds the disabled-mode overhead.  Multiplying a
  measured density by a measured unit cost is robust on a noisy shared
  core, where subtracting two nearly-equal wall times is not.
* **Enabled-mode cost (reported).**  The same sweep under a live
  :class:`~repro.obs.Recorder`, so the results file shows what turning
  tracing on actually costs.

Both timings and the derived bound land in ``benchmarks/results/`` so a
regression (say, someone adds an ``obs.count`` inside the candidate loop)
shows up as a concrete number, not a vibe.
"""

from __future__ import annotations

import time

from repro import obs
from repro.arch.config import case_study_hardware
from repro.core.cache import MappingCache
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.obs.recorder import _NULL_SPAN
from repro.workloads.registry import get_model

CALIBRATION_LOOPS = 200_000
TIMING_RUNS = 5
MAX_DISABLED_OVERHEAD_PCT = 2.0


class HookTally:
    """A disabled recorder that counts hook crossings instead of data.

    ``enabled`` stays ``False`` so the sweep takes exactly the disabled-mode
    code paths; the tallies say how many times those paths touch the
    recorder at all.
    """

    enabled = False

    def __init__(self) -> None:
        self.spans = 0
        self.counts = 0
        self.gauges = 0
        self.histograms = 0
        self.events = 0

    def span(self, name, **args):
        self.spans += 1
        return _NULL_SPAN

    def count(self, name, value=1):
        self.counts += 1

    def gauge(self, name, value):
        self.gauges += 1

    def histogram(self, name, value):
        self.histograms += 1

    def event(self, name, **fields):
        self.events += 1

    @property
    def total(self) -> int:
        return (
            self.spans + self.counts + self.gauges
            + self.histograms + self.events
        )


def sweep() -> None:
    """One fresh-cache mapping search: production hook density, no reuse."""
    hw = case_study_hardware()
    mapper = Mapper(hw=hw, profile=SearchProfile("minimal"), cache=MappingCache())
    mapper.search_model(get_model("alexnet"), jobs=1)


def best_of(fn, runs: int = TIMING_RUNS) -> float:
    """Best wall time over ``runs`` calls (after one warmup)."""
    fn()
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def null_hook_costs_ns() -> dict[str, float]:
    """Per-call cost of the null recorder's span and count hooks.

    Pins the null recorder for the calibration loops so the measurement
    stays honest even when an outer harness (``repro bench``) has a live
    recorder installed.
    """
    with obs.use(obs.NULL_RECORDER):
        start = time.perf_counter()
        for _ in range(CALIBRATION_LOOPS):
            with obs.span("calibrate", layer="x"):
                pass
        span_ns = (time.perf_counter() - start) * 1e9 / CALIBRATION_LOOPS

        start = time.perf_counter()
        for _ in range(CALIBRATION_LOOPS):
            obs.count("calibrate", 1)
        count_ns = (time.perf_counter() - start) * 1e9 / CALIBRATION_LOOPS

        start = time.perf_counter()
        for _ in range(CALIBRATION_LOOPS):
            obs.histogram("calibrate", 1.0)
        histogram_ns = (time.perf_counter() - start) * 1e9 / CALIBRATION_LOOPS

        start = time.perf_counter()
        for _ in range(CALIBRATION_LOOPS):
            obs.event("calibrate", n=1)
        event_ns = (time.perf_counter() - start) * 1e9 / CALIBRATION_LOOPS

    return {
        "span_ns": span_ns,
        "count_ns": count_ns,
        "histogram_ns": histogram_ns,
        "event_ns": event_ns,
    }


def test_disabled_overhead_under_two_percent(record_bench):
    # How many hooks does one sweep cross in disabled mode?
    tally = HookTally()
    with obs.use(tally):
        sweep()

    costs = null_hook_costs_ns()
    with obs.use(obs.NULL_RECORDER):
        disabled_s = best_of(sweep)

    with obs.use(obs.Recorder()):
        enabled_s = best_of(sweep)

    hook_s = (
        tally.spans * costs["span_ns"]
        + (tally.counts + tally.gauges) * costs["count_ns"]
        + tally.histograms * costs["histogram_ns"]
        + tally.events * costs["event_ns"]
    ) / 1e9
    disabled_overhead_pct = 100.0 * hook_s / disabled_s
    enabled_overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    payload = {
        "workload": "Mapper.search_model(alexnet), minimal profile, fresh cache",
        "timing_runs": TIMING_RUNS,
        "hook_crossings": {
            "spans": tally.spans,
            "counts": tally.counts,
            "gauges": tally.gauges,
            "histograms": tally.histograms,
            "events": tally.events,
        },
        "null_hook_cost_ns": {k: round(v, 1) for k, v in costs.items()},
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "disabled_overhead_pct_bound": round(disabled_overhead_pct, 4),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
    }
    record_bench.json("obs_overhead", payload)
    record_bench.values(
        disabled_overhead_pct_bound=disabled_overhead_pct,
        enabled_overhead_pct=enabled_overhead_pct,
        hook_crossings=float(tally.total),
    )
    record_bench(
        "obs_overhead",
        "Observability overhead (alexnet mapping sweep)\n"
        f"  hook crossings      : {tally.spans} spans, {tally.counts} counts, "
        f"{tally.histograms} histograms, {tally.events} events\n"
        f"  null hook cost      : {costs['span_ns']:.0f} ns/span, "
        f"{costs['count_ns']:.0f} ns/count, "
        f"{costs['histogram_ns']:.0f} ns/histogram, "
        f"{costs['event_ns']:.0f} ns/event\n"
        f"  disabled sweep      : {disabled_s * 1e3:.1f} ms "
        f"(hook bound {disabled_overhead_pct:.4f}% of runtime)\n"
        f"  enabled sweep       : {enabled_s * 1e3:.1f} ms "
        f"({enabled_overhead_pct:+.2f}% vs disabled)",
    )

    assert tally.total > 0, "the sweep crossed no hooks -- wrong workload?"
    assert disabled_overhead_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled-mode observability overhead bound "
        f"{disabled_overhead_pct:.3f}% exceeds "
        f"{MAX_DISABLED_OVERHEAD_PCT}% -- did instrumentation land "
        f"inside a hot loop?"
    )
