"""Ablation: DRAM access conflicts of planar package splits (Figure 8, in time).

Figure 8 argues the package-level planar partition should be a rectangle:
the square pattern's central halo is needed by all four chiplets, creating
four-way DRAM access conflicts.  This bench drives the discrete-event
simulator with both patterns on the large-kernel layer under constrained
DRAM bandwidth and reports the simulated runtimes -- the data-layout
argument, made measurable.
"""

import dataclasses

from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid, max_conflict_degree
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.sim import simulate_runtime
from repro.workloads.models import resnet50


def conflict_study(dram_bits_per_cycle: float = 16.0):
    layer = next(l for l in resnet50(512) if l.name == "conv1")
    hw = case_study_hardware()
    starved = dataclasses.replace(
        hw,
        tech=dataclasses.replace(
            hw.tech, dram_bandwidth_bits_per_cycle=dram_bits_per_cycle
        ),
    )

    def plane_mapping(grid: PlanarGrid) -> Mapping:
        return Mapping(
            package_spatial=SpatialPrimitive.plane(grid),
            package_temporal=TemporalPrimitive(LoopOrder.PLANE_PRIORITY, 32, 32, 64),
            chiplet_spatial=SpatialPrimitive.channel(8),
            chiplet_temporal=TemporalPrimitive(LoopOrder.PLANE_PRIORITY, 8, 8, 8),
            rotation=RotationKind.WEIGHTS,
        )

    rows = []
    for pattern, grid in (("square", PlanarGrid(2, 2)), ("rectangle", PlanarGrid(1, 4))):
        result = simulate_runtime(layer, starved, plane_mapping(grid))
        rows.append(
            {
                "pattern": pattern,
                "degree": max_conflict_degree(layer, grid),
                "cycles": result.cycles,
                "dram_util": result.dram_utilization,
            }
        )
    return rows


def test_rectangle_avoids_dram_conflicts(benchmark, record_bench):
    rows = benchmark.pedantic(conflict_study, rounds=1, iterations=1)
    record_bench(
        "ablation_dram_conflict",
        format_table(
            ["Pattern", "Conflict degree", "Simulated cycles", "DRAM util"],
            [
                [r["pattern"], r["degree"], f"{r['cycles']:,.0f}", f"{r['dram_util']:.0%}"]
                for r in rows
            ],
            title=(
                "Ablation -- Figure 8 as runtime: ResNet-50 conv1@512, "
                "P-type package split, constrained DRAM bandwidth"
            ),
        ),
    )
    by_pattern = {r["pattern"]: r for r in rows}
    record_bench.values(
        square_cycles=float(by_pattern["square"]["cycles"]),
        rectangle_cycles=float(by_pattern["rectangle"]["cycles"]),
    )
    assert by_pattern["square"]["degree"] == 4
    assert by_pattern["rectangle"]["degree"] == 2
    # The rectangle's bounded conflict degree never loses to the square.
    assert by_pattern["rectangle"]["cycles"] <= by_pattern["square"]["cycles"]
