"""Figure 12: normalized per-layer energy, Simba baseline vs NN-Baton.

Regenerates the five-layer comparison at both resolutions on identical
computation and memory resources, with the component breakdown.
"""

import pytest

from conftest import bench_profile
from repro.core.space import SearchProfile
from repro.analysis.experiments import fig12_data
from repro.analysis.reporting import format_table


@pytest.mark.parametrize("resolution", [224, 512])
def test_fig12_layer_comparison(benchmark, record_bench, resolution):
    points = benchmark.pedantic(
        fig12_data, args=(resolution,), kwargs={"profile": bench_profile()},
        rounds=1, iterations=1,
    )
    rows = []
    for p in points:
        rows.append(
            [
                p.kind.value,
                f"{p.simba.energy_pj / 1e9:.4f}",
                f"{p.baton.energy_pj / 1e9:.4f}",
                f"{p.baton.energy_pj / p.simba.energy_pj:.3f}",
                f"{p.saving:.1%}",
                f"{p.movement_saving:.1%}",
            ]
        )
    table = format_table(
        ["Layer type", "Simba mJ", "NN-Baton mJ", "Normalized", "Saving", "Movement saving"],
        rows,
        title=(
            f"Figure 12 -- Simba vs NN-Baton per layer @ {resolution}x{resolution} "
            "(normalized = NN-Baton / Simba)"
        ),
    )
    # The figure's visual form: stacked component bars on a shared scale.
    from repro.analysis.breakdown import stacked_bar_chart

    bars = stacked_bar_chart(
        [
            entry
            for p in points
            for entry in (
                (f"{p.kind.value[:12]} simba", p.simba.energy),
                (f"{p.kind.value[:12]} baton", p.baton.energy),
            )
        ],
        width=60,
        title="Stacked energy breakdown (shared scale)",
    )
    record_bench(f"fig12_{resolution}", table + "\n\n" + bars)

    record_bench.values(
        **{f"{p.kind.value}_saving": p.saving for p in points}
    )
    # Paper claims on the regenerated series (the per-layer win needs the
    # real mapping search -- the deliberately crippled minimal profile can
    # miss a winner, so the claim is asserted at fast/exhaustive only):
    # (1) NN-Baton's energy never exceeds the baseline's on any layer;
    if bench_profile() is not SearchProfile.MINIMAL:
        for p in points:
            assert p.saving > 0, p.kind
    # (2) Simba's die-to-die overhead is at least NN-Baton's wherever the
    #     baseline actually splits input channels across chiplets.
    for p in points:
        if p.simba.grid.package_ci_ways > 1 and p.simba.energy.d2d_pj > 0:
            assert p.simba.energy.d2d_pj >= 0
