"""Guided DSE: seeded ask/tell search over the Table II space.

Runs a small guided exploration (AlexNet@224, fixed seed, minimal mapping
profile) and records the prune/dedup/evaluate accounting as obs counters.
The ``bench-record`` CI job runs this bench at ``--jobs 1`` and
``--jobs 4`` and gates ``repro bench compare`` on the
``dse.points.pruned`` / ``dse.points.deduped`` counters being *exactly*
equal -- the determinism contract: guided accounting is a pure function
of (seed, space, models), never of the worker count.
"""

from conftest import bench_jobs
from repro.core.dse import best_point, explore
from repro.core.parallel import SweepStats
from repro.core.space import SearchProfile
from repro.workloads.models import alexnet

GUIDED_MACS = 4096
GUIDED_TRIALS = 96
GUIDED_SEED = 0


def test_guided_dse(benchmark, record_bench):
    models = {"alexnet": alexnet(224)}
    stats = SweepStats()
    points = benchmark.pedantic(
        explore,
        args=(models, GUIDED_MACS),
        kwargs={
            "max_chiplet_mm2": 3.0,
            "profile": SearchProfile.MINIMAL,
            "strategy": "guided",
            "trials": GUIDED_TRIALS,
            "seed": GUIDED_SEED,
            "jobs": bench_jobs(),
            "stats": stats,
        },
        rounds=1,
        iterations=1,
    )
    optimum = best_point(points, "alexnet", max_chiplet_mm2=3.0)
    lines = [
        f"Guided DSE -- {GUIDED_MACS}-MAC space, seed {GUIDED_SEED}, "
        f"{GUIDED_TRIALS}-trial budget:",
        f"  proposed {stats.points_total}, evaluated {stats.points_evaluated}, "
        f"pruned {stats.points_pruned}, deduped {stats.points_deduped}",
        f"  incumbent: {optimum.label if optimum else 'none'}"
        + (f" (EDP {optimum.edp('alexnet'):.3e} Js)" if optimum else ""),
    ]
    record_bench("guided_dse", "\n".join(lines))
    record_bench.values(
        proposed=float(stats.points_total),
        evaluated=float(stats.points_evaluated),
        pruned=float(stats.points_pruned),
        deduped=float(stats.points_deduped),
    )
    assert stats.points_evaluated <= GUIDED_TRIALS
