"""Table II: the computation/memory exploration space and its headline counts.

Regenerates the option table and the derived counts the paper quotes: the
computation-allocation possibilities for a 2048-MAC budget (with exactly
three single-chiplet options) and the size of the Figure 15 sweep.
"""

from repro.analysis.experiments import table2_data
from repro.analysis.reporting import format_table


def test_table2_space(benchmark, record_bench):
    data = benchmark(table2_data)
    space = data.space
    table = format_table(
        ["Resource", "Options"],
        [
            ["Vector-MAC (P)", ", ".join(map(str, space.vector_sizes))],
            ["# of Lanes (L)", ", ".join(map(str, space.lanes))],
            ["# of Cores (N_C)", ", ".join(map(str, space.cores))],
            ["# of Chiplets (N_P)", ", ".join(map(str, space.chiplets))],
            ["O-L1 size (B/lane)", ", ".join(map(str, space.o_l1_per_lane_bytes))],
            ["A-L1 size (KB)", ", ".join(map(str, space.a_l1_kb))],
            ["W-L1 size (KB)", ", ".join(map(str, space.w_l1_kb))],
            ["A-L2 size (KB)", ", ".join(map(str, space.a_l2_kb))],
            ["2048-MAC computation configs", data.granularity_configs_2048],
            ["4096-MAC computation configs", data.granularity_configs_4096],
            ["Figure 15 sweep points", data.sweep_size_4096],
        ],
        title="Table II -- design space (paper quotes 'up to 63' 2048-MAC configs; "
        "the printed option grid yields 32, incl. exactly 3 single-chiplet)",
    )
    record_bench("table2", table)
    record_bench.values(
        configs_2048=float(data.granularity_configs_2048),
        configs_4096=float(data.granularity_configs_4096),
        sweep_size_4096=float(data.sweep_size_4096),
    )

    assert data.granularity_configs_2048 == 32
    single_chiplet = [
        c for c in space.computation_configs(2048) if c[0] == 1
    ]
    assert len(single_chiplet) == 3  # "only three options" (Section VI-B1)


def test_sweep_enumeration_speed(benchmark):
    from repro.core.dse import DesignSpace

    space = DesignSpace()

    def enumerate_sweep():
        return sum(1 for _ in space.memory_configs(lanes=8))

    count = benchmark(enumerate_sweep)
    assert count > 100
