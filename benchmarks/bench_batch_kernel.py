"""Scalar-vs-batch candidate-evaluation throughput (the PR 7 kernel gate).

Times the same candidate list through both cost-model paths -- the scalar
``evaluate_mapping`` loop (the golden oracle) and the struct-of-arrays
numpy kernel (:mod:`repro.core.batch`) -- on representative AlexNet layers
under the selected search profile, and records candidates/second for both.
The acceptance gate is a >= 5x batch speedup on the fast profile; the two
paths must also agree on the winner, which is asserted here and proven
bit-for-bit by ``tests/properties/test_batch_kernel.py``.
"""

import time

import pytest

from conftest import bench_profile
from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.core import batch
from repro.core.cost import InvalidMappingError, evaluate_mapping
from repro.core.space import MappingSpace
from repro.workloads.models import alexnet

#: The ISSUE 7 acceptance threshold (fast profile, candidate throughput).
MIN_SPEEDUP = 5.0

REPEATS = 3


def _scalar_pass(layer, hw, candidates):
    """The mapper's strict-< scan: winner index, evaluated count."""
    best_score, winner, evaluated = float("inf"), None, 0
    for index, mapping in enumerate(candidates):
        try:
            report = evaluate_mapping(layer, hw, mapping)
        except InvalidMappingError:
            continue
        evaluated += 1
        if report.energy_pj < best_score:
            best_score, winner = report.energy_pj, index
    return winner, evaluated


def _best_of(fn, *args):
    """Minimum wall time over REPEATS runs (and the last return value)."""
    best, value = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.mark.skipif(not batch.numpy_available(), reason="numpy backend unavailable")
def test_batch_kernel_throughput(record_bench):
    hw = case_study_hardware()
    profile = bench_profile()
    layers = alexnet(resolution=224, include_fc=False)
    space = MappingSpace(hw, profile)

    rows = []
    total_candidates = scalar_time = batch_time = 0.0
    for layer in layers:
        candidates = space.unique_candidates(layer)
        if not candidates:
            continue
        t_scalar, (scalar_winner, _) = _best_of(_scalar_pass, layer, hw, candidates)
        t_batch, result = _best_of(batch.evaluate_batch, layer, hw, candidates)
        assert result.best_index("energy") == scalar_winner
        n = len(candidates)
        total_candidates += n
        scalar_time += t_scalar
        batch_time += t_batch
        rows.append(
            [
                layer.name,
                str(n),
                f"{n / t_scalar:,.0f}",
                f"{n / t_batch:,.0f}",
                f"{t_scalar / t_batch:.1f}x",
            ]
        )

    scalar_cps = total_candidates / scalar_time
    batch_cps = total_candidates / batch_time
    speedup = scalar_time / batch_time
    rows.append(
        [
            "total",
            f"{total_candidates:.0f}",
            f"{scalar_cps:,.0f}",
            f"{batch_cps:,.0f}",
            f"{speedup:.1f}x",
        ]
    )
    table = format_table(
        ["Layer", "Candidates", "Scalar cand/s", "Batch cand/s", "Speedup"],
        rows,
        title=(
            "Batch cost-model kernel -- candidate-evaluation throughput "
            f"({profile.value} profile, AlexNet conv layers)"
        ),
    )
    record_bench("batch_kernel", table)
    record_bench.values(
        scalar_candidates_per_s=scalar_cps,
        batch_candidates_per_s=batch_cps,
        speedup=speedup,
    )
    assert speedup >= MIN_SPEEDUP
