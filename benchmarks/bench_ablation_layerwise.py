"""Ablation: layer-wise orchestration vs one fixed strategy for the model.

"The diverse preference of different spatial primitives motivates us to
apply an optimal solution to different layers properly.  Therefore ...
NN-Baton provides a distinct mapping strategy layer-wise to minimize the
overall energy cost" (Section VI-A1).

This bench quantifies that: for each model, the per-layer optimal total vs
the best *single* (package, chiplet) spatial combination applied to every
layer.  The gap is what layer-wise orchestration buys.
"""

from conftest import bench_profile
from repro.analysis.experiments import FIG11_COMBOS, best_by_combo
from repro.analysis.reporting import format_table
from repro.arch.config import case_study_hardware
from repro.core.mapper import Mapper
from repro.workloads.registry import get_model


def layerwise_ablation(models=("alexnet", "resnet50", "darknet19")):
    hw = case_study_hardware()
    rows = []
    for name in models:
        layers = get_model(name, 224)
        mapper = Mapper(hw=hw, profile=bench_profile())
        per_layer = sum(mapper.search_layer(l).best.energy_pj for l in layers)

        # Best fixed combo: sum each layer's optimum under that combo.  No
        # single combo is legal for every layer (FC layers admit only
        # channel splits, shallow convs only planar ones), so layers where
        # the combo is illegal fall back to their own best -- which is
        # *generous* to the fixed strategy.
        fixed_totals = {}
        per_layer_combos = [best_by_combo(l, hw, bench_profile()) for l in layers]
        per_layer_best = [
            min(combos.values(), key=lambda r: r.energy_pj).energy_pj
            for combos in per_layer_combos
        ]
        for combo in FIG11_COMBOS:
            if not any(combo in combos for combos in per_layer_combos):
                continue
            fixed_totals[combo] = sum(
                combos[combo].energy_pj if combo in combos else fallback
                for combos, fallback in zip(per_layer_combos, per_layer_best)
            )
        best_fixed_combo = min(fixed_totals, key=fixed_totals.get)
        best_fixed = fixed_totals[best_fixed_combo]
        rows.append(
            {
                "model": name,
                "per_layer_pj": per_layer,
                "fixed_pj": best_fixed,
                "fixed_combo": best_fixed_combo,
                "overhead": best_fixed / per_layer - 1,
            }
        )
    return rows


def test_layerwise_orchestration_wins(benchmark, record_bench):
    rows = benchmark.pedantic(layerwise_ablation, rounds=1, iterations=1)
    record_bench(
        "ablation_layerwise",
        format_table(
            ["Model", "Layer-wise mJ", "Best fixed mJ", "Fixed combo", "Fixed overhead"],
            [
                [
                    r["model"],
                    f"{r['per_layer_pj'] / 1e9:.2f}",
                    f"{r['fixed_pj'] / 1e9:.2f}",
                    f"({r['fixed_combo'][0]},{r['fixed_combo'][1]})",
                    f"{r['overhead']:.1%}",
                ]
                for r in rows
            ],
            title=(
                "Ablation -- per-layer mapping vs one fixed spatial strategy "
                "(case-study machine, 224x224)"
            ),
        ),
    )
    record_bench.values(
        **{f"{r['model']}_fixed_overhead": r["overhead"] for r in rows}
    )
    for r in rows:
        # Layer-wise orchestration never loses to any fixed strategy...
        assert r["per_layer_pj"] <= r["fixed_pj"] + 1e-6, r["model"]
    # ...and buys a measurable margin on at least one model.
    assert max(r["overhead"] for r in rows) > 0.01
