"""Figure 8: DRAM access conflict of square vs rectangle package splits.

Regenerates the conflict-degree comparison: a square 2x2 chiplet split makes
the central halo region visible to all four chiplets (and all four DRAMs),
while a 1x4 rectangle caps the sharing degree at two.
"""

from repro.analysis.experiments import fig8_data
from repro.analysis.reporting import format_table


def test_fig8_conflict_degrees(benchmark, record_bench):
    points = benchmark(fig8_data)
    table = format_table(
        ["Pattern", "Grid", "Max conflict degree", "Conflicted input elements"],
        [
            [p.pattern, p.grid.describe(), p.max_conflict_degree, p.conflict_elements]
            for p in points
        ],
        title="Figure 8 -- halo conflict of 4-way package partitions (ResNet-50 conv1 @512)",
    )
    record_bench("fig08", table)

    by_pattern = {p.pattern: p for p in points}
    record_bench.values(
        square_degree=float(by_pattern["square"].max_conflict_degree),
        rectangle_degree=float(by_pattern["rectangle"].max_conflict_degree),
    )
    # The paper's claim: square -> 4-way conflicts, rectangle -> at most 2.
    assert by_pattern["square"].max_conflict_degree == 4
    assert by_pattern["rectangle"].max_conflict_degree == 2
