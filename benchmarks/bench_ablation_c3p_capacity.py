"""Ablation: buffer capacity vs reload penalty (the C3P core mechanism).

Sweeps the W-L1 and A-L1 capacities of the case-study machine for the
weight-intensive layer and reports the reload factor staircase -- the
step-function behavior of Equation 2 that drives the memory-allocation
recommendations of the pre-design flow.
"""

from repro.analysis.reporting import format_table
from repro.arch.config import KB, case_study_hardware
from repro.core.c3p import analyze_activation_l1, analyze_weight_buffer
from repro.core.loopnest import LoopNest
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.workloads.extraction import LayerKind, representative_layers


def capacity_staircase():
    hw = case_study_hardware()
    layer = representative_layers(224)[LayerKind.WEIGHT_INTENSIVE]
    mapping = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer).mapping
    nest = LoopNest(layer=layer, hw=hw, mapping=mapping)
    sizes_kb = [1, 2, 4, 8, 18, 36, 72, 144, 288]
    rows = []
    for size in sizes_kb:
        weight = analyze_weight_buffer(nest, size * KB)
        act = analyze_activation_l1(nest, size * KB)
        rows.append((size, weight.reload_factor, act.reload_factor))
    return nest, rows


def test_capacity_staircase(benchmark, record_bench):
    nest, rows = benchmark.pedantic(capacity_staircase, rounds=1, iterations=1)
    record_bench(
        "ablation_c3p_capacity",
        format_table(
            ["Buffer KB", "W-L1 reload factor", "A-L1 reload factor"],
            [[s, f"{w:.0f}x", f"{a:.0f}x"] for s, w, a in rows],
            title=(
                "Ablation -- C3P reload staircase for the weight-intensive layer "
                f"(mapping: {nest.mapping.describe()})"
            ),
        ),
    )
    weight_factors = [w for _, w, _ in rows]
    act_factors = [a for _, _, a in rows]
    record_bench.values(
        max_weight_reload=weight_factors[0],
        final_weight_reload=weight_factors[-1],
        max_act_reload=act_factors[0],
    )
    # Monotone non-increasing staircases that end penalty-free.
    assert weight_factors == sorted(weight_factors, reverse=True)
    assert act_factors == sorted(act_factors, reverse=True)
    assert weight_factors[-1] == 1.0
