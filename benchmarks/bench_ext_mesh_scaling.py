"""Extension: scaling past the paper's 8-chiplet ring with a 2D-mesh NoP.

The paper motivates its directional ring as a simplification "rather than an
intricate network for tens of chiplets" and leaves the latter to systems
like Simba's 6x6 mesh.  This bench extends the DSE to 16 and 32 chiplets on
the mesh model and regenerates the granularity trend: energy keeps rising
with chiplet count (die-to-die sharing hops grow as N_P - 1) even when each
chiplet comfortably meets the area budget.
"""

from repro.analysis.reporting import format_table
from repro.arch.config import build_hardware
from repro.arch.topology import Topology
from repro.arch.area import AreaModel
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.workloads.models import resnet50


def mesh_scaling(total_macs: int = 2048):
    layers = resnet50(include_fc=True)
    rows = []
    for n_chiplets, cores in ((2, 16), (4, 8), (8, 4), (16, 2), (32, 1)):
        topology = Topology.RING if n_chiplets <= 8 else Topology.MESH
        hw = build_hardware(n_chiplets, cores, 8, 8, topology=topology)
        assert hw.total_macs == total_macs
        mapper = Mapper(hw=hw, profile=SearchProfile.MINIMAL)
        results = mapper.search_model(layers)
        energy = sum(r.best.energy_pj for r in results)
        d2d = sum(r.best.energy.d2d_pj for r in results)
        rows.append(
            {
                "config": hw.label(),
                "topology": topology.value,
                "area": AreaModel(hw).chiplet_area_mm2(),
                "energy_pj": energy,
                "d2d_pj": d2d,
            }
        )
    return rows


def test_mesh_scaling_trend(benchmark, record_bench):
    rows = benchmark.pedantic(mesh_scaling, rounds=1, iterations=1)
    record_bench(
        "ext_mesh_scaling",
        format_table(
            ["Config", "Topology", "Chiplet mm^2", "Energy mJ", "D2D mJ"],
            [
                [
                    r["config"],
                    r["topology"],
                    f"{r['area']:.2f}",
                    f"{r['energy_pj'] / 1e9:.2f}",
                    f"{r['d2d_pj'] / 1e9:.3f}",
                ]
                for r in rows
            ],
            title=(
                "Extension -- ResNet-50 on 2048 MACs from 2 to 32 chiplets "
                "(ring <= 8, mesh beyond)"
            ),
        ),
    )
    # D2D energy grows monotonically with chiplet count (sharing hops are
    # N_P - 1 regardless of topology).
    d2d = [r["d2d_pj"] for r in rows]
    assert d2d == sorted(d2d)
    # Total energy rises with granularity beyond 4 chiplets; the 32-chiplet
    # point pays a clear scattering penalty over the coarse designs (the
    # 2- vs 4-chiplet points may swap within search noise).
    energies = [r["energy_pj"] for r in rows]
    record_bench.values(
        min_energy_pj=min(energies),
        max_energy_pj=max(energies),
        max_d2d_pj=max(d2d),
    )
    assert energies[1:] == sorted(energies[1:])
    assert energies[-1] > 1.2 * min(energies)
    # But chiplet area keeps shrinking -- the manufacturing-cost trade-off.
    areas = [r["area"] for r in rows]
    assert areas == sorted(areas, reverse=True)
