"""Span tracing, the null recorder, and Chrome trace-event export.

The tracer is hierarchical: spans opened while another span is active on
the same thread record the enclosing path (``dse.explore/mapper.search_layer``),
so a sweep's profile aggregates by call path and a Chrome trace opens in
Perfetto (https://ui.perfetto.dev) with nested slices per process/thread.

Two recorder types share one duck-typed interface:

* :class:`Recorder` -- the live tracer: monotonic ``perf_counter_ns``
  timestamps, a lock-guarded event list (thread-safe), a
  :class:`~repro.obs.metrics.MetricsRegistry`, picklable snapshots so
  worker processes can ship their spans and counters back to the parent,
  and exporters (Chrome trace JSON, metrics JSON/flat text).
* :class:`NullRecorder` -- the always-installed default: every method is a
  no-op and ``span()`` returns one shared, stateless context manager, so
  instrumentation left in the code costs one attribute lookup and call
  when observability is off (pinned by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.events import make_event
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SpanEvent:
    """One finished span.

    Attributes:
        name: Span name (dotted, e.g. ``mapper.search_layer``).
        path: Slash-joined enclosing-span names, ending in ``name``.
        start_ns: Monotonic start timestamp (``perf_counter_ns``).
        dur_ns: Duration in nanoseconds.
        pid: Process the span ran in (workers keep their own pid).
        tid: Thread the span ran in.
        args: Extra key-value context, shown in the trace viewer.
    """

    name: str
    path: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int
    args: tuple[tuple[str, Any], ...] = ()


class _NullSpan:
    """The shared no-op span; also the no-op recorder's context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Keeping one module-level instance installed by default means call
    sites never branch -- they always talk to *a* recorder -- and the
    disabled cost is a single dynamic dispatch per instrumentation point.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **args: Any) -> _NullSpan:
        """A no-op context manager (one shared instance)."""
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        """Discard a counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """Discard a gauge write."""

    def histogram(self, name: str, value: float) -> None:
        """Discard a histogram observation."""

    def event(self, name: str, **fields: Any) -> None:
        """Discard a run event."""


class _Span:
    """A live span: context manager recording into its :class:`Recorder`."""

    __slots__ = ("_recorder", "_name", "_args", "_path", "_start_ns")

    def __init__(self, recorder: "Recorder", name: str, args: dict[str, Any]) -> None:
        self._recorder = recorder
        self._name = name
        self._args = args
        self._path = name
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        stack = self._recorder._stack()
        if stack:
            self._path = f"{stack[-1]}/{self._name}"
        stack.append(self._path)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self._recorder._stack()
        if stack and stack[-1] == self._path:
            stack.pop()
        self._recorder._record(
            SpanEvent(
                name=self._name,
                path=self._path,
                start_ns=self._start_ns,
                dur_ns=end_ns - self._start_ns,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=tuple(sorted(self._args.items())),
            )
        )
        return False


@dataclass
class Recorder:
    """The live observability recorder: spans + metrics + exporters."""

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    enabled = True

    def __post_init__(self) -> None:
        self._events: list[SpanEvent] = []
        self._run_events: list[dict[str, Any]] = []
        self._event_log: Any = None
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._t0_ns = time.perf_counter_ns()

    # --- span tracing ---------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _record(self, event: SpanEvent) -> None:
        with self._lock:
            self._events.append(event)

    def span(self, name: str, **args: Any) -> _Span:
        """Open a span; use as ``with recorder.span("dse.explore"): ...``."""
        return _Span(self, name, args)

    def events(self) -> list[SpanEvent]:
        """Every finished span, in completion order."""
        with self._lock:
            return list(self._events)

    def aggregate_spans(self) -> dict[str, tuple[int, int]]:
        """Per-path ``(call count, total ns)``, total-time-sorted descending."""
        totals: dict[str, tuple[int, int]] = {}
        for event in self.events():
            count, total = totals.get(event.path, (0, 0))
            totals[event.path] = (count + 1, total + event.dur_ns)
        return dict(
            sorted(totals.items(), key=lambda item: item[1][1], reverse=True)
        )

    # --- metrics --------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.metrics.gauge(name, value)

    def histogram(self, name: str, value: float) -> None:
        """Record one observation in the histogram ``name``."""
        self.metrics.histogram(name, value)

    # --- run events -----------------------------------------------------------

    def attach_event_log(self, event_log: Any) -> None:
        """Stream this recorder's run events to ``event_log``.

        Events already buffered (and worker events merged later) flow
        through :meth:`event`/:meth:`merge_snapshot`; attaching is meant
        to happen before the run starts, on the parent recorder only --
        worker recorders ship their events home via :meth:`snapshot`.
        """
        self._event_log = event_log

    @property
    def event_log(self) -> Any:
        """The attached event log, or ``None``."""
        return self._event_log

    def event(self, name: str, **fields: Any) -> None:
        """Record one run lifecycle event (and stream it, when attached)."""
        record = make_event(name, fields)
        with self._lock:
            self._run_events.append(record)
        if self._event_log is not None:
            self._event_log.append(record)

    def run_events(self) -> list[dict[str, Any]]:
        """Every run event recorded so far, in arrival order."""
        with self._lock:
            return list(self._run_events)

    # --- worker capture -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A picklable capture of everything recorded so far.

        Worker processes return this from
        :func:`repro.core.parallel.run_tasks` tasks; the parent folds it
        back in with :meth:`merge_snapshot`.
        """
        return {
            "counters": self.metrics.counters(),
            "gauges": self.metrics.gauges(),
            "histograms": self.metrics.histograms(),
            "events": self.events(),
            "run_events": self.run_events(),
        }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a worker snapshot in: counters and histograms sum, gauges
        keep their max (high-water, order-independent), span events append
        (keeping the worker's pid/tid), and run events append -- streaming
        to the attached event log, so worker-side lifecycle events (e.g.
        ``fault.injected``) land in the same JSONL as the parent's."""
        self.metrics.merge(
            snapshot.get("counters"),
            snapshot.get("gauges"),
            snapshot.get("histograms"),
        )
        events = snapshot.get("events") or []
        run_events = snapshot.get("run_events") or []
        with self._lock:
            self._events.extend(events)
            self._run_events.extend(run_events)
        if self._event_log is not None:
            for record in run_events:
                self._event_log.append(record)

    # --- export ---------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event payload (loads in Perfetto / about:tracing).

        Complete-duration (``"ph": "X"``) events with microsecond
        timestamps rebased to the earliest span, plus process/thread
        metadata events naming each track.
        """
        events = self.events()
        origin_ns = min((e.start_ns for e in events), default=self._t0_ns)
        trace_events: list[dict[str, Any]] = []
        tracks: set[tuple[int, int]] = set()
        for event in events:
            tracks.add((event.pid, event.tid))
            trace_events.append(
                {
                    "name": event.name,
                    "cat": event.path,
                    "ph": "X",
                    "ts": (event.start_ns - origin_ns) / 1e3,
                    "dur": event.dur_ns / 1e3,
                    "pid": event.pid,
                    "tid": event.tid,
                    "args": dict(event.args),
                }
            )
        parent_pid = os.getpid()
        for pid in sorted({pid for pid, _ in tracks}):
            role = "repro" if pid == parent_pid else f"repro worker {pid}"
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": role},
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON; returns the path written."""
        target = Path(path)
        target.write_text(json.dumps(self.chrome_trace(), sort_keys=True))
        return target

    def metrics_dict(self) -> dict[str, Any]:
        """The metrics-export payload (counters + gauges)."""
        return self.metrics.as_dict()

    def write_metrics(self, path: str | Path) -> Path:
        """Write the metrics JSON; returns the path written."""
        target = Path(path)
        target.write_text(self.metrics.to_json() + "\n")
        return target


__all__ = ["NullRecorder", "Recorder", "SpanEvent"]
