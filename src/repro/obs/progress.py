"""A throttled stderr progress meter with sliding-window rate and ETA.

The meter exists to watch long sweeps in flight without touching any
stdout byte-identity contract: it writes **only** to its stream (stderr
by default), repaints in place with a carriage return, throttles repaints
to one per :attr:`min_interval` seconds, and estimates the rate from a
sliding window of recent ``(time, done)`` samples so the ETA tracks the
*current* throughput rather than the lifetime average (which misleads
badly when a warm cache front-loads the fast points).

Enablement policy (see :func:`progress_enabled`): progress renders only
when the stream is a TTY **and** the user did not pass ``--no-progress``.
An explicit ``--progress`` cannot force rendering into a pipe -- CI
pipes stdout+stderr and relies on the auto-off, and a pipe full of
``\\r`` repaints helps nobody.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Any, Callable, TextIO


def progress_enabled(flag: bool | None, stream: TextIO | None = None) -> bool:
    """Whether progress should render: not opted out, and a real TTY.

    Args:
        flag: The tri-state CLI value -- ``True`` (``--progress``),
            ``False`` (``--no-progress``), ``None`` (unset, the default).
        stream: The stream progress would write to (stderr by default).
    """
    if flag is False:
        return False
    stream = stream if stream is not None else sys.stderr
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


def format_eta(seconds: float) -> str:
    """``h:mm:ss`` (or ``m:ss``) for a duration; ``--:--`` when unknown."""
    if seconds != seconds or seconds < 0 or seconds == float("inf"):
        return "--:--"
    whole = int(seconds + 0.5)
    hours, rem = divmod(whole, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressMeter:
    """An in-place, throttled progress line for one sweep.

    Attributes:
        total: Total work items, or ``None`` when unknown (no ETA then).
        label: Short prefix naming the sweep (``explore``, ``guided``...).
        min_interval: Minimum seconds between repaints (final repaint in
            :meth:`finish` is never throttled).
    """

    def __init__(
        self,
        total: int | None,
        label: str = "sweep",
        stream: TextIO | None = None,
        min_interval: float = 0.1,
        window_s: float = 5.0,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self.min_interval = min_interval
        self._stream = stream if stream is not None else sys.stderr
        self._now = now
        self._window_s = window_s
        self._samples: deque[tuple[float, int]] = deque()
        self._last_paint = float("-inf")
        self._last_line_len = 0
        self._done = 0
        self._stats: dict[str, Any] = {}
        self._started = now()
        self._finished = False

    # --- state ----------------------------------------------------------------

    def update(self, done: int, **stats: Any) -> None:
        """Record progress; repaint if the throttle interval has elapsed."""
        t = self._now()
        self._done = done
        self._stats.update(stats)
        self._samples.append((t, done))
        while self._samples and t - self._samples[0][0] > self._window_s:
            self._samples.popleft()
        if t - self._last_paint >= self.min_interval:
            self._paint(t)

    def finish(self) -> None:
        """Final unthrottled repaint, then move to a fresh line."""
        if self._finished:
            return
        self._finished = True
        self._paint(self._now())
        self._stream.write("\n")
        self._stream.flush()

    # --- rendering ------------------------------------------------------------

    def rate(self) -> float:
        """Items per second over the sliding window (0.0 when unknown)."""
        if len(self._samples) < 2:
            return 0.0
        (t0, d0), (t1, d1) = self._samples[0], self._samples[-1]
        if t1 <= t0:
            return 0.0
        return (d1 - d0) / (t1 - t0)

    def render(self) -> str:
        """The current progress line (no carriage return / padding)."""
        parts: list[str] = []
        if self.total:
            pct = 100.0 * self._done / self.total
            parts.append(f"{self._done}/{self.total} {pct:3.0f}%")
        else:
            parts.append(f"{self._done} done")
        rate = self.rate()
        if rate > 0:
            parts.append(f"{rate:.1f} pts/s")
            if self.total:
                remaining = max(self.total - self._done, 0)
                parts.append(f"eta {format_eta(remaining / rate)}")
        for key, value in self._stats.items():
            if isinstance(value, float):
                parts.append(f"{key} {value:.0%}" if value <= 1 else f"{key} {value:g}")
            else:
                parts.append(f"{key} {value}")
        return f"[{self.label}] " + " | ".join(parts)

    def _paint(self, t: float) -> None:
        line = self.render()
        pad = " " * max(self._last_line_len - len(line), 0)
        self._stream.write("\r" + line + pad)
        self._stream.flush()
        self._last_paint = t
        self._last_line_len = len(line)


__all__ = ["ProgressMeter", "format_eta", "progress_enabled"]
