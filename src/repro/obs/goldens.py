"""The paper-golden registry: frozen values both tests and benches consume.

NN-Baton's credibility rests on reproducing the paper's worked numbers
exactly -- the Figure 6(c)-(f) C3P walkthroughs, the 800 B A-L1 case
study, the Table I operation energies, the Table II design-space counts
and the Figure 10 regression fits.  Those constants used to live only in
``tests/integration/test_goldens.py``; this module is the single source
of truth for them, consumed by

* the golden regression tests (``tests/integration/test_goldens.py``),
  which assert every entry reproduces **exactly**, and
* the cross-run benchmark harness (:mod:`repro.obs.bench`), whose
  :func:`fidelity_block` embeds per-golden deviations in every
  ``BENCH_<gitsha>.json`` so ``repro bench compare`` can fail a commit
  that drifts from the paper even when every relationship-style test
  still passes.

Each :class:`Golden` carries a zero-argument ``compute`` closure that
re-derives the value from the live model code.  Computation is cheap
(sub-second for the whole registry) and fully deterministic: the C3P
analyses are closed-form, the Table II counts are enumerations, and the
Figure 10 fits use compensated summation (``math.fsum``), so a non-zero
deviation always means the model changed, never numeric noise.

A refactor that legitimately changes one of these numbers must update the
frozen constant here *with a paper derivation for the new value* -- that
is the point: fidelity drift is a conscious decision, not an accident.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

#: Relative deviations at or below this are treated as exact.  The
#: registry's computations are deterministic IEEE-754 arithmetic, so the
#: default gate is *zero*; ``repro bench compare --fidelity-tol`` can
#: relax it for exotic platforms.
DEFAULT_FIDELITY_TOL = 0.0


@dataclass(frozen=True)
class Golden:
    """One frozen paper value and the closure that re-derives it.

    Attributes:
        name: Dotted identifier, ``<figure>.<quantity>`` (e.g.
            ``fig6c.cc1_capacity_bytes``).
        expected: The frozen value (paper-derived, or pinned at the
            commit that first reproduced the paper's relationship).
        source: Where the number comes from in the paper.
        compute: Zero-argument callable re-deriving the value from the
            live model code.
    """

    name: str
    expected: float
    source: str
    compute: Callable[[], float]


@dataclass(frozen=True)
class GoldenResult:
    """One golden's evaluation: expected vs recomputed actual."""

    name: str
    expected: float
    actual: float
    source: str

    @property
    def deviation(self) -> float:
        """Relative deviation ``(actual - expected) / expected``.

        Falls back to the absolute difference when the expected value is
        zero, so the field is always finite.
        """
        if self.expected == 0:
            return self.actual - self.expected
        return (self.actual - self.expected) / self.expected

    def ok(self, tol: float = DEFAULT_FIDELITY_TOL) -> bool:
        """Whether the deviation is within ``tol`` (default: exact)."""
        return abs(self.deviation) <= tol


# --- nest builders for the Figure 6 walkthroughs -----------------------------------


def _build_nest(layer, hw, chip_order=None, tile=(32, 32, 64), chip_grid=None):
    """The Figure 6 loop nest: package channel split, chiplet plane split."""
    from repro.core.loopnest import LoopNest
    from repro.core.mapping import Mapping
    from repro.core.partition import PlanarGrid
    from repro.core.primitives import LoopOrder, SpatialPrimitive, TemporalPrimitive

    order = chip_order or LoopOrder.CHANNEL_PRIORITY
    grid = chip_grid or PlanarGrid(1, hw.n_cores)
    mapping = Mapping(
        package_spatial=SpatialPrimitive.channel(hw.n_chiplets)
        if hw.n_chiplets > 1
        else SpatialPrimitive.channel(1),
        package_temporal=TemporalPrimitive(
            LoopOrder.CHANNEL_PRIORITY, tile[0], tile[1], tile[2]
        ),
        chiplet_spatial=SpatialPrimitive.plane(grid)
        if hw.n_cores > 1
        else SpatialPrimitive.channel(1),
        chiplet_temporal=TemporalPrimitive(order, 8, 8, hw.lanes),
    )
    return LoopNest(layer, hw, mapping)


def _common_layer():
    """The 56x56x64 -> 256, 3x3 layer the Figure 6 examples walk."""
    from repro.workloads.layer import ConvLayer

    return ConvLayer(
        "c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1
    )


def _two_chiplet_hw():
    from repro.arch.config import KB, MemoryConfig, build_hardware

    return build_hardware(
        2,
        2,
        8,
        8,
        memory=MemoryConfig(
            a_l1_bytes=4 * KB,
            w_l1_bytes=4 * KB,
            o_l1_bytes=1536,
            a_l2_bytes=64 * KB,
        ),
    )


def fig6c_nest():
    """Figure 6(c): channel-priority weight walk (nest C1 -> W1 -> H1)."""
    from repro.core.primitives import LoopOrder

    return _build_nest(
        _common_layer(),
        _two_chiplet_hw(),
        chip_order=LoopOrder.CHANNEL_PRIORITY,
        tile=(56, 56, 128),
    )


def fig6d_nest():
    """Figure 6(d): plane-priority weight walk (nest W1 -> H1 -> C1)."""
    from repro.core.primitives import LoopOrder

    return _build_nest(
        _common_layer(),
        _two_chiplet_hw(),
        chip_order=LoopOrder.PLANE_PRIORITY,
        tile=(56, 56, 128),
    )


def fig6e_nest():
    """Figure 6(e): the 800 B A-L1 case study on the case-study machine."""
    from repro.arch.config import case_study_hardware
    from repro.core.partition import PlanarGrid
    from repro.workloads.layer import ConvLayer

    layer = ConvLayer("v", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
    return _build_nest(
        layer,
        case_study_hardware(),
        tile=(16, 32, 16),
        chip_grid=PlanarGrid(2, 4),
    )


def fig6f_nest():
    """Figure 6(f): channel-priority A-L1 bad case (16x28 core tile)."""
    from repro.arch.config import case_study_hardware

    return _build_nest(_common_layer(), case_study_hardware(), tile=(16, 28, 128))


def fig6f_window_bytes() -> float:
    """The full-CI input window of the Figure 6(f) nest, in bytes."""
    nest = fig6f_nest()
    return float(
        nest.layer.input_rows_for(nest.core_ho)
        * nest.layer.input_cols_for(nest.core_wo)
        * nest.layer.ci
    )


def al2_nest():
    """The A-L2 union-window example (28x28 tile, 3x3 kernel)."""
    from repro.arch.config import case_study_hardware

    return _build_nest(_common_layer(), case_study_hardware(), tile=(28, 28, 64))


# --- transformer goldens: frozen end-to-end sweep/mapping outcomes -----------------


@lru_cache(maxsize=1)
def bert_block_predesign():
    """The frozen BERT encoder-block pre-design sweep.

    One BERT-base encoder block (seq 128, d_model 768, 12 heads, FFN 3072)
    swept at a 512-MAC budget with the minimal profile and a stride-997
    memory subsample -- small enough for tests, wide enough (50 points
    across every Table II computation split) that the recommended optimum
    is a real cross-granularity decision.  Cached so the golden tests and
    the fidelity block pay the sweep once per process.
    """
    from repro.core.baton import NNBaton
    from repro.core.space import SearchProfile
    from repro.workloads.transformer import encoder_block

    block = encoder_block("enc0", seq=128, d_model=768, heads=12, ffn=3072)
    return NNBaton().pre_design(
        {"bert_block": list(block)},
        required_macs=512,
        memory_stride=997,
        profile=SearchProfile.MINIMAL,
    )


@lru_cache(maxsize=1)
def llm_decode_postdesign():
    """The frozen llm_decode mapping on the paper's 4-8-8-8 machine."""
    from repro.arch.config import build_hardware
    from repro.core.baton import NNBaton
    from repro.core.space import SearchProfile
    from repro.workloads.transformer import llm_decode

    return NNBaton(profile=SearchProfile.MINIMAL).post_design(
        llm_decode(), build_hardware(4, 8, 8, 8)
    )


def _bert_sweep(attr):
    def compute() -> float:
        result = bert_block_predesign()
        point = result.recommended
        if attr == "energy_pj":
            return float(point.energy_pj["bert_block"])
        if attr == "cycles":
            return float(point.cycles["bert_block"])
        return float(point.edp("bert_block"))

    return compute


def _llm_decode(attr):
    def compute() -> float:
        result = llm_decode_postdesign()
        if attr == "energy_pj":
            return float(result.energy.total_pj)
        return float(getattr(result, attr))

    return compute


# --- compute closures --------------------------------------------------------------


def _weight(nest_fn, buffer_bytes, attr, index=None):
    def compute() -> float:
        from repro.core.c3p import analyze_weight_buffer

        analysis = analyze_weight_buffer(nest_fn(), buffer_bytes)
        if index is not None:
            return float(getattr(analysis.critical_points[index], attr))
        return float(getattr(analysis, attr))

    return compute


def _act_l1(nest_fn, buffer_bytes, attr, index=None):
    def compute() -> float:
        from repro.core.c3p import analyze_activation_l1

        analysis = analyze_activation_l1(nest_fn(), buffer_bytes)
        if index is not None:
            return float(getattr(analysis.critical_points[index], attr))
        return float(getattr(analysis, attr))

    return compute


def _al2_a0() -> float:
    from repro.core.c3p import analyze_activation_l2

    return float(analyze_activation_l2(al2_nest(), 10**9).a0_bits)


def _table1_energy(op_name):
    def compute() -> float:
        from repro.arch.technology import TABLE_I

        for row in TABLE_I:
            if row.name == op_name:
                return float(row.energy_pj_per_bit)
        raise KeyError(f"Table I operation {op_name!r} not found")

    return compute


def _table2_total(budget):
    def compute() -> float:
        from repro.core.dse import DesignSpace

        return float(len(DesignSpace().computation_configs(budget)))

    return compute


def _table2_by_chiplets(n_p):
    def compute() -> float:
        from repro.core.dse import DesignSpace

        configs = DesignSpace().computation_configs(2048)
        return float(sum(1 for c in configs if c[0] == n_p))

    return compute


def _fig15_sweep_size() -> float:
    from repro.core.dse import DesignSpace

    return float(DesignSpace().sweep_size(4096))


def _fig10_fit(which, attr):
    def compute() -> float:
        from repro.analysis.experiments import fig10_data

        data = fig10_data()
        fit = data.area_fit if which == "area" else data.energy_fit
        return float(getattr(fit, attr))

    return compute


# --- the registry ------------------------------------------------------------------

KB = 1024

GOLDENS: tuple[Golden, ...] = (
    # Figure 6(c): channel-priority weight walk, example 1.
    Golden(
        "fig6c.cc0_capacity_bytes", 4608.0, "Fig. 6(c), Section IV-B",
        _weight(fig6c_nest, 0, "capacity_bytes", 0),
    ),
    Golden(
        "fig6c.cc1_capacity_bytes", 73728.0, "Fig. 6(c), Section IV-B",
        _weight(fig6c_nest, 0, "capacity_bytes", 1),
    ),
    Golden(
        "fig6c.cc2_capacity_bytes", 73728.0, "Fig. 6(c), Section IV-B",
        _weight(fig6c_nest, 0, "capacity_bytes", 2),
    ),
    Golden(
        "fig6c.cc0_penalty", 1.0, "Fig. 6(c)", _weight(fig6c_nest, 0, "penalty", 0)
    ),
    Golden(
        "fig6c.cc1_penalty", 28.0, "Fig. 6(c): W1 x H1 = 4 x 7 region",
        _weight(fig6c_nest, 0, "penalty", 1),
    ),
    Golden(
        "fig6c.cc2_penalty", 1.0, "Fig. 6(c)", _weight(fig6c_nest, 0, "penalty", 2)
    ),
    Golden(
        "fig6c.a0_bits", 589824.0, "Fig. 6(c): 4608 B x 8 x C1(16)",
        _weight(fig6c_nest, 0, "a0_bits"),
    ),
    Golden(
        "fig6c.fill_bits_at_zero", 16515072.0, "Fig. 6(c): full 28x penalty",
        _weight(fig6c_nest, 0, "fill_bits"),
    ),
    Golden(
        "fig6c.fill_bits_at_4kb", 16515072.0, "Fig. 6(c): 4 KB sits below Cc1",
        _weight(fig6c_nest, 4 * KB, "fill_bits"),
    ),
    Golden(
        "fig6c.fill_bits_at_cc1", 589824.0, "Fig. 6(c): penalty-free at Cc1",
        _weight(fig6c_nest, 73728, "fill_bits"),
    ),
    # Figure 6(d): plane-priority weight walk, example 2.
    Golden(
        "fig6d.cc0_penalty", 28.0, "Fig. 6(d): penalty moves to the block region",
        _weight(fig6d_nest, 0, "penalty", 0),
    ),
    Golden(
        "fig6d.cc1_penalty", 1.0, "Fig. 6(d)", _weight(fig6d_nest, 0, "penalty", 1)
    ),
    Golden(
        "fig6d.cc2_penalty", 1.0, "Fig. 6(d)", _weight(fig6d_nest, 0, "penalty", 2)
    ),
    Golden(
        "fig6d.reload_at_4607", 28.0, "Fig. 6(d): one byte short still pays 28x",
        _weight(fig6d_nest, 4607, "reload_factor"),
    ),
    Golden(
        "fig6d.reload_at_4608", 1.0, "Fig. 6(d): 4608 B suffice",
        _weight(fig6d_nest, 4608, "reload_factor"),
    ),
    Golden(
        "fig6d.fill_bits_at_4608", 589824.0, "Fig. 6(d)",
        _weight(fig6d_nest, 4608, "fill_bits"),
    ),
    # Figure 6(e): the 800 B A-L1 case study.
    Golden(
        "fig6e.cc0_capacity_bytes", 800.0, "Fig. 6(e): 10 x 10 x 8 = 800 B",
        _act_l1(fig6e_nest, 800, "capacity_bytes", 0),
    ),
    Golden(
        "fig6e.cc1_capacity_bytes", 6400.0, "Fig. 6(e)",
        _act_l1(fig6e_nest, 800, "capacity_bytes", 1),
    ),
    Golden(
        "fig6e.cc0_penalty", 9.0, "Fig. 6(e): the 3x3 kernel sweep",
        _act_l1(fig6e_nest, 800, "penalty", 0),
    ),
    Golden(
        "fig6e.cc1_penalty", 2.0, "Fig. 6(e): the C1:2 reuse region",
        _act_l1(fig6e_nest, 800, "penalty", 1),
    ),
    Golden(
        "fig6e.cc2_penalty", 1.0, "Fig. 6(e)",
        _act_l1(fig6e_nest, 800, "penalty", 2),
    ),
    Golden(
        "fig6e.a0_bits", 409600.0, "Fig. 6(e)", _act_l1(fig6e_nest, 800, "a0_bits")
    ),
    Golden(
        "fig6e.fill_bits_at_800", 819200.0, "Fig. 6(e): factor 2 at 800 B",
        _act_l1(fig6e_nest, 800, "fill_bits"),
    ),
    Golden(
        "fig6e.fill_bits_at_799", 7372800.0, "Fig. 6(e): factor 18 at 799 B",
        _act_l1(fig6e_nest, 799, "fill_bits"),
    ),
    # Figure 6(f): channel-priority A-L1 bad case.
    Golden(
        "fig6f.window_bytes", 3840.0, "Fig. 6(f): the full-CI input window",
        fig6f_window_bytes,
    ),
    Golden(
        "fig6f.reload_at_3839", 8.0, "Fig. 6(f): no gain below the window",
        _act_l1(fig6f_nest, 3839, "reload_factor"),
    ),
    Golden(
        "fig6f.reload_at_3840", 1.0, "Fig. 6(f): reload collapses at the window",
        _act_l1(fig6f_nest, 3840, "reload_factor"),
    ),
    # The A-L2 union window.
    Golden(
        "al2.a0_bits", 1843200.0,
        "Section IV-B: (30*30*64) B union window x 4 chiplet workloads",
        _al2_a0,
    ),
    # Table I operation energies (16 nm).
    Golden(
        "table1.dram_pj_per_bit", 8.75, "Table I", _table1_energy("DRAM access")
    ),
    Golden(
        "table1.d2d_pj_per_bit", 1.17, "Table I",
        _table1_energy("Die-to-die communication"),
    ),
    Golden(
        "table1.l2_pj_per_bit", 0.81, "Table I",
        _table1_energy("L2 access (32KB SRAM)"),
    ),
    Golden(
        "table1.l1_pj_per_bit", 0.30, "Table I",
        _table1_energy("L1 access (1KB SRAM)"),
    ),
    Golden(
        "table1.mac_pj_per_bit", 0.024, "Table I", _table1_energy("8bit MAC")
    ),
    # Table II design-space counts.
    Golden(
        "table2.configs_2048", 32.0,
        "Table II / Section VI-B1 (printed option grid)",
        _table2_total(2048),
    ),
    Golden(
        "table2.configs_4096", 20.0, "Table II @ 4096 MACs", _table2_total(4096)
    ),
    Golden(
        "table2.single_chiplet_2048", 3.0,
        "Section VI-B1: 'only three options' for one chiplet",
        _table2_by_chiplets(1),
    ),
    Golden(
        "table2.two_chiplet_2048", 6.0, "Table II breakdown", _table2_by_chiplets(2)
    ),
    Golden(
        "table2.four_chiplet_2048", 10.0, "Table II breakdown", _table2_by_chiplets(4)
    ),
    Golden(
        "table2.eight_chiplet_2048", 13.0, "Table II breakdown", _table2_by_chiplets(8)
    ),
    Golden(
        "fig15.sweep_points_4096", 13920.0,
        "Figure 15 structural sweep size (stride 1)",
        _fig15_sweep_size,
    ),
    # Figure 10 regression fits (frozen at the reproducing commit; the
    # fits are exact given the macro library and fsum-based LinearFit).
    Golden(
        "fig10.area_fit_slope", 0.003969472855289975,
        "Fig. 10: area(KB) linear law",
        _fig10_fit("area", "slope"),
    ),
    Golden(
        "fig10.area_fit_intercept", 0.0032058560311284123,
        "Fig. 10: area(KB) linear law",
        _fig10_fit("area", "intercept"),
    ),
    Golden(
        "fig10.area_fit_r_squared", 0.9999746936046707,
        "Fig. 10: 'approximately linear' (r^2 > 0.99)",
        _fig10_fit("area", "r_squared"),
    ),
    Golden(
        "fig10.energy_fit_slope", 0.016671666158618585,
        "Fig. 10: energy(KB) linear law",
        _fig10_fit("energy", "slope"),
    ),
    Golden(
        "fig10.energy_fit_intercept", 0.2772814924061757,
        "Fig. 10: energy(KB) linear law",
        _fig10_fit("energy", "intercept"),
    ),
    Golden(
        "fig10.energy_fit_r_squared", 0.9998985433300218,
        "Fig. 10: 'approximately linear' (r^2 > 0.99)",
        _fig10_fit("energy", "r_squared"),
    ),
    # Transformer end-to-end outcomes (frozen at the commit that added the
    # native matmul/attention path; not paper figures -- drift gates for
    # the GEMM-through-C3P pipeline and the pre-design sweep on top of it).
    Golden(
        "transformer.bert_sweep_energy_pj", 3056039387.9287744,
        "BERT-base encoder block, 512-MAC pre-design optimum (4-2-16-4)",
        _bert_sweep("energy_pj"),
    ),
    Golden(
        "transformer.bert_sweep_cycles", 1818624.0,
        "BERT-base encoder block, 512-MAC pre-design optimum (4-2-16-4)",
        _bert_sweep("cycles"),
    ),
    Golden(
        "transformer.llm_decode_energy_pj", 23692039001.78168,
        "llm_decode (4096d/32h, 512 KV) mapped on the 4-8-8-8 machine",
        _llm_decode("energy_pj"),
    ),
    Golden(
        "transformer.llm_decode_cycles", 143872.0,
        "llm_decode (4096d/32h, 512 KV) mapped on the 4-8-8-8 machine",
        _llm_decode("cycles"),
    ),
)


def golden(name: str) -> Golden:
    """Look one golden up by name (KeyError when unknown)."""
    for entry in GOLDENS:
        if entry.name == name:
            return entry
    raise KeyError(f"unknown golden {name!r}")


def evaluate_goldens() -> list[GoldenResult]:
    """Recompute every golden; returns results in registry order."""
    return [
        GoldenResult(
            name=entry.name,
            expected=entry.expected,
            actual=entry.compute(),
            source=entry.source,
        )
        for entry in GOLDENS
    ]


def fidelity_block(tol: float = DEFAULT_FIDELITY_TOL) -> dict:
    """The ``fidelity`` block of a :mod:`repro.obs.bench` record.

    ``{"goldens": {name: {expected, actual, deviation, source}},
    "max_abs_deviation": float, "ok": bool}`` -- ``ok`` means every
    deviation is within ``tol`` (default: exactly zero).
    """
    results = evaluate_goldens()
    deviations = [abs(r.deviation) for r in results]
    return {
        "goldens": {
            r.name: {
                "expected": r.expected,
                "actual": r.actual,
                "deviation": r.deviation,
                "source": r.source,
            }
            for r in results
        },
        "max_abs_deviation": max(deviations, default=0.0),
        "ok": all(r.ok(tol) for r in results),
    }


__all__ = [
    "DEFAULT_FIDELITY_TOL",
    "GOLDENS",
    "Golden",
    "GoldenResult",
    "bert_block_predesign",
    "evaluate_goldens",
    "fidelity_block",
    "golden",
    "llm_decode_postdesign",
]
