"""Counters and gauges: the numeric half of the observability layer.

A :class:`MetricsRegistry` is a thread-safe bag of named **counters**
(monotonic sums: cache hits, mapping candidates evaluated, DES events,
resource busy cycles) and **gauges** (last-written values: worker counts,
configuration knobs).  Registries merge, so per-worker registries captured
by :func:`repro.core.parallel.run_tasks` fold into the parent and a
``--jobs 4`` sweep reports the same counter totals as the serial run.

Naming scheme (see ``docs/observability.md``): dotted lowercase paths,
``<subsystem>.<object>.<quantity>`` -- e.g. ``mapper.candidates.evaluated``,
``cache.hits``, ``sim.dram.bits_served``.  Counters are order-independent
(summing worker deltas in any order gives the same total).  Gauges are
last-write-wins within one registry, but cross-registry :meth:`merge` is
deterministic: it keeps the **maximum** per gauge (high-water semantics),
so a ``--jobs 4`` sweep reports the same gauge values regardless of which
worker snapshot happens to arrive last.
"""

from __future__ import annotations

import json
import threading
from typing import Mapping


class MetricsRegistry:
    """A thread-safe registry of named counters and gauges."""

    __slots__ = ("_counters", "_gauges", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._lock = threading.Lock()

    # --- writes ---------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def merge(
        self,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
    ) -> None:
        """Fold another registry's snapshot in: counters sum, gauges keep max.

        Counters are monotonic sums, so addition is the only sensible fold.
        Gauges record levels (worker counts, peak queue depths, knobs); the
        high-water **max** rule makes the merge order-independent -- merging
        worker snapshots in any order yields identical gauges, where the old
        last-snapshot-wins rule leaked scheduling nondeterminism into the
        exported metrics.
        """
        with self._lock:
            for name, value in (counters or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in (gauges or {}).items():
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value

    def clear(self) -> None:
        """Drop every counter and gauge."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()

    # --- reads ----------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never counted)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict[str, float]:
        """Name-sorted snapshot of every counter."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, float]:
        """Name-sorted snapshot of every gauge."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges)

    # --- export ---------------------------------------------------------------

    def as_dict(self) -> dict[str, dict[str, float]]:
        """The JSON-export payload: ``{"counters": {...}, "gauges": {...}}``."""
        return {"counters": self.counters(), "gauges": self.gauges()}

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic (sorted-key) JSON rendering."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Flat ``name value`` lines (counters then gauges), name-sorted."""
        lines = [
            f"{name} {value:g}" for name, value in self.counters().items()
        ]
        lines += [
            f"{name} {value:g}" for name, value in self.gauges().items()
        ]
        return "\n".join(lines)


__all__ = ["MetricsRegistry"]
