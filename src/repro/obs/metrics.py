"""Counters, gauges and histograms: the numeric half of observability.

A :class:`MetricsRegistry` is a thread-safe bag of named **counters**
(monotonic sums: cache hits, mapping candidates evaluated, DES events,
resource busy cycles), **gauges** (last-written values: worker counts,
configuration knobs) and **histograms** (log-bucketed value distributions:
per-point evaluation latency, cache load/save latency, DES queue depths).
Registries merge, so per-worker registries captured by
:func:`repro.core.parallel.run_tasks` fold into the parent and a
``--jobs 4`` sweep reports the same totals as the serial run.

Naming scheme (see ``docs/observability.md``): dotted lowercase paths,
``<subsystem>.<object>.<quantity>`` -- e.g. ``mapper.candidates.evaluated``,
``cache.hits``, ``sim.dram.bits_served``.  Counters are order-independent
(summing worker deltas in any order gives the same total).  Gauges are
last-write-wins within one registry, but cross-registry :meth:`merge` is
deterministic: it keeps the **maximum** per gauge (high-water semantics),
so a ``--jobs 4`` sweep reports the same gauge values regardless of which
worker snapshot happens to arrive last.  Histograms merge by summing
bucket counts (and count/sum, min-ing min, max-ing max): bucket counts,
count and the extremes -- and therefore the quantile estimates -- are
integer/compare folds, identical for any snapshot arrival order; only
the float ``sum`` can differ in its last bits (float addition is not
associative).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Mapping

#: Bucket exponent assigned to observations <= 0 (below every real bucket).
_UNDERFLOW_EXP = -1075


def bucket_exponent(value: float) -> int:
    """The log2 bucket of ``value``: smallest ``e`` with ``value <= 2**e``.

    Non-positive observations land in a dedicated underflow bucket.  The
    bucket of a value is a pure function of the value, so two registries
    observing the same values always agree -- the property the
    order-independent merge rests on.
    """
    if value <= 0:
        return _UNDERFLOW_EXP
    return math.ceil(math.log2(value))


def bucket_upper_bound(exponent: int) -> float:
    """The inclusive upper bound of one bucket (0.0 for the underflow)."""
    if exponent == _UNDERFLOW_EXP:
        return 0.0
    return float(2.0**exponent)


def _quantile(
    buckets: Mapping[int, int],
    count: int,
    lo: float,
    hi: float,
    q: float,
) -> float:
    """Estimate the ``q``-quantile from log buckets, clamped to [lo, hi].

    Walks the name-sorted buckets to the one holding rank ``q * count``
    and interpolates linearly inside it.  Depends only on the merged
    bucket counts and the observed min/max, so the estimate is identical
    whatever order the observations (or worker snapshots) arrived in.
    """
    if count <= 0:
        return 0.0
    rank = q * count
    seen = 0
    for exponent in sorted(buckets):
        bucket_count = buckets[exponent]
        if seen + bucket_count >= rank:
            upper = bucket_upper_bound(exponent)
            lower = (
                0.0
                if exponent == _UNDERFLOW_EXP
                else bucket_upper_bound(exponent - 1)
            )
            fraction = (rank - seen) / bucket_count
            estimate = lower + (upper - lower) * fraction
            return min(max(estimate, lo), hi)
        seen += bucket_count
    return hi


class MetricsRegistry:
    """A thread-safe registry of named counters, gauges and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> {"count", "sum", "min", "max", "buckets": {exp: count}}
        self._histograms: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()

    # --- writes ---------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def histogram(self, name: str, value: float) -> None:
        """Record one observation of ``value`` in the histogram ``name``."""
        exponent = bucket_exponent(value)
        with self._lock:
            state = self._histograms.get(name)
            if state is None:
                state = {
                    "count": 0,
                    "sum": 0.0,
                    "min": float("inf"),
                    "max": float("-inf"),
                    "buckets": {},
                }
                self._histograms[name] = state
            state["count"] += 1
            state["sum"] += value
            if value < state["min"]:
                state["min"] = value
            if value > state["max"]:
                state["max"] = value
            buckets = state["buckets"]
            buckets[exponent] = buckets.get(exponent, 0) + 1

    def merge(
        self,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        histograms: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> None:
        """Fold another registry's snapshot in, order-independently.

        Counters are monotonic sums, so addition is the only sensible
        fold.  Gauges record levels (worker counts, peak queue depths,
        knobs); the high-water **max** rule makes the merge
        order-independent -- merging worker snapshots in any order yields
        identical gauges, where the old last-snapshot-wins rule leaked
        scheduling nondeterminism into the exported metrics.  Histograms
        sum their bucket counts (plus count/sum) and keep the extreme
        min/max, all commutative folds.
        """
        with self._lock:
            for name, value in (counters or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in (gauges or {}).items():
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value
            for name, other in (histograms or {}).items():
                state = self._histograms.get(name)
                if state is None:
                    state = {
                        "count": 0,
                        "sum": 0.0,
                        "min": float("inf"),
                        "max": float("-inf"),
                        "buckets": {},
                    }
                    self._histograms[name] = state
                state["count"] += int(other.get("count", 0))
                state["sum"] += float(other.get("sum", 0.0))
                other_min = float(other.get("min", float("inf")))
                other_max = float(other.get("max", float("-inf")))
                if other_min < state["min"]:
                    state["min"] = other_min
                if other_max > state["max"]:
                    state["max"] = other_max
                buckets = state["buckets"]
                for exponent, bucket_count in (other.get("buckets") or {}).items():
                    exponent = int(exponent)
                    buckets[exponent] = buckets.get(exponent, 0) + int(bucket_count)

    def clear(self) -> None:
        """Drop every counter, gauge and histogram."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # --- reads ----------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never counted)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict[str, float]:
        """Name-sorted snapshot of every counter."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, float]:
        """Name-sorted snapshot of every gauge."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def histograms(self) -> dict[str, dict[str, Any]]:
        """Name-sorted deep-copied snapshot of every histogram's raw state.

        The snapshot shape (``count``/``sum``/``min``/``max``/``buckets``)
        is what :meth:`merge` consumes -- it is the picklable worker-capture
        payload, not the human summary (see :meth:`histogram_stats`).
        """
        with self._lock:
            return {
                name: {
                    "count": state["count"],
                    "sum": state["sum"],
                    "min": state["min"],
                    "max": state["max"],
                    "buckets": dict(state["buckets"]),
                }
                for name, state in sorted(self._histograms.items())
            }

    def histogram_stats(self, name: str) -> dict[str, float] | None:
        """The exported summary of one histogram, or ``None`` when absent.

        ``count``/``sum``/``min``/``max`` are exact; ``p50``/``p90``/``p99``
        are log-bucket estimates (linear interpolation inside the holding
        bucket, clamped to the observed range) -- identical for any
        arrival order of the same observations.
        """
        with self._lock:
            state = self._histograms.get(name)
            if state is None:
                return None
            count = state["count"]
            total = state["sum"]
            lo, hi = state["min"], state["max"]
            buckets = dict(state["buckets"])
        return {
            "count": float(count),
            "sum": total,
            "min": lo,
            "max": hi,
            "p50": _quantile(buckets, count, lo, hi, 0.50),
            "p90": _quantile(buckets, count, lo, hi, 0.90),
            "p99": _quantile(buckets, count, lo, hi, 0.99),
        }

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )

    # --- export ---------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """The JSON-export payload: counters, gauges and histogram summaries.

        Histograms export their summary (count/sum/min/max/p50/p90/p99)
        plus the raw buckets keyed by stringified bucket exponent, so the
        JSON both reads at a glance and re-merges losslessly.
        """
        histograms: dict[str, Any] = {}
        for name, state in self.histograms().items():
            stats = self.histogram_stats(name)
            assert stats is not None
            stats_payload: dict[str, Any] = dict(stats)
            stats_payload["buckets"] = {
                str(exp): count for exp, count in sorted(state["buckets"].items())
            }
            histograms[name] = stats_payload
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": histograms,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic (sorted-key) JSON rendering."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Flat ``name value`` lines in one global name-sorted order.

        Counters, gauges and histogram summary lines (``<name>.count``,
        ``.sum``, ``.min``, ``.max``, ``.p50``, ``.p90``, ``.p99``) are
        merged into a single sort, so the text diff between two runs is
        stable however the metric mix shifts between kinds.
        """
        entries: dict[str, float] = {}
        entries.update(self.counters())
        entries.update(self.gauges())
        for name in self.histograms():
            stats = self.histogram_stats(name)
            assert stats is not None
            for field in ("count", "sum", "min", "max", "p50", "p90", "p99"):
                entries[f"{name}.{field}"] = stats[field]
        return "\n".join(
            f"{name} {value:g}" for name, value in sorted(entries.items())
        )


__all__ = [
    "MetricsRegistry",
    "bucket_exponent",
    "bucket_upper_bound",
]
