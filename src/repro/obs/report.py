"""Consolidated bench report: trends, fidelity and counter deltas.

``repro bench report`` renders the append-only
``benchmarks/results/history.jsonl`` (see :mod:`repro.obs.bench`) into a
self-contained summary -- markdown by default, or a dependency-free HTML
page (inline CSS, no scripts) for CI artifacts:

* **Per-bench trend** -- median wall time per run (newest last) with the
  last-vs-previous movement, so a slow drift is visible even when every
  single hop stayed under the compare gate.
* **Fidelity table** -- the latest run's paper-golden deviations; any
  non-zero row is flagged.
* **Counter deltas** -- biggest movements in the summed per-bench
  counters between the last two runs (work-shape changes, e.g. a mapper
  suddenly evaluating 3x the candidates, often explain a wall-time move).

Everything is computed from plain record dicts so synthetic histories in
tests can exercise the renderer without running a single benchmark.
"""

from __future__ import annotations

import html as _html
from typing import Any

#: Runs shown in the trend table (newest kept when history is longer).
DEFAULT_MAX_RUNS = 8

#: Counter-delta rows shown in the report.
DEFAULT_MAX_COUNTERS = 20


def _short_sha(record: dict[str, Any]) -> str:
    sha = str(record.get("git_sha", "unknown"))
    return sha[:7] if sha != "unknown" else sha


def _fmt_ms(value: Any) -> str:
    if value is None:
        return "-"
    return f"{float(value) * 1e3:.1f}"


def _sum_counters(record: dict[str, Any]) -> dict[str, float]:
    """All per-bench counters of one record summed into one namespace."""
    totals: dict[str, float] = {}
    for entry in record.get("benches", {}).values():
        for name, value in (entry.get("counters") or {}).items():
            totals[name] = totals.get(name, 0.0) + float(value)
    return totals


def _trend_section(
    records: list[dict[str, Any]], max_runs: int
) -> tuple[list[str], list[list[str]]]:
    window = records[-max_runs:]
    headers = ["Bench"] + [_short_sha(r) for r in window] + ["last Δ"]
    names = sorted({name for r in window for name in r.get("benches", {})})
    rows: list[list[str]] = []
    for name in names:
        medians = [
            r.get("benches", {}).get(name, {}).get("wall_s", {}).get("median")
            for r in window
        ]
        delta = "-"
        present = [m for m in medians if m is not None]
        if len(present) >= 2 and medians[-1] is not None:
            prev = next(
                (m for m in reversed(medians[:-1]) if m is not None), None
            )
            if prev:
                delta = f"{medians[-1] / prev - 1:+.1%}"
        rows.append([name] + [_fmt_ms(m) for m in medians] + [delta])
    return headers, rows


def _fidelity_section(
    record: dict[str, Any],
) -> tuple[list[str], list[list[str]]]:
    headers = ["Golden", "Expected", "Actual", "Deviation", "Status"]
    rows = []
    goldens = record.get("fidelity", {}).get("goldens", {})
    for name in sorted(goldens):
        entry = goldens[name]
        deviation = float(entry.get("deviation", 0.0))
        rows.append(
            [
                name,
                f"{float(entry.get('expected', 0.0)):g}",
                f"{float(entry.get('actual', 0.0)):g}",
                f"{deviation:+.3e}" if deviation else "0",
                "ok" if deviation == 0 else "DRIFT",
            ]
        )
    return headers, rows


def _counter_section(
    records: list[dict[str, Any]], max_counters: int
) -> tuple[list[str], list[list[str]]]:
    headers = ["Counter", "Previous", "Latest", "Δ"]
    if len(records) < 2:
        return headers, []
    prev, last = _sum_counters(records[-2]), _sum_counters(records[-1])
    deltas = {
        name: last.get(name, 0.0) - prev.get(name, 0.0)
        for name in set(prev) | set(last)
    }
    movers = sorted(deltas, key=lambda n: abs(deltas[n]), reverse=True)
    rows = []
    for name in movers[:max_counters]:
        if deltas[name] == 0:
            continue
        rows.append(
            [
                name,
                f"{prev.get(name, 0.0):g}",
                f"{last.get(name, 0.0):g}",
                f"{deltas[name]:+g}",
            ]
        )
    return headers, rows


def _build_sections(
    records: list[dict[str, Any]], max_runs: int, max_counters: int
) -> list[tuple[str, str, list[str], list[list[str]]]]:
    """(title, note, headers, rows) for each report section."""
    last = records[-1]
    fidelity = last.get("fidelity", {})
    drifted = sum(
        1
        for g in fidelity.get("goldens", {}).values()
        if float(g.get("deviation", 0.0)) != 0
    )
    fidelity_note = (
        "Every golden matches the paper exactly."
        if drifted == 0
        else f"{drifted} golden(s) deviate from the paper -- investigate before trusting results."
    )
    return [
        (
            "Per-bench wall time (median ms per run, newest last)",
            f"{len(records)} recorded run(s); showing the last "
            f"{min(len(records), max_runs)}.",
            *_trend_section(records, max_runs),
        ),
        (
            f"Fidelity vs the paper (run {_short_sha(last)})",
            fidelity_note,
            *_fidelity_section(last),
        ),
        (
            "Counter deltas (last run vs previous)",
            "Biggest movements in summed per-bench counters; an empty table "
            "means identical work shape.",
            *_counter_section(records, max_counters),
        ),
    ]


def render_markdown(
    records: list[dict[str, Any]],
    max_runs: int = DEFAULT_MAX_RUNS,
    max_counters: int = DEFAULT_MAX_COUNTERS,
) -> str:
    """The consolidated report as GitHub-flavoured markdown."""
    if not records:
        return "# Bench report\n\nNo recorded runs yet -- run `repro bench` first.\n"
    last = records[-1]
    lines = [
        "# Bench report",
        "",
        f"Latest run: `{_short_sha(last)}` at {last.get('created_utc', '?')} "
        f"on Python {last.get('environment', {}).get('python', '?')}, "
        f"{last.get('environment', {}).get('cpu_count', '?')} CPU(s), "
        f"profile `{last.get('config', {}).get('profile', '?')}`.",
        "",
    ]
    for title, note, headers, rows in _build_sections(
        records, max_runs, max_counters
    ):
        lines.append(f"## {title}")
        lines.append("")
        lines.append(note)
        lines.append("")
        if rows:
            lines.append("| " + " | ".join(headers) + " |")
            lines.append("|" + "|".join(" --- " for _ in headers) + "|")
            for row in rows:
                lines.append("| " + " | ".join(row) + " |")
        else:
            lines.append("*(nothing to show)*")
        lines.append("")
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; font-size: 0.85rem; }
th, td { border: 1px solid #d0d0e0; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #f0f0f8; }
td.drift { background: #ffe0e0; font-weight: bold; }
p.note { color: #555; font-size: 0.9rem; }
""".strip()


def render_html(
    records: list[dict[str, Any]],
    max_runs: int = DEFAULT_MAX_RUNS,
    max_counters: int = DEFAULT_MAX_COUNTERS,
) -> str:
    """The consolidated report as one self-contained HTML page."""
    parts = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'><title>Bench report</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>Bench report</h1>",
    ]
    if not records:
        parts.append("<p>No recorded runs yet — run <code>repro bench</code> first.</p>")
    else:
        last = records[-1]
        env = last.get("environment", {})
        parts.append(
            "<p class='note'>Latest run "
            f"<code>{_html.escape(_short_sha(last))}</code> at "
            f"{_html.escape(str(last.get('created_utc', '?')))} — Python "
            f"{_html.escape(str(env.get('python', '?')))}, "
            f"{_html.escape(str(env.get('cpu_count', '?')))} CPU(s).</p>"
        )
        for title, note, headers, rows in _build_sections(
            records, max_runs, max_counters
        ):
            parts.append(f"<h2>{_html.escape(title)}</h2>")
            parts.append(f"<p class='note'>{_html.escape(note)}</p>")
            if not rows:
                parts.append("<p class='note'><em>(nothing to show)</em></p>")
                continue
            parts.append("<table><tr>")
            parts.extend(f"<th>{_html.escape(h)}</th>" for h in headers)
            parts.append("</tr>")
            for row in rows:
                parts.append("<tr>")
                for cell in row:
                    cls = " class='drift'" if cell == "DRIFT" else ""
                    parts.append(f"<td{cls}>{_html.escape(cell)}</td>")
                parts.append("</tr>")
            parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts)


__all__ = [
    "DEFAULT_MAX_COUNTERS",
    "DEFAULT_MAX_RUNS",
    "render_html",
    "render_markdown",
]
