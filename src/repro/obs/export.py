"""Prometheus text-exposition export of a :class:`MetricsRegistry`.

Renders the registry into Prometheus' text format (version 0.0.4):
counters become ``counter`` samples, gauges become ``gauge`` samples, and
log-bucketed histograms become native Prometheus histograms -- cumulative
``_bucket{le="..."}`` series (upper bound ``2**exponent`` per bucket, plus
the mandatory ``+Inf``), ``_sum`` and ``_count``.

Dotted metric names (``mapper.candidates.evaluated``) are sanitised to the
Prometheus charset by replacing every illegal character with ``_``
(``mapper_candidates_evaluated``), with a ``repro_`` namespace prefix so a
scrape of several exporters stays collision-free.  Output is
deterministic: one global name-sorted pass, matching the flat-text
exporter's ordering contract.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, bucket_upper_bound

#: Prefix namespacing every exported metric.
METRIC_PREFIX = "repro_"

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """The Prometheus-legal, ``repro_``-prefixed form of a dotted name."""
    sanitised = _ILLEGAL.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return METRIC_PREFIX + sanitised


def _format_value(value: float) -> str:
    """A float rendered the way Prometheus parsers expect (no ``1e+06``)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry rendered as Prometheus text exposition format.

    Families are emitted in one global name-sorted order; every family
    gets its ``# TYPE`` line.  Histogram buckets are cumulative over the
    name-sorted exponents, so the output is identical for any arrival
    order of the underlying observations.
    """
    families: list[tuple[str, list[str]]] = []
    for name, value in metrics.counters().items():
        pname = prometheus_name(name)
        families.append(
            (
                pname,
                [
                    f"# TYPE {pname} counter",
                    f"{pname} {_format_value(value)}",
                ],
            )
        )
    for name, value in metrics.gauges().items():
        pname = prometheus_name(name)
        families.append(
            (
                pname,
                [
                    f"# TYPE {pname} gauge",
                    f"{pname} {_format_value(value)}",
                ],
            )
        )
    for name, state in metrics.histograms().items():
        pname = prometheus_name(name)
        lines = [f"# TYPE {pname} histogram"]
        cumulative = 0
        for exponent in sorted(state["buckets"]):
            cumulative += state["buckets"][exponent]
            upper = _format_value(bucket_upper_bound(exponent))
            lines.append(f'{pname}_bucket{{le="{upper}"}} {cumulative}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} {state["count"]}')
        lines.append(f"{pname}_sum {_format_value(state['sum'])}")
        lines.append(f"{pname}_count {state['count']}")
        families.append((pname, lines))
    families.sort(key=lambda item: item[0])
    out: list[str] = []
    for _, lines in families:
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def write_prometheus(metrics: MetricsRegistry, path: str | Path) -> Path:
    """Write the Prometheus text exposition; returns the path written."""
    target = Path(path)
    target.write_text(prometheus_text(metrics))
    return target


__all__ = [
    "METRIC_PREFIX",
    "prometheus_name",
    "prometheus_text",
    "write_prometheus",
]
