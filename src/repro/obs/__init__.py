"""Zero-dependency observability: spans, counters, Chrome-trace export.

One module-level *current recorder* serves the whole process.  It defaults
to the :class:`NullRecorder`, so instrumentation scattered through the
mapper, the DSE sweeps, the simulator and the audit layer costs one no-op
method call per site until something installs a live :class:`Recorder`
(the CLI's ``--trace-out`` / ``--metrics-out`` flags, ``repro profile``,
or a test via :func:`use`).

Typical instrumentation site::

    from repro import obs

    with obs.span("dse.explore", points=len(tasks)):
        ...
    obs.count("dse.points.evaluated", evaluated)

Typical harness::

    recorder = obs.Recorder()
    with obs.use(recorder):
        run_the_sweep()
    recorder.write_chrome_trace("trace.json")   # open in Perfetto
    recorder.write_metrics("metrics.json")

Span/metric naming, the worker-capture protocol and the Perfetto workflow
are documented in ``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import NullRecorder, Recorder, SpanEvent

#: The permanently-installed disabled recorder (shared, stateless).
NULL_RECORDER = NullRecorder()

_current: Union[Recorder, NullRecorder] = NULL_RECORDER


def get_recorder() -> Union[Recorder, NullRecorder]:
    """The process-wide current recorder (the null recorder by default)."""
    return _current


def set_recorder(
    recorder: Union[Recorder, NullRecorder],
) -> Union[Recorder, NullRecorder]:
    """Install ``recorder`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = recorder
    return previous


@contextmanager
def use(recorder: Union[Recorder, NullRecorder]) -> Iterator[Union[Recorder, NullRecorder]]:
    """Scope ``recorder`` as current, restoring the previous on exit."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def enabled() -> bool:
    """Whether a live recorder is installed."""
    return _current.enabled


def span(name: str, **args: Any):
    """Open a span on the current recorder (no-op when disabled)."""
    return _current.span(name, **args)


def count(name: str, value: float = 1) -> None:
    """Bump a counter on the current recorder (no-op when disabled)."""
    _current.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the current recorder (no-op when disabled)."""
    _current.gauge(name, value)


def histogram(name: str, value: float) -> None:
    """Record a histogram observation on the current recorder (no-op when
    disabled)."""
    _current.histogram(name, value)


def event(name: str, **fields: Any) -> None:
    """Record a run lifecycle event on the current recorder (no-op when
    disabled)."""
    _current.event(name, **fields)


__all__ = [
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SpanEvent",
    "count",
    "enabled",
    "event",
    "gauge",
    "get_recorder",
    "histogram",
    "set_recorder",
    "span",
    "use",
]
