"""Structured benchmark records and cross-run regression detection.

Every paper benchmark under ``benchmarks/`` regenerates one of NN-Baton's
tables or figures and, until this module, reported only free-text ``.txt``
artifacts -- nothing could tell whether a commit made a bench slower or
pushed a reproduced number away from the paper.  This module defines the
**bench record** the ``repro bench`` CLI emits per run and the noise-aware
comparison that gates on it:

* :class:`BenchCapture` -- the per-test sink behind the ``record_bench``
  fixture (``benchmarks/conftest.py``).  It writes the legacy ``.txt``
  artifact byte-identically, collects scalar *values* the bench extracts
  (fit slopes, option counts, energy totals), times the test body, and --
  when :data:`RECORD_DIR_ENV` points somewhere -- snapshots the run's
  :class:`~repro.obs.MetricsRegistry` counters and appends one JSON
  fragment line for the CLI to assemble.
* :func:`assemble_record` -- folds the fragments of one warmup-discarded
  repeat series into a ``BENCH_<gitsha>.json`` payload: per-bench wall
  time (median + MAD over the repeats), values, counters, an environment
  fingerprint (git SHA, Python, CPU count, ``REPRO_*`` knobs) and the
  :func:`repro.obs.goldens.fidelity_block` of paper-golden deviations.
* :func:`append_history` / :func:`load_history` -- an append-only
  ``benchmarks/results/history.jsonl`` with the same torn-tail tolerance
  as :mod:`repro.core.checkpoint`: single ``O_APPEND`` writes, and loads
  that count-and-skip undecodable lines instead of discarding the file.
* :func:`compare_records` -- flags a perf regression only when the median
  shift clears **both** ``k x MAD`` and a relative floor (so a noisy
  1-CPU CI runner does not false-positive), and fails *any* fidelity
  drift: a golden deviating from the paper, or changing between the two
  records.

Schema (``"schema": "repro.bench/1"``) is documented in
``docs/observability.md`` and enforced by :func:`validate_record`.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro import durable, obs

#: Environment variable the ``repro bench`` CLI sets so the
#: ``record_bench`` fixture knows where to append its JSON fragments.
RECORD_DIR_ENV = "REPRO_BENCH_RECORD_DIR"

#: The schema marker every bench record carries.
BENCH_SCHEMA = "repro.bench/1"

#: Fragment file each benchmark run appends to (one line per test).
FRAGMENTS_NAME = "records.jsonl"

#: Default noise gate: median shift must exceed ``k x MAD``.
DEFAULT_K = 3.0

#: Default relative floor: and exceed this fraction of the old median.
DEFAULT_REL_FLOOR = 0.10

#: Absolute floor: shifts under this many seconds are never regressions
#: (sub-10 ms benches on shared runners are pure scheduling noise).
DEFAULT_MIN_DELTA_S = 0.010

#: Top-level keys every record must carry (see ``docs/observability.md``).
_REQUIRED_KEYS = (
    "schema",
    "created_utc",
    "git_sha",
    "environment",
    "config",
    "benches",
    "fidelity",
)


# --- robust statistics -------------------------------------------------------------


def median(samples: Iterable[float]) -> float:
    """The median of ``samples`` (mean of the middle two for even n)."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("median() of no samples")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(samples: Iterable[float]) -> float:
    """Median absolute deviation -- the robust spread ``compare`` scales."""
    ordered = list(samples)
    center = median(ordered)
    return median(abs(x - center) for x in ordered)


# --- environment fingerprint -------------------------------------------------------


def git_sha(short: bool = False) -> str:
    """The repo HEAD SHA (``"unknown"`` outside a git checkout)."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def environment_fingerprint() -> dict[str, Any]:
    """Everything about the host that perf numbers depend on."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "repro_env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_") and key != RECORD_DIR_ENV
        },
    }


# --- the per-test capture sink -----------------------------------------------------


class BenchCapture:
    """The sink behind the ``record_bench`` fixture.

    Use as a context manager around one benchmark test.  Calling the
    instance mirrors the legacy ``record`` fixture exactly (``.txt``
    artifact + stdout echo, byte-identical), :meth:`json` mirrors
    ``record_json``, and :meth:`values` attaches scalar reproduced
    numbers to the structured record.  When ``record_dir`` is set the
    test body runs under a live :class:`~repro.obs.Recorder` (so its
    counters are captured) and one JSON fragment line is appended to
    ``<record_dir>/records.jsonl`` on exit.
    """

    def __init__(
        self,
        node_id: str,
        results_dir: str | Path,
        record_dir: str | Path | None = None,
    ) -> None:
        self.node_id = node_id
        self.bench_id = node_id.rsplit("/", 1)[-1]
        self.results_dir = Path(results_dir)
        self.record_dir = Path(record_dir) if record_dir else None
        self.artifacts: list[str] = []
        self._values: dict[str, float] = {}
        self._wall_s: float | None = None
        self._start: float | None = None
        self._recorder: obs.Recorder | None = None
        self._previous: Any = None

    # -- the record/record_json-compatible surface --

    def __call__(
        self, name: str, text: str, values: dict[str, float] | None = None
    ) -> None:
        """Record a reproduced table/figure: ``.txt`` + echo, plus values."""
        self.results_dir.mkdir(exist_ok=True)
        durable.atomic_write(
            self.results_dir / f"{name}.txt", text + "\n", sink="bench"
        )
        print(f"\n{text}\n")
        self.artifacts.append(f"{name}.txt")
        if values:
            self.values(**values)

    def json(self, name: str, payload: Any) -> Path:
        """Persist a JSON artifact under results/ (mirrors ``record_json``)."""
        self.results_dir.mkdir(exist_ok=True)
        target = self.results_dir / f"{name}.json"
        durable.atomic_write(
            target, json.dumps(payload, indent=2) + "\n", sink="bench"
        )
        self.artifacts.append(f"{name}.json")
        return target

    def values(self, **scalars: float) -> None:
        """Attach named scalar reproduced values to the structured record."""
        for key, value in scalars.items():
            self._values[key] = float(value)

    # -- lifecycle --

    def __enter__(self) -> "BenchCapture":
        if self.record_dir is not None:
            self._recorder = obs.Recorder()
            self._previous = obs.set_recorder(self._recorder)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._wall_s = time.perf_counter() - (self._start or 0.0)
        if self._recorder is not None:
            obs.set_recorder(self._previous)
        if self.record_dir is not None:
            self._append_fragment()
        return False

    @property
    def wall_s(self) -> float | None:
        """The timed test-body duration (set on context exit)."""
        return self._wall_s

    def fragment(self) -> dict[str, Any]:
        """The JSON fragment describing this one test execution."""
        payload: dict[str, Any] = {
            "bench": self.bench_id,
            "node": self.node_id,
            "wall_s": self._wall_s,
            "values": dict(sorted(self._values.items())),
            "artifacts": list(self.artifacts),
        }
        if self._recorder is not None:
            payload["counters"] = self._recorder.metrics.counters()
            payload["gauges"] = self._recorder.metrics.gauges()
            payload["histograms"] = self._recorder.metrics.histograms()
        return payload

    def _append_fragment(self) -> None:
        assert self.record_dir is not None
        self.record_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(self.fragment(), sort_keys=True) + "\n"
        durable.durable_append(
            self.record_dir / FRAGMENTS_NAME, line, sink="bench"
        )


def load_fragments(record_dir: str | Path) -> dict[str, dict[str, Any]]:
    """One run's fragments keyed by bench id (last write wins)."""
    path = Path(record_dir) / FRAGMENTS_NAME
    fragments: dict[str, dict[str, Any]] = {}
    try:
        text = path.read_text()
    except OSError:
        return fragments
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            fragments[str(payload["bench"])] = payload
        except (ValueError, TypeError, KeyError):
            continue
    return fragments


# --- record assembly ---------------------------------------------------------------


def assemble_record(
    runs: list[dict[str, dict[str, Any]]],
    config: dict[str, Any],
    fidelity: dict[str, Any],
) -> dict[str, Any]:
    """Fold the fragment maps of N repeat runs into one bench record.

    ``runs`` holds one :func:`load_fragments` map per *kept* repeat (the
    warmup run is discarded before this point).  Values, counters and
    artifacts come from the last repeat; wall-time statistics aggregate
    every repeat that saw the bench.
    """
    if not runs:
        raise ValueError("assemble_record() needs at least one repeat run")
    names = sorted({name for run in runs for name in run})
    benches: dict[str, Any] = {}
    for name in names:
        samples = [
            float(run[name]["wall_s"])
            for run in runs
            if name in run and run[name].get("wall_s") is not None
        ]
        last = next(run[name] for run in reversed(runs) if name in run)
        entry: dict[str, Any] = {
            "node": last.get("node", name),
            "wall_s": {
                "samples": samples,
                "median": median(samples) if samples else None,
                "mad": mad(samples) if samples else None,
                "repeats": len(samples),
            },
            "values": last.get("values", {}),
            "artifacts": last.get("artifacts", []),
        }
        if "counters" in last:
            entry["counters"] = last["counters"]
        if "gauges" in last:
            entry["gauges"] = last["gauges"]
        if "histograms" in last:
            entry["histograms"] = last["histograms"]
        benches[name] = entry
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git_sha(),
        "environment": environment_fingerprint(),
        "config": config,
        "benches": benches,
        "fidelity": fidelity,
    }


def validate_record(payload: Any) -> list[str]:
    """Schema check; returns a list of problems (empty when valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"record must be a JSON object, got {type(payload).__name__}"]
    for key in _REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    benches = payload.get("benches")
    if not isinstance(benches, dict):
        problems.append("'benches' must be an object")
    else:
        for name, entry in benches.items():
            if not isinstance(entry, dict) or "wall_s" not in entry:
                problems.append(f"bench {name!r} missing 'wall_s'")
                continue
            wall = entry["wall_s"]
            if not isinstance(wall, dict) or "median" not in wall or "mad" not in wall:
                problems.append(f"bench {name!r} 'wall_s' needs median and mad")
    fidelity = payload.get("fidelity")
    if not isinstance(fidelity, dict) or "goldens" not in fidelity:
        problems.append("'fidelity' must be an object with a 'goldens' map")
    return problems


def write_record(record: dict[str, Any], path: str | Path) -> Path:
    """Validate and write one bench record as pretty JSON."""
    problems = validate_record(record)
    if problems:
        raise ValueError("invalid bench record: " + "; ".join(problems))
    target = Path(path)
    durable.atomic_write(
        target, json.dumps(record, indent=2, sort_keys=True) + "\n", sink="bench"
    )
    return target


def load_record(path: str | Path) -> dict[str, Any]:
    """Load and validate one bench record."""
    payload = json.loads(Path(path).read_text())
    problems = validate_record(payload)
    if problems:
        raise ValueError(f"invalid bench record {path}: " + "; ".join(problems))
    return payload


# --- the append-only history -------------------------------------------------------


def default_history_path(results_dir: str | Path) -> Path:
    return Path(results_dir) / "history.jsonl"


def append_history(record: dict[str, Any], path: str | Path) -> Path:
    """Append one record as a single JSONL line (one ``O_APPEND`` write).

    Mirrors :meth:`repro.core.checkpoint.SweepCheckpoint.flush`: the
    whole line goes out in one fsync'd ``write`` on an append-mode
    descriptor (:func:`repro.durable.durable_append`), so a killed writer
    can at worst tear the final line -- which :func:`load_history`
    tolerates -- and an append that returned survives ``kill -9``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True) + "\n"
    durable.durable_append(target, line, sink="history")
    obs.count("bench.history_appends")
    return target


def load_history(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Every decodable record in the history, oldest first.

    Returns ``(records, corrupt_lines)``; undecodable lines (a torn tail
    from a killed writer, stray garbage) are counted and skipped, never
    fatal -- the same discipline as the sweep checkpoint loader.
    """
    corrupt = 0
    records: list[dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records, corrupt
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            corrupt += 1
            continue
        if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
            corrupt += 1
            continue
        records.append(payload)
    if corrupt:
        obs.count("bench.history_corrupt_lines", corrupt)
    return records, corrupt


# --- cross-run comparison ----------------------------------------------------------


@dataclass(frozen=True)
class PerfDelta:
    """One bench's wall-time movement between two records."""

    bench: str
    old_median: float | None
    new_median: float | None
    noise_s: float
    status: str  # "ok" | "regression" | "improved" | "added" | "removed"

    @property
    def delta_s(self) -> float | None:
        if self.old_median is None or self.new_median is None:
            return None
        return self.new_median - self.old_median

    @property
    def rel(self) -> float | None:
        if self.old_median in (None, 0) or self.new_median is None:
            return None
        return self.new_median / self.old_median - 1.0


@dataclass(frozen=True)
class FidelityIssue:
    """One golden that drifted (vs the paper, or between the two runs)."""

    golden: str
    reason: str
    expected: float
    old_actual: float | None
    new_actual: float


@dataclass(frozen=True)
class CounterIssue:
    """One gated obs counter that is not byte-identical across the runs."""

    bench: str
    counter: str
    old_value: float | None
    new_value: float | None

    def describe(self) -> str:
        def fmt(value: float | None) -> str:
            return "missing" if value is None else f"{value:g}"

        return (
            f"{self.bench}/{self.counter}: "
            f"{fmt(self.old_value)} -> {fmt(self.new_value)}"
        )


@dataclass
class CompareReport:
    """The outcome of ``repro bench compare <old> <new>``."""

    perf: list[PerfDelta] = field(default_factory=list)
    fidelity: list[FidelityIssue] = field(default_factory=list)
    counters: list[CounterIssue] = field(default_factory=list)
    k: float = DEFAULT_K
    rel_floor: float = DEFAULT_REL_FLOOR

    @property
    def regressions(self) -> list[PerfDelta]:
        return [d for d in self.perf if d.status == "regression"]

    @property
    def perf_ok(self) -> bool:
        return not self.regressions

    @property
    def fidelity_ok(self) -> bool:
        return not self.fidelity

    @property
    def counters_ok(self) -> bool:
        return not self.counters

    def summary(self) -> str:
        """A terminal-friendly rendering of the comparison."""
        lines = [
            f"Bench compare: k={self.k:g} x MAD noise gate, "
            f"relative floor {self.rel_floor:.0%}"
        ]
        for delta in self.perf:
            if delta.status == "added":
                lines.append(f"  [new]     {delta.bench}")
                continue
            if delta.status == "removed":
                lines.append(f"  [gone]    {delta.bench}")
                continue
            tag = {"ok": "ok", "improved": "faster", "regression": "REGRESSION"}[
                delta.status
            ]
            lines.append(
                f"  [{tag:<10s}] {delta.bench}: "
                f"{delta.old_median * 1e3:.1f} -> {delta.new_median * 1e3:.1f} ms "
                f"({delta.rel:+.1%}, noise {delta.noise_s * 1e3:.1f} ms)"
            )
        if self.fidelity:
            lines.append("Fidelity drift:")
            for issue in self.fidelity:
                lines.append(
                    f"  DRIFT {issue.golden}: {issue.reason} "
                    f"(expected {issue.expected:g}, got {issue.new_actual:g})"
                )
        else:
            lines.append("Fidelity: every golden matches the paper exactly.")
        if self.counters:
            lines.append("Counter drift (gated counters must match exactly):")
            for issue in self.counters:
                lines.append(f"  DRIFT {issue.describe()}")
        lines.append(
            f"Perf: {len(self.regressions)} regression(s) across "
            f"{len(self.perf)} bench(es)."
        )
        return "\n".join(lines)


def compare_records(
    old: dict[str, Any],
    new: dict[str, Any],
    k: float = DEFAULT_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
    fidelity_tol: float = 0.0,
    gate_counters: Sequence[str] = (),
) -> CompareReport:
    """Noise-aware comparison of two bench records.

    A bench regresses only when its median wall-time shift clears *all*
    of: ``k x max(old MAD, new MAD)``, ``rel_floor`` of the old median,
    and ``min_delta_s`` absolute.  Fidelity is strict: any golden in
    ``new`` deviating from the paper beyond ``fidelity_tol``, or whose
    recomputed actual changed since ``old``, is an issue.

    Counter gating is stricter still: every counter named in
    ``gate_counters`` must be *exactly* equal between the runs in every
    bench where either run recorded it (missing on one side is drift) --
    the contract that guided-search prune/dedup accounting is a pure
    function of the workload, not of ``--jobs`` or host timing.
    """
    report = CompareReport(k=k, rel_floor=rel_floor)
    old_benches = old.get("benches", {})
    new_benches = new.get("benches", {})
    for name in sorted(set(old_benches) | set(new_benches)):
        old_wall = old_benches.get(name, {}).get("wall_s", {})
        new_wall = new_benches.get(name, {}).get("wall_s", {})
        old_med = old_wall.get("median")
        new_med = new_wall.get("median")
        if old_med is None and new_med is None:
            continue
        if old_med is None:
            report.perf.append(PerfDelta(name, None, new_med, 0.0, "added"))
            continue
        if new_med is None:
            report.perf.append(PerfDelta(name, old_med, None, 0.0, "removed"))
            continue
        noise = k * max(old_wall.get("mad") or 0.0, new_wall.get("mad") or 0.0)
        delta = new_med - old_med
        status = "ok"
        if (
            delta > noise
            and delta > min_delta_s
            and old_med > 0
            and delta / old_med > rel_floor
        ):
            status = "regression"
        elif (
            -delta > noise
            and -delta > min_delta_s
            and old_med > 0
            and -delta / old_med > rel_floor
        ):
            status = "improved"
        report.perf.append(PerfDelta(name, old_med, new_med, noise, status))

    old_goldens = old.get("fidelity", {}).get("goldens", {})
    new_goldens = new.get("fidelity", {}).get("goldens", {})
    for name in sorted(new_goldens):
        entry = new_goldens[name]
        expected = float(entry.get("expected", 0.0))
        actual = float(entry.get("actual", 0.0))
        deviation = float(entry.get("deviation", 0.0))
        old_entry = old_goldens.get(name)
        old_actual = float(old_entry["actual"]) if old_entry else None
        if abs(deviation) > fidelity_tol:
            report.fidelity.append(
                FidelityIssue(
                    golden=name,
                    reason=f"deviates {deviation:+.3e} from the paper value",
                    expected=expected,
                    old_actual=old_actual,
                    new_actual=actual,
                )
            )
        elif old_actual is not None and _rel_diff(old_actual, actual) > fidelity_tol:
            report.fidelity.append(
                FidelityIssue(
                    golden=name,
                    reason=f"recomputed value changed ({old_actual:g} -> {actual:g})",
                    expected=expected,
                    old_actual=old_actual,
                    new_actual=actual,
                )
            )

    if gate_counters:
        for name in sorted(set(old_benches) | set(new_benches)):
            old_bench = old_benches.get(name, {})
            new_bench = new_benches.get(name, {})
            old_counters = old_bench.get("counters", {})
            new_counters = new_bench.get("counters", {})
            for counter in gate_counters:
                if (
                    counter in old_bench.get("histograms", {})
                    or counter in new_bench.get("histograms", {})
                ):
                    # Histograms carry timing distributions -- their sums
                    # vary run to run by construction, so "exactly equal"
                    # gating would always fail.  Refuse loudly instead of
                    # silently reporting the name as missing.
                    raise ValueError(
                        f"--gate-counter {counter!r} names a histogram in "
                        f"bench {name!r}; histograms are not gateable "
                        "(gate a counter, or compare histogram counts "
                        "in the record directly)"
                    )
                old_value = old_counters.get(counter)
                new_value = new_counters.get(counter)
                if old_value is None and new_value is None:
                    continue
                if old_value != new_value:
                    report.counters.append(
                        CounterIssue(name, counter, old_value, new_value)
                    )
    return report


def _rel_diff(a: float, b: float) -> float:
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale else 0.0


__all__ = [
    "BENCH_SCHEMA",
    "BenchCapture",
    "CompareReport",
    "CounterIssue",
    "DEFAULT_K",
    "DEFAULT_MIN_DELTA_S",
    "DEFAULT_REL_FLOOR",
    "FidelityIssue",
    "PerfDelta",
    "RECORD_DIR_ENV",
    "append_history",
    "assemble_record",
    "compare_records",
    "default_history_path",
    "environment_fingerprint",
    "git_sha",
    "load_fragments",
    "load_history",
    "load_record",
    "mad",
    "median",
    "validate_record",
    "write_record",
]
