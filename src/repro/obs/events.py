"""The structured run event log: schema-versioned JSONL telemetry.

Every instrumented sweep can stream its lifecycle -- ``run.start``,
``phase.start``/``phase.finish``, ``point.batch``, ``checkpoint.flush``,
``task.retry``, ``fault.injected``, ``degraded.enter``, ``run.finish`` --
to an append-only JSONL file, one JSON object per line:

``{"v": 1, "run": "<run id>", "seq": 17, "pid": 4242, "t": 1723.4,``
``"event": "point.batch", "done": 32, "total": 126}``

* ``v`` is :data:`EVENT_SCHEMA_VERSION`; loaders reject nothing else, so a
  future bump can change fields without breaking old readers.
* ``run`` is this invocation's :func:`new_run_id` -- it never reaches
  stdout, so the byte-identity contracts survive telemetry being on.
* ``seq`` is a **monotonic per-process** sequence number
  (:func:`next_sequence`); ``(pid, seq)`` uniquely orders events within
  one process even when worker snapshots merge in arbitrary order.
* ``t`` is a wall-clock timestamp (``time.time()``).

Appends go through :func:`repro.durable.durable_append` on the ``events``
sink: a crash tears at most the final line (which :func:`load_events`
tolerates), and a full or failing disk degrades the sink after one warning
-- the sweep's answers are never affected.  The event *set* of a
``--jobs N`` run equals the serial run's (ignoring ``pid``/``seq``/``t``
and the run id): every lifecycle emission point is either parent-side and
scheduling-independent, or merged from worker snapshots like counters.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from pathlib import Path
from typing import Any

from repro import durable

#: On-disk schema version stamped into every event line as ``"v"``.
EVENT_SCHEMA_VERSION = 1

#: Default event-log file name inside a run directory.
EVENTS_FILENAME = "events.jsonl"

#: Fields every schema-v1 event line must carry.
REQUIRED_FIELDS = ("v", "run", "seq", "pid", "t", "event")

# The per-process monotonic sequence counter shared by every recorder.
_sequence = itertools.count()


def new_run_id() -> str:
    """A fresh 12-hex-digit run identifier (never printed to stdout)."""
    return uuid.uuid4().hex[:12]


def next_sequence() -> int:
    """The next per-process monotonic event sequence number."""
    return next(_sequence)


def make_event(name: str, fields: dict[str, Any]) -> dict[str, Any]:
    """One schema-v1 event record (without the run id, stamped at append).

    Args:
        name: Dotted event name (``run.start``, ``checkpoint.flush``...).
        fields: Extra JSON-safe payload fields; must not collide with the
            envelope keys (``v``/``run``/``seq``/``pid``/``t``/``event``).
    """
    record: dict[str, Any] = {
        "v": EVENT_SCHEMA_VERSION,
        "seq": next_sequence(),
        "pid": os.getpid(),
        "t": time.time(),
        "event": name,
    }
    for key, value in fields.items():
        if key in record or key == "run":
            raise ValueError(f"event field {key!r} collides with the envelope")
        record[key] = value
    return record


class EventLog:
    """A durable JSONL sink for one run's lifecycle events.

    Attached to the parent's :class:`repro.obs.Recorder`; every event the
    recorder sees (emitted locally or merged from a worker snapshot) is
    stamped with this log's ``run`` id and appended via
    :func:`repro.durable.durable_append` on the ``events`` sink.  Resource
    failures (ENOSPC/EIO) degrade the sink once --
    ``degraded.events`` counter, one warning -- and the run continues
    with an incomplete log and unchanged answers.

    Attributes:
        path: The JSONL file events append to.
        run_id: This run's identifier, stamped into every line.
    """

    def __init__(self, path: str | Path, run_id: str | None = None) -> None:
        self.path = Path(path)
        self.run_id = run_id or new_run_id()
        self._appending = False

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one event record (one line, run-id stamped).

        Re-entrant appends are dropped (kept in recorder memory only):
        fault injection on the ``events`` sink emits a ``fault.injected``
        event *from inside* this append's ``durable_append``, and letting
        that recurse back into the log would loop forever.
        """
        if not durable.sink_enabled("events") or self._appending:
            return
        stamped = dict(record)
        stamped["run"] = self.run_id
        line = json.dumps(stamped, sort_keys=True) + "\n"
        self._appending = True
        try:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            durable.durable_append(self.path, line, sink="events")
        except OSError as exc:
            if durable.is_resource_error(exc):
                durable.record_sink_failure("events", exc)
                return
            raise
        finally:
            self._appending = False


def resolve_events_path(target: str | Path) -> Path:
    """The event-log file behind ``target`` (a file or a run directory).

    A ``.jsonl`` path names the log file itself; anything else is a run
    directory (existing or not) holding :data:`EVENTS_FILENAME`, so other
    run artifacts can sit next to the log.
    """
    path = Path(target)
    if path.suffix == ".jsonl" and not path.is_dir():
        return path
    return path / EVENTS_FILENAME


def load_events(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Load an event log, tolerating (and counting) undecodable lines.

    Returns ``(events, corrupt_lines)``.  A torn tail -- the one line a
    crash mid-append can leave -- or any other garbage line is skipped and
    counted, never fatal; a missing file is an empty log.  Lines whose
    schema version is not :data:`EVENT_SCHEMA_VERSION` are counted as
    corrupt rather than misread.
    """
    path = resolve_events_path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        return [], 0
    events: list[dict[str, Any]] = []
    corrupt = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            corrupt += 1
            continue
        if (
            not isinstance(record, dict)
            or record.get("v") != EVENT_SCHEMA_VERSION
        ):
            corrupt += 1
            continue
        events.append(record)
    return events, corrupt


def schema_errors(events: list[dict[str, Any]]) -> list[str]:
    """Schema violations in a loaded event list (empty = valid).

    Checks the v1 envelope of every event (required fields, types), that
    all events share one run id, and that the lifecycle brackets are sane:
    at most one ``run.start``/``run.finish``, with ``run.start`` holding
    the lowest parent-process sequence number.
    """
    errors: list[str] = []
    runs = {str(e.get("run")) for e in events}
    if len(runs) > 1:
        errors.append(f"multiple run ids in one log: {sorted(runs)}")
    for index, event in enumerate(events):
        for field in REQUIRED_FIELDS:
            if field not in event:
                errors.append(f"event {index}: missing field {field!r}")
        if not isinstance(event.get("event"), str) or not event.get("event"):
            errors.append(f"event {index}: 'event' must be a non-empty string")
        if not isinstance(event.get("seq"), int):
            errors.append(f"event {index}: 'seq' must be an integer")
        if not isinstance(event.get("pid"), int):
            errors.append(f"event {index}: 'pid' must be an integer")
        if not isinstance(event.get("t"), (int, float)):
            errors.append(f"event {index}: 't' must be a number")
    starts = [e for e in events if e.get("event") == "run.start"]
    finishes = [e for e in events if e.get("event") == "run.finish"]
    if len(starts) > 1:
        errors.append(f"{len(starts)} run.start events (expected at most 1)")
    if len(finishes) > 1:
        errors.append(f"{len(finishes)} run.finish events (expected at most 1)")
    if starts:
        start = starts[0]
        parent = [
            e
            for e in events
            if e.get("pid") == start.get("pid")
            and isinstance(e.get("seq"), int)
        ]
        if any(e["seq"] < start["seq"] for e in parent):
            errors.append("run.start is not the first parent-process event")
    return errors


def canonical_event(event: dict[str, Any]) -> tuple:
    """A hashable jobs-invariant projection of one event.

    Drops the envelope fields that legitimately differ between runs and
    worker counts (``run``, ``seq``, ``pid``, ``t``) and keeps everything
    else, sorted -- the shape the ``--jobs N``-equals-serial set
    comparison uses.
    """
    return tuple(
        sorted(
            (key, value)
            for key, value in event.items()
            if key not in ("run", "seq", "pid", "t")
        )
    )


__all__ = [
    "EVENTS_FILENAME",
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "REQUIRED_FIELDS",
    "canonical_event",
    "load_events",
    "make_event",
    "new_run_id",
    "next_sequence",
    "resolve_events_path",
    "schema_errors",
]
