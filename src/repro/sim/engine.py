"""Tile-pipeline model: double-buffered load / compute / writeback per chiplet.

Each chiplet executes its package-temporal iterations (chiplet workloads) as
a three-stage pipeline:

* **load** -- DMA the iteration's input and weight fill from the chiplet's
  DRAM channel (the crossbar gives every chiplet its own channel); when the
  mapping rotates shared data, the sharing phase starts after *all* chiplets
  have loaded their 1/N_P slice (the rotating transfer is a synchronized
  round, Figure 3) and the forwarded traffic is spread over the package
  topology's physical links (ring links, mesh edges, or crossbar ports --
  see :mod:`repro.arch.topology`), each a discrete FIFO-scheduled
  bandwidth resource, so per-link contention is modeled for every fabric.
* **compute** -- the analytical core-block cycles of the workload; double
  buffering lets load ``i`` overlap compute ``i-1`` but not run further
  ahead (two buffers).
* **writeback** -- the O-L2 drain to DRAM, sharing the chiplet's channel
  with subsequent loads (FIFO contention).

For P-type package partitions the inter-chiplet halo creates *DRAM access
conflicts* (Figure 8): halo elements live in one chiplet's DRAM but are
needed by the adjacent chiplet too, so the conflicted fraction of every
input load is additionally served by a neighbouring channel on top of its
own traffic.  A square 2x2 split four-way-shares its central halo; a
rectangle caps the conflict degree at two -- the simulator makes the
paper's data-layout argument measurable as runtime.

The pipeline is driven by the :class:`~repro.sim.events.Simulator` event
loop, with per-resource FIFO queueing from
:class:`~repro.sim.resources.BandwidthResource`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.loopnest import LoopNest
from repro.core.partition import conflict_elements, unique_input_elements
from repro.core.primitives import PartitionDim, RotationKind
from repro.core.traffic import compute_traffic
from repro.sim.events import Simulator
from repro.sim.resources import BandwidthResource
from repro.sim.trace import Phase, Trace


@dataclass
class _ChipletState:
    """Pipeline bookkeeping for one chiplet."""

    index: int
    load_done: list[float] = field(default_factory=list)
    compute_done: list[float] = field(default_factory=list)
    loads_issued: int = 0
    computes_issued: int = 0


@dataclass
class TilePipelineModel:
    """One layer's execution pipeline on one mapping.

    Attributes:
        nest: The (layer, hardware, mapping) loop nest.
        trace: Optional execution trace; when given, every completed phase
            is recorded for inspection and invariant checking.
    """

    nest: LoopNest
    trace: Trace | None = None

    def __post_init__(self) -> None:
        hw = self.nest.hw
        tech = hw.tech
        self.n_chiplets = self.nest.active_chiplets
        self.iterations = self.nest.chiplet_workloads()
        self.compute_cycles = (
            self.nest.c1 * self.nest.w1 * self.nest.h1 * self.nest.block_cycles()
        )

        traffic, _ = compute_traffic(self.nest)
        iters = max(self.iterations, 1)
        rotation = self.nest.mapping.rotation
        # Per-chiplet, per-iteration DRAM load (input slice + weight slice).
        input_total = traffic.dram_input_bits
        weight_total = traffic.dram_weight_bits
        self.dram_load_bits = (input_total + weight_total) / self.n_chiplets / iters
        # Rotation traffic per link per iteration, balanced over the
        # topology's physical links (N_P directional ring links, the mesh's
        # edge count, or the crossbar's N_P ports).
        n_links = max(hw.topology.link_count(self.n_chiplets), 1)
        if rotation is RotationKind.NONE:
            self.ring_bits = 0.0
        else:
            self.ring_bits = traffic.d2d_bit_hops / n_links / iters
        self.writeback_bits = traffic.dram_output_bits / self.n_chiplets / iters

        # Figure 8: a planar package split makes the inter-chiplet halo a
        # multi-consumer region.  The conflicted fraction of each input load
        # is served by a neighbouring channel on top of that channel's own
        # traffic: degree-1 extra requests of the halo share per load.
        self.conflict_bits = 0.0
        self.conflict_degree = 1
        mapping = self.nest.mapping
        if (
            mapping.package_spatial.dim is not PartitionDim.CHANNEL
            and self.n_chiplets > 1
        ):
            from repro.core.partition import max_conflict_degree

            grid = mapping.package_spatial.grid
            layer = self.nest.layer
            unique = unique_input_elements(layer)
            if unique > 0:
                halo_fraction = conflict_elements(layer, grid) / unique
                self.conflict_degree = max_conflict_degree(layer, grid)
                input_share = traffic.dram_input_bits / self.n_chiplets / iters
                self.conflict_bits = (
                    input_share * min(halo_fraction, 1.0) * (self.conflict_degree - 1)
                )

        self.dram_channels = [
            BandwidthResource(f"dram{i}", tech.dram_bandwidth_bits_per_cycle)
            for i in range(self.n_chiplets)
        ]
        self.ring_links = [
            BandwidthResource(
                f"{hw.topology.value}-link{i}",
                tech.ring_bandwidth_bits_per_cycle,
            )
            for i in range(min(n_links, self.n_chiplets) if self.n_chiplets > 1 else 1)
        ]

    def run(self) -> float:
        """Simulate the pipeline; return the completion time in cycles."""
        with obs.span(
            "sim.run",
            layer=self.nest.layer.name,
            chiplets=self.n_chiplets,
            iterations=self.iterations,
        ):
            cycles, events, peak_depth = self._run()
        obs.count("sim.runs")
        obs.count("sim.events", events)
        obs.histogram("sim.queue_depth", peak_depth)
        obs.count(
            "sim.dram.bits_served",
            sum(ch.bits_served for ch in self.dram_channels),
        )
        obs.count(
            "sim.dram.busy_cycles",
            sum(ch.busy_cycles for ch in self.dram_channels),
        )
        obs.count(
            "sim.ring.bits_served",
            sum(link.bits_served for link in self.ring_links),
        )
        obs.count(
            "sim.ring.busy_cycles",
            sum(link.busy_cycles for link in self.ring_links),
        )
        return cycles

    def _run(self) -> tuple[float, int, int]:
        sim = Simulator()
        states = [_ChipletState(i) for i in range(self.n_chiplets)]
        needs_ring = self.ring_bits > 0 and self.n_chiplets > 1
        # Rotation barrier bookkeeping: iteration -> chiplets that finished
        # their DRAM slice, plus the latest slice-completion time.
        arrived: dict[int, int] = {}
        barrier_time: dict[int, float] = {}
        finished = 0
        end_time = 0.0

        def try_start_load(state: _ChipletState) -> None:
            # Issue the next load as soon as its true dependencies are met:
            # load i needs load i-1 complete (single DMA engine) and compute
            # i-2 complete (double buffering -- load i reuses buffer i-2).
            # Issuing from here, rather than from the end of compute i-1,
            # is what lets load i actually overlap compute i-1.
            iteration = state.loads_issued
            if iteration >= self.iterations:
                return
            if iteration >= 1 and len(state.load_done) < iteration:
                return
            if iteration >= 2 and len(state.compute_done) < iteration - 1:
                return
            state.loads_issued += 1
            start_load(state, iteration)

        def start_load(state: _ChipletState, iteration: int) -> None:
            def action(sim: Simulator) -> None:
                begin, done = self.dram_channels[state.index].request_span(
                    sim.now, self.dram_load_bits
                )
                if self.conflict_bits > 0:
                    # Halo shared with neighbouring chiplets is served by
                    # their channels too (Figure 8's DRAM access conflict).
                    # A degree-d conflict region has d - 1 extra consumers,
                    # each hitting a *different* neighbouring channel: a 2x2
                    # square split spreads its central halo over three
                    # neighbours, not one over-serialized channel.
                    extra = self.conflict_degree - 1
                    share = self.conflict_bits / extra
                    for offset in range(1, extra + 1):
                        neighbour = (state.index + offset) % self.n_chiplets
                        done = max(
                            done,
                            self.dram_channels[neighbour].request(
                                sim.now, share
                            ),
                        )
                if self.trace is not None:
                    self.trace.add(
                        state.index, iteration, Phase.DRAM_LOAD, begin, done
                    )
                if needs_ring:
                    sim.at(done, lambda s: dram_slice_done(state, iteration))
                else:
                    sim.at(done, lambda s: load_done(state, iteration, s.now))

            # Load i waits for load i-1 (single DMA) and compute i-2 (double
            # buffer reuse).
            ready = 0.0
            if iteration >= 1:
                ready = max(ready, state.load_done[iteration - 1])
            if iteration >= 2:
                ready = max(ready, state.compute_done[iteration - 2])
            sim.at(ready, action)

        def dram_slice_done(state: _ChipletState, iteration: int) -> None:
            arrived[iteration] = arrived.get(iteration, 0) + 1
            barrier_time[iteration] = max(
                barrier_time.get(iteration, 0.0), sim.now
            )
            if arrived[iteration] == self.n_chiplets:
                release = barrier_time[iteration]
                for peer in states:
                    # A fabric can have fewer links than chiplets (a 1xN
                    # mesh strip); peers then contend for the same link.
                    link = self.ring_links[peer.index % len(self.ring_links)]
                    ring_start, ring_done = link.request_span(
                        release, self.ring_bits
                    )
                    if self.trace is not None:
                        self.trace.add(
                            peer.index,
                            iteration,
                            Phase.RING_ROTATE,
                            ring_start,
                            ring_done,
                        )
                    sim.at(
                        ring_done,
                        lambda s, p=peer, i=iteration: load_done(p, i, s.now),
                    )

        def load_done(state: _ChipletState, iteration: int, time: float) -> None:
            state.load_done.append(time)
            assert len(state.load_done) == iteration + 1
            try_start_load(state)
            try_start_compute(state)

        def try_start_compute(state: _ChipletState) -> None:
            # Compute i needs load i complete and compute i-1 complete.
            iteration = state.computes_issued
            if iteration >= len(state.load_done):
                return
            if iteration >= 1 and len(state.compute_done) < iteration:
                return
            state.computes_issued += 1
            start = state.load_done[iteration]
            if iteration >= 1:
                start = max(start, state.compute_done[iteration - 1])
            if self.trace is not None:
                self.trace.add(
                    state.index,
                    iteration,
                    Phase.COMPUTE,
                    start,
                    start + self.compute_cycles,
                )
            sim.at(start, lambda s: compute_done(state, iteration, s.now + self.compute_cycles))

        def compute_done(state: _ChipletState, iteration: int, finish: float) -> None:
            sim.at(finish, lambda s: after_compute(state, iteration))

        def after_compute(state: _ChipletState, iteration: int) -> None:
            nonlocal finished, end_time
            state.compute_done.append(sim.now)
            # Writeback shares the DRAM channel with later loads.
            wb_start, wb_done = self.dram_channels[state.index].request_span(
                sim.now, self.writeback_bits
            )
            if self.trace is not None:
                self.trace.add(
                    state.index, iteration, Phase.WRITEBACK, wb_start, wb_done
                )
            end_time = max(end_time, wb_done)
            try_start_load(state)
            try_start_compute(state)
            if iteration + 1 >= self.iterations:
                finished += 1

        for state in states:
            try_start_load(state)
        sim.run()
        return max(end_time, sim.now), sim.events_processed, sim.peak_queue_depth
