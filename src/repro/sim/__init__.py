"""Runtime simulator substrate.

The paper: "We establish a simulator to obtain the runtime for a specific
workload" (Section V-C).  The analytical model in :mod:`repro.core.loopnest`
counts pure compute cycles; this package adds what that misses -- DRAM and
ring bandwidth ceilings and the double-buffered load/compute overlap -- with
a small discrete-event simulation:

* :mod:`repro.sim.events` -- the event queue / simulator kernel.
* :mod:`repro.sim.resources` -- bandwidth-served resources (DRAM channels,
  ring links, the chiplet central bus).
* :mod:`repro.sim.engine` -- the tile-pipeline model built on both.
* :mod:`repro.sim.runtime` -- the user-facing ``simulate_runtime`` entry.
"""

from repro.sim.engine import TilePipelineModel
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.resources import BandwidthResource
from repro.sim.runtime import SimResult, simulate_runtime
from repro.sim.trace import Phase, Trace, TraceRecord

__all__ = [
    "BandwidthResource",
    "Event",
    "EventQueue",
    "Phase",
    "SimResult",
    "Simulator",
    "TilePipelineModel",
    "Trace",
    "TraceRecord",
    "simulate_runtime",
]
