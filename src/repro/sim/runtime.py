"""User-facing runtime simulation entry point."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.sim.engine import TilePipelineModel
from repro.sim.trace import Trace
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class SimResult:
    """Simulated runtime of one layer.

    Attributes:
        cycles: Simulated completion time (load/compute/writeback pipeline).
        compute_cycles: The analytical pure-compute lower bound.
        stall_cycles: Simulated time beyond the compute bound.
        dram_utilization: Busiest DRAM channel's busy fraction.
        ring_utilization: Busiest ring link's busy fraction.
        trace: Execution trace (populated when requested).
    """

    cycles: float
    compute_cycles: float
    dram_utilization: float = 0.0
    ring_utilization: float = 0.0
    trace: Trace | None = None

    @property
    def stall_cycles(self) -> float:
        """Cycles lost to DRAM / ring bandwidth and pipeline fill."""
        return max(self.cycles - self.compute_cycles, 0.0)

    @property
    def memory_bound(self) -> bool:
        """Whether stalls dominate (more stall than compute)."""
        return self.stall_cycles > self.compute_cycles

    def runtime_s(self, hw: HardwareConfig) -> float:
        """Wall-clock runtime in seconds at the technology clock."""
        return self.cycles * hw.tech.cycle_time_ns() * 1e-9


def simulate_runtime(
    layer: ConvLayer,
    hw: HardwareConfig,
    mapping: Mapping,
    collect_trace: bool = False,
) -> SimResult:
    """Simulate one layer's runtime under one mapping.

    The result is always at least the analytical compute time; the difference
    is bandwidth stall plus pipeline fill/drain.

    Args:
        layer: The workload.
        hw: The hardware instance.
        mapping: A legal mapping for (layer, hw).
        collect_trace: Record every pipeline phase into ``SimResult.trace``.
    """
    nest = LoopNest(layer=layer, hw=hw, mapping=mapping)
    errors = nest.validity_errors()
    if errors:
        raise ValueError("; ".join(errors))
    trace = Trace() if collect_trace else None
    model = TilePipelineModel(nest, trace=trace)
    cycles = model.run()
    dram_util = max(
        (c.utilization(cycles) for c in model.dram_channels), default=0.0
    )
    ring_util = max(
        (l.utilization(cycles) for l in model.ring_links), default=0.0
    )
    return SimResult(
        cycles=cycles,
        compute_cycles=float(nest.total_cycles()),
        dram_utilization=dram_util,
        ring_utilization=ring_util,
        trace=trace,
    )
