"""Bandwidth-served resources: DRAM channels, ring links, central buses.

A :class:`BandwidthResource` is a FIFO server: a transfer of ``bits`` takes
``bits / bandwidth`` cycles of exclusive service, queued behind earlier
requests.  That is exactly the contention model the runtime simulator needs
-- the crossbar gives each chiplet its own DRAM channel, but rotation
traffic, weight fetches and activation fetches of one chiplet still share
that channel, and ring hops share each directional link.

Every server keeps conservation accounting (bits requested vs. bits served
and the per-request service spans) so the audit layer can prove, after a
run, that no bit was dropped or double-served and that no two service spans
overlap.  ``utilization`` treats a busy fraction above 1.0 as a hard error
-- a server cannot be busy longer than the elapsed time, so exceeding it
means the caller's clock or the server's bookkeeping is corrupted, and
silently clamping it used to hide exactly that class of bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataError

#: Absolute tolerance for floating-point comparisons of cycle counts.
TIME_EPS = 1e-6


class ResourceInvariantError(DataError, RuntimeError):
    """A bandwidth server violated one of its accounting invariants.

    Still a ``RuntimeError`` (the historical contract) and now a
    :class:`repro.errors.DataError` (code ``data``, exit 4): the
    simulation produced internally inconsistent numbers, so its output
    cannot be trusted as data.
    """


@dataclass(frozen=True)
class ServiceSpan:
    """One granted transfer: ``bits`` served over ``[start, end)``."""

    arrival: float
    start: float
    end: float
    bits: float

    @property
    def duration(self) -> float:
        """Service time of this transfer."""
        return self.end - self.start


@dataclass
class BandwidthResource:
    """A FIFO bandwidth server.

    Attributes:
        name: For reports ("dram0", "ring0->1", ...).
        bits_per_cycle: Service bandwidth.
        busy_until: Time the server frees up.
        busy_cycles: Total service time granted (utilization accounting).
        bits_requested: Total bits callers asked to transfer.
        bits_served: Total bits granted service (conservation accounting).
        spans: Every granted transfer, in grant order.
    """

    name: str
    bits_per_cycle: float
    busy_until: float = 0.0
    busy_cycles: float = 0.0
    bits_requested: float = 0.0
    bits_served: float = 0.0
    spans: list[ServiceSpan] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bits_per_cycle <= 0:
            raise ValueError(
                f"{self.name}: bandwidth must be positive, got {self.bits_per_cycle}"
            )

    def service_time(self, bits: float) -> float:
        """Cycles of exclusive service a transfer of ``bits`` needs."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return bits / self.bits_per_cycle

    def request(self, arrival: float, bits: float) -> float:
        """Queue a transfer arriving at ``arrival``; return completion time."""
        return self.request_span(arrival, bits)[1]

    def request_span(self, arrival: float, bits: float) -> tuple[float, float]:
        """Queue a transfer; return its ``(service_start, completion)`` span."""
        self.bits_requested += bits
        start = max(arrival, self.busy_until)
        duration = self.service_time(bits)
        self.busy_until = start + duration
        self.busy_cycles += duration
        self.bits_served += bits
        self.spans.append(
            ServiceSpan(arrival=arrival, start=start, end=self.busy_until, bits=bits)
        )
        return start, self.busy_until

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the server spent busy.

        Raises:
            ResourceInvariantError: When the busy time exceeds ``elapsed`` --
                a server cannot be busier than wall-clock, so this always
                indicates corrupted bookkeeping and is never clamped away.
        """
        if elapsed <= 0:
            return 0.0
        utilization = self.busy_cycles / elapsed
        if utilization > 1.0 + TIME_EPS:
            raise ResourceInvariantError(
                f"{self.name}: busy {self.busy_cycles:.3f} cycles over an "
                f"elapsed window of {elapsed:.3f} (utilization "
                f"{utilization:.4f} > 1); server bookkeeping corrupted"
            )
        return min(utilization, 1.0)

    def invariant_violations(self) -> list[str]:
        """Check this server's accounting invariants; return violations.

        * **bits conservation** -- every requested bit was served exactly
          once (``bits_served == bits_requested == sum of span bits``);
        * **non-overlap** -- service spans are disjoint and FIFO-ordered;
        * **causality** -- no span starts before its request arrived, and
          busy time equals the sum of span durations.
        """
        errors: list[str] = []
        bits_tol = max(TIME_EPS, 1e-9 * max(self.bits_requested, 1.0))
        if abs(self.bits_served - self.bits_requested) > bits_tol:
            errors.append(
                f"{self.name}: served {self.bits_served:.3f} bits of "
                f"{self.bits_requested:.3f} requested (conservation broken)"
            )
        span_bits = sum(span.bits for span in self.spans)
        if abs(span_bits - self.bits_served) > bits_tol:
            errors.append(
                f"{self.name}: span log accounts for {span_bits:.3f} bits, "
                f"server says {self.bits_served:.3f} served"
            )
        span_busy = sum(span.duration for span in self.spans)
        if abs(span_busy - self.busy_cycles) > TIME_EPS * max(len(self.spans), 1):
            errors.append(
                f"{self.name}: span durations sum to {span_busy:.3f} cycles, "
                f"busy counter says {self.busy_cycles:.3f}"
            )
        for i, span in enumerate(self.spans):
            if span.start < span.arrival - TIME_EPS:
                errors.append(
                    f"{self.name}: span {i} served at {span.start:.3f} before "
                    f"its request arrived at {span.arrival:.3f}"
                )
            expected = span.start + self.service_time(span.bits)
            if abs(span.end - expected) > TIME_EPS:
                errors.append(
                    f"{self.name}: span {i} of {span.bits:.1f} bits runs "
                    f"[{span.start:.3f}, {span.end:.3f}), expected end "
                    f"{expected:.3f} at {self.bits_per_cycle:g} bits/cycle"
                )
        for i, (earlier, later) in enumerate(zip(self.spans, self.spans[1:])):
            if later.start < earlier.end - TIME_EPS:
                errors.append(
                    f"{self.name}: span {i + 1} starts at {later.start:.3f} "
                    f"before span {i} ends at {earlier.end:.3f} (overlapping "
                    "service on an exclusive server)"
                )
        return errors
