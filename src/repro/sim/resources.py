"""Bandwidth-served resources: DRAM channels, ring links, central buses.

A :class:`BandwidthResource` is a FIFO server: a transfer of ``bits`` takes
``bits / bandwidth`` cycles of exclusive service, queued behind earlier
requests.  That is exactly the contention model the runtime simulator needs
-- the crossbar gives each chiplet its own DRAM channel, but rotation
traffic, weight fetches and activation fetches of one chiplet still share
that channel, and ring hops share each directional link.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BandwidthResource:
    """A FIFO bandwidth server.

    Attributes:
        name: For reports ("dram0", "ring0->1", ...).
        bits_per_cycle: Service bandwidth.
        busy_until: Time the server frees up.
        busy_cycles: Total service time granted (utilization accounting).
    """

    name: str
    bits_per_cycle: float
    busy_until: float = 0.0
    busy_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.bits_per_cycle <= 0:
            raise ValueError(
                f"{self.name}: bandwidth must be positive, got {self.bits_per_cycle}"
            )

    def service_time(self, bits: float) -> float:
        """Cycles of exclusive service a transfer of ``bits`` needs."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return bits / self.bits_per_cycle

    def request(self, arrival: float, bits: float) -> float:
        """Queue a transfer arriving at ``arrival``; return completion time."""
        return self.request_span(arrival, bits)[1]

    def request_span(self, arrival: float, bits: float) -> tuple[float, float]:
        """Queue a transfer; return its ``(service_start, completion)`` span."""
        start = max(arrival, self.busy_until)
        duration = self.service_time(bits)
        self.busy_until = start + duration
        self.busy_cycles += duration
        return start, self.busy_until

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_cycles / elapsed, 1.0)
