"""Discrete-event simulation kernel.

A deliberately small but complete DES core: a priority queue of timestamped
events with deterministic FIFO tie-breaking, and a simulator loop that runs
until the queue drains (or a horizon).  The tile-pipeline model and the tests
drive it; nothing here knows about accelerators.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: An event action receives the simulator so it can schedule follow-ups.
Action = Callable[["Simulator"], None]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Ordering is (time, sequence number) so simultaneous events run in
    scheduling order -- determinism matters for reproducible runtimes.
    """

    time: float
    seq: int
    action: Action = field(compare=False)


class EventQueue:
    """A deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Action) -> Event:
        """Schedule ``action`` at ``time``."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            IndexError: When the queue is empty.
        """
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """The event loop.

    Attributes:
        now: Current simulation time (cycles; fractional cycles allowed for
            bandwidth arithmetic).
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0
        self.peak_queue_depth = 0

    def at(self, time: float, action: Action) -> Event:
        """Schedule ``action`` at absolute ``time`` (not before ``now``)."""
        return self.queue.push(max(time, self.now), action)

    def after(self, delay: float, action: Action) -> Event:
        """Schedule ``action`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.queue.push(self.now + delay, action)

    def run(self, horizon: float | None = None) -> float:
        """Process events until the queue drains (or ``horizon`` passes).

        Returns:
            The final simulation time.
        """
        while self.queue:
            depth = len(self.queue)
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
            event = self.queue.pop()
            if horizon is not None and event.time > horizon:
                self.now = horizon
                break
            if event.time < self.now:
                raise RuntimeError(
                    f"event at t={event.time} scheduled in the past "
                    f"(now={self.now}); simulator state corrupted"
                )
            self.now = event.time
            self.events_processed += 1
            event.action(self)
        return self.now
