"""Execution trace recording for the tile-pipeline simulator.

A trace is a list of phase records -- (chiplet, iteration, phase, start,
end) -- that tests and debugging tools can assert against: phases within a
chiplet must nest correctly (load i before compute i, compute i-1 before
compute i), and rotation rounds must be synchronized across chiplets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

#: Absolute tolerance for floating-point cycle comparisons.
_EPS = 1e-6


class Phase(Enum):
    """Pipeline stages of one chiplet-workload iteration."""

    DRAM_LOAD = "dram_load"
    RING_ROTATE = "ring_rotate"
    COMPUTE = "compute"
    WRITEBACK = "writeback"


@dataclass(frozen=True)
class TraceRecord:
    """One completed pipeline phase."""

    chiplet: int
    iteration: int
    phase: Phase
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"trace record ends before it starts ({self.start} > {self.end})"
            )

    @property
    def duration(self) -> float:
        """Phase duration in cycles."""
        return self.end - self.start


@dataclass
class Trace:
    """An append-only execution trace."""

    records: list[TraceRecord] = field(default_factory=list)

    def add(
        self, chiplet: int, iteration: int, phase: Phase, start: float, end: float
    ) -> None:
        """Append one phase record."""
        self.records.append(TraceRecord(chiplet, iteration, phase, start, end))

    def for_chiplet(self, chiplet: int) -> list[TraceRecord]:
        """Records of one chiplet, in completion order."""
        return [r for r in self.records if r.chiplet == chiplet]

    def for_phase(self, phase: Phase) -> list[TraceRecord]:
        """Records of one phase type."""
        return [r for r in self.records if r.phase == phase]

    def busy_cycles(self, phase: Phase) -> float:
        """Total cycles spent in ``phase`` across all chiplets."""
        return sum(r.duration for r in self.for_phase(phase))

    def makespan(self) -> float:
        """End of the last record (0.0 for an empty trace)."""
        return max((r.end for r in self.records), default=0.0)

    def validate_ordering(self) -> list[str]:
        """Check pipeline-ordering invariants; return violations (if any).

        Within a chiplet: compute ``i`` must not start before its load ends,
        and computes must be serialized in iteration order.
        """
        errors: list[str] = []
        for chiplet in sorted({r.chiplet for r in self.records}):
            records = self.for_chiplet(chiplet)
            loads = {
                r.iteration: r
                for r in records
                if r.phase in (Phase.DRAM_LOAD, Phase.RING_ROTATE)
            }
            computes = sorted(
                (r for r in records if r.phase is Phase.COMPUTE),
                key=lambda r: r.iteration,
            )
            for compute in computes:
                load = loads.get(compute.iteration)
                if load is not None and compute.start < load.end - _EPS:
                    errors.append(
                        f"chiplet {chiplet} iteration {compute.iteration}: "
                        f"compute starts at {compute.start} before load ends "
                        f"at {load.end}"
                    )
            for earlier, later in zip(computes, computes[1:]):
                if later.start < earlier.end - _EPS:
                    errors.append(
                        f"chiplet {chiplet}: compute {later.iteration} overlaps "
                        f"compute {earlier.iteration}"
                    )
        return errors

    def validate(self) -> list[str]:
        """Check the full causality contract; return every violation.

        Beyond :meth:`validate_ordering`, this enforces the dependence edges
        the tile pipeline promises:

        * **writeback causality** -- writeback ``i`` starts no earlier than
          compute ``i`` ends on the same chiplet;
        * **load causality** -- the load phase of iteration ``i`` (DRAM, plus
          the ring round when the mapping rotates) ends before compute ``i``
          starts, loads are serialized per chiplet, and the double buffer
          never runs more than one load ahead of compute (load ``i`` waits
          for compute ``i - 2``);
        * **rotation synchronization** -- a ring round for iteration ``i``
          starts only after *every* chiplet's DRAM slice of that iteration
          has arrived (the rotating transfer is a synchronized round).
        """
        errors = self.validate_ordering()
        by_phase: dict[Phase, dict[tuple[int, int], TraceRecord]] = {
            phase: {} for phase in Phase
        }
        for record in self.records:
            by_phase[record.phase][(record.chiplet, record.iteration)] = record

        for key, writeback in by_phase[Phase.WRITEBACK].items():
            compute = by_phase[Phase.COMPUTE].get(key)
            if compute is not None and writeback.start < compute.end - _EPS:
                errors.append(
                    f"chiplet {key[0]} iteration {key[1]}: writeback starts "
                    f"at {writeback.start} before compute ends at {compute.end}"
                )

        for chiplet in sorted({r.chiplet for r in self.records}):
            loads = sorted(
                (r for r in self.for_chiplet(chiplet) if r.phase is Phase.DRAM_LOAD),
                key=lambda r: r.iteration,
            )
            for earlier, later in zip(loads, loads[1:]):
                if later.start < earlier.start - _EPS:
                    errors.append(
                        f"chiplet {chiplet}: load {later.iteration} starts at "
                        f"{later.start} before load {earlier.iteration} at "
                        f"{earlier.start} (loads must be serialized)"
                    )
            for load in loads:
                prior = by_phase[Phase.COMPUTE].get((chiplet, load.iteration - 2))
                if prior is not None and load.start < prior.end - _EPS:
                    errors.append(
                        f"chiplet {chiplet}: load {load.iteration} starts at "
                        f"{load.start} before compute {load.iteration - 2} "
                        f"ends at {prior.end} (double buffer overrun)"
                    )

        ring_records = self.for_phase(Phase.RING_ROTATE)
        if ring_records:
            slice_done: dict[int, float] = {}
            for record in self.for_phase(Phase.DRAM_LOAD):
                slice_done[record.iteration] = max(
                    slice_done.get(record.iteration, 0.0), record.end
                )
            for record in ring_records:
                barrier = slice_done.get(record.iteration)
                if barrier is not None and record.start < barrier - _EPS:
                    errors.append(
                        f"chiplet {record.chiplet} iteration {record.iteration}: "
                        f"ring round starts at {record.start} before the "
                        f"slowest DRAM slice arrives at {barrier} "
                        "(rotation must be a synchronized round)"
                    )
        return errors
