"""Execution trace recording for the tile-pipeline simulator.

A trace is a list of phase records -- (chiplet, iteration, phase, start,
end) -- that tests and debugging tools can assert against: phases within a
chiplet must nest correctly (load i before compute i, compute i-1 before
compute i), and rotation rounds must be synchronized across chiplets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Phase(Enum):
    """Pipeline stages of one chiplet-workload iteration."""

    DRAM_LOAD = "dram_load"
    RING_ROTATE = "ring_rotate"
    COMPUTE = "compute"
    WRITEBACK = "writeback"


@dataclass(frozen=True)
class TraceRecord:
    """One completed pipeline phase."""

    chiplet: int
    iteration: int
    phase: Phase
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"trace record ends before it starts ({self.start} > {self.end})"
            )

    @property
    def duration(self) -> float:
        """Phase duration in cycles."""
        return self.end - self.start


@dataclass
class Trace:
    """An append-only execution trace."""

    records: list[TraceRecord] = field(default_factory=list)

    def add(
        self, chiplet: int, iteration: int, phase: Phase, start: float, end: float
    ) -> None:
        """Append one phase record."""
        self.records.append(TraceRecord(chiplet, iteration, phase, start, end))

    def for_chiplet(self, chiplet: int) -> list[TraceRecord]:
        """Records of one chiplet, in completion order."""
        return [r for r in self.records if r.chiplet == chiplet]

    def for_phase(self, phase: Phase) -> list[TraceRecord]:
        """Records of one phase type."""
        return [r for r in self.records if r.phase == phase]

    def busy_cycles(self, phase: Phase) -> float:
        """Total cycles spent in ``phase`` across all chiplets."""
        return sum(r.duration for r in self.for_phase(phase))

    def makespan(self) -> float:
        """End of the last record (0.0 for an empty trace)."""
        return max((r.end for r in self.records), default=0.0)

    def validate_ordering(self) -> list[str]:
        """Check pipeline-ordering invariants; return violations (if any).

        Within a chiplet: compute ``i`` must not start before its load ends,
        and computes must be serialized in iteration order.
        """
        errors: list[str] = []
        for chiplet in sorted({r.chiplet for r in self.records}):
            records = self.for_chiplet(chiplet)
            loads = {
                r.iteration: r
                for r in records
                if r.phase in (Phase.DRAM_LOAD, Phase.RING_ROTATE)
            }
            computes = sorted(
                (r for r in records if r.phase is Phase.COMPUTE),
                key=lambda r: r.iteration,
            )
            for compute in computes:
                load = loads.get(compute.iteration)
                if load is not None and compute.start < load.end - 1e-9:
                    errors.append(
                        f"chiplet {chiplet} iteration {compute.iteration}: "
                        f"compute starts at {compute.start} before load ends "
                        f"at {load.end}"
                    )
            for earlier, later in zip(computes, computes[1:]):
                if later.start < earlier.end - 1e-9:
                    errors.append(
                        f"chiplet {chiplet}: compute {later.iteration} overlaps "
                        f"compute {earlier.iteration}"
                    )
        return errors
