"""Simba baseline: the weight-centric dataflow of Shao et al. (MICRO 2019).

The paper's comparison target.  The baseline shares the NN-Baton hardware
resources exactly ("configured with the same memory and computation resources
as Simba") and differs only in dataflow: input channels split along rows and
output channels along columns of the chiplet/core grids, 24-bit partial sums
accumulated systolically across cores and chiplets, and no planar spatial
partition -- the weaknesses Section III-B analyzes.
"""

from repro.simba.config import SimbaGrid, grid_options
from repro.simba.dataflow import SimbaReport, evaluate_simba, evaluate_simba_model

__all__ = [
    "SimbaGrid",
    "SimbaReport",
    "evaluate_simba",
    "evaluate_simba_model",
    "grid_options",
]
