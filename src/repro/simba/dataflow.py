"""Cost model of Simba's weight-centric dataflow (Figure 4c-d).

The baseline's structural differences from NN-Baton's output-centric flow,
each of which this evaluator charges explicitly:

* **Partial-sum movement.**  Outputs are reduced along the input-channel
  axis of the grid: a chain of ``ci_ways - 1`` transfers per output at the
  24-bit partial-sum width.  Hops between chiplet rows pay die-to-die
  energy; hops between core rows pay central-bus (L2-class) energy.
* **Input duplication.**  Chiplet columns need the same input rows.  Simba
  has no rotating transfer, so each column re-reads DRAM.
* **No planar spatial partition.**  The plane is only tiled temporally, so
  every weight sub-block that exceeds W-L1 re-sweeps the whole plane,
  reloading inter-tile halos from DRAM -- the "hidden overhead of reloading
  the halo regions".
* **Weight-stationarity.**  Weights are fetched once (the baseline's
  strength; both flows share it).

The evaluator tries every grid factorization and keeps the cheapest, which
is the generous reading of the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.arch.energy import EnergyModel
from repro.core.cost import EnergyBreakdown
from repro.simba.config import SimbaGrid, grid_options
from repro.workloads.layer import ConvLayer, ceil_div


@dataclass(frozen=True)
class SimbaReport:
    """Evaluation of one layer under the Simba baseline dataflow."""

    layer: ConvLayer
    grid: SimbaGrid
    energy: EnergyBreakdown
    cycles: int
    utilization: float

    @property
    def energy_pj(self) -> float:
        """Total layer energy in pico-joules."""
        return self.energy.total_pj

    def movement_pj(self, hw: HardwareConfig) -> float:
        """Data-movement energy: total minus the dataflow-invariant terms."""
        from repro.core.cost import intrinsic_compute_energy_pj

        return max(
            self.energy_pj - intrinsic_compute_energy_pj(self.layer, hw), 0.0
        )


def _core_tile_pixels(hw: HardwareConfig) -> int:
    """Output pixels per temporal core tile, bounded by the O-L1 psums."""
    psum_bytes = hw.tech.psum_bits / 8.0
    return max(int(hw.memory.o_l1_bytes / (psum_bytes * hw.lanes)), 1)


def _square_tile(layer: ConvLayer, max_pixels: int) -> tuple[int, int]:
    """Largest square-ish output tile within ``max_pixels``."""
    side = 1
    while (side * 2) * (side * 2) <= max_pixels:
        side *= 2
    th = min(side, layer.ho)
    tw = min(max(max_pixels // th, 1), layer.wo)
    return th, tw


def evaluate_grid(layer: ConvLayer, hw: HardwareConfig, grid: SimbaGrid) -> SimbaReport:
    """Evaluate one grid organization of the baseline."""
    tech = hw.tech
    data_bits = tech.data_bits
    psum_bits = tech.psum_bits
    model = EnergyModel(hw)

    # Grouped convolutions reduce over ci/groups channels per output; the
    # grid's CI rows split that reduction dimension.
    ci_share = ceil_div(layer.ci_per_group, grid.ci_ways)
    co_share = ceil_div(layer.co, grid.co_ways)

    # Temporal plane tiling (O-L1 bound), identical policy to NN-Baton cores.
    tile_h, tile_w = _square_tile(layer, _core_tile_pixels(hw))
    tiles_h = ceil_div(layer.ho, tile_h)
    tiles_w = ceil_div(layer.wo, tile_w)
    plane_tiles = tiles_h * tiles_w

    # Weight sub-blocking: a core owns ci_share x co_share x KH x KW weights;
    # every sub-block beyond W-L1 forces another full plane sweep.
    core_weight_bytes = layer.kh * layer.kw * ci_share * co_share * data_bits // 8
    plane_sweeps = max(ceil_div(core_weight_bytes, hw.memory.w_l1_bytes), 1)

    # --- input traffic ---------------------------------------------------------
    # Per plane sweep, each core streams its ci-share of every tile window
    # (inter-tile halo refetched: no planar spatial split to amortize it).
    # The same Cc0 rule as NN-Baton's A-L1 analysis applies: when the input
    # buffer cannot hold one P-channel chunk of the tile window, the kernel
    # sweep refetches it per position.
    tile_window = (
        layer.input_rows_for(tile_h) * layer.input_cols_for(tile_w)
    )
    cc0_bytes = tile_window * min(hw.vector_size, ci_share) * data_bits / 8
    kernel_reload = 1 if hw.memory.a_l1_bytes >= cc0_bytes else layer.kh * layer.kw
    core_in_channels = ceil_div(
        layer.input_channels_for(co_share), grid.ci_ways
    )
    core_input_fill_bits = (
        tile_window
        * plane_tiles
        * core_in_channels
        * plane_sweeps
        * kernel_reload
        * data_bits
    )
    # A-L2 holds a chiplet's ci-share (package_ci row): chiplet fill equals a
    # core-row stream; core columns multicast from it on the central bus.
    chiplet_co_share = ceil_div(layer.co, grid.package_co_ways)
    chiplet_ci_share = ceil_div(
        layer.input_channels_for(chiplet_co_share), grid.package_ci_ways
    )
    chiplet_input_fill_bits = (
        tile_window * plane_tiles * chiplet_ci_share * plane_sweeps * data_bits
    )
    # Chiplet columns duplicate DRAM reads (no rotating transfer).
    dram_input_bits = chiplet_input_fill_bits * grid.package_ci_ways * grid.package_co_ways
    a_l2_write_bits = chiplet_input_fill_bits * hw.n_chiplets
    # One multicast stream per core row feeds all core columns.
    a_l2_read_bits = core_input_fill_bits * grid.core_ci_ways * hw.n_chiplets
    a_l1_write_bits = core_input_fill_bits * hw.n_cores * hw.n_chiplets
    a_l1_read_bits = layer.macs / hw.lanes * data_bits

    # --- weight traffic -----------------------------------------------------------
    # Weight-centric: every core owns distinct weights, fetched once.
    weight_bits = layer.weight_elements * data_bits
    dram_weight_bits = weight_bits
    w_l1_write_bits = weight_bits
    # The array re-reads each weight sub-block once per plane tile it sweeps
    # (the O-L1 psum capacity forces the tiling); sub-blocks themselves are
    # disjoint, so the re-read factor is plane_tiles, not plane_sweeps.
    block_weight_bits = layer.kh * layer.kw * ci_share * min(hw.lanes, co_share) * data_bits
    blocks_per_core = plane_tiles * ceil_div(co_share, hw.lanes)
    w_l1_read_bits = block_weight_bits * blocks_per_core * hw.n_cores * hw.n_chiplets

    # --- partial-sum movement ----------------------------------------------------
    outputs = layer.output_elements
    core_hops = max(grid.core_ci_ways - 1, 0)
    package_hops = max(grid.package_ci_ways - 1, 0)
    # Each output's reduction chain crosses core rows on the bus and chiplet
    # rows on the ring, at the full partial-sum width.
    psum_noc_bits = outputs * core_hops * psum_bits * grid.package_ci_ways
    psum_d2d_bit_hops = outputs * package_hops * psum_bits
    rf_rmw_bits = layer.macs / hw.vector_size * psum_bits
    rf_drain_bits = outputs * psum_bits

    # --- outputs -------------------------------------------------------------------
    output_bits = outputs * data_bits
    o_l2_write_bits = output_bits
    o_l2_read_bits = output_bits
    dram_output_bits = output_bits

    o_l2_bytes = max(tile_h * tile_w * co_share, 1)
    energy = EnergyBreakdown(
        dram_pj=model.dram_energy_pj(
            dram_input_bits + dram_weight_bits + dram_output_bits
        ),
        d2d_pj=model.d2d_energy_pj(psum_d2d_bit_hops),
        a_l2_pj=(a_l2_write_bits + a_l2_read_bits + psum_noc_bits)
        * model.a_l2_pj_per_bit,
        o_l2_pj=(o_l2_write_bits + o_l2_read_bits)
        * model.o_l2_pj_per_bit(o_l2_bytes),
        a_l1_pj=(a_l1_write_bits + a_l1_read_bits) * model.a_l1_pj_per_bit,
        w_l1_pj=(w_l1_write_bits + w_l1_read_bits) * model.w_l1_pj_per_bit,
        rf_pj=(rf_rmw_bits + rf_drain_bits) * model.rf_rmw_pj_per_bit,
        mac_pj=model.mac_energy_pj(layer.macs),
    )

    # --- runtime --------------------------------------------------------------------
    ci_chunks = ceil_div(ci_share, hw.vector_size)
    lane_blocks = ceil_div(co_share, hw.lanes)
    cycles = tile_h * tile_w * plane_tiles * layer.kh * layer.kw * ci_chunks * lane_blocks
    ideal = layer.macs / hw.total_macs
    utilization = min(ideal / cycles, 1.0) if cycles else 0.0

    return SimbaReport(
        layer=layer,
        grid=grid,
        energy=energy,
        cycles=cycles,
        utilization=utilization,
    )


def evaluate_simba(layer: ConvLayer, hw: HardwareConfig) -> SimbaReport:
    """Best-grid baseline evaluation of one layer (generous baseline)."""
    reports = [
        evaluate_grid(layer, hw, grid)
        for grid in grid_options(hw.n_chiplets, hw.n_cores, layer)
    ]
    return min(reports, key=lambda r: r.energy_pj)


def evaluate_simba_model(
    layers: list[ConvLayer], hw: HardwareConfig
) -> tuple[EnergyBreakdown, int, list[SimbaReport]]:
    """Baseline totals for a whole model.

    Returns:
        ``(energy_breakdown, total_cycles, per_layer_reports)``.
    """
    if not layers:
        raise ValueError("layers must be non-empty")
    reports = [evaluate_simba(layer, hw) for layer in layers]
    energy = EnergyBreakdown.fsum(report.energy for report in reports)
    cycles = sum(report.cycles for report in reports)
    return energy, cycles, reports
