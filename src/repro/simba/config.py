"""Simba grid organization: CI along rows, CO along columns.

Simba arranges its chiplets (and each chiplet's PEs) in a 2-D grid, splitting
input channels along one axis and output channels along the other (Figure
4c-d).  For a unit count that is not a perfect square the baseline may pick
any factorization; the evaluator tries all of them and keeps the best, which
is the generous reading of the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class SimbaGrid:
    """One weight-centric spatial organization of the whole package.

    Attributes:
        package_ci_ways: Chiplet rows (input-channel split on the package).
        package_co_ways: Chiplet columns (output-channel split).
        core_ci_ways: Core rows inside a chiplet.
        core_co_ways: Core columns inside a chiplet.
    """

    package_ci_ways: int
    package_co_ways: int
    core_ci_ways: int
    core_co_ways: int

    def __post_init__(self) -> None:
        for name in (
            "package_ci_ways",
            "package_co_ways",
            "core_ci_ways",
            "core_co_ways",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def ci_ways(self) -> int:
        """Total input-channel parallel ways (reduction-chain length)."""
        return self.package_ci_ways * self.core_ci_ways

    @property
    def co_ways(self) -> int:
        """Total output-channel parallel ways."""
        return self.package_co_ways * self.core_co_ways

    def describe(self) -> str:
        """Short label like ``pkg2x2/core4x2``."""
        return (
            f"pkg{self.package_ci_ways}x{self.package_co_ways}/"
            f"core{self.core_ci_ways}x{self.core_co_ways}"
        )


def _factorizations(n: int) -> list[tuple[int, int]]:
    """All (rows, cols) with rows * cols == n."""
    return [(r, n // r) for r in range(1, n + 1) if n % r == 0]


def _balanced(n: int) -> list[tuple[int, int]]:
    """The most square factorizations of ``n`` (both orientations).

    Simba's physical organization is a fixed (near-)square mesh -- 6x6
    chiplets, 4x4 PEs per chiplet -- so the baseline's grid aspect is not a
    free dataflow knob the way NN-Baton's partitions are.
    """
    options = _factorizations(n)
    best = min(max(r, c) / min(r, c) for r, c in options)
    return [(r, c) for r, c in options if max(r, c) / min(r, c) == best]


def grid_options(
    n_chiplets: int,
    n_cores: int,
    layer: ConvLayer | None = None,
    balanced_only: bool = True,
) -> list[SimbaGrid]:
    """Grid organizations for the given unit counts.

    Args:
        n_chiplets: Chiplets on the package.
        n_cores: Cores per chiplet.
        layer: When given, grids whose channel splits exceed the layer's
            channel counts are dropped.
        balanced_only: Restrict to (near-)square meshes, matching Simba's
            fixed physical organization; pass ``False`` to let the baseline
            pick any aspect (an even more generous reading).
    """
    factorize = _balanced if balanced_only else _factorizations
    grids = []
    for p_ci, p_co in factorize(n_chiplets):
        for c_ci, c_co in factorize(n_cores):
            grid = SimbaGrid(p_ci, p_co, c_ci, c_co)
            if layer is not None:
                # CI rows split the per-group reduction dimension, so grouped
                # (e.g. depthwise) layers cap the usable CI ways.
                if grid.ci_ways > layer.ci_per_group or grid.co_ways > layer.co:
                    continue
            grids.append(grid)
    if layer is not None and not grids and balanced_only:
        # Shallow layers (e.g. 3 input channels) cannot feed a square CI
        # split; fall back to the full factorization set.
        return grid_options(n_chiplets, n_cores, layer, balanced_only=False)
    if layer is not None and not grids:
        # Degenerate layers (e.g. 3 input channels) still map somewhere:
        # fall back to pure output-channel splits.
        for p_co in (n_chiplets,):
            for c_co in (n_cores,):
                if layer.co >= p_co * c_co:
                    grids.append(SimbaGrid(1, p_co, 1, c_co))
    if not grids:
        grids.append(SimbaGrid(1, n_chiplets, 1, n_cores))
    return grids
