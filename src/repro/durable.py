"""Crash-safe filesystem primitives and graceful write degradation.

Every persistent sink in the tree (the mapping cache, sweep checkpoints,
the bench history, result writers) funnels its bytes through the two
helpers here:

* :func:`atomic_write` -- write a temp file, ``fsync`` it, rename it over
  the target, then ``fsync`` the parent directory.  A ``kill -9`` at any
  instant leaves either the complete old file or the complete new file,
  never a torn one, and the rename is durable once the call returns.
* :func:`durable_append` -- one ``write`` on an ``O_APPEND`` descriptor
  followed by ``fsync`` (and a parent-directory ``fsync`` when the call
  created the file).  A crash can tear at most the final record, which
  every loader in the tree already tolerates.

Both helpers consult the deterministic fault injector
(:mod:`repro.testing.faults`) before touching the disk, so ``REPRO_FAULTS``
specs like ``enospc:0.5@seed=3`` exercise the failure paths in CI.

**Degraded mode.**  Persistent sinks are *accelerators and insurance*, not
inputs: losing the cache or the checkpoint costs wall clock on the next
run, never correctness of this one.  So when a write fails with a
resource-exhaustion error (``ENOSPC``/``EDQUOT``/``EIO``), callers route
it through :func:`record_sink_failure`: the sink is disabled for the rest
of the process with **one** logged warning, the failure lands in the
``resource.<errno-name>`` and ``degraded.<sink>`` observability counters,
and the sweep keeps going -- completing with results identical to a clean
run.  ``fsync``-hostile environments can drop the syncs (not the
atomicity) with ``REPRO_DURABLE_FSYNC=0``.
"""

from __future__ import annotations

import errno as _errno
import logging
import os
import sys
from pathlib import Path

from repro import obs

logger = logging.getLogger("repro.durable")

#: Environment switch: ``0/false/off/no`` skips fsync (atomicity is kept).
DURABLE_FSYNC_ENV = "REPRO_DURABLE_FSYNC"

#: ``errno`` values classified as resource exhaustion (degrade, don't die).
RESOURCE_ERRNOS = frozenset(
    code
    for code in (
        _errno.ENOSPC,
        _errno.EDQUOT,
        _errno.EIO,
        getattr(_errno, "ENOMEM", None),
    )
    if code is not None
)

# Per-sink monotonic write counters consulted by the I/O fault injector
# (process-local, so injected faults are deterministic per run).
_io_indices: dict[str, int] = {}

# Sinks disabled by a resource failure, mapped to the reason string.
_degraded: dict[str, str] = {}


def fsync_enabled() -> bool:
    """Whether the fsync discipline is active (default: yes)."""
    raw = os.environ.get(DURABLE_FSYNC_ENV, "").strip().lower()
    if not raw:
        return True
    return raw not in ("0", "false", "off", "no")


def is_resource_error(exc: BaseException) -> bool:
    """Whether ``exc`` is an OSError signalling resource exhaustion."""
    return isinstance(exc, OSError) and exc.errno in RESOURCE_ERRNOS


def _errno_name(exc: BaseException) -> str:
    """A stable lowercase name for the errno (``enospc``, ``eio``, ...).

    Exceptions without an errno (sqlite3 errors from the study sink) are
    counted under ``resource.unknown``.
    """
    code = getattr(exc, "errno", None)
    return _errno.errorcode.get(code or 0, "unknown").lower()


def _fault_io(sink: str) -> None:
    """Consult the active fault plan before one write on ``sink``.

    Mirrors :func:`repro.core.parallel._fault_plan`: the harness module is
    only imported when ``REPRO_FAULTS`` is set or a test already installed
    a plan, so production runs never pay the import.
    """
    module = sys.modules.get("repro.testing.faults")
    if module is None:
        if not os.environ.get("REPRO_FAULTS", "").strip():
            return
        from repro.testing import faults as module
    plan = module.active_plan()
    if plan is None:
        return
    index = _io_indices.get(sink, 0)
    _io_indices[sink] = index + 1
    plan.before_io(sink, index)


def _fsync_path(path: Path) -> None:
    """``fsync`` one existing path (file or directory), best-effort-loud.

    Raises the underlying ``OSError`` on resource exhaustion so callers
    can degrade; swallows ``EINVAL`` for filesystems that reject directory
    fsync (some network mounts).
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError as exc:  # pragma: no cover - fs-specific
        if is_resource_error(exc):
            raise
    finally:
        os.close(fd)


def atomic_write(path: str | Path, text: str, sink: str = "file") -> Path:
    """Durably replace ``path`` with ``text`` (write + fsync + rename).

    The write lands in ``<name>.tmp.<pid>`` first, is fsynced, renamed
    over the target, and the parent directory is fsynced -- so a crash at
    any instant leaves either the old complete file or the new complete
    file, and the new file survives power loss once this returns.

    Args:
        path: Target file.
        text: Full new content.
        sink: Logical sink name for fault injection and degradation
            accounting (``"cache"``, ``"checkpoint"``, ``"bench"``...).

    Raises:
        OSError: On any write failure, including injected ``enospc``/
            ``eio`` faults; resource errnos are the caller's cue to
            degrade the sink via :func:`record_sink_failure`.
    """
    path = Path(path)
    _fault_io(sink)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    sync = fsync_enabled()
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:  # don't leave a torn temp file behind a failed write
            tmp.unlink()
        except OSError:
            pass
        raise
    if sync:
        _fsync_path(path.parent)
    return path


def durable_append(path: str | Path, text: str, sink: str = "file") -> Path:
    """Durably append ``text`` to ``path`` in one ``write`` call.

    The payload goes out as a single ``write`` on an ``O_APPEND``
    descriptor and is fsynced before the call returns; when the call
    creates the file, the parent directory is fsynced too.  A crash can
    tear at most the final line.

    Raises:
        OSError: On any write failure (see :func:`atomic_write`).
    """
    path = Path(path)
    _fault_io(sink)
    created = not path.exists()
    sync = fsync_enabled()
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        data = text.encode("utf-8")
        written = os.write(fd, data)
        if written != len(data):  # pragma: no cover - short write on ENOSPC
            raise OSError(_errno.ENOSPC, f"short write on {path}")
        if sync:
            os.fsync(fd)
    finally:
        os.close(fd)
    if created and sync:
        _fsync_path(path.parent)
    return path


# --- graceful degradation ----------------------------------------------------------


def sink_enabled(sink: str) -> bool:
    """Whether ``sink`` is still accepting writes (not degraded)."""
    return sink not in _degraded


def degraded_sinks() -> dict[str, str]:
    """The currently degraded sinks, mapped to their disable reasons."""
    return dict(_degraded)


def record_sink_failure(sink: str, exc: BaseException) -> None:
    """Disable ``sink`` after a resource-exhaustion write failure.

    Counts the event (``resource.<errno-name>`` and ``degraded.<sink>``)
    and logs exactly one warning per sink per process; subsequent writes
    to the sink are expected to check :func:`sink_enabled` and skip
    silently, so a full disk costs one log line, not one per point.
    """
    obs.count(f"resource.{_errno_name(exc)}")
    if sink in _degraded:
        return
    _degraded[sink] = str(exc)
    obs.count(f"degraded.{sink}")
    # Emitted *after* the sink is marked degraded: when the failing sink
    # is the event log itself, EventLog.append sees it disabled and the
    # event stays in recorder memory only -- no recursion, no re-failure.
    obs.event("degraded.enter", sink=sink, error=_errno_name(exc))
    logger.warning(
        "%s sink disabled after write failure (%s); results are "
        "unaffected, but this run's %s output will be incomplete",
        sink,
        exc,
        sink,
    )


def reset_degraded() -> None:
    """Re-enable every sink and reset fault-injection indices (tests)."""
    _degraded.clear()
    _io_indices.clear()


__all__ = [
    "DURABLE_FSYNC_ENV",
    "RESOURCE_ERRNOS",
    "atomic_write",
    "degraded_sinks",
    "durable_append",
    "fsync_enabled",
    "is_resource_error",
    "record_sink_failure",
    "reset_degraded",
    "sink_enabled",
]
