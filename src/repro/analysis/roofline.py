"""Roofline analysis: compute vs memory bounds for layers and mappings.

Complements the DES runtime simulator with the classic first-order check:
a hardware point has a peak compute throughput (MACs/cycle) and a DRAM
bandwidth ceiling; a layer's *operational intensity* (MACs per DRAM byte
under a given mapping) decides which roof binds.  The pre-design flow uses
this to explain why memory-rich allocations pay off on low-intensity layers
(depthwise, FC) and not on dense convolutions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.core.cost import CostReport
from repro.core.loopnest import LoopNest
from repro.core.traffic import compute_traffic
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position against a hardware roofline.

    Attributes:
        layer_name: The layer.
        intensity_macs_per_byte: MACs per DRAM byte under the mapping.
        attainable_macs_per_cycle: min(compute roof, bandwidth * intensity).
        compute_bound: Whether the compute roof binds.
    """

    layer_name: str
    intensity_macs_per_byte: float
    attainable_macs_per_cycle: float
    compute_bound: bool


@dataclass(frozen=True)
class Roofline:
    """A hardware point's roofline model."""

    hw: HardwareConfig

    @property
    def peak_macs_per_cycle(self) -> float:
        """The compute roof: every MAC unit busy every cycle."""
        return float(self.hw.total_macs)

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Aggregate DRAM bandwidth across the package's channels."""
        per_channel = self.hw.tech.dram_bandwidth_bits_per_cycle / 8.0
        return per_channel * self.hw.n_chiplets

    @property
    def ridge_intensity(self) -> float:
        """Operational intensity where the two roofs meet (MACs/byte)."""
        return self.peak_macs_per_cycle / self.dram_bytes_per_cycle

    def attainable(self, intensity: float) -> float:
        """Attainable throughput (MACs/cycle) at a given intensity."""
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        return min(self.peak_macs_per_cycle, self.dram_bytes_per_cycle * intensity)

    def locate(self, layer: ConvLayer, nest: LoopNest) -> RooflinePoint:
        """Place one mapped layer on the roofline.

        Intensity uses the mapping's *actual* DRAM traffic (reloads
        included), so a bad mapping visibly slides a layer left.
        """
        traffic, _ = compute_traffic(nest)
        dram_bytes = traffic.dram_bits / 8.0
        intensity = layer.macs / dram_bytes if dram_bytes else float("inf")
        attainable = self.attainable(min(intensity, 1e18))
        return RooflinePoint(
            layer_name=layer.name,
            intensity_macs_per_byte=intensity,
            attainable_macs_per_cycle=attainable,
            compute_bound=intensity >= self.ridge_intensity,
        )

    def locate_report(self, report: CostReport) -> RooflinePoint:
        """Place an evaluated mapping on the roofline via its traffic."""
        dram_bytes = report.traffic.dram_bits / 8.0
        intensity = report.layer.macs / dram_bytes if dram_bytes else float("inf")
        return RooflinePoint(
            layer_name=report.layer.name,
            intensity_macs_per_byte=intensity,
            attainable_macs_per_cycle=self.attainable(min(intensity, 1e18)),
            compute_bound=intensity >= self.ridge_intensity,
        )
