"""Experiment drivers: one function per paper table / figure.

Each driver returns plain data structures (dicts / dataclasses) that the
``benchmarks/`` harness prints as the paper's rows and series, and that the
EXPERIMENTS.md generator records.  Workload and hardware choices follow the
paper's Section V-VI setup; see DESIGN.md's experiment index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import HardwareConfig, case_study_hardware
from repro.arch.memory import LinearFit, MemoryLibrary
from repro.arch.technology import TABLE_I, OperationEnergy
from repro.core.cost import CostReport, InvalidMappingError, evaluate_mapping
from repro.core.dse import (
    DesignPoint,
    DesignSpace,
    best_point,
    explore,
    granularity_study,
)
from repro.core.loopnest import LoopNest
from repro.core.mapper import Mapper
from repro.core.parallel import SweepStats
from repro.core.partition import (
    PlanarGrid,
    conflict_elements,
    halo_redundancy_ratio,
    max_conflict_degree,
)
from repro.core.space import MappingSpace, SearchProfile
from repro.simba import SimbaReport, evaluate_simba, evaluate_simba_model
from repro.workloads.extraction import LayerKind, representative_layers
from repro.workloads.layer import ConvLayer
from repro.workloads.models import alexnet, darknet19, resnet50, vgg16


# --- Table I -----------------------------------------------------------------


def table1_rows() -> tuple[OperationEnergy, ...]:
    """The operation-energy table, exactly as modeled."""
    return TABLE_I


# --- Figure 7: partition-pattern redundancy --------------------------------------


@dataclass(frozen=True)
class Fig7Point:
    """Redundant-access measurement for one (layer, tile size, pattern)."""

    layer: str
    tile_elements: int
    pattern: str
    grid: PlanarGrid
    redundancy: float


def _pattern_tiles(elements: int) -> dict[str, tuple[int, int]]:
    """The paper's 1:1 (square) and 1:4 tile shapes for an element count."""
    side = int(math.isqrt(elements))
    if side * side != elements:
        raise ValueError(f"tile elements must be a perfect square, got {elements}")
    shapes = {"1:1": (side, side)}
    if side % 2 == 0:
        shapes["1:4"] = (side // 2, side * 2)
    return shapes


def fig7_layers(resolution: int = 512) -> list[ConvLayer]:
    """The two Figure 7 layers: ResNet-50 conv1 (7x7 s2) and a VGG-16 3x3."""
    res_conv1 = next(l for l in resnet50(resolution) if l.name == "conv1")
    vgg_3x3 = next(l for l in vgg16(resolution) if l.name == "conv2")
    return [res_conv1, vgg_3x3]


def fig7_data(
    resolution: int = 512,
    tile_elements: tuple[int, ...] = (4, 16, 64, 256, 1024),
) -> list[Fig7Point]:
    """Redundant memory access vs output-tile size for both patterns.

    Tiles are swept from fine (2x2 outputs, where the 7x7-stride-2 layer
    pays the paper's up-to-650% halo overhead) to coarse; the plane is
    covered by a grid of ceil(plane / tile) tiles of each shape.
    """
    points = []
    for layer in fig7_layers(resolution):
        for elements in tile_elements:
            for pattern, (tile_h, tile_w) in _pattern_tiles(elements).items():
                grid = PlanarGrid(
                    max(-(-layer.ho // tile_h), 1), max(-(-layer.wo // tile_w), 1)
                )
                points.append(
                    Fig7Point(
                        layer=layer.name,
                        tile_elements=elements,
                        pattern=pattern,
                        grid=grid,
                        redundancy=halo_redundancy_ratio(layer, grid),
                    )
                )
    return points


# --- Figure 8: halo / DRAM conflict ------------------------------------------------


@dataclass(frozen=True)
class Fig8Point:
    """Conflict measurement of one package-level partition pattern."""

    pattern: str
    grid: PlanarGrid
    max_conflict_degree: int
    conflict_elements: int


def fig8_data(resolution: int = 512) -> list[Fig8Point]:
    """Square vs rectangle 4-way package split conflicts (Figure 8)."""
    layer = fig7_layers(resolution)[0]  # the large-kernel conv1
    out = []
    for pattern, grid in (("square", PlanarGrid(2, 2)), ("rectangle", PlanarGrid(1, 4))):
        out.append(
            Fig8Point(
                pattern=pattern,
                grid=grid,
                max_conflict_degree=max_conflict_degree(layer, grid),
                conflict_elements=conflict_elements(layer, grid),
            )
        )
    return out


# --- Figure 10: memory linear model -------------------------------------------------


@dataclass(frozen=True)
class Fig10Data:
    """The synthetic macro library and its regression fits."""

    library: MemoryLibrary
    area_fit: LinearFit
    energy_fit: LinearFit


def fig10_data() -> Fig10Data:
    """Linear memory size -> area/energy fits (Figure 10)."""
    library = MemoryLibrary()
    return Fig10Data(
        library=library,
        area_fit=library.fit_area(),
        energy_fit=library.fit_energy(),
    )


# --- Figure 11: spatial partition comparison -------------------------------------------

#: The figure's x-axis order of (package, chiplet) spatial combinations.
FIG11_COMBOS: tuple[tuple[str, str], ...] = (
    ("C", "C"),
    ("C", "P"),
    ("C", "H"),
    ("P", "C"),
    ("P", "P"),
    ("P", "H"),
)


def best_by_combo(
    layer: ConvLayer,
    hw: HardwareConfig,
    profile: SearchProfile = SearchProfile.EXHAUSTIVE,
) -> dict[tuple[str, str], CostReport]:
    """Energy-optimal mapping per (package, chiplet) spatial combination.

    Combinations whose channel splits leave cores under-filled (the paper
    removes (C, C) for small-output-channel layers "due to the mismatch with
    their small output channels") or that have no legal candidate are
    omitted from the result.
    """
    space = MappingSpace(hw=hw, profile=profile)
    best: dict[tuple[str, str], CostReport] = {}
    for mapping in space.unique_candidates(layer):
        combo = mapping.spatial_combo
        nest = LoopNest(layer=layer, hw=hw, mapping=mapping)
        if nest.share_co < min(hw.lanes, layer.co):
            continue  # channel-split mismatch: cores cannot fill their lanes
        try:
            report = evaluate_mapping(layer, hw, mapping)
        except InvalidMappingError:
            continue
        current = best.get(combo)
        if current is None or report.energy_pj < current.energy_pj:
            best[combo] = report
    return best


def fig11_data(
    resolution: int = 224,
    hw: HardwareConfig | None = None,
    profile: SearchProfile = SearchProfile.EXHAUSTIVE,
) -> dict[LayerKind, dict[tuple[str, str], CostReport]]:
    """Energy breakdown of every spatial combination per layer type."""
    hw = hw or case_study_hardware()
    return {
        kind: best_by_combo(layer, hw, profile)
        for kind, layer in representative_layers(resolution).items()
    }


# --- Figure 12: Simba vs NN-Baton per layer --------------------------------------------


@dataclass(frozen=True)
class Fig12Point:
    """One layer's baseline-vs-NN-Baton comparison."""

    kind: LayerKind
    layer: ConvLayer
    simba: SimbaReport
    baton: CostReport
    hw: HardwareConfig

    @property
    def saving(self) -> float:
        """Fraction of baseline total energy NN-Baton saves."""
        return 1.0 - self.baton.energy_pj / self.simba.energy_pj

    @property
    def movement_saving(self) -> float:
        """Savings on the data-movement energy (the paper's accounting)."""
        baseline = self.simba.movement_pj(self.hw)
        if baseline <= 0:
            return 0.0
        return 1.0 - self.baton.movement_pj(self.hw) / baseline


def fig12_data(
    resolution: int = 224,
    hw: HardwareConfig | None = None,
    profile: SearchProfile = SearchProfile.EXHAUSTIVE,
) -> list[Fig12Point]:
    """Normalized per-layer energy: Simba baseline vs NN-Baton (Figure 12)."""
    hw = hw or case_study_hardware()
    mapper = Mapper(hw=hw, profile=profile)
    points = []
    for kind, layer in representative_layers(resolution).items():
        simba = evaluate_simba(layer, hw)
        baton = mapper.search_layer(layer).best
        points.append(
            Fig12Point(kind=kind, layer=layer, simba=simba, baton=baton, hw=hw)
        )
    return points


# --- Figure 13: Simba vs NN-Baton per model -------------------------------------------


@dataclass(frozen=True)
class Fig13Point:
    """One (model, resolution) baseline-vs-NN-Baton comparison."""

    model: str
    resolution: int
    simba_energy_pj: float
    baton_energy_pj: float
    simba_movement_pj: float
    baton_movement_pj: float

    @property
    def saving(self) -> float:
        """Fraction of baseline total energy NN-Baton saves."""
        return 1.0 - self.baton_energy_pj / self.simba_energy_pj

    @property
    def movement_saving(self) -> float:
        """Savings on the data-movement energy (the paper's accounting)."""
        if self.simba_movement_pj <= 0:
            return 0.0
        return 1.0 - self.baton_movement_pj / self.simba_movement_pj


#: The three Figure 13 models (FC layers folded into pointwise layers).
FIG13_MODELS = {
    "vgg16": vgg16,
    "resnet50": resnet50,
    "darknet19": darknet19,
}


def fig13_data(
    hw: HardwareConfig | None = None,
    resolutions: tuple[int, ...] = (224, 512),
    profile: SearchProfile = SearchProfile.FAST,
) -> list[Fig13Point]:
    """Model-level energy comparison (Figure 13).

    Default profile is FAST (the exhaustive space changes totals by a few
    percent at ~10x the runtime; pass EXHAUSTIVE for the full search).
    """
    hw = hw or case_study_hardware()
    points = []
    for name, builder in FIG13_MODELS.items():
        for resolution in resolutions:
            layers = builder(resolution=resolution, include_fc=True)
            simba_energy, _, simba_reports = evaluate_simba_model(layers, hw)
            mapper = Mapper(hw=hw, profile=profile)
            results = mapper.search_model(layers)
            baton_energy = sum(r.best.energy_pj for r in results)
            points.append(
                Fig13Point(
                    model=name,
                    resolution=resolution,
                    simba_energy_pj=simba_energy.total_pj,
                    baton_energy_pj=baton_energy,
                    simba_movement_pj=sum(
                        r.movement_pj(hw) for r in simba_reports
                    ),
                    baton_movement_pj=sum(
                        r.best.movement_pj(hw) for r in results
                    ),
                )
            )
    return points


# --- Figure 14: chiplet granularity ---------------------------------------------------


@dataclass(frozen=True)
class Fig14Data:
    """Granularity study output for a set of models."""

    points: tuple[DesignPoint, ...]
    total_macs: int
    area_constraint_mm2: float

    def by_chiplets(self, n: int) -> list[DesignPoint]:
        """Evaluated points with ``n`` chiplets."""
        return [p for p in self.points if p.valid and p.hw.n_chiplets == n]

    def best(
        self, model: str, n_chiplets: int | None = None, constrained: bool = False
    ) -> DesignPoint | None:
        """Best-energy point, optionally per chiplet count / under the cap."""
        pool = [
            p
            for p in self.points
            if p.valid
            and model in p.energy_pj
            and (n_chiplets is None or p.hw.n_chiplets == n_chiplets)
        ]
        return best_point(
            pool,
            model,
            objective="energy",
            max_chiplet_mm2=self.area_constraint_mm2 if constrained else None,
        )

    def edp_winner(self, model: str) -> DesignPoint | None:
        """The lowest-EDP point under the area constraint (the red box)."""
        return best_point(
            self.points,
            model,
            objective="edp",
            max_chiplet_mm2=self.area_constraint_mm2,
        )


#: The four Figure 14 models at classification resolution.
FIG14_MODELS = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "resnet50": resnet50,
    "darknet19": darknet19,
}


def fig14_data(
    total_macs: int = 2048,
    area_constraint_mm2: float = 2.0,
    resolution: int = 224,
    profile: SearchProfile = SearchProfile.FAST,
    models: dict | None = None,
    jobs: int | None = None,
    stats: SweepStats | None = None,
) -> Fig14Data:
    """The chiplet-granularity study (Figure 14)."""
    builders = models or FIG14_MODELS
    layer_sets = {
        name: builder(resolution=resolution, include_fc=True)
        for name, builder in builders.items()
    }
    points = granularity_study(
        layer_sets, total_macs=total_macs, profile=profile, jobs=jobs, stats=stats
    )
    return Fig14Data(
        points=tuple(points),
        total_macs=total_macs,
        area_constraint_mm2=area_constraint_mm2,
    )


# --- Figure 15: full design-space exploration ---------------------------------------


@dataclass(frozen=True)
class Fig15Data:
    """Full-DSE output for the three benchmarks."""

    points: tuple[DesignPoint, ...]
    required_macs: int
    area_constraint_mm2: float
    swept: int

    @property
    def valid_points(self) -> list[DesignPoint]:
        """Evaluated, structurally valid points."""
        return [p for p in self.points if p.valid and p.energy_pj]

    def optimum(self, model: str) -> DesignPoint | None:
        """Lowest-EDP point under the area constraint for ``model``."""
        return best_point(
            self.points,
            model,
            objective="edp",
            max_chiplet_mm2=self.area_constraint_mm2,
        )


def fig15_models() -> dict[str, list[ConvLayer]]:
    """The three Figure 15 benchmarks.

    Section VI-B2 contrasts "benchmarks with 512x512 input resolution" with
    "the 224x224 benchmark (DarkNet of 224x224 input)", so the trio is
    VGG-16@512, ResNet-50@512 and DarkNet-19@224.
    """
    return {
        "vgg16@512": vgg16(resolution=512, include_fc=True),
        "resnet50@512": resnet50(resolution=512, include_fc=True),
        "darknet19@224": darknet19(resolution=224, include_fc=True),
    }


def fig15_data(
    required_macs: int = 4096,
    area_constraint_mm2: float = 3.0,
    memory_stride: int = 1,
    profile: SearchProfile = SearchProfile.MINIMAL,
    max_valid_points: int | None = None,
    models: dict[str, list[ConvLayer]] | None = None,
    space: DesignSpace | None = None,
    jobs: int | None = None,
    stats: SweepStats | None = None,
) -> Fig15Data:
    """The full design-space exploration (Figure 15).

    ``memory_stride`` subsamples the Table II memory sweep for quick runs;
    the structural sweep size is reported either way.  ``jobs`` fans the
    sweep out over worker processes (``None`` defers to ``REPRO_JOBS``).
    """
    benchmark_models = models or fig15_models()
    space = space or DesignSpace()
    points = explore(
        benchmark_models,
        required_macs=required_macs,
        space=space,
        max_chiplet_mm2=area_constraint_mm2,
        profile=profile,
        memory_stride=memory_stride,
        max_valid_points=max_valid_points,
        jobs=jobs,
        stats=stats,
    )
    return Fig15Data(
        points=tuple(points),
        required_macs=required_macs,
        area_constraint_mm2=area_constraint_mm2,
        swept=space.sweep_size(required_macs),
    )


# --- Table II -----------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Data:
    """The exploration space and its headline counts."""

    space: DesignSpace
    granularity_configs_2048: int
    granularity_configs_4096: int
    sweep_size_4096: int


def table2_data() -> Table2Data:
    """The Table II design space with the paper's headline counts.

    The paper reports "up to 63 possibilities" of computation allocation for
    2048 MACs and "over 100,000" swept points for the Figure 15 study.
    """
    space = DesignSpace()
    return Table2Data(
        space=space,
        granularity_configs_2048=len(space.computation_configs(2048)),
        granularity_configs_4096=len(space.computation_configs(4096)),
        sweep_size_4096=space.sweep_size(4096),
    )
