"""Energy-breakdown analysis helpers: normalization and stacked-bar text.

The paper's Figures 11-13 are stacked bars of normalized energy by
component; these helpers turn :class:`~repro.core.cost.EnergyBreakdown`
objects into the same presentation for terminals and reports.
"""

from __future__ import annotations

from typing import Mapping as MappingType
from typing import Sequence

from repro.core.cost import EnergyBreakdown

#: One glyph per component, in the breakdown's canonical order.
COMPONENT_GLYPHS: dict[str, str] = {
    "dram": "D",
    "d2d": "R",
    "a_l2": "2",
    "o_l2": "o",
    "a_l1": "a",
    "w_l1": "w",
    "rf": "r",
    "mac": "m",
}


def normalize(breakdown: EnergyBreakdown, baseline_pj: float) -> dict[str, float]:
    """Component shares relative to ``baseline_pj`` (Figure 12's y-axis).

    Raises:
        ValueError: For a non-positive baseline.
    """
    if baseline_pj <= 0:
        raise ValueError(f"baseline must be positive, got {baseline_pj}")
    return {name: pj / baseline_pj for name, pj in breakdown.as_dict().items()}


def shares(breakdown: EnergyBreakdown) -> dict[str, float]:
    """Component fractions of the breakdown's own total (sums to 1)."""
    total = breakdown.total_pj
    if total <= 0:
        return {name: 0.0 for name in breakdown.as_dict()}
    return {name: pj / total for name, pj in breakdown.as_dict().items()}


def stacked_bar(
    breakdown: EnergyBreakdown, scale_pj: float, width: int = 50
) -> str:
    """Render one stacked bar: component glyphs proportional to energy.

    ``scale_pj`` maps to the full ``width`` so bars across a figure share
    one scale, exactly like the paper's normalized plots.
    """
    if scale_pj <= 0:
        raise ValueError(f"scale must be positive, got {scale_pj}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    bar = []
    for name, pj in breakdown.as_dict().items():
        cells = int(round(pj / scale_pj * width))
        bar.append(COMPONENT_GLYPHS[name] * cells)
    return "".join(bar)[: width * 2]


def stacked_bar_chart(
    entries: Sequence[tuple[str, EnergyBreakdown]],
    width: int = 50,
    title: str = "",
) -> str:
    """Render labeled stacked bars on a shared scale, plus a glyph legend."""
    if not entries:
        raise ValueError("entries must be non-empty")
    scale = max(breakdown.total_pj for _, breakdown in entries)
    if scale <= 0:
        raise ValueError("all breakdowns are zero")
    label_width = max(len(label) for label, _ in entries)
    lines = []
    if title:
        lines.append(title)
    for label, breakdown in entries:
        bar = stacked_bar(breakdown, scale, width)
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{breakdown.total_pj / 1e9:.3f} mJ"
        )
    legend = "  ".join(f"{glyph}={name}" for name, glyph in COMPONENT_GLYPHS.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def dominant_component(breakdown: EnergyBreakdown) -> str:
    """Name of the largest energy component."""
    parts = breakdown.as_dict()
    return max(parts, key=parts.get)


def aggregate(breakdowns: MappingType[str, EnergyBreakdown]) -> EnergyBreakdown:
    """Sum a collection of breakdowns (e.g. per-layer to model level).

    Uses :meth:`EnergyBreakdown.fsum` so the model total is independent of
    the layer iteration order.
    """
    return EnergyBreakdown.fsum(breakdowns.values())
