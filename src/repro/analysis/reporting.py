"""Plain-text rendering helpers for tables, bars and scatter plots.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a terminal.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column titles.
        rows: Row cells (stringified with ``str``).
        title: Optional title line.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar(value: float, scale: float, width: int = 40, char: str = "#") -> str:
    """A proportional ASCII bar (``value / scale`` of ``width``)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    filled = int(round(min(max(value / scale, 0.0), 1.0) * width))
    return char * filled


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"


def format_search_stats(stats) -> str:
    """Render a :class:`repro.core.parallel.SweepStats` run summary.

    One headline line (throughput, worker count) plus per-stage timings and
    mapping-cache counters when the run recorded any.
    """
    lines = [
        f"Search: {stats.points_evaluated}/{stats.points_total} points "
        f"evaluated in {stats.wall_s:.2f} s "
        f"({stats.points_per_sec:.1f} points/s, {stats.jobs} job"
        f"{'s' if stats.jobs != 1 else ''})"
    ]
    if stats.stage_s:
        stages = ", ".join(
            f"{name} {seconds:.2f} s" for name, seconds in stats.stage_s.items()
        )
        lines.append(f"  stages: {stages}")
    lookups = stats.cache_hits + stats.cache_misses
    if lookups:
        rate = stats.cache_hits / lookups
        lines.append(
            f"  mapping cache: {stats.cache_hits} hits / "
            f"{stats.cache_misses} misses ({rate:.0%} hit rate)"
        )
    search = []
    if getattr(stats, "points_pruned", 0):
        search.append(f"{stats.points_pruned} pruned by dominance bound")
    if getattr(stats, "points_deduped", 0):
        search.append(f"{stats.points_deduped} duplicate proposals dropped")
    if search:
        lines.append(f"  guided search: {', '.join(search)}")
    resilience = []
    if getattr(stats, "points_resumed", 0):
        resilience.append(f"{stats.points_resumed} resumed from checkpoint")
    if getattr(stats, "points_failed", 0):
        resilience.append(f"{stats.points_failed} failed")
    if getattr(stats, "retries", 0):
        resilience.append(f"{stats.retries} retries")
    if getattr(stats, "pool_restarts", 0):
        resilience.append(f"{stats.pool_restarts} pool restarts")
    if resilience:
        lines.append(f"  resilience: {', '.join(resilience)}")
    return "\n".join(lines)


def format_failures(failures, traceback_lines: int = 0) -> str:
    """Render :class:`repro.core.parallel.TaskFailure` records as a table.

    One row per failed task -- index, label (when the caller filled one
    in), failure kind, exception class, attempts consumed and the error
    text.  With ``traceback_lines > 0``, that many final traceback lines
    follow each row for post-mortem context.
    """
    if not failures:
        return "No task failures."
    rows = [
        [
            failure.index,
            failure.label or "-",
            failure.kind,
            failure.error_type,
            failure.attempts,
            failure.error,
        ]
        for failure in failures
    ]
    text = format_table(
        ["Point", "Label", "Kind", "Error type", "Attempts", "Error"],
        rows,
        title=f"Failed points ({len(failures)})",
    )
    if traceback_lines > 0:
        extras = []
        for failure in failures:
            if not failure.traceback:
                continue
            tail = failure.traceback.strip().splitlines()[-traceback_lines:]
            extras.append(
                f"-- point {failure.index} traceback tail --\n"
                + "\n".join(tail)
            )
        if extras:
            text = text + "\n" + "\n".join(extras)
    return text


#: ``repro profile --sort`` orders: key function over (path, (count, ns)).
_PROFILE_SORTS = {
    "time": lambda item: (-item[1][1], item[0]),
    "count": lambda item: (-item[1][0], item[0]),
    "name": lambda item: item[0],
}


def format_profile(recorder, top: int = 15, sort: str = "time") -> str:
    """Render a :class:`repro.obs.Recorder`'s profile as plain text.

    A span table (call path, count, total/mean milliseconds), followed by
    every counter and gauge, then a histogram summary table when any
    histogram observations were recorded.  ``top`` caps the span rows
    shown; the cut is reported so a truncated profile never reads as
    complete.  ``sort`` orders the span table: ``time`` (cumulative time
    descending, the default), ``count`` (call count descending) or
    ``name`` (span path); ties always break on the path, so the table is
    deterministic for every sort.
    """
    if sort not in _PROFILE_SORTS:
        raise ValueError(
            f"unknown profile sort {sort!r}; expected one of "
            f"{', '.join(sorted(_PROFILE_SORTS))}"
        )
    titles = {
        "time": "Spans (hottest first)",
        "count": "Spans (most called first)",
        "name": "Spans (by path)",
    }
    lines: list[str] = []
    aggregated = recorder.aggregate_spans()
    if aggregated:
        ordered = sorted(aggregated.items(), key=_PROFILE_SORTS[sort])
        shown = ordered[:top]
        rows = [
            [
                path,
                count,
                f"{total_ns / 1e6:.2f}",
                f"{total_ns / count / 1e6:.3f}",
            ]
            for path, (count, total_ns) in shown
        ]
        lines.append(
            format_table(
                ["Span path", "Calls", "Total ms", "Mean ms"],
                rows,
                title=titles[sort],
            )
        )
        hidden = len(aggregated) - len(shown)
        if hidden > 0:
            lines.append(f"... {hidden} more span paths (raise --top to see them)")
    else:
        lines.append("No spans recorded.")
    counters = recorder.metrics.counters()
    gauges = recorder.metrics.gauges()
    if counters or gauges:
        rows = [[name, f"{value:g}"] for name, value in counters.items()]
        rows += [[name, f"{value:g}"] for name, value in gauges.items()]
        lines.append("")
        lines.append(format_table(["Counter", "Value"], rows, title="Counters"))
    histograms = recorder.metrics.histograms()
    if histograms:
        rows = []
        for name in histograms:
            stats = recorder.metrics.histogram_stats(name)
            rows.append(
                [
                    name,
                    f"{stats['count']:g}",
                    f"{stats['min']:.3g}",
                    f"{stats['p50']:.3g}",
                    f"{stats['p90']:.3g}",
                    f"{stats['p99']:.3g}",
                    f"{stats['max']:.3g}",
                ]
            )
        lines.append("")
        lines.append(
            format_table(
                ["Histogram", "Count", "Min", "p50", "p90", "p99", "Max"],
                rows,
                title="Histograms (log2 buckets)",
            )
        )
    return "\n".join(lines)


def format_scatter(
    points: Sequence[tuple[float, float, str]],
    width: int = 70,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labeled (x, y) points as an ASCII scatter plot.

    Each point's label's first character becomes its glyph; collisions keep
    the first writer.  Axes are linear and auto-scaled.
    """
    if not points:
        raise ValueError("points must be non-empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for x, y, label in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        if canvas[row][col] == " ":
            canvas[row][col] = (label or "*")[0]
    lines = [f"{y_label} (top={y_max:.3g}, bottom={y_min:.3g})"]
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.3g} .. {x_max:.3g}")
    return "\n".join(lines)
