"""Generic 2-D Pareto utilities (minimize both coordinates)."""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def pareto_points(
    items: Sequence[T],
    x: "callable",
    y: "callable",
) -> list[T]:
    """Pareto-minimal subset of ``items`` under coordinates ``(x(i), y(i))``.

    An item is kept when no other item is at least as good on both axes and
    strictly better on one.  Result is sorted by ``x``.
    """
    kept: list[T] = []
    for candidate in items:
        cx, cy = x(candidate), y(candidate)
        dominated = any(
            (x(other) <= cx and y(other) <= cy)
            and (x(other) < cx or y(other) < cy)
            for other in items
            if other is not candidate
        )
        if not dominated:
            kept.append(candidate)
    return sorted(kept, key=x)


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Whether point ``a`` Pareto-dominates point ``b`` (minimization)."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])
