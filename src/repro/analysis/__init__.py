"""Analysis and reporting: breakdowns, Pareto fronts, experiment drivers.

* :mod:`repro.analysis.reporting` -- plain-text tables and bar/scatter
  renderings for terminal output.
* :mod:`repro.analysis.pareto` -- generic 2-D Pareto utilities.
* :mod:`repro.analysis.experiments` -- one driver per paper table/figure;
  the benchmarks and EXPERIMENTS.md generation call these.
"""

from repro.analysis.experiments import (
    fig7_data,
    fig8_data,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
    fig14_data,
    fig15_data,
    table1_rows,
    table2_data,
)
from repro.analysis.breakdown import aggregate, normalize, shares, stacked_bar_chart
from repro.analysis.pareto import pareto_points
from repro.analysis.reporting import format_bar, format_table, format_percent

__all__ = [
    "fig7_data",
    "fig8_data",
    "fig10_data",
    "fig11_data",
    "fig12_data",
    "fig13_data",
    "fig14_data",
    "fig15_data",
    "aggregate",
    "format_bar",
    "format_percent",
    "format_table",
    "normalize",
    "pareto_points",
    "shares",
    "stacked_bar_chart",
    "table1_rows",
    "table2_data",
]
