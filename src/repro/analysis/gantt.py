"""ASCII Gantt rendering of simulator execution traces.

Turns a :class:`~repro.sim.trace.Trace` into a per-chiplet timeline so the
double-buffered load/compute overlap (and its breakdown under tight
bandwidth) is visible at a glance::

    chiplet 0 |LLLL CCCCCCCC   CCCCCCCC ...
    chiplet 1 |LLLL RCCCCCCCC  ...
"""

from __future__ import annotations

from repro.sim.trace import Phase, Trace

#: One glyph per pipeline phase.
PHASE_GLYPHS: dict[Phase, str] = {
    Phase.DRAM_LOAD: "L",
    Phase.RING_ROTATE: "R",
    Phase.COMPUTE: "C",
    Phase.WRITEBACK: "W",
}


def render_gantt(trace: Trace, width: int = 100) -> str:
    """Render a trace as one timeline row per chiplet.

    Later-drawn phases overwrite earlier ones in a shared cell (a cell is
    ``makespan / width`` cycles), with compute drawn last so the busy
    portion of the pipeline dominates the picture.

    Raises:
        ValueError: For an empty trace or non-positive width.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not trace.records:
        raise ValueError("cannot render an empty trace")
    makespan = trace.makespan()
    if makespan <= 0:
        raise ValueError("trace has zero makespan")
    chiplets = sorted({r.chiplet for r in trace.records})
    rows = {c: [" "] * width for c in chiplets}
    # Draw in increasing priority: writeback, load, rotate, compute.
    priority = [Phase.WRITEBACK, Phase.DRAM_LOAD, Phase.RING_ROTATE, Phase.COMPUTE]
    for phase in priority:
        glyph = PHASE_GLYPHS[phase]
        for record in trace.for_phase(phase):
            first = int(record.start / makespan * (width - 1))
            last = int(record.end / makespan * (width - 1))
            for cell in range(first, last + 1):
                rows[record.chiplet][cell] = glyph
    lines = [
        f"chiplet {c} |{''.join(cells)}|" for c, cells in sorted(rows.items())
    ]
    legend = "  ".join(f"{g}={p.value}" for p, g in PHASE_GLYPHS.items())
    lines.append(f"0 .. {makespan:.0f} cycles   legend: {legend}")
    return "\n".join(lines)


def phase_summary(trace: Trace) -> dict[str, float]:
    """Total busy cycles per phase across all chiplets."""
    return {phase.value: trace.busy_cycles(phase) for phase in Phase}
