"""Structured error taxonomy: one hierarchy, stable codes, stable exits.

Everything user-visible that can go wrong falls into one of five buckets,
each carried by a :class:`ReproError` subclass with a stable machine
``code`` string and a stable process exit code:

=====================  ==================  =========
class                  code                exit code
=====================  ==================  =========
UsageError             usage               2
ConfigError            config              3
DataError              data                4
StateCorruptionError   state-corruption    5
ResourceExhaustedError resource-exhausted  6
=====================  ==================  =========

``KeyboardInterrupt`` maps to the conventional 130 (128 + SIGINT), and any
other escape is the generic failure exit 1.

The pre-existing scattered exceptions keep their historical ``isinstance``
contracts by multiple inheritance -- e.g.
:class:`repro.arch.validate.ConfigValidationError` is still a
``ValueError`` *and* now a :class:`ConfigError`, and
:class:`repro.core.batch.BatchOverflowError` is still an ``OverflowError``
*and* a :class:`ResourceExhaustedError`.  Catching ``ReproError`` at the
top of a service loop (or the CLI) is therefore sufficient to classify
every structured failure, without touching the call sites that catch the
old types.

This module is import-cycle-free by construction: it imports nothing from
the rest of the package, so any layer (arch, core, obs, testing, cli) can
depend on it.
"""

from __future__ import annotations

#: Exit code of a command-line usage error (argparse's convention).
EXIT_USAGE = 2

#: Exit code of an invalid configuration (env knob, study meta, hardware).
EXIT_CONFIG = 3

#: Exit code of undecodable or inconsistent input data (workload/hw files).
EXIT_DATA = 4

#: Exit code of corrupt on-disk state (cache, checkpoint, study).
EXIT_STATE_CORRUPTION = 5

#: Exit code of an exhausted resource budget (disk, memory, overflow guard).
EXIT_RESOURCES = 6

#: Exit code of an interrupt (128 + SIGINT), the shell convention.
EXIT_INTERRUPT = 130

#: Exit code of any unclassified failure.
EXIT_FAILURE = 1


class ReproError(Exception):
    """Base of the structured error taxonomy.

    Attributes:
        code: Stable machine-readable category string (``"usage"``,
            ``"config"``, ...), safe to key alerting or tests on.
        exit_code: The process exit code the CLI maps this category to.
    """

    code: str = "error"
    exit_code: int = EXIT_FAILURE


class UsageError(ReproError):
    """The command line itself is wrong (bad flag combination, bad value)."""

    code = "usage"
    exit_code = EXIT_USAGE


class ConfigError(ReproError):
    """A configuration is invalid (hardware config, env knob, study meta)."""

    code = "config"
    exit_code = EXIT_CONFIG


class DataError(ReproError):
    """Input data is undecodable or inconsistent (workload/hardware files)."""

    code = "data"
    exit_code = EXIT_DATA


class StateCorruptionError(ReproError):
    """Persistent state (cache, checkpoint, study) is corrupt on disk."""

    code = "state-corruption"
    exit_code = EXIT_STATE_CORRUPTION


class ResourceExhaustedError(ReproError):
    """A resource budget ran out (disk space, memory budget, int64 range)."""

    code = "resource-exhausted"
    exit_code = EXIT_RESOURCES


def exit_code_for(exc: BaseException) -> int:
    """The stable exit code of ``exc`` under the taxonomy.

    ``ReproError`` subclasses carry their own code; ``KeyboardInterrupt``
    maps to 130; a raw ``sqlite3.DatabaseError`` that escaped the
    quarantine machinery is corrupt state; anything else is the generic
    failure exit 1.
    """
    if isinstance(exc, ReproError):
        return exc.exit_code
    if isinstance(exc, KeyboardInterrupt):
        return EXIT_INTERRUPT
    import sqlite3

    if isinstance(exc, sqlite3.DatabaseError):
        return EXIT_STATE_CORRUPTION
    return EXIT_FAILURE


def error_code_for(exc: BaseException) -> str:
    """The stable category string of ``exc`` (``"error"`` if unclassified)."""
    if isinstance(exc, ReproError):
        return exc.code
    if isinstance(exc, KeyboardInterrupt):
        return "interrupt"
    import sqlite3

    if isinstance(exc, sqlite3.DatabaseError):
        return StateCorruptionError.code
    return ReproError.code


__all__ = [
    "EXIT_CONFIG",
    "EXIT_DATA",
    "EXIT_FAILURE",
    "EXIT_INTERRUPT",
    "EXIT_RESOURCES",
    "EXIT_STATE_CORRUPTION",
    "EXIT_USAGE",
    "ConfigError",
    "DataError",
    "ReproError",
    "ResourceExhaustedError",
    "StateCorruptionError",
    "UsageError",
    "error_code_for",
    "exit_code_for",
]
