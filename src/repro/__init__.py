"""NN-Baton reproduction: DNN workload orchestration and chiplet granularity
exploration for multichip accelerators (Tan et al., ISCA 2021).

Public API quick tour::

    from repro import NNBaton, case_study_hardware, get_model

    hw = case_study_hardware()             # the paper's 4-chiplet machine
    baton = NNBaton()
    result = baton.post_design(get_model("resnet50"), hw)
    print(result.energy_pj, result.mapping_table()[0])

Subpackages:

* :mod:`repro.arch` -- technology constants (Table I), memory/area models
  (Figure 10), hardware configurations.
* :mod:`repro.workloads` -- layer geometry and the four benchmark networks.
* :mod:`repro.core` -- the hierarchical framework: primitives, C3P, the
  mapper (post-design) and the DSE (pre-design).
* :mod:`repro.simba` -- the weight-centric baseline.
* :mod:`repro.sim` -- the discrete-event runtime simulator.
* :mod:`repro.analysis` -- experiment drivers for every paper table/figure.
"""

from repro.arch import (
    AreaModel,
    ChipletConfig,
    CoreConfig,
    EnergyModel,
    HardwareConfig,
    MemoryConfig,
    PackageConfig,
    TechnologyParams,
    Topology,
    case_study_hardware,
    simba_like_hardware,
)
from repro.arch.config import build_hardware, proportional_memory
from repro.core import (
    CostReport,
    DesignSpace,
    EnergyBreakdown,
    LoopNest,
    Mapper,
    Mapping,
    MappingCache,
    MappingSpace,
    NNBaton,
    PlanarGrid,
    RotationKind,
    SpatialPrimitive,
    SweepStats,
    TemporalPrimitive,
    evaluate_mapping,
    explore,
    granularity_study,
    resolve_jobs,
)
from repro.core.space import SearchProfile
from repro.simba import evaluate_simba, evaluate_simba_model
from repro.sim import simulate_runtime
from repro.workloads import (
    ConvLayer,
    get_model,
    list_models,
    load_model_file,
    representative_layers,
    save_model_file,
)

__version__ = "1.0.0"

__all__ = [
    "AreaModel",
    "ChipletConfig",
    "ConvLayer",
    "CoreConfig",
    "CostReport",
    "DesignSpace",
    "EnergyBreakdown",
    "EnergyModel",
    "HardwareConfig",
    "LoopNest",
    "Mapper",
    "Mapping",
    "MappingCache",
    "MappingSpace",
    "MemoryConfig",
    "NNBaton",
    "PackageConfig",
    "PlanarGrid",
    "RotationKind",
    "SearchProfile",
    "SpatialPrimitive",
    "SweepStats",
    "TechnologyParams",
    "TemporalPrimitive",
    "Topology",
    "__version__",
    "build_hardware",
    "case_study_hardware",
    "evaluate_mapping",
    "evaluate_simba",
    "evaluate_simba_model",
    "explore",
    "get_model",
    "granularity_study",
    "list_models",
    "load_model_file",
    "proportional_memory",
    "representative_layers",
    "resolve_jobs",
    "save_model_file",
    "simba_like_hardware",
    "simulate_runtime",
]
