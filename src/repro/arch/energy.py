"""Per-access energy model for a concrete hardware configuration.

Wraps :class:`~repro.arch.technology.TechnologyParams` with the configured
buffer sizes so every traffic class (DRAM, die-to-die, L2, L1, register file,
MAC) has a single authoritative per-bit/per-op energy.  All downstream energy
numbers in this repository flow through this class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig


@dataclass(frozen=True)
class EnergyModel:
    """Per-bit / per-op energies for one :class:`HardwareConfig`.

    SRAM energies follow the linear size law of Figure 10, so a 144 KB W-L1
    costs more per bit than an 18 KB one -- exactly the trade-off the
    pre-design flow explores.
    """

    hw: HardwareConfig

    # --- per-bit energies ------------------------------------------------------

    @property
    def dram_pj_per_bit(self) -> float:
        """DRAM access energy (Table I: 8.75 pJ/bit)."""
        return self.hw.tech.dram_energy_pj_per_bit

    @property
    def d2d_pj_per_bit(self) -> float:
        """One die-to-die ring hop through a pair of GRS PHYs (1.17 pJ/bit)."""
        return self.hw.tech.d2d_energy_pj_per_bit

    @property
    def a_l2_pj_per_bit(self) -> float:
        """A-L2 access energy at the configured size."""
        return self.hw.a_l2().energy_pj_per_bit

    def o_l2_pj_per_bit(self, size_bytes: int) -> float:
        """O-L2 access energy; the buffer is auto-sized per chiplet workload."""
        return self.hw.o_l2(size_bytes).energy_pj_per_bit

    @property
    def a_l1_pj_per_bit(self) -> float:
        """A-L1 access energy at the configured size."""
        return self.hw.a_l1().energy_pj_per_bit

    @property
    def w_l1_pj_per_bit(self) -> float:
        """W-L1 access energy at the configured size."""
        return self.hw.w_l1().energy_pj_per_bit

    @property
    def rf_rmw_pj_per_bit(self) -> float:
        """O-L1 register read-modify-write energy (0.104 pJ/bit)."""
        return self.hw.o_l1().rmw_energy_pj_per_bit

    @property
    def mac_pj_per_op(self) -> float:
        """One 8-bit MAC operation (0.024 pJ)."""
        return self.hw.tech.mac_energy_pj

    # --- convenience totals ------------------------------------------------------

    def mac_energy_pj(self, ops: float) -> float:
        """Energy of ``ops`` MAC operations."""
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        return ops * self.mac_pj_per_op

    def dram_energy_pj(self, bits: float) -> float:
        """Energy of ``bits`` of DRAM traffic."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return bits * self.dram_pj_per_bit

    def d2d_energy_pj(self, bit_hops: float) -> float:
        """Energy of ``bit_hops`` bit-hops on the package ring.

        A datum forwarded across ``k`` links contributes ``k`` bit-hops per
        bit, each paying one GRS PHY-pair traversal.
        """
        if bit_hops < 0:
            raise ValueError(f"bit_hops must be non-negative, got {bit_hops}")
        return bit_hops * self.d2d_pj_per_bit
