"""Three-level hardware description: core, chiplet, package.

This is the paper's "universal and concise hardware model" (Section III):

* **Core** -- ``L`` lanes of ``P``-wide vector MACs with weight-stationary
  dataflow; A-L1 and W-L1 double-buffered SRAMs; O-L1 register file holding
  24-bit partial sums with single-cycle read-modify-write.
* **Chiplet** -- ``N_C`` cores, a shared A-L2 activation buffer, an O-L2
  output buffer, a central multicast bus, and a GRS die-to-die PHY.
* **Package** -- ``N_P`` chiplets on a directional ring, attached to ``N_P``
  DRAMs through a crossbar.

Presets reproduce the configurations the paper evaluates (the Section VI-A
case study and the Simba-comparable setup).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.memory import RegisterFileModel, SramModel
from repro.arch.technology import DEFAULT_TECHNOLOGY, TechnologyParams
from repro.arch.topology import Topology

KB = 1024


@dataclass(frozen=True)
class MemoryConfig:
    """Buffer capacities of one core plus the chiplet-shared levels.

    Attributes:
        a_l1_bytes: Per-core activation L1 SRAM (double-buffered pair counted
            as one logical capacity, as in the paper's Table II ranges).
        w_l1_bytes: Per-core weight L1 SRAM.
        o_l1_bytes: Per-core output register file (holds 24-bit partial sums).
        a_l2_bytes: Chiplet-shared activation L2 SRAM.
        o_l2_bytes: Chiplet-shared output buffer; the paper sizes it to the
            final elements of a single chiplet workload, so ``0`` means
            "auto-size to the workload" and is resolved by the cost model.
    """

    a_l1_bytes: int
    w_l1_bytes: int
    o_l1_bytes: int
    a_l2_bytes: int
    o_l2_bytes: int = 0

    def __post_init__(self) -> None:
        for name in ("a_l1_bytes", "w_l1_bytes", "o_l1_bytes", "a_l2_bytes", "o_l2_bytes"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class CoreConfig:
    """One accelerator core: an ``L x P`` vector-MAC array.

    Attributes:
        lanes: ``L`` -- output channels computed in parallel.
        vector_size: ``P`` -- input channels reduced per lane per cycle.
    """

    lanes: int
    vector_size: int

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.vector_size < 1:
            raise ValueError(f"vector_size must be >= 1, got {self.vector_size}")

    @property
    def macs(self) -> int:
        """MAC units in the core (L * P)."""
        return self.lanes * self.vector_size


@dataclass(frozen=True)
class ChipletConfig:
    """One chiplet: ``N_C`` identical cores plus shared buffers."""

    cores: int
    core: CoreConfig

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    @property
    def macs(self) -> int:
        """MAC units in the chiplet."""
        return self.cores * self.core.macs


@dataclass(frozen=True)
class PackageConfig:
    """The package: ``N_P`` chiplets with N_P DRAMs behind a crossbar.

    The interconnect defaults to the paper's directional ring (1-to-8
    chiplets); the mesh extension covers tens of chiplets (DESIGN.md).
    """

    chiplets: int
    chiplet: ChipletConfig
    topology: Topology = Topology.RING

    def __post_init__(self) -> None:
        if self.chiplets < 1:
            raise ValueError(f"chiplets must be >= 1, got {self.chiplets}")

    @property
    def macs(self) -> int:
        """MAC units in the whole package."""
        return self.chiplets * self.chiplet.macs


@dataclass(frozen=True)
class HardwareConfig:
    """A complete multichip accelerator instance.

    Combines the structural hierarchy, the buffer capacities, and the
    technology point.  This object is what the mapper and the DSE evaluate.
    """

    package: PackageConfig
    memory: MemoryConfig
    tech: TechnologyParams = DEFAULT_TECHNOLOGY
    name: str = ""

    # --- structural shorthand -------------------------------------------------

    @property
    def n_chiplets(self) -> int:
        """N_P: chiplets on the package."""
        return self.package.chiplets

    @property
    def n_cores(self) -> int:
        """N_C: cores per chiplet."""
        return self.package.chiplet.cores

    @property
    def lanes(self) -> int:
        """L: lanes per core."""
        return self.package.chiplet.core.lanes

    @property
    def vector_size(self) -> int:
        """P: vector-MAC width."""
        return self.package.chiplet.core.vector_size

    @property
    def topology(self) -> Topology:
        """The package interconnect topology."""
        return self.package.topology

    @property
    def total_macs(self) -> int:
        """Total MAC units in the package."""
        return self.package.macs

    def config_tuple(self) -> tuple[int, int, int, int]:
        """The paper's ``(chiplet, core, lane, vector-size)`` x-axis tuple."""
        return (self.n_chiplets, self.n_cores, self.lanes, self.vector_size)

    def label(self) -> str:
        """Human label, e.g. ``4-4-16-8`` as printed on the Figure 14 axis."""
        return "-".join(str(v) for v in self.config_tuple())

    # --- memory macros ----------------------------------------------------------

    def a_l1(self) -> SramModel:
        """Per-core activation L1 macro."""
        return SramModel(self.memory.a_l1_bytes, self.tech)

    def w_l1(self) -> SramModel:
        """Per-core weight L1 macro."""
        return SramModel(self.memory.w_l1_bytes, self.tech)

    def o_l1(self) -> RegisterFileModel:
        """Per-core partial-sum register file."""
        return RegisterFileModel(self.memory.o_l1_bytes, self.tech)

    def a_l2(self) -> SramModel:
        """Chiplet-shared activation L2 macro."""
        return SramModel(self.memory.a_l2_bytes, self.tech)

    def o_l2(self, size_bytes: int | None = None) -> SramModel:
        """Chiplet output buffer, auto-sized when the config says 0.

        Args:
            size_bytes: Workload-resolved size when ``memory.o_l2_bytes == 0``.
        """
        resolved = self.memory.o_l2_bytes or (size_bytes or 0)
        return SramModel(resolved, self.tech)

    def o_l1_psum_capacity(self) -> int:
        """How many partial sums (psum_bits wide) fit in one O-L1."""
        psum_bytes = self.tech.psum_bits / 8.0
        return int(self.memory.o_l1_bytes / psum_bytes)

    def with_memory(self, memory: MemoryConfig) -> "HardwareConfig":
        """Return a copy with a different memory allocation."""
        return replace(self, memory=memory)


# --- presets ---------------------------------------------------------------------


def case_study_hardware(tech: TechnologyParams = DEFAULT_TECHNOLOGY) -> HardwareConfig:
    """The Section VI-A case-study machine.

    "4 chiplets, 8 cores, 8 lanes of 8-size vector MAC, 1.5KB O-L1, 800B A-L1,
    18KB W-L1 and 64KB A-L2."
    """
    core = CoreConfig(lanes=8, vector_size=8)
    chiplet = ChipletConfig(cores=8, core=core)
    package = PackageConfig(chiplets=4, chiplet=chiplet)
    memory = MemoryConfig(
        a_l1_bytes=800,
        w_l1_bytes=18 * KB,
        o_l1_bytes=1536,
        a_l2_bytes=64 * KB,
    )
    return HardwareConfig(package=package, memory=memory, tech=tech, name="case-study-4x8x8x8")


def simba_like_hardware(tech: TechnologyParams = DEFAULT_TECHNOLOGY) -> HardwareConfig:
    """A 4-chiplet Simba prototype with the same resources as the case study.

    The paper's comparison configures Simba "with the same memory and
    computation resources" as the NN-Baton model, so the baseline shares this
    structure and differs only in dataflow (see :mod:`repro.simba`).
    """
    hw = case_study_hardware(tech)
    return replace(hw, name="simba-like-4chiplet")


def proportional_memory(
    package: PackageConfig,
    tech: TechnologyParams = DEFAULT_TECHNOLOGY,
) -> MemoryConfig:
    """Buffer sizes proportional to the computation resources.

    Used by the Figure 14 granularity study: "We assemble the memory hierarchy
    with buffer sizes proportional to the computation resources."  Each buffer
    scales with the MAC count of the level it serves, anchored to the
    case-study machine (a 64-MAC core carries 18 KB W-L1, 800 B A-L1 and
    1.5 KB O-L1; a 512-MAC chiplet carries 64 KB A-L2), so a chiplet's memory
    footprint tracks its compute footprint -- the proportionality that makes
    single-chiplet 2048-MAC designs violate the 2 mm^2 budget.
    """
    core = package.chiplet.core
    core_scale = core.macs / 64
    chiplet_scale = package.chiplet.macs / 512
    a_l1 = max(128, int(800 * core_scale))
    w_l1 = max(2 * KB, int(18 * KB * core_scale))
    o_l1 = max(48, int(1536 * core_scale))
    a_l2 = max(8 * KB, int(64 * KB * chiplet_scale))
    return MemoryConfig(
        a_l1_bytes=a_l1,
        w_l1_bytes=w_l1,
        o_l1_bytes=o_l1,
        a_l2_bytes=a_l2,
    )


def build_hardware(
    chiplets: int,
    cores: int,
    lanes: int,
    vector_size: int,
    memory: MemoryConfig | None = None,
    tech: TechnologyParams = DEFAULT_TECHNOLOGY,
    name: str = "",
    topology: Topology = Topology.RING,
) -> HardwareConfig:
    """Convenience constructor from the four computation dimensions.

    When ``memory`` is omitted, buffers are assembled proportionally to the
    computation resources (the Figure 14 policy).
    """
    package = PackageConfig(
        chiplets=chiplets,
        chiplet=ChipletConfig(cores=cores, core=CoreConfig(lanes=lanes, vector_size=vector_size)),
        topology=topology,
    )
    mem = memory if memory is not None else proportional_memory(package, tech)
    label = name or f"{chiplets}-{cores}-{lanes}-{vector_size}"
    return HardwareConfig(package=package, memory=mem, tech=tech, name=label)
