"""Chiplet and package area accounting.

The paper (Section V-A): "The total area of a chiplet includes SRAM, RF, MAC
units, and the off-chip PHY and ignores the controller and other IP modules."
Area is the decisive constraint of the granularity study (Figure 14: a 2 mm^2
chiplet budget; Figure 15: 3 mm^2), so this model is deliberately explicit
about every contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig


@dataclass(frozen=True)
class ChipletAreaBreakdown:
    """Per-chiplet area contributions in mm^2."""

    macs_mm2: float
    w_l1_mm2: float
    a_l1_mm2: float
    o_l1_mm2: float
    a_l2_mm2: float
    o_l2_mm2: float
    d2d_phy_mm2: float
    ddr_phy_mm2: float

    @property
    def total_mm2(self) -> float:
        """Total chiplet area."""
        return (
            self.macs_mm2
            + self.w_l1_mm2
            + self.a_l1_mm2
            + self.o_l1_mm2
            + self.a_l2_mm2
            + self.o_l2_mm2
            + self.d2d_phy_mm2
            + self.ddr_phy_mm2
        )

    def as_dict(self) -> dict[str, float]:
        """Breakdown as an ordered dict for reporting."""
        return {
            "macs": self.macs_mm2,
            "w_l1": self.w_l1_mm2,
            "a_l1": self.a_l1_mm2,
            "o_l1": self.o_l1_mm2,
            "a_l2": self.a_l2_mm2,
            "o_l2": self.o_l2_mm2,
            "d2d_phy": self.d2d_phy_mm2,
            "ddr_phy": self.ddr_phy_mm2,
            "total": self.total_mm2,
        }


@dataclass(frozen=True)
class AreaModel:
    """Area accounting for one :class:`HardwareConfig`."""

    hw: HardwareConfig
    #: O-L2 size used for area purposes when the config auto-sizes it; a
    #: conservative default equal to the A-L2 capacity divided by four.
    o_l2_default_bytes: int = 0

    def _o_l2_bytes(self) -> int:
        if self.hw.memory.o_l2_bytes:
            return self.hw.memory.o_l2_bytes
        if self.o_l2_default_bytes:
            return self.o_l2_default_bytes
        return self.hw.memory.a_l2_bytes // 4

    def chiplet_breakdown(self) -> ChipletAreaBreakdown:
        """Area of a single chiplet, itemized."""
        hw = self.hw
        tech = hw.tech
        n_cores = hw.n_cores
        per_core_macs = hw.lanes * hw.vector_size
        return ChipletAreaBreakdown(
            macs_mm2=tech.mac_area_mm2(n_cores * per_core_macs),
            w_l1_mm2=n_cores * hw.w_l1().area_mm2,
            a_l1_mm2=n_cores * hw.a_l1().area_mm2,
            o_l1_mm2=n_cores * hw.o_l1().area_mm2,
            a_l2_mm2=hw.a_l2().area_mm2,
            o_l2_mm2=hw.o_l2(self._o_l2_bytes()).area_mm2,
            # One GRS PHY pair endpoint per chiplet (the ring is directional,
            # so each chiplet owns one transmit + one receive macro, which the
            # published 0.38 mm^2 figure already covers).
            d2d_phy_mm2=tech.grs_phy_area_mm2 if hw.n_chiplets > 1 else 0.0,
            ddr_phy_mm2=tech.ddr_phy_area_mm2,
        )

    def chiplet_area_mm2(self) -> float:
        """Total area of one chiplet."""
        return self.chiplet_breakdown().total_mm2

    def package_area_mm2(self) -> float:
        """Total silicon area across all chiplets (dies only)."""
        return self.hw.n_chiplets * self.chiplet_area_mm2()

    def meets_chiplet_constraint(self, max_chiplet_mm2: float) -> bool:
        """Whether every chiplet fits within ``max_chiplet_mm2``."""
        if max_chiplet_mm2 <= 0:
            raise ValueError(f"area constraint must be positive, got {max_chiplet_mm2}")
        return self.chiplet_area_mm2() <= max_chiplet_mm2
