"""Structural validity rules for hardware configurations.

The pre-design sweep "can skip some invalid cases to speed up the space
sweeping, such as the A-L1 size smaller than A-L2 or the total MAC units less
than the required quantities" (Section VI-B).  We read the first rule as a
hierarchy-inversion check: a chiplet-shared A-L2 smaller than one core's A-L1
cannot feed its cores and is pruned.  All rules live here so the DSE, the
mapper, and the tests agree on what "valid" means.
"""

from __future__ import annotations

from repro.arch.area import AreaModel
from repro.arch.config import HardwareConfig
from repro.errors import ConfigError


class ConfigValidationError(ConfigError, ValueError):
    """A hardware configuration violates a structural validity rule.

    Still a ``ValueError`` (the historical contract) and now a
    :class:`repro.errors.ConfigError` (code ``config``, exit 3).
    """


def validation_errors(
    hw: HardwareConfig,
    required_macs: int | None = None,
    max_chiplet_area_mm2: float | None = None,
) -> list[str]:
    """Return every validity violation of ``hw`` (empty list means valid).

    Args:
        hw: Configuration under test.
        required_macs: Minimum total MAC units (the performance budget).
        max_chiplet_area_mm2: Per-chiplet area budget, if any.
    """
    errors: list[str] = []
    mem = hw.memory

    if mem.a_l2_bytes < mem.a_l1_bytes:
        errors.append(
            f"memory hierarchy inversion: A-L2 ({mem.a_l2_bytes} B) smaller "
            f"than a core's A-L1 ({mem.a_l1_bytes} B)"
        )

    # O-L1 must hold at least one partial sum per lane, otherwise no legal
    # core tile exists.
    min_o_l1 = hw.lanes * hw.tech.psum_bits / 8.0
    if mem.o_l1_bytes < min_o_l1:
        errors.append(
            f"O-L1 ({mem.o_l1_bytes} B) cannot hold one {hw.tech.psum_bits}-bit "
            f"partial sum per lane ({min_o_l1:.0f} B required)"
        )

    # W-L1 must hold at least one L x P weight block for the WS dataflow.
    min_w_l1 = hw.lanes * hw.vector_size * hw.tech.data_bits / 8.0
    if mem.w_l1_bytes < min_w_l1:
        errors.append(
            f"W-L1 ({mem.w_l1_bytes} B) cannot hold one LxP weight block "
            f"({min_w_l1:.0f} B required)"
        )

    # A-L1 must hold at least one P-wide activation vector.
    min_a_l1 = hw.vector_size * hw.tech.data_bits / 8.0
    if mem.a_l1_bytes < min_a_l1:
        errors.append(
            f"A-L1 ({mem.a_l1_bytes} B) cannot hold one P-wide activation "
            f"vector ({min_a_l1:.0f} B required)"
        )

    if required_macs is not None and hw.total_macs < required_macs:
        errors.append(
            f"total MAC units ({hw.total_macs}) below the required "
            f"budget ({required_macs})"
        )

    if max_chiplet_area_mm2 is not None:
        area = AreaModel(hw).chiplet_area_mm2()
        if area > max_chiplet_area_mm2:
            errors.append(
                f"chiplet area {area:.3f} mm^2 exceeds the "
                f"{max_chiplet_area_mm2:.3f} mm^2 constraint"
            )

    # The paper's ring interconnect targets 1-to-8 chiplets; the mesh
    # extension covers tens of chiplets.
    if hw.n_chiplets > hw.topology.max_chiplets():
        errors.append(
            f"{hw.topology.value} interconnect model covers 1-to-"
            f"{hw.topology.max_chiplets()} chiplets, got {hw.n_chiplets}"
        )

    return errors


def is_valid(
    hw: HardwareConfig,
    required_macs: int | None = None,
    max_chiplet_area_mm2: float | None = None,
) -> bool:
    """Whether ``hw`` passes every structural rule."""
    return not validation_errors(hw, required_macs, max_chiplet_area_mm2)


def validate_hardware(
    hw: HardwareConfig,
    required_macs: int | None = None,
    max_chiplet_area_mm2: float | None = None,
) -> None:
    """Raise :class:`ConfigValidationError` when ``hw`` is invalid."""
    errors = validation_errors(hw, required_macs, max_chiplet_area_mm2)
    if errors:
        raise ConfigValidationError("; ".join(errors))
