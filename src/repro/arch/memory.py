"""SRAM / register-file macro models and the Figure 10 linear regression.

The paper observes that "the area and power approximately satisfy a linear
relationship with the SRAM size ... which allows us to extend the exploration
space of memory search using linear regression" (Section V-A, Figure 10).

This module provides:

* :class:`SramModel` / :class:`RegisterFileModel` -- concrete macro instances
  with per-bit access energy and area, derived from
  :class:`~repro.arch.technology.TechnologyParams`.
* :class:`LinearFit` -- an ordinary-least-squares y = a + b*x fit (implemented
  from scratch; no scipy dependency in the core path).
* :class:`MemoryLibrary` -- a synthetic "memory compiler" library: a table of
  macro sizes with small deterministic residuals around the linear law, plus
  the regression pass NN-Baton runs to extend the search space.  This
  reproduces the tool's code path even though we do not have ARM's compiler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.arch.technology import DEFAULT_TECHNOLOGY, TechnologyParams

#: Relative x-spread below which a fit is refused: with the spread this close
#: to the float ulp of the x magnitude, the slope is dominated by rounding
#: noise in the inputs themselves and any returned line would be garbage.
_DEGENERATE_RELATIVE_SPREAD = 1e-9


@dataclass(frozen=True)
class LinearFit:
    """Least-squares linear fit ``y = intercept + slope * x``."""

    intercept: float
    slope: float
    r_squared: float

    def __call__(self, x: float) -> float:
        """Evaluate the fit at ``x``."""
        return self.intercept + self.slope * x

    @staticmethod
    def fit(xs: Sequence[float], ys: Sequence[float]) -> "LinearFit":
        """Fit a line to ``(xs, ys)`` by ordinary least squares.

        The moments are accumulated with :func:`math.fsum` on mean-shifted
        values: the naive ``sum((x - mean_x) ** 2)`` loses every significant
        digit when the x-spread is small against the x magnitude
        (catastrophic cancellation), which silently corrupted the Figure 10
        energy/area laws for near-duplicate sample points.

        Raises:
            ValueError: On fewer than two points, mismatched lengths, or a
                relatively degenerate x-spread (all x within
                ``1e-9 * max|x|`` of each other), where no meaningful slope
                exists.
        """
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        n = len(xs)
        if n < 2:
            raise ValueError("need at least two points to fit a line")
        mean_x = math.fsum(xs) / n
        mean_y = math.fsum(ys) / n
        dxs = [x - mean_x for x in xs]
        dys = [y - mean_y for y in ys]
        x_scale = max(abs(x) for x in xs)
        spread = max(xs) - min(xs)
        if spread <= _DEGENERATE_RELATIVE_SPREAD * max(x_scale, 1e-300):
            raise ValueError(
                "relatively degenerate x-spread "
                f"({spread:g} over magnitude {x_scale:g}); cannot fit a line"
            )
        sxx = math.fsum(dx * dx for dx in dxs)
        sxy = math.fsum(dx * dy for dx, dy in zip(dxs, dys))
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        ss_tot = math.fsum(dy * dy for dy in dys)
        ss_res = math.fsum(
            (dy - slope * dx) ** 2 for dx, dy in zip(dxs, dys)
        )
        r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
        return LinearFit(
            intercept=intercept,
            slope=slope,
            r_squared=min(max(r_squared, 0.0), 1.0),
        )


@dataclass(frozen=True)
class SramModel:
    """A concrete SRAM macro of a given size.

    Attributes:
        size_bytes: Macro capacity in bytes.
        tech: Technology point supplying the linear laws.
    """

    size_bytes: int
    tech: TechnologyParams = DEFAULT_TECHNOLOGY

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"SRAM size must be non-negative, got {self.size_bytes}")

    @property
    def size_kb(self) -> float:
        """Capacity in kilobytes."""
        return self.size_bytes / 1024.0

    @property
    def energy_pj_per_bit(self) -> float:
        """Per-bit read/write energy for this macro size."""
        return self.tech.sram_energy_pj_per_bit(self.size_kb)

    @property
    def area_mm2(self) -> float:
        """Silicon area of this macro."""
        return self.tech.sram_area_mm2(self.size_kb)

    def access_energy_pj(self, bits: float) -> float:
        """Energy for transferring ``bits`` through this macro."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return bits * self.energy_pj_per_bit


@dataclass(frozen=True)
class RegisterFileModel:
    """A register file macro (the O-L1 partial-sum store).

    The paper implements O-L1 with registers so a 24-bit read-modify-write
    completes in one cycle at 0.104 pJ/bit.
    """

    size_bytes: int
    tech: TechnologyParams = DEFAULT_TECHNOLOGY

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"RF size must be non-negative, got {self.size_bytes}")

    @property
    def size_kb(self) -> float:
        """Capacity in kilobytes."""
        return self.size_bytes / 1024.0

    @property
    def rmw_energy_pj_per_bit(self) -> float:
        """Per-bit read-modify-write energy (size-independent for an RF)."""
        return self.tech.rf_rmw_energy_pj_per_bit

    @property
    def area_mm2(self) -> float:
        """Silicon area of this register file."""
        return self.tech.rf_area_mm2(self.size_kb)

    def rmw_energy_pj(self, bits: float) -> float:
        """Energy for ``bits`` of read-modify-write traffic."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return bits * self.rmw_energy_pj_per_bit


@dataclass(frozen=True)
class MacroPoint:
    """One entry of the synthetic memory-compiler library."""

    size_kb: float
    area_mm2: float
    energy_pj_per_bit: float


def _residual(size_kb: float, scale: float) -> float:
    """Small deterministic residual so library points are not exactly linear.

    A fixed pseudo-random wobble (~+-2%) derived from the size itself, keeping
    the library reproducible without any RNG state.
    """
    wobble = ((size_kb * 977.0) % 7.0 - 3.0) / 150.0
    return scale * wobble


class MemoryLibrary:
    """A synthetic stand-in for the ARM memory-compiler macro library.

    NN-Baton samples a handful of compiled macros, observes the linear
    size/overhead relationship (Figure 10), and extends the memory search
    space by regression.  This class generates the sample points from the
    technology's linear laws plus small deterministic residuals and exposes
    the same regression step.
    """

    #: Default macro sizes sampled for the Figure 10 fit, in KB.
    DEFAULT_SIZES_KB: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

    def __init__(
        self,
        tech: TechnologyParams = DEFAULT_TECHNOLOGY,
        sizes_kb: Iterable[float] | None = None,
    ) -> None:
        self.tech = tech
        self.sizes_kb = tuple(sizes_kb) if sizes_kb is not None else self.DEFAULT_SIZES_KB
        if any(size <= 0 for size in self.sizes_kb):
            raise ValueError("library macro sizes must be positive")
        self._points = tuple(self._compile(size) for size in self.sizes_kb)

    def _compile(self, size_kb: float) -> MacroPoint:
        """Produce one library macro (linear law + deterministic residual)."""
        area = self.tech.sram_area_mm2(size_kb)
        energy = self.tech.sram_energy_pj_per_bit(size_kb)
        return MacroPoint(
            size_kb=size_kb,
            area_mm2=area * (1.0 + _residual(size_kb, 1.0)),
            energy_pj_per_bit=energy * (1.0 + _residual(size_kb + 13.0, 1.0)),
        )

    @property
    def points(self) -> tuple[MacroPoint, ...]:
        """The compiled macro sample points."""
        return self._points

    def fit_area(self) -> LinearFit:
        """Regress macro area against size (the Figure 10 area line)."""
        return LinearFit.fit(
            [p.size_kb for p in self._points],
            [p.area_mm2 for p in self._points],
        )

    def fit_energy(self) -> LinearFit:
        """Regress per-bit energy against size (the Figure 10 energy line)."""
        return LinearFit.fit(
            [p.size_kb for p in self._points],
            [p.energy_pj_per_bit for p in self._points],
        )

    def extrapolate(self, size_kb: float) -> MacroPoint:
        """Predict an un-compiled macro via the regression fits.

        This is the "extend the exploration space of memory search using
        linear regression" step from Section V-A.
        """
        if size_kb <= 0:
            raise ValueError(f"macro size must be positive, got {size_kb}")
        return MacroPoint(
            size_kb=size_kb,
            area_mm2=max(self.fit_area()(size_kb), 0.0),
            energy_pj_per_bit=max(
                self.fit_energy()(size_kb), self.tech.rf_rmw_energy_pj_per_bit
            ),
        )
