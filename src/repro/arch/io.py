"""Hardware configuration serialization (JSON-friendly dictionaries).

Lets users describe machines in config files and feed them to the CLI
(``python -m repro map model --hw-file machine.json``), and lets the DSE
export its design points for external analysis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.arch.config import (
    ChipletConfig,
    CoreConfig,
    HardwareConfig,
    MemoryConfig,
    PackageConfig,
)
from repro.arch.technology import DEFAULT_TECHNOLOGY, TechnologyParams
from repro.arch.topology import Topology
from repro.errors import DataError


class HardwareSpecError(DataError, ValueError):
    """A hardware description (JSON file or dict) is invalid.

    Still a ``ValueError`` and now a :class:`repro.errors.DataError`
    (code ``data``, exit 4).  Every error escaping this module's loaders
    is of this type -- a missing field no longer leaks as a raw
    ``KeyError``.
    """


def hardware_to_dict(hw: HardwareConfig) -> dict[str, Any]:
    """Serialize a hardware configuration.

    Technology parameters are stored as overrides against the default 16 nm
    point, so files stay small and defaults can evolve.
    """
    tech_overrides = {}
    defaults = DEFAULT_TECHNOLOGY
    for field_name in TechnologyParams.__dataclass_fields__:
        value = getattr(hw.tech, field_name)
        if value != getattr(defaults, field_name):
            tech_overrides[field_name] = value
    return {
        "name": hw.name,
        "chiplets": hw.n_chiplets,
        "cores": hw.n_cores,
        "lanes": hw.lanes,
        "vector_size": hw.vector_size,
        "topology": hw.topology.value,
        "memory": {
            "a_l1_bytes": hw.memory.a_l1_bytes,
            "w_l1_bytes": hw.memory.w_l1_bytes,
            "o_l1_bytes": hw.memory.o_l1_bytes,
            "a_l2_bytes": hw.memory.a_l2_bytes,
            "o_l2_bytes": hw.memory.o_l2_bytes,
        },
        "tech_overrides": tech_overrides,
    }


def hardware_from_dict(data: dict[str, Any]) -> HardwareConfig:
    """Deserialize a hardware configuration.

    Raises:
        HardwareSpecError: When a required field is missing or any field
            has an invalid value.
    """
    try:
        unknown_tech = set(data.get("tech_overrides", {})) - set(
            TechnologyParams.__dataclass_fields__
        )
        if unknown_tech:
            raise HardwareSpecError(
                f"unknown technology overrides: {', '.join(sorted(unknown_tech))}"
            )
        tech = (
            TechnologyParams(**data["tech_overrides"])
            if data.get("tech_overrides")
            else DEFAULT_TECHNOLOGY
        )
        package = PackageConfig(
            chiplets=data["chiplets"],
            chiplet=ChipletConfig(
                cores=data["cores"],
                core=CoreConfig(lanes=data["lanes"], vector_size=data["vector_size"]),
            ),
            topology=Topology(data.get("topology", "ring")),
        )
        memory = MemoryConfig(**data["memory"])
        return HardwareConfig(
            package=package,
            memory=memory,
            tech=tech,
            name=data.get("name", ""),
        )
    except HardwareSpecError:
        raise
    except KeyError as exc:
        raise HardwareSpecError(f"missing hardware field: {exc}") from exc
    except (ValueError, TypeError, AttributeError) as exc:
        raise HardwareSpecError(str(exc)) from exc


def load_hardware(path: str | Path) -> HardwareConfig:
    """Read a hardware configuration from a JSON file.

    Raises:
        HardwareSpecError: For undecodable JSON or an invalid description.
    """
    try:
        data = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise HardwareSpecError(
            f"hardware file {path}: invalid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise HardwareSpecError(
            f"hardware file must contain a JSON object, got {type(data).__name__}"
        )
    return hardware_from_dict(data)


def save_hardware(hw: HardwareConfig, path: str | Path) -> None:
    """Write a hardware configuration to a JSON file."""
    Path(path).write_text(json.dumps(hardware_to_dict(hw), indent=2) + "\n")
