"""Hardware substrate: technology constants, memory/energy/area models, configs.

This subpackage models the physical side of the NN-Baton hardware template:

* :mod:`repro.arch.technology` -- the 16 nm technology operating point and the
  per-operation energy table (paper Table I).
* :mod:`repro.arch.memory` -- SRAM and register-file macro models with the
  linear size scaling of paper Figure 10, including the regression utilities
  NN-Baton uses to extend the memory search space.
* :mod:`repro.arch.energy` -- per-bit access energies for a concrete hardware
  configuration.
* :mod:`repro.arch.area` -- chiplet and package area accounting.
* :mod:`repro.arch.config` -- the three-level hardware description
  (core / chiplet / package) and published presets.
* :mod:`repro.arch.validate` -- structural validity rules used by the DSE
  pruning pass.
"""

from repro.arch.area import AreaModel, ChipletAreaBreakdown
from repro.arch.config import (
    ChipletConfig,
    CoreConfig,
    HardwareConfig,
    MemoryConfig,
    PackageConfig,
    case_study_hardware,
    proportional_memory,
    simba_like_hardware,
)
from repro.arch.energy import EnergyModel
from repro.arch.io import hardware_from_dict, hardware_to_dict, load_hardware, save_hardware
from repro.arch.memory import LinearFit, MemoryLibrary, RegisterFileModel, SramModel
from repro.arch.technology import OperationEnergy, TechnologyParams, TABLE_I
from repro.arch.topology import Topology
from repro.arch.validate import ConfigValidationError, validate_hardware

__all__ = [
    "AreaModel",
    "ChipletAreaBreakdown",
    "ChipletConfig",
    "ConfigValidationError",
    "CoreConfig",
    "EnergyModel",
    "HardwareConfig",
    "LinearFit",
    "MemoryConfig",
    "MemoryLibrary",
    "OperationEnergy",
    "PackageConfig",
    "RegisterFileModel",
    "SramModel",
    "TABLE_I",
    "TechnologyParams",
    "Topology",
    "case_study_hardware",
    "hardware_from_dict",
    "hardware_to_dict",
    "load_hardware",
    "save_hardware",
    "proportional_memory",
    "simba_like_hardware",
    "validate_hardware",
]
