"""Technology operating point and the per-operation energy table.

All constants reproduce the 16 nm numbers published in the paper:

* Table I -- per-bit energies of DRAM access (8.75 pJ/bit), die-to-die GRS
  transfer (1.17 pJ/bit), a 32 KB L2 SRAM access (0.81 pJ/bit), a 1 KB L1
  SRAM access (0.30 pJ/bit), a register read-modify-write (0.104 pJ/bit),
  and an 8-bit MAC operation (0.024 pJ/op).
* Section V-A -- 135.1 um^2 and 0.024 pJ/op per 8-bit MAC at 500 MHz after
  scaling the UMC 28 nm synthesis result to 16 nm; 0.38 mm^2 GRS PHY area.

Constants the paper does not publish (absolute SRAM density, DRAM and link
bandwidths) are explicit fields on :class:`TechnologyParams` so experiments
can state exactly which calibration they used.  Their defaults are chosen so
the paper's qualitative DSE conclusions hold (see DESIGN.md section 3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperationEnergy:
    """One row of the paper's Table I.

    Attributes:
        name: Operation label as printed in the paper.
        energy_pj_per_bit: Energy per transferred bit (per op for the MAC row).
        relative_cost: Cost normalized to an 8-bit MAC, as listed in Table I.
        feature: The paper's one-line characterization of the operation.
    """

    name: str
    energy_pj_per_bit: float
    relative_cost: float
    feature: str


#: The paper's Table I, reproduced verbatim.  The relative-cost column is the
#: published value (DRAM at 364.58x normalizes an 8-bit transfer against one
#: 8-bit MAC: 8.75 * 8 / 0.024 / 8 = 364.58).
TABLE_I: tuple[OperationEnergy, ...] = (
    OperationEnergy(
        name="DRAM access",
        energy_pj_per_bit=8.75,
        relative_cost=364.58,
        feature="Slave on a standard high-speed bus, reached through a DDR PHY",
    ),
    OperationEnergy(
        name="Die-to-die communication",
        energy_pj_per_bit=1.17,
        relative_cost=53.75,
        feature="Goes through a pair of D2D (GRS) PHYs between chiplets",
    ),
    OperationEnergy(
        name="L2 access (32KB SRAM)",
        energy_pj_per_bit=0.81,
        relative_cost=33.75,
        feature="SRAM multicast or unicast via the central bus",
    ),
    OperationEnergy(
        name="L1 access (1KB SRAM)",
        energy_pj_per_bit=0.30,
        relative_cost=12.5,
        feature="Core-local double-buffered SRAM",
    ),
    OperationEnergy(
        name="Register read-modify-write",
        energy_pj_per_bit=0.104,
        relative_cost=4.3,
        feature="Frequently accessed in the WS dataflow (partial sums)",
    ),
    OperationEnergy(
        name="8bit MAC",
        energy_pj_per_bit=0.024,
        relative_cost=1.0,
        feature="Energy decided by utilization",
    ),
)


def table_i_row(name: str) -> OperationEnergy:
    """Return the Table I row whose name contains ``name`` (case-insensitive).

    Raises:
        KeyError: If no row matches.
    """
    needle = name.lower()
    for row in TABLE_I:
        if needle in row.name.lower():
            return row
    raise KeyError(f"no Table I operation matching {name!r}")


@dataclass(frozen=True)
class TechnologyParams:
    """The 16 nm technology point every model in this repo consumes.

    Published constants default to the paper's values; unpublished constants
    are calibration knobs documented in DESIGN.md.
    """

    # --- published constants (paper Table I / Section V-A) ---
    process_nm: int = 16
    frequency_mhz: float = 500.0
    mac_energy_pj: float = 0.024          # per 8-bit MAC operation
    mac_area_um2: float = 135.1           # per 8-bit MAC unit
    dram_energy_pj_per_bit: float = 8.75
    d2d_energy_pj_per_bit: float = 1.17   # GRS link, one hop (a PHY pair)
    rf_rmw_energy_pj_per_bit: float = 0.104
    l1_anchor_kb: float = 1.0             # Table I anchor: 1 KB SRAM
    l1_anchor_pj_per_bit: float = 0.30
    l2_anchor_kb: float = 32.0            # Table I anchor: 32 KB SRAM
    l2_anchor_pj_per_bit: float = 0.81
    grs_phy_area_mm2: float = 0.38

    # --- data widths (Section V) ---
    data_bits: int = 8                    # activations and weights
    psum_bits: int = 24                   # reserved partial-sum width

    # --- calibration knobs (not published; see DESIGN.md section 3) ---
    sram_area_mm2_per_kb: float = 4.0e-3  # macro slope
    sram_area_fixed_mm2: float = 3.0e-3   # per-macro periphery
    rf_area_mm2_per_kb: float = 6.0e-3    # register files are area-hungrier
    rf_area_fixed_mm2: float = 1.0e-3
    ddr_phy_area_mm2: float = 0.20        # off-chip PHY share per chiplet
    dram_bandwidth_bits_per_cycle: float = 256.0   # one DRAM channel
    ring_bandwidth_bits_per_cycle: float = 128.0   # one directional ring link
    bus_bandwidth_bits_per_cycle: float = 512.0    # chiplet central bus

    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.frequency_mhz

    def sram_energy_pj_per_bit(self, size_kb: float) -> float:
        """Per-bit access energy of an SRAM macro of ``size_kb`` kilobytes.

        Linear interpolation through the paper's two Table I anchor points
        (1 KB -> 0.30 pJ/bit, 32 KB -> 0.81 pJ/bit), matching the linear
        size/overhead relationship of Figure 10.  The fit is clamped below at
        the register-file energy so tiny SRAMs stay physical.
        """
        if size_kb < 0:
            raise ValueError(f"SRAM size must be non-negative, got {size_kb}")
        slope = (self.l2_anchor_pj_per_bit - self.l1_anchor_pj_per_bit) / (
            self.l2_anchor_kb - self.l1_anchor_kb
        )
        energy = self.l1_anchor_pj_per_bit + slope * (size_kb - self.l1_anchor_kb)
        return max(energy, self.rf_rmw_energy_pj_per_bit)

    def sram_area_mm2(self, size_kb: float) -> float:
        """Area of an SRAM macro of ``size_kb`` kilobytes (linear law)."""
        if size_kb < 0:
            raise ValueError(f"SRAM size must be non-negative, got {size_kb}")
        if size_kb == 0:
            return 0.0
        return self.sram_area_fixed_mm2 + self.sram_area_mm2_per_kb * size_kb

    def rf_area_mm2(self, size_kb: float) -> float:
        """Area of a register-file macro of ``size_kb`` kilobytes."""
        if size_kb < 0:
            raise ValueError(f"RF size must be non-negative, got {size_kb}")
        if size_kb == 0:
            return 0.0
        return self.rf_area_fixed_mm2 + self.rf_area_mm2_per_kb * size_kb

    def mac_area_mm2(self, n_macs: int) -> float:
        """Area of ``n_macs`` 8-bit MAC units."""
        if n_macs < 0:
            raise ValueError(f"MAC count must be non-negative, got {n_macs}")
        return n_macs * self.mac_area_um2 * 1e-6


#: Module-level default technology point (the paper's 16 nm setup).
DEFAULT_TECHNOLOGY = TechnologyParams()
