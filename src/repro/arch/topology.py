"""Network-on-Package topologies: the paper's ring plus a mesh extension.

The paper "employ[s] the directional ring network on package interconnecting
1-to-8 chiplets rather than an intricate network for tens of chiplets"
(Section I) -- the intricate network being Simba's 6x6 2D mesh.  This module
models both so the framework can scale past eight chiplets:

* **RING** -- one directional link per chiplet.  Sharing data among all
  chiplets (the rotating transfer) moves every shared bit across
  ``N_P - 1`` links.
* **MESH** -- a near-square 2D mesh with bidirectional links.  Shared data
  is distributed along a multicast spanning tree, which also traverses
  ``N_P - 1`` edges, so the *energy* per shared bit matches the ring; what
  changes is the link count (bandwidth) and the validity range.

Energy per link traversal is one GRS PHY-pair hop in both cases (Table I).
"""

from __future__ import annotations

import math
from enum import Enum


class Topology(Enum):
    """The package interconnect style."""

    RING = "ring"
    MESH = "mesh"

    def max_chiplets(self) -> int:
        """Validity range of the topology model.

        The ring follows the paper's 1-to-8 scope; the mesh extension covers
        "tens of chiplets" up to Simba's 36 and a bit beyond.
        """
        return 8 if self is Topology.RING else 64

    def mesh_dims(self, n_chiplets: int) -> tuple[int, int]:
        """Near-square (rows, cols) arrangement for a mesh of ``n_chiplets``."""
        if n_chiplets < 1:
            raise ValueError(f"chiplet count must be >= 1, got {n_chiplets}")
        rows = int(math.isqrt(n_chiplets))
        while n_chiplets % rows:
            rows -= 1
        return rows, n_chiplets // rows

    def link_count(self, n_chiplets: int) -> int:
        """Physical link count (directional ring links / mesh edges)."""
        if n_chiplets < 1:
            raise ValueError(f"chiplet count must be >= 1, got {n_chiplets}")
        if n_chiplets == 1:
            return 0
        if self is Topology.RING:
            return n_chiplets
        rows, cols = self.mesh_dims(n_chiplets)
        return rows * (cols - 1) + cols * (rows - 1)

    def sharing_hops_per_bit(self, n_chiplets: int) -> int:
        """Link traversals for one bit shared among all chiplets.

        Ring rotation forwards each bit across ``N_P - 1`` links; a mesh
        multicast spanning tree also has ``N_P - 1`` edges.  Energy is
        therefore topology-independent -- the paper's ring choice is about
        design simplicity, not energy.
        """
        if n_chiplets < 1:
            raise ValueError(f"chiplet count must be >= 1, got {n_chiplets}")
        return max(n_chiplets - 1, 0)

    def average_distance(self, n_chiplets: int) -> float:
        """Mean hop distance between distinct chiplets (latency proxy)."""
        if n_chiplets < 1:
            raise ValueError(f"chiplet count must be >= 1, got {n_chiplets}")
        if n_chiplets == 1:
            return 0.0
        if self is Topology.RING:
            # Directional ring: the distance from i to j is (j - i) mod n,
            # uniform over {1, ..., n-1} across distinct pairs -> mean n/2.
            return n_chiplets / 2.0
        rows, cols = self.mesh_dims(n_chiplets)
        # Mean Manhattan distance on a rows x cols grid: per axis, the mean
        # |a - b| over uniform a, b in [0, n) is (n^2 - 1) / (3n).
        def mean_axis(n: int) -> float:
            return (n * n - 1) / (3 * n) if n > 1 else 0.0

        return mean_axis(rows) + mean_axis(cols)
