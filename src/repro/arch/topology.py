"""Network-on-Package topologies: the paper's ring plus pluggable extensions.

The paper "employ[s] the directional ring network on package interconnecting
1-to-8 chiplets rather than an intricate network for tens of chiplets"
(Section I) -- the intricate network being Simba's 6x6 2D mesh.  This module
generalizes the interconnect into a pluggable interface so the framework can
scale past eight chiplets and model alternative fabrics:

* :class:`Topology` is the serializable *handle* -- a small enum stored on
  :class:`~repro.arch.config.PackageConfig` and round-tripped through config
  files by value (``"ring"``/``"mesh"``/``"switch"``).
* :class:`TopologyModel` is the *behaviour* -- link geometry, sharing cost
  and validity range.  Each enum member delegates to the model registered
  for its value; :func:`register_topology` swaps a model in (for
  experimentation or custom fabrics with the same handle).

Built-in models:

* **RING** -- one directional link per chiplet.  Sharing data among all
  chiplets (the rotating transfer) moves every shared bit across
  ``N_P - 1`` links.
* **MESH** -- a near-square 2D mesh with bidirectional links.  Shared data
  is distributed along a multicast spanning tree, which also traverses
  ``N_P - 1`` edges, so the *energy* per shared bit matches the ring; what
  changes is the link count (bandwidth) and the validity range.
* **SWITCH** -- a central crossbar with one full-duplex port per chiplet.
  A shared bit leaves the owner's uplink once and is replicated onto the
  ``N_P - 1`` receiver downlinks, so sharing costs ``N_P`` link traversals;
  any unicast crosses exactly two links.  The crossbar radix bounds the
  chiplet count.

Energy per link traversal is one GRS PHY-pair hop in all cases (Table I).
Per-link *contention* is modeled where the links are actually scheduled:
the tile-pipeline DES spreads rotation traffic over ``link_count`` discrete
:class:`~repro.sim.des.BandwidthResource` links, and the audit's analytical
channel term charges the same per-link occupancy.
"""

from __future__ import annotations

import math
from enum import Enum


def _check_chiplets(n_chiplets: int) -> None:
    if n_chiplets < 1:
        raise ValueError(f"chiplet count must be >= 1, got {n_chiplets}")


class TopologyModel:
    """Geometry and sharing-cost model behind one :class:`Topology` handle.

    Subclass and :func:`register_topology` an instance to plug a different
    fabric model under an existing handle.  Implementations must keep
    ``n_chiplets == 1`` degenerate (no links, zero sharing cost).
    """

    def max_chiplets(self) -> int:
        """Largest chiplet count the model claims validity for."""
        raise NotImplementedError

    def link_count(self, n_chiplets: int) -> int:
        """Number of physical package links available to rotation traffic."""
        raise NotImplementedError

    def sharing_hops_per_bit(self, n_chiplets: int) -> int:
        """Link traversals for one bit shared among all chiplets."""
        raise NotImplementedError

    def average_distance(self, n_chiplets: int) -> float:
        """Mean hop distance between distinct chiplets (latency proxy)."""
        raise NotImplementedError


class RingModel(TopologyModel):
    """The paper's directional ring (1-to-8 chiplets, one link each)."""

    def max_chiplets(self) -> int:
        return 8

    def link_count(self, n_chiplets: int) -> int:
        _check_chiplets(n_chiplets)
        return 0 if n_chiplets == 1 else n_chiplets

    def sharing_hops_per_bit(self, n_chiplets: int) -> int:
        # Ring rotation forwards each bit across N_P - 1 links.
        _check_chiplets(n_chiplets)
        return max(n_chiplets - 1, 0)

    def average_distance(self, n_chiplets: int) -> float:
        _check_chiplets(n_chiplets)
        if n_chiplets == 1:
            return 0.0
        # Directional ring: the distance from i to j is (j - i) mod n,
        # uniform over {1, ..., n-1} across distinct pairs -> mean n/2.
        return n_chiplets / 2.0


class MeshModel(TopologyModel):
    """Near-square 2D mesh with bidirectional links (Simba-class scaling)."""

    def max_chiplets(self) -> int:
        # "Tens of chiplets": up to Simba's 36 and a bit beyond.
        return 64

    @staticmethod
    def dims(n_chiplets: int) -> tuple[int, int]:
        """Near-square (rows, cols) arrangement for ``n_chiplets``."""
        _check_chiplets(n_chiplets)
        rows = int(math.isqrt(n_chiplets))
        while n_chiplets % rows:
            rows -= 1
        return rows, n_chiplets // rows

    def link_count(self, n_chiplets: int) -> int:
        _check_chiplets(n_chiplets)
        if n_chiplets == 1:
            return 0
        rows, cols = self.dims(n_chiplets)
        return rows * (cols - 1) + cols * (rows - 1)

    def sharing_hops_per_bit(self, n_chiplets: int) -> int:
        # A multicast spanning tree over N_P nodes has N_P - 1 edges, so the
        # energy per shared bit matches the ring -- the paper's ring choice
        # is about design simplicity, not energy.
        _check_chiplets(n_chiplets)
        return max(n_chiplets - 1, 0)

    def average_distance(self, n_chiplets: int) -> float:
        _check_chiplets(n_chiplets)
        if n_chiplets == 1:
            return 0.0
        rows, cols = self.dims(n_chiplets)

        # Mean Manhattan distance on a rows x cols grid: per axis, the mean
        # |a - b| over uniform a, b in [0, n) is (n^2 - 1) / (3n).
        def mean_axis(n: int) -> float:
            return (n * n - 1) / (3 * n) if n > 1 else 0.0

        return mean_axis(rows) + mean_axis(cols)


class SwitchModel(TopologyModel):
    """Central crossbar: one full-duplex port (link) per chiplet."""

    def max_chiplets(self) -> int:
        # Crossbar area/power grows quadratically with radix; cap it at a
        # plausible package-level switch.
        return 16

    def link_count(self, n_chiplets: int) -> int:
        _check_chiplets(n_chiplets)
        return 0 if n_chiplets == 1 else n_chiplets

    def sharing_hops_per_bit(self, n_chiplets: int) -> int:
        # One uplink traversal out of the owner plus a replicated copy down
        # each of the N_P - 1 receiver ports.
        _check_chiplets(n_chiplets)
        return n_chiplets if n_chiplets > 1 else 0

    def average_distance(self, n_chiplets: int) -> float:
        _check_chiplets(n_chiplets)
        # Any unicast crosses exactly two links: uplink then downlink.
        return 0.0 if n_chiplets == 1 else 2.0


class Topology(Enum):
    """The package interconnect handle (see the module docstring)."""

    RING = "ring"
    MESH = "mesh"
    SWITCH = "switch"

    @property
    def model(self) -> TopologyModel:
        """The registered behaviour model for this handle."""
        return _MODELS[self.value]

    def max_chiplets(self) -> int:
        """Validity range of the topology model."""
        return self.model.max_chiplets()

    def mesh_dims(self, n_chiplets: int) -> tuple[int, int]:
        """Near-square (rows, cols) arrangement for a mesh of ``n_chiplets``."""
        return MeshModel.dims(n_chiplets)

    def link_count(self, n_chiplets: int) -> int:
        """Physical link count (ring links / mesh edges / crossbar ports)."""
        return self.model.link_count(n_chiplets)

    def sharing_hops_per_bit(self, n_chiplets: int) -> int:
        """Link traversals for one bit shared among all chiplets."""
        return self.model.sharing_hops_per_bit(n_chiplets)

    def average_distance(self, n_chiplets: int) -> float:
        """Mean hop distance between distinct chiplets (latency proxy)."""
        return self.model.average_distance(n_chiplets)


_MODELS: dict[str, TopologyModel] = {
    Topology.RING.value: RingModel(),
    Topology.MESH.value: MeshModel(),
    Topology.SWITCH.value: SwitchModel(),
}


def register_topology(handle: Topology, model: TopologyModel) -> TopologyModel:
    """Register ``model`` as the behaviour behind ``handle``.

    Returns the model previously registered, so callers can restore it.
    Mapping caches key on the hardware digest (which embeds the handle's
    value only), so swapping models for the same handle should be paired
    with a fresh cache directory.
    """
    if not isinstance(handle, Topology):
        raise TypeError(f"handle must be a Topology member, got {handle!r}")
    previous = _MODELS[handle.value]
    _MODELS[handle.value] = model
    return previous
