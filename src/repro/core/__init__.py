"""NN-Baton's primary contribution: the hierarchical analytical framework.

* :mod:`repro.core.primitives` -- spatial / temporal / rotating primitives of
  the output-centric dataflow description (Section IV-A).
* :mod:`repro.core.partition` -- planar partition patterns and halo analysis
  (Section IV-C, Figures 7-8).
* :mod:`repro.core.loopnest` -- per-core temporal loop nests built from a
  mapping.
* :mod:`repro.core.c3p` -- the Critical-Capacity Critical-Position memory
  access methodology (Section IV-B, Equations 1-2).
* :mod:`repro.core.traffic` -- hierarchical traffic assembly (DRAM, die-to-die
  ring, L2, L1, register file) including the rotating transfer.
* :mod:`repro.core.cost` -- energy / runtime / area / EDP evaluation.
* :mod:`repro.core.mapping`, :mod:`repro.core.space`,
  :mod:`repro.core.mapper` -- the post-design flow (per-layer exhaustive
  mapping search).
* :mod:`repro.core.dse` -- the pre-design flow (chiplet granularity and
  resource allocation exploration).
* :mod:`repro.core.baton` -- the NN-Baton facade tying both flows together.
"""

from repro.core.baton import NNBaton, PostDesignResult, PreDesignResult
from repro.core.cache import MappingCache
from repro.core.checkpoint import SweepCheckpoint, sweep_digest
from repro.core.cost import CostReport, EnergyBreakdown, evaluate_mapping
from repro.core.parallel import (
    SweepStats,
    TaskError,
    TaskFailure,
    TaskPolicy,
    TransientTaskError,
    resolve_jobs,
    run_tasks,
)
from repro.core.heuristics import heuristic_map_model, heuristic_mapping
from repro.core.c3p import C3PAnalysis, CriticalPoint
from repro.core.loopnest import Loop, LoopNest
from repro.core.mapper import LayerMappingResult, Mapper, map_model
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid, factor_grids, halo_redundancy_ratio
from repro.core.primitives import (
    LoopOrder,
    PartitionDim,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.core.space import MappingSpace
from repro.core.dse import (
    DesignPoint,
    DesignSpace,
    explore,
    granularity_study,
    pareto_front,
    refine_with_simulator,
)

__all__ = [
    "C3PAnalysis",
    "CostReport",
    "CriticalPoint",
    "DesignPoint",
    "DesignSpace",
    "EnergyBreakdown",
    "LayerMappingResult",
    "Loop",
    "LoopNest",
    "LoopOrder",
    "Mapper",
    "Mapping",
    "MappingCache",
    "MappingSpace",
    "NNBaton",
    "SweepCheckpoint",
    "SweepStats",
    "TaskError",
    "TaskFailure",
    "TaskPolicy",
    "TransientTaskError",
    "PartitionDim",
    "PlanarGrid",
    "PostDesignResult",
    "PreDesignResult",
    "RotationKind",
    "SpatialPrimitive",
    "TemporalPrimitive",
    "evaluate_mapping",
    "explore",
    "factor_grids",
    "granularity_study",
    "heuristic_map_model",
    "heuristic_mapping",
    "pareto_front",
    "refine_with_simulator",
    "resolve_jobs",
    "run_tasks",
    "sweep_digest",
    "halo_redundancy_ratio",
    "map_model",
]
