"""Mapping serialization: the hardware-compiler-facing report.

The paper: "The reported information can be potentially used for the
optimization of the hardware compiler" (Section IV-D).  This module turns
mappings and post-design results into plain JSON-serializable dictionaries
and back, so a downstream toolchain can consume NN-Baton's output without
importing its internals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.arch.config import HardwareConfig
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    PartitionDim,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.workloads.layer import ConvLayer


def spatial_to_dict(spatial: SpatialPrimitive) -> dict[str, Any]:
    """Serialize a spatial primitive."""
    return {
        "dim": spatial.dim.value,
        "co_ways": spatial.co_ways,
        "grid_rows": spatial.grid.rows,
        "grid_cols": spatial.grid.cols,
    }


def spatial_from_dict(data: dict[str, Any]) -> SpatialPrimitive:
    """Deserialize a spatial primitive."""
    return SpatialPrimitive(
        dim=PartitionDim(data["dim"]),
        co_ways=data["co_ways"],
        grid=PlanarGrid(data["grid_rows"], data["grid_cols"]),
    )


def temporal_to_dict(temporal: TemporalPrimitive) -> dict[str, Any]:
    """Serialize a temporal primitive."""
    return {
        "order": temporal.order.value,
        "tile_h": temporal.tile_h,
        "tile_w": temporal.tile_w,
        "tile_co": temporal.tile_co,
    }


def temporal_from_dict(data: dict[str, Any]) -> TemporalPrimitive:
    """Deserialize a temporal primitive."""
    return TemporalPrimitive(
        order=LoopOrder(data["order"]),
        tile_h=data["tile_h"],
        tile_w=data["tile_w"],
        tile_co=data["tile_co"],
    )


def mapping_to_dict(mapping: Mapping) -> dict[str, Any]:
    """Serialize a complete mapping."""
    return {
        "package_spatial": spatial_to_dict(mapping.package_spatial),
        "package_temporal": temporal_to_dict(mapping.package_temporal),
        "chiplet_spatial": spatial_to_dict(mapping.chiplet_spatial),
        "chiplet_temporal": temporal_to_dict(mapping.chiplet_temporal),
        "rotation": mapping.rotation.value,
    }


def mapping_from_dict(data: dict[str, Any]) -> Mapping:
    """Deserialize a complete mapping (round-trips :func:`mapping_to_dict`)."""
    return Mapping(
        package_spatial=spatial_from_dict(data["package_spatial"]),
        package_temporal=temporal_from_dict(data["package_temporal"]),
        chiplet_spatial=spatial_from_dict(data["chiplet_spatial"]),
        chiplet_temporal=temporal_from_dict(data["chiplet_temporal"]),
        rotation=RotationKind(data["rotation"]),
    )


def hardware_to_dict(hw: HardwareConfig) -> dict[str, Any]:
    """Serialize everything about a machine that affects search results.

    The ``name`` label is deliberately excluded: two machines that differ
    only in their human-readable name evaluate every mapping identically,
    so they must share cache entries (:mod:`repro.core.cache`).
    """
    return {
        "config": list(hw.config_tuple()),
        "topology": hw.topology.value,
        "memory": dataclasses.asdict(hw.memory),
        "tech": dataclasses.asdict(hw.tech),
    }


def hardware_digest(hw: HardwareConfig) -> str:
    """A stable hex digest of a machine's search-relevant state.

    Used as the hardware component of mapping-cache keys: any change to the
    structural hierarchy, buffer capacities or technology point yields a new
    digest and therefore invalidates previously cached mappings.
    """
    canonical = json.dumps(hardware_to_dict(hw), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def layer_to_dict(layer: ConvLayer) -> dict[str, Any]:
    """Serialize a layer's shape."""
    return {
        "name": layer.name,
        "h": layer.h,
        "w": layer.w,
        "ci": layer.ci,
        "co": layer.co,
        "kh": layer.kh,
        "kw": layer.kw,
        "stride": layer.stride,
        "padding": layer.padding,
        "groups": layer.groups,
    }


def layer_from_dict(data: dict[str, Any]) -> ConvLayer:
    """Deserialize a layer."""
    return ConvLayer(**data)


def compiler_report(
    layer: ConvLayer, hw: HardwareConfig, mapping: Mapping
) -> dict[str, Any]:
    """The full per-layer deployment record a hardware compiler consumes.

    Includes the spatial/temporal primitives, the resolved loop counts and
    tile extents, and the sharing-mode configuration ("the organization of
    W-L1 buffers, the central bus mode for data sharing, and the transfer
    path for die-to-die sharing are then reconfigured", Section IV-A).
    """
    nest = LoopNest(layer=layer, hw=hw, mapping=mapping)
    return {
        "layer": layer_to_dict(layer),
        "mapping": mapping_to_dict(mapping),
        "loop_nest": {
            "core_tile": [nest.core_ho, nest.core_wo, nest.core_co],
            "chiplet_tile": [nest.tile_ho, nest.tile_wo, nest.tile_co],
            "loops_inner_to_outer": [
                {"kind": loop.kind, "level": loop.level, "count": loop.count}
                for loop in nest.loops()
            ],
        },
        "sharing": {
            "w_l1_pool_group_size": mapping.chiplet_spatial.grid.ways,
            "bus_multicast_groups": mapping.chiplet_spatial.co_ways,
            "ring_rotation": mapping.rotation.value,
        },
    }
