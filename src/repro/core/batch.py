"""Vectorized batch cost-model kernel (struct-of-arrays C3P evaluation).

The scalar pipeline (:mod:`repro.core.c3p` -> :mod:`repro.core.traffic` ->
:mod:`repro.core.cost`) walks one ``(layer, hw, mapping)`` triple at a time
through Python objects.  This module evaluates *every* candidate of one
``(layer, hw)`` pair in a handful of numpy array operations: the candidate
mappings are encoded as int64/float64 columns (tile extents, clamped
loop-nest bounds, spatial primitives, rotation/order codes) and the three
C3P walks, the traffic assembly and the energy/cycles/EDP scalarization run
over all rows at once.

**Bit-identity contract.**  The scalar path is the golden oracle; this
kernel must agree with it to the last float.  Three rules make that hold:

* every float expression replicates the scalar path's association order
  (e.g. ``(fill * n_cores) * n_chiplets``, the ``EnergyBreakdown.total_pj``
  component order, ``(energy * 1e-12) * runtime``) -- IEEE-754 float64 ops
  are deterministic, so equal operand order means equal bits;
* integer quantities (loop counts, cycles, weight-read bits) stay in int64
  until the exact point where the scalar path first mixes them into a
  float, so the int->float64 conversion happens once, correctly rounded,
  on the same value;
* int64 products whose float64 estimate exceeds ``2**62`` abort the batch
  (:class:`BatchOverflowError`) -- the caller falls back to the scalar
  path, which computes with arbitrary-precision Python ints.  Real mapping
  spaces sit many orders of magnitude below this bound.

The winner selection mirrors the mapper's strict-``<`` scan: invalid lanes
are masked to ``+inf`` and ``np.argmin`` returns the *first* index of the
minimum, which is exactly the first-in-enumeration winner the scalar loop
keeps on ties.

``REPRO_BATCH_KERNEL=0`` (or ``false``/``off``/``no``) opts out and forces
the scalar path everywhere; the kernel is the default when numpy imports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

try:  # numpy is a hard dependency of the package, but stay importable without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised via _set_numpy_for_tests
    np = None  # type: ignore[assignment]

from repro import obs
from repro.arch.config import HardwareConfig
from repro.arch.energy import EnergyModel
from repro.core.mapping import Mapping
from repro.core.primitives import PartitionDim, RotationKind
from repro.errors import ConfigError, ResourceExhaustedError
from repro.workloads.layer import ConvLayer

#: Environment switch; default on, ``0/false/off/no`` disables.
BATCH_KERNEL_ENV = "REPRO_BATCH_KERNEL"

#: Environment variable capping the kernel's working-set size (bytes).
#: When set, candidate lists are evaluated in chunks small enough to fit;
#: the chunked winner scan is bit-identical to the single-shot one.
BATCH_MAX_BYTES_ENV = "REPRO_BATCH_MAX_BYTES"

#: Estimated peak bytes one candidate row costs across the kernel's
#: intermediate and result columns (~60 float64/int64 arrays plus numpy
#: overhead); deliberately generous so the cap errs toward smaller chunks.
_BATCH_BYTES_PER_CANDIDATE = 1024

#: Loop-kind codes used by the slot walk (order is cosmetic, values are not).
_KIND_C, _KIND_W, _KIND_H = 0, 1, 2

#: int64 magnitude guard: products whose float64 estimate clears this bound
#: may have lost exactness (or wrapped), so the batch aborts to scalar.
_INT64_SAFE_LIMIT = float(2**62)


class BatchOverflowError(ResourceExhaustedError, OverflowError):
    """An int64 product left the exactness-guaranteed range; use scalar.

    Still an ``OverflowError`` (the historical contract) and now a
    :class:`repro.errors.ResourceExhaustedError` (code
    ``resource-exhausted``, exit 6) -- though callers normally absorb it
    by falling back to the arbitrary-precision scalar path.
    """


def batch_chunk_candidates() -> int | None:
    """The per-chunk candidate cap from ``REPRO_BATCH_MAX_BYTES``.

    ``None`` when unset (evaluate every candidate in one shot).  The byte
    budget divides by :data:`_BATCH_BYTES_PER_CANDIDATE`, floored at one
    candidate per chunk so a tiny budget degrades to scalar-like batching
    instead of failing.

    Raises:
        ConfigError: When the variable is set to anything but a
            non-negative integer.
    """
    raw = os.environ.get(BATCH_MAX_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{BATCH_MAX_BYTES_ENV} must be a byte count, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(f"{BATCH_MAX_BYTES_ENV} must be >= 0, got {value}")
    return max(1, value // _BATCH_BYTES_PER_CANDIDATE)


def numpy_available() -> bool:
    """Whether the numpy backend imported."""
    return np is not None


def batch_kernel_enabled() -> bool:
    """The effective on/off switch (numpy present and env not opted out)."""
    if np is None:
        return False
    raw = os.environ.get(BATCH_KERNEL_ENV, "").strip().lower()
    if not raw:
        return True
    return raw not in ("0", "false", "off", "no")


@dataclass(frozen=True)
class BatchResult:
    """Struct-of-arrays evaluation of one candidate list on one (layer, hw).

    Every array has one row per candidate, aligned with ``candidates``.
    Candidate-independent terms (output drain, per-cycle PE feeds) are kept
    as Python scalars, exactly as the scalar traffic assembly produces them.
    Rows where ``valid`` is ``False`` carry the arithmetic the walks produced
    anyway; only the masked score selects winners.
    """

    candidates: list[Mapping]
    valid: "np.ndarray"

    # C3P walk outputs (bits / factors, float64)
    weight_a0_bits: "np.ndarray"
    weight_reload: "np.ndarray"
    weight_fill_bits: "np.ndarray"
    a_l1_cc0_bytes: "np.ndarray"
    a_l1_a0_bits: "np.ndarray"
    a_l1_reload: "np.ndarray"
    a_l1_fill_bits: "np.ndarray"
    a_l2_a0_bits: "np.ndarray"
    a_l2_reload: "np.ndarray"
    a_l2_fill_bits: "np.ndarray"

    # traffic (float64 arrays; scalar terms are candidate-independent)
    dram_input_bits: "np.ndarray"
    dram_weight_bits: "np.ndarray"
    dram_output_bits: int
    d2d_bit_hops: "np.ndarray"
    a_l2_write_bits: "np.ndarray"
    a_l2_read_bits: "np.ndarray"
    a_l1_write_bits: "np.ndarray"
    a_l1_read_bits: float
    w_l1_write_bits: "np.ndarray"
    w_l1_read_bits: "np.ndarray"
    rf_rmw_bits: float
    rf_drain_bits: int

    # energy (pJ, float64 arrays except the candidate-independent scalars)
    dram_pj: "np.ndarray"
    d2d_pj: "np.ndarray"
    a_l2_pj: "np.ndarray"
    o_l2_pj: "np.ndarray"
    a_l1_pj: "np.ndarray"
    w_l1_pj: "np.ndarray"
    rf_pj: float
    mac_pj: float
    energy_pj: "np.ndarray"

    # scalarization
    o_l2_bytes: "np.ndarray"
    cycles: "np.ndarray"
    edp: "np.ndarray"

    def __len__(self) -> int:
        return len(self.candidates)

    @property
    def evaluated(self) -> int:
        """Valid candidates (the scalar loop's ``evaluated`` counter)."""
        return int(self.valid.sum())

    @property
    def invalid(self) -> int:
        """Invalid candidates (the scalar loop's ``invalid`` counter)."""
        return len(self.candidates) - self.evaluated

    def scores(self, objective: str) -> "np.ndarray":
        """The per-candidate objective column (``"energy"`` or ``"edp"``)."""
        if objective == "energy":
            return self.energy_pj
        if objective == "edp":
            return self.edp
        raise ValueError(f"unknown batch objective {objective!r}")

    def best_index(self, objective: str = "energy") -> int | None:
        """First-in-enumeration argmin over the valid candidates.

        ``np.argmin`` returns the first index of the minimum, matching the
        scalar loop's strict-``<`` update rule on exact ties.  ``None``
        when no candidate is valid.
        """
        if not len(self.candidates) or not bool(self.valid.any()):
            return None
        masked = np.where(self.valid, self.scores(objective), np.inf)
        return int(np.argmin(masked))


@dataclass(frozen=True)
class BatchSearchOutcome:
    """What the mapper needs from a batch search."""

    best_index: int | None
    evaluated: int
    invalid: int


def _ceil_div(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    """Elementwise ceiling division on int64 (positive divisors)."""
    return -(-a // b)


def _encode(candidates: list[Mapping]) -> dict[str, "np.ndarray"]:
    """Columnar int64 encoding of the mapping list."""
    n = len(candidates)
    names = (
        "pkg_co_ways", "pkg_rows", "pkg_cols", "pkg_is_channel",
        "pkg_tile_h", "pkg_tile_w", "pkg_tile_co", "pkg_order_channel",
        "chp_co_ways", "chp_rows", "chp_cols",
        "chp_tile_h", "chp_tile_w", "chp_order_channel",
        "rot_activations", "rot_weights",
    )
    cols = {name: np.empty(n, dtype=np.int64) for name in names}
    for i, m in enumerate(candidates):
        pkg, pt = m.package_spatial, m.package_temporal
        chp, ct = m.chiplet_spatial, m.chiplet_temporal
        cols["pkg_co_ways"][i] = pkg.co_ways
        cols["pkg_rows"][i] = pkg.grid.rows
        cols["pkg_cols"][i] = pkg.grid.cols
        cols["pkg_is_channel"][i] = pkg.dim is PartitionDim.CHANNEL
        cols["pkg_tile_h"][i] = pt.tile_h
        cols["pkg_tile_w"][i] = pt.tile_w
        cols["pkg_tile_co"][i] = pt.tile_co
        cols["pkg_order_channel"][i] = pt.order.value == "channel"
        cols["chp_co_ways"][i] = chp.co_ways
        cols["chp_rows"][i] = chp.grid.rows
        cols["chp_cols"][i] = chp.grid.cols
        cols["chp_tile_h"][i] = ct.tile_h
        cols["chp_tile_w"][i] = ct.tile_w
        cols["chp_order_channel"][i] = ct.order.value == "channel"
        cols["rot_activations"][i] = m.rotation is RotationKind.ACTIVATIONS
        cols["rot_weights"][i] = m.rotation is RotationKind.WEIGHTS
    return cols


def _input_channels_for(layer: ConvLayer, out_channels: "np.ndarray") -> "np.ndarray":
    """Vectorized :meth:`ConvLayer.input_channels_for` (out_channels >= 1)."""
    groups_spanned = np.minimum(
        _ceil_div(out_channels, layer.co_per_group), layer.groups
    )
    return np.minimum(groups_spanned * layer.ci_per_group, layer.ci)


def _input_rows_for(layer: ConvLayer, out_rows: "np.ndarray") -> "np.ndarray":
    """Vectorized :meth:`ConvLayer.input_rows_for` (out_rows >= 1)."""
    return (out_rows - 1) * min(layer.stride, layer.kh) + layer.kh


def _input_cols_for(layer: ConvLayer, out_cols: "np.ndarray") -> "np.ndarray":
    """Vectorized :meth:`ConvLayer.input_cols_for` (out_cols >= 1)."""
    return (out_cols - 1) * min(layer.stride, layer.kw) + layer.kw


def _window_bytes(
    layer: ConvLayer,
    data_bytes: float,
    out_rows: "np.ndarray",
    out_cols: "np.ndarray",
    channels: "np.ndarray",
) -> "np.ndarray":
    """Vectorized ``c3p._window_bytes``: int64 element count, one conversion."""
    elements = _input_rows_for(layer, out_rows) * _input_cols_for(layer, out_cols) * channels
    return elements * data_bytes


def _level_slots(
    order_channel: "np.ndarray",
    c: "np.ndarray",
    w: "np.ndarray",
    h: "np.ndarray",
) -> list[tuple["np.ndarray", "np.ndarray"]]:
    """(kind, count) columns of one temporal level, inner to outer.

    Channel-priority yields C, W, H; plane-priority yields W, H, C --
    exactly :func:`repro.core.loopnest._level_loops`.
    """
    ch = order_channel.astype(bool)
    return [
        (np.where(ch, _KIND_C, _KIND_W), np.where(ch, c, w)),
        (np.where(ch, _KIND_W, _KIND_H), np.where(ch, w, h)),
        (np.where(ch, _KIND_H, _KIND_C), np.where(ch, h, c)),
    ]


def evaluate_batch(
    layer: ConvLayer, hw: HardwareConfig, candidates: list[Mapping]
) -> BatchResult:
    """Evaluate every candidate mapping of one (layer, hw) in one pass.

    Raises:
        RuntimeError: When numpy is unavailable.
        BatchOverflowError: When an int64 product would leave the exact
            range (callers fall back to the scalar oracle).
    """
    if np is None:
        raise RuntimeError("numpy is required for the batch kernel")
    if not candidates:
        raise ValueError("candidates must be non-empty")
    cols = _encode(candidates)
    tech = hw.tech
    data_bytes = tech.data_bits / 8.0
    data_bits = tech.data_bits
    grouped = layer.groups > 1

    # --- loop-nest derivation (LoopNest.__init__, vectorized) ---------------
    macro_ho = _ceil_div(np.int64(layer.ho), cols["pkg_rows"])
    macro_wo = _ceil_div(np.int64(layer.wo), cols["pkg_cols"])
    macro_co = _ceil_div(np.int64(layer.co), cols["pkg_co_ways"])
    tile_ho = np.minimum(cols["pkg_tile_h"], macro_ho)
    tile_wo = np.minimum(cols["pkg_tile_w"], macro_wo)
    tile_co = np.minimum(cols["pkg_tile_co"], macro_co)
    share_ho = _ceil_div(tile_ho, cols["chp_rows"])
    share_wo = _ceil_div(tile_wo, cols["chp_cols"])
    share_co = _ceil_div(tile_co, cols["chp_co_ways"])
    core_ho = np.minimum(cols["chp_tile_h"], share_ho)
    core_wo = np.minimum(cols["chp_tile_w"], share_wo)
    core_co = np.minimum(np.int64(hw.lanes), share_co)
    c1 = _ceil_div(share_co, core_co)
    w1 = _ceil_div(share_wo, core_wo)
    h1 = _ceil_div(share_ho, core_ho)
    c2 = _ceil_div(macro_co, tile_co)
    w2 = _ceil_div(macro_wo, tile_wo)
    h2 = _ceil_div(macro_ho, tile_ho)

    pkg_grid_ways = cols["pkg_rows"] * cols["pkg_cols"]
    pkg_ways = cols["pkg_co_ways"] * pkg_grid_ways
    chp_grid_ways = cols["chp_rows"] * cols["chp_cols"]
    chp_ways = cols["chp_co_ways"] * chp_grid_ways
    n_chiplets = np.minimum(pkg_ways, np.int64(hw.n_chiplets))
    n_cores = np.minimum(chp_ways, np.int64(hw.n_cores))

    slots = _level_slots(cols["chp_order_channel"], c1, w1, h1) + _level_slots(
        cols["pkg_order_channel"], c2, w2, h2
    )

    # --- validity (LoopNest.validity_errors, vectorized) --------------------
    o_l1_required = _ceil_div(core_ho * core_wo * core_co * tech.psum_bits, np.int64(8))
    min_a_l1 = (
        _input_cols_for(layer, core_wo) * min(hw.vector_size, layer.ci) * data_bits // 8
    )
    pkg_channel = cols["pkg_is_channel"].astype(bool)
    invalid = pkg_ways > hw.n_chiplets
    invalid |= chp_ways > hw.n_cores
    invalid |= o_l1_required > hw.memory.o_l1_bytes
    invalid |= min_a_l1 > hw.memory.a_l1_bytes
    invalid |= pkg_channel & (cols["pkg_co_ways"] > layer.co)
    invalid |= cols["chp_co_ways"] > macro_co
    invalid |= (cols["pkg_rows"] > layer.ho) | (cols["pkg_cols"] > layer.wo)
    invalid |= (cols["chp_rows"] > tile_ho) | (cols["chp_cols"] > tile_wo)
    valid = ~invalid

    # --- weight-buffer C3P walk (analyze_weight_buffer) ---------------------
    weight_elements = layer.kh * layer.kw * layer.ci_per_group * core_co
    block_bytes = weight_elements * data_bytes
    weight_buffer = (hw.memory.w_l1_bytes * chp_grid_ways).astype(np.float64)
    working_set = block_bytes.copy()
    weight_reload = np.ones(len(candidates), dtype=np.float64)
    for kind, count in slots:
        is_c = kind == _KIND_C
        penalized = ~is_c & (weight_buffer < working_set)
        weight_reload = np.where(penalized, weight_reload * count, weight_reload)
        working_set = np.where(is_c, working_set * count, working_set)
    total_channel = c1 * c2
    weight_a0_bits = block_bytes * 8.0 * total_channel
    weight_fill_bits = weight_a0_bits * weight_reload

    # --- A-L1 C3P walk (analyze_activation_l1) ------------------------------
    block_channels = _input_channels_for(layer, core_co)
    chunk_channels = np.minimum(np.int64(hw.vector_size), block_channels)
    cc0 = _window_bytes(layer, data_bytes, core_ho, core_wo, chunk_channels)
    a_l1_budget = float(hw.memory.a_l1_bytes)
    kernel_sweep = float(layer.kh * layer.kw)
    a_l1_reload = np.where(a_l1_budget >= cc0, 1.0, kernel_sweep)
    out_rows, out_cols = core_ho.copy(), core_wo.copy()
    channel_multiplicity = np.ones(len(candidates), dtype=np.int64)
    ci_col = np.full(len(candidates), layer.ci, dtype=np.int64)
    for kind, count in slots:
        is_c = kind == _KIND_C
        if grouped:
            channel_multiplicity = np.where(
                is_c, channel_multiplicity * count, channel_multiplicity
            )
        else:
            ws = _window_bytes(layer, data_bytes, out_rows, out_cols, ci_col)
            penalized = is_c & (a_l1_budget < ws)
            a_l1_reload = np.where(penalized, a_l1_reload * count, a_l1_reload)
        out_cols = np.where(kind == _KIND_W, out_cols * count, out_cols)
        out_rows = np.where(kind == _KIND_H, out_rows * count, out_rows)
    planar_iterations = w1 * h1 * w2 * h2
    if grouped:
        a0_channels = np.minimum(block_channels * channel_multiplicity, layer.ci)
    else:
        a0_channels = ci_col
    a_l1_a0_bits = (
        _window_bytes(layer, data_bytes, core_ho, core_wo, a0_channels)
        * 8.0
        * planar_iterations
    )
    a_l1_fill_bits = a_l1_a0_bits * a_l1_reload

    # --- A-L2 C3P walk (analyze_activation_l2: level-2 loops only) ----------
    tile_channels = _input_channels_for(layer, tile_co)
    a_l2_budget = float(hw.memory.a_l2_bytes)
    a_l2_reload = np.ones(len(candidates), dtype=np.float64)
    out_rows, out_cols = tile_ho.copy(), tile_wo.copy()
    channel_multiplicity2 = np.ones(len(candidates), dtype=np.int64)
    for kind, count in _level_slots(cols["pkg_order_channel"], c2, w2, h2):
        is_c = kind == _KIND_C
        if grouped:
            channel_multiplicity2 = np.where(
                is_c, channel_multiplicity2 * count, channel_multiplicity2
            )
        else:
            ws = _window_bytes(layer, data_bytes, out_rows, out_cols, ci_col)
            penalized = is_c & (a_l2_budget < ws)
            a_l2_reload = np.where(penalized, a_l2_reload * count, a_l2_reload)
        out_cols = np.where(kind == _KIND_W, out_cols * count, out_cols)
        out_rows = np.where(kind == _KIND_H, out_rows * count, out_rows)
    if grouped:
        a0_channels2 = np.minimum(tile_channels * channel_multiplicity2, layer.ci)
    else:
        a0_channels2 = ci_col
    a_l2_a0_bits = (
        _window_bytes(layer, data_bytes, tile_ho, tile_wo, a0_channels2) * 8.0 * w2 * h2
    )
    a_l2_fill_bits = a_l2_a0_bits * a_l2_reload

    # --- traffic assembly (compute_traffic) ---------------------------------
    chiplet_weight_fill = weight_fill_bits * cols["chp_co_ways"]
    # Sharing cost dispatches on the package topology (ring/mesh: N_P - 1
    # hops; switch: N_P).  n_chiplets is per-candidate, so evaluate the
    # scalar model once per distinct count -- candidate spaces only ever
    # contain a handful of active-chiplet values.
    sharing_hops = np.zeros_like(n_chiplets)
    for count in np.unique(n_chiplets):
        sharing_hops[n_chiplets == count] = hw.topology.sharing_hops_per_bit(
            int(count)
        )
    rot_weights = cols["rot_weights"].astype(bool)
    rot_activations = cols["rot_activations"].astype(bool)
    plane_rotated = ~pkg_channel & rot_weights
    dram_weight_bits = np.where(
        plane_rotated, chiplet_weight_fill, chiplet_weight_fill * n_chiplets
    )
    weight_d2d = np.where(plane_rotated, chiplet_weight_fill * sharing_hops, 0.0)
    w_l1_write_bits = chiplet_weight_fill * n_chiplets
    core_blocks = c1 * w1 * h1 * c2 * w2 * h2
    block_weight_bits = weight_elements * data_bits
    w_l1_read_bits = block_weight_bits * core_blocks * n_cores * n_chiplets

    channel_rotated = pkg_channel & rot_activations
    dram_input_bits = np.where(
        channel_rotated, a_l2_fill_bits, a_l2_fill_bits * n_chiplets
    )
    act_d2d = np.where(channel_rotated, a_l2_fill_bits * sharing_hops, 0.0)
    a_l2_write_bits = a_l2_fill_bits * n_chiplets
    a_l1_write_bits = a_l1_fill_bits * n_cores * n_chiplets
    a_l2_read_bits = a_l1_fill_bits * chp_grid_ways * n_chiplets
    a_l1_read_bits = layer.macs / hw.lanes * data_bits
    d2d_bit_hops = act_d2d + weight_d2d

    output_bits = layer.output_elements * data_bits
    psum_rmw_bits = layer.macs / hw.vector_size * tech.psum_bits
    rf_drain_bits = layer.output_elements * tech.psum_bits

    # --- int64 exactness guard ----------------------------------------------
    blocks_f = (
        c1.astype(np.float64)
        * w1.astype(np.float64)
        * h1.astype(np.float64)
        * c2.astype(np.float64)
        * w2.astype(np.float64)
        * h2.astype(np.float64)
    )
    read_estimate = block_weight_bits.astype(np.float64) * blocks_f * n_cores * n_chiplets
    block_cycles_f = (
        core_ho.astype(np.float64) * core_wo * layer.kh * layer.kw
    )  # chunk factor bounded below by 1, added next
    chunks = _ceil_div(np.maximum(_input_channels_for(layer, core_co), 1),
                       np.int64(hw.vector_size))
    cycles_estimate = blocks_f * block_cycles_f * chunks
    window_estimate = (
        _input_rows_for(layer, out_rows).astype(np.float64)
        * _input_cols_for(layer, out_cols)
        * layer.ci
    )
    guard = max(
        float(read_estimate.max()),
        float(cycles_estimate.max()),
        float(window_estimate.max()),
    )
    if guard > _INT64_SAFE_LIMIT:
        raise BatchOverflowError(
            f"candidate magnitude {guard:g} exceeds the int64-exact range"
        )

    # --- energy (energy_from_traffic) ---------------------------------------
    model = EnergyModel(hw)
    dram_bits = dram_input_bits + dram_weight_bits + output_bits
    dram_pj = dram_bits * model.dram_pj_per_bit
    d2d_pj = d2d_bit_hops * model.d2d_pj_per_bit
    a_l2_pj = (a_l2_write_bits + a_l2_read_bits) * model.a_l2_pj_per_bit
    o_l2_bytes = _ceil_div(tile_ho * tile_wo * tile_co * data_bits, np.int64(8))
    if hw.memory.o_l2_bytes:
        o_l2_pj_bit = np.full(
            len(candidates), model.o_l2_pj_per_bit(0), dtype=np.float64
        )
    else:
        # TechnologyParams.sram_energy_pj_per_bit on the per-candidate size.
        slope = (tech.l2_anchor_pj_per_bit - tech.l1_anchor_pj_per_bit) / (
            tech.l2_anchor_kb - tech.l1_anchor_kb
        )
        size_kb = o_l2_bytes / 1024.0
        o_l2_pj_bit = np.maximum(
            tech.l1_anchor_pj_per_bit + slope * (size_kb - tech.l1_anchor_kb),
            tech.rf_rmw_energy_pj_per_bit,
        )
    o_l2_pj = (output_bits + output_bits) * o_l2_pj_bit
    a_l1_pj = (a_l1_write_bits + a_l1_read_bits) * model.a_l1_pj_per_bit
    w_l1_pj = (w_l1_write_bits + w_l1_read_bits) * model.w_l1_pj_per_bit
    rf_pj = (psum_rmw_bits + rf_drain_bits) * model.rf_rmw_pj_per_bit
    mac_pj = model.mac_energy_pj(layer.macs)
    # EnergyBreakdown.total_pj association order, component by component.
    energy_pj = (
        ((((((dram_pj + d2d_pj) + a_l2_pj) + o_l2_pj) + a_l1_pj) + w_l1_pj) + rf_pj)
        + mac_pj
    )

    # --- cycles and EDP (LoopNest.total_cycles / CostReport.edp) ------------
    block_cycles = core_ho * core_wo * layer.kh * layer.kw * chunks
    cycles = core_blocks * block_cycles
    runtime_s = cycles * tech.cycle_time_ns() * 1e-9
    edp = energy_pj * 1e-12 * runtime_s

    return BatchResult(
        candidates=candidates,
        valid=valid,
        weight_a0_bits=weight_a0_bits,
        weight_reload=weight_reload,
        weight_fill_bits=weight_fill_bits,
        a_l1_cc0_bytes=cc0,
        a_l1_a0_bits=a_l1_a0_bits,
        a_l1_reload=a_l1_reload,
        a_l1_fill_bits=a_l1_fill_bits,
        a_l2_a0_bits=a_l2_a0_bits,
        a_l2_reload=a_l2_reload,
        a_l2_fill_bits=a_l2_fill_bits,
        dram_input_bits=dram_input_bits,
        dram_weight_bits=dram_weight_bits,
        dram_output_bits=output_bits,
        d2d_bit_hops=d2d_bit_hops,
        a_l2_write_bits=a_l2_write_bits,
        a_l2_read_bits=a_l2_read_bits,
        a_l1_write_bits=a_l1_write_bits,
        a_l1_read_bits=a_l1_read_bits,
        w_l1_write_bits=w_l1_write_bits,
        w_l1_read_bits=w_l1_read_bits,
        rf_rmw_bits=psum_rmw_bits,
        rf_drain_bits=rf_drain_bits,
        dram_pj=dram_pj,
        d2d_pj=d2d_pj,
        a_l2_pj=a_l2_pj,
        o_l2_pj=o_l2_pj,
        a_l1_pj=a_l1_pj,
        w_l1_pj=w_l1_pj,
        rf_pj=rf_pj,
        mac_pj=mac_pj,
        energy_pj=energy_pj,
        o_l2_bytes=o_l2_bytes,
        cycles=cycles,
        edp=edp,
    )


#: Objective-function names the kernel can score (mapper objectives).
BATCH_OBJECTIVES = {
    "energy_objective": "energy",
    "edp_objective": "edp",
}


def search_batch(
    layer: ConvLayer,
    hw: HardwareConfig,
    candidates: list[Mapping],
    objective: str = "energy_objective",
) -> BatchSearchOutcome | None:
    """Batch-evaluate ``candidates`` and pick the scalar-identical winner.

    Returns ``None`` when the kernel cannot guarantee bit-identity for this
    call (unknown objective, empty candidate list, numpy missing, or the
    int64 exactness guard tripping) -- callers then run the scalar loop.

    When ``REPRO_BATCH_MAX_BYTES`` caps the working set, the list is
    evaluated in chunks.  Chunking cannot change any per-candidate value
    (every output row of :func:`evaluate_batch` is an elementwise function
    of that row alone), and the cross-chunk winner scan uses the same
    strict-``<`` update as the scalar loop, so the first-in-enumeration
    winner -- and therefore the whole sweep output -- is byte-identical at
    every chunk size.
    """
    scorer = BATCH_OBJECTIVES.get(objective)
    if scorer is None or np is None or not candidates:
        return None
    chunk = batch_chunk_candidates()
    if chunk is None or chunk >= len(candidates):
        try:
            result = evaluate_batch(layer, hw, candidates)
        except BatchOverflowError:
            return None
        return BatchSearchOutcome(
            best_index=result.best_index(scorer),
            evaluated=result.evaluated,
            invalid=result.invalid,
        )
    best_index: int | None = None
    best_score = float("inf")
    evaluated = invalid = n_chunks = 0
    for start in range(0, len(candidates), chunk):
        try:
            result = evaluate_batch(layer, hw, candidates[start : start + chunk])
        except BatchOverflowError:
            return None
        n_chunks += 1
        evaluated += result.evaluated
        invalid += result.invalid
        local = result.best_index(scorer)
        if local is None:
            continue
        score = float(result.scores(scorer)[local])
        if score < best_score:  # strict <: ties keep the earlier chunk's winner
            best_score = score
            best_index = start + local
    obs.count("mapper.batch.chunks", n_chunks)
    return BatchSearchOutcome(
        best_index=best_index, evaluated=evaluated, invalid=invalid
    )
