"""Persistent mapping cache for the sweep-scale search paths.

The DSE sweeps (:mod:`repro.core.dse`) evaluate thousands of hardware points
and every model layer on each of them, yet the search space is heavily
redundant: models repeat layer shapes (ResNet-50's bottlenecks), and sweeps
repeat hardware points across runs.  This module memoizes
:meth:`repro.core.mapper.Mapper.search_layer` results behind a key that
captures everything the search depends on:

``(layer shape, hardware digest, search profile, objective)``

Two tiers back the cache:

* an **in-memory** dict -- always on, shared across ``Mapper`` instances
  when callers inject one cache object;
* an optional **on-disk JSON store** under ``.repro_cache/`` (or the
  directory named by ``REPRO_CACHE_DIR``) holding the *winning mapping* of
  each entry, serialized with :mod:`repro.core.serialize`.  On a disk hit
  the single stored mapping is re-evaluated (one cost-model call instead of
  a full search), so results are bit-identical to a fresh search.

Hit/miss counters feed the instrumentation surfaced by the CLI and
:func:`repro.analysis.reporting.format_search_stats`.

Robustness: concurrent :meth:`MappingCache.save` calls serialize through a
per-digest ``fcntl`` lock file, so two sweeps flushing the same machine
cannot lose each other's entries; corrupt or version-mismatched files are
quarantined (renamed ``<file>.corrupt-<ts>``) rather than silently
shadowing the store, and stale temp files left by crashed writers are swept
on the next save.
"""

from __future__ import annotations

import json
import logging
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro import durable, obs
from repro.arch.config import HardwareConfig
from repro.core import parallel
from repro.core.serialize import hardware_digest, mapping_from_dict
from repro.errors import ConfigError

logger = logging.getLogger("repro.cache")

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the on-disk store size (bytes, LRU evicted).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Default directory name for the on-disk store (under the working dir).
DEFAULT_CACHE_DIRNAME = ".repro_cache"

#: On-disk schema version; bump to invalidate every stored entry.
CACHE_FORMAT_VERSION = 1


# Monotonic flush counter consulted by the corrupt-cache fault injector
# (process-local, so injected corruption is deterministic per run).
_flush_index = 0


def _max_cache_bytes() -> int | None:
    """The ``REPRO_CACHE_MAX_BYTES`` budget, or ``None`` when uncapped.

    Raises:
        ConfigError: When the variable is set to anything but a
            non-negative integer.
    """
    raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{CACHE_MAX_BYTES_ENV} must be a byte count, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(
            f"{CACHE_MAX_BYTES_ENV} must be >= 0, got {value}"
        )
    return value


@contextmanager
def _digest_lock(path: Path) -> Iterator[None]:
    """An exclusive advisory lock guarding one digest file's read-merge-write.

    Serializes concurrent :meth:`MappingCache.save` calls against the same
    digest so neither loses the other's entries.  Degrades to unlocked
    operation where ``fcntl`` (or the lock file) is unavailable.
    """
    if fcntl is None:
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    try:
        handle = open(lock_path, "a+")
    except OSError as exc:
        if durable.is_resource_error(exc):
            durable.record_sink_failure("cache", exc)
        yield
        return
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - unlock on a dead descriptor
            pass
        handle.close()


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (POSIX signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def cache_key(
    shape_key: tuple,
    hw_digest: str,
    profile: str,
    objective: str,
) -> str:
    """The canonical string key of one search result.

    Args:
        shape_key: ``Mapper._shape_key``-style layer geometry tuple.
        hw_digest: :func:`repro.core.serialize.hardware_digest` of the machine.
        profile: Search-profile value (``"exhaustive"`` / ``"fast"`` / ...).
        objective: Objective function name (``"energy_objective"`` / ...).
    """
    shape = "x".join(str(v) for v in shape_key)
    return f"{shape}|{hw_digest}|{profile}|{objective}"


class MappingCache:
    """Two-tier (memory + optional disk) store of per-layer search results.

    The in-memory tier holds opaque result objects
    (:class:`repro.core.mapper.LayerMappingResult`); the disk tier holds
    JSON records of the winning mapping plus the search statistics, grouped
    into one file per hardware digest so unrelated machines never contend.

    Attributes:
        directory: Disk-store directory, or ``None`` for memory-only.
        hits: Lookups answered from either tier.
        misses: Lookups that required a fresh search.
        disk_hits: Subset of ``hits`` answered by re-evaluating a stored
            mapping from disk.
        corrupt_files: Disk files quarantined for corruption or a format
            version mismatch during this process's loads.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt_files = 0
        self._mem: dict[str, Any] = {}
        self._disk: dict[str, dict[str, Any]] = {}
        self._loaded_digests: set[str] = set()
        self._dirty_digests: set[str] = set()

    @classmethod
    def from_env(cls) -> "MappingCache":
        """A cache honouring ``REPRO_CACHE_DIR`` (memory-only when unset)."""
        directory = os.environ.get(CACHE_DIR_ENV, "").strip()
        return cls(directory or None)

    # --- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._mem)

    def contains(self, key: str) -> bool:
        """Whether ``key`` is answerable without a fresh search (no counting)."""
        if key in self._mem:
            return True
        self._ensure_loaded(self._digest_of(key))
        return key in self._disk

    def get(
        self,
        key: str,
        rebuild: Callable[[dict[str, Any]], Any] | None = None,
    ) -> Any | None:
        """Fetch the result stored under ``key``, counting hit or miss.

        Args:
            key: A :func:`cache_key` string.
            rebuild: Turns a disk record (``{"mapping": ..., "evaluated": n,
                "invalid": n}``) back into a result object; disk lookups are
                skipped when omitted.  A rebuild that returns ``None`` (the
                record no longer evaluates) falls through to a miss.
        """
        cached = self._mem.get(key)
        if cached is not None:
            self.hits += 1
            obs.count("cache.hits")
            return cached
        if rebuild is not None and self.directory is not None:
            self._ensure_loaded(self._digest_of(key))
            record = self._disk.get(key)
            if record is not None:
                result = rebuild(record)
                if result is not None:
                    self._mem[key] = result
                    self.hits += 1
                    self.disk_hits += 1
                    obs.count("cache.hits")
                    obs.count("cache.disk_hits")
                    return result
        self.misses += 1
        obs.count("cache.misses")
        return None

    def put(
        self,
        key: str,
        result: Any,
        record: dict[str, Any] | None = None,
    ) -> None:
        """Store a fresh search result (and its disk record, when enabled)."""
        self._mem[key] = result
        obs.count("cache.puts")
        if self.directory is not None and record is not None:
            self._disk[key] = record
            self._dirty_digests.add(self._digest_of(key))

    # --- disk tier -------------------------------------------------------------

    @staticmethod
    def _digest_of(key: str) -> str:
        return key.split("|", 2)[1]

    def _path_for(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"mappings-{digest[:16]}.json"

    def _ensure_loaded(self, digest: str) -> None:
        """Lazily read the disk file of one hardware digest.

        A file that fails to decode, or that carries a different format
        version, is quarantined (renamed ``<file>.corrupt-<ts>``) so it
        cannot shadow the store; the load then proceeds as a clean miss.
        """
        if self.directory is None or digest in self._loaded_digests:
            return
        self._loaded_digests.add(digest)
        path = self._path_for(digest)
        load_start = time.perf_counter()
        try:
            text = path.read_text()
        except FileNotFoundError:
            return
        except OSError as exc:
            # A missing file is a clean miss; a failing device is not --
            # count it so persistent EIO degrades the sink instead of
            # masquerading as an empty cache forever.
            if durable.is_resource_error(exc):
                durable.record_sink_failure("cache", exc)
            return
        try:
            payload = json.loads(text)
            version = payload.get("version")
            entries = payload.get("entries", {})
            if not isinstance(entries, dict):
                raise ValueError("entries is not an object")
        except (ValueError, AttributeError):
            self._quarantine(path, "undecodable JSON")
            return
        if version != CACHE_FORMAT_VERSION:
            self._quarantine(path, f"format version {version!r}")
            return
        for key, record in entries.items():
            self._disk.setdefault(key, record)
        obs.histogram(
            "cache.load_ms", (time.perf_counter() - load_start) * 1e3
        )
        try:
            os.utime(path)  # refresh LRU recency: this file just got used
        except OSError:
            pass

    def _quarantine(self, path: Path, reason: str) -> None:
        """Set aside an unusable cache file instead of deleting it."""
        target = path.with_name(
            f"{path.name}.corrupt-{int(time.time() * 1000)}"
        )
        try:
            path.replace(target)
        except FileNotFoundError:
            return
        except OSError as exc:
            if durable.is_resource_error(exc):
                durable.record_sink_failure("cache", exc)
            return
        self.corrupt_files += 1
        obs.count("cache.corrupt_files")
        logger.warning(
            "set aside corrupt cache file %s (%s) -> %s",
            path,
            reason,
            target.name,
        )

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files abandoned by writers that no longer exist."""
        assert self.directory is not None
        for tmp in self.directory.glob("mappings-*.tmp.*"):
            try:
                pid = int(tmp.name.rsplit(".", 1)[-1])
            except ValueError:
                continue
            if pid == os.getpid() or _pid_alive(pid):
                continue
            try:
                tmp.unlink()
            except FileNotFoundError:
                continue
            except OSError as exc:
                if durable.is_resource_error(exc):
                    durable.record_sink_failure("cache", exc)
                continue
            obs.count("cache.stale_tmp_removed")
            logger.warning("removed stale cache temp file %s", tmp.name)

    @staticmethod
    def _maybe_corrupt(text: str) -> str:
        """The fault-injection hook: corrupt this flush when a plan says so."""
        global _flush_index
        plan = parallel._fault_plan()
        if plan is None:
            return text
        index = _flush_index
        _flush_index += 1
        corrupted = plan.corrupt_text(text, index)
        return text if corrupted is None else corrupted

    def save(self) -> None:
        """Flush dirty entries to disk (merge + atomic durable write per digest).

        Each digest's read-merge-write runs under an exclusive ``fcntl``
        lock file, so entries written by other processes since the last
        load are merged back in -- concurrent sweeps extend, never
        truncate, the store.  Stale ``.tmp.<pid>`` files whose writers have
        died are swept first.  Writes go through
        :func:`repro.durable.atomic_write` (fsync'd temp + rename), so a
        ``kill -9`` at any instant leaves either the old file or the new
        one, never a torn mix.

        A flush that hits a full or failing disk (ENOSPC/EIO/...) degrades
        the cache sink -- one warning, the ``degraded.cache`` counter --
        and the sweep continues without persistence; the cache is an
        accelerator, never an input.  When ``REPRO_CACHE_MAX_BYTES`` is
        set, least-recently-used digest files are evicted after the flush
        until the store fits the budget.
        """
        if self.directory is None or not self._dirty_digests:
            return
        if not durable.sink_enabled("cache"):
            return
        obs.count("cache.saves")
        obs.count("cache.digests_flushed", len(self._dirty_digests))
        save_start = time.perf_counter()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._sweep_stale_tmp()
            for digest in sorted(self._dirty_digests):
                path = self._path_for(digest)
                with _digest_lock(path):
                    entries: dict[str, Any] = {}
                    try:
                        payload = json.loads(path.read_text())
                        if payload.get("version") == CACHE_FORMAT_VERSION:
                            entries.update(payload.get("entries", {}))
                    except (OSError, ValueError, AttributeError):
                        pass
                    entries.update(
                        {
                            key: record
                            for key, record in self._disk.items()
                            if self._digest_of(key) == digest
                        }
                    )
                    text = self._maybe_corrupt(
                        json.dumps(
                            {"version": CACHE_FORMAT_VERSION, "entries": entries},
                            indent=None,
                            sort_keys=True,
                        )
                    )
                    durable.atomic_write(path, text, sink="cache")
        except OSError as exc:
            if durable.is_resource_error(exc):
                durable.record_sink_failure("cache", exc)
                return
            raise
        obs.histogram(
            "cache.save_ms", (time.perf_counter() - save_start) * 1e3
        )
        self._dirty_digests.clear()
        self._evict_lru()

    def _evict_lru(self) -> None:
        """Evict least-recently-used digest files past ``REPRO_CACHE_MAX_BYTES``.

        Recency is file mtime: loads touch the file (:meth:`_ensure_loaded`)
        and writes refresh it naturally, so eviction order tracks actual
        use.  Eviction is size-based and best-effort -- a file that cannot
        be unlinked is skipped, never fatal.
        """
        budget = _max_cache_bytes()
        if budget is None or self.directory is None:
            return
        files = []
        for path in self.directory.glob("mappings-*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            files.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _mtime, size, _path in files)
        if total <= budget:
            return
        for _mtime, size, path in sorted(files):
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            obs.count("cache.evictions")
            logger.warning(
                "evicted cache file %s (%d B) to fit %s=%d B",
                path.name,
                size,
                CACHE_MAX_BYTES_ENV,
                budget,
            )

    # --- instrumentation -------------------------------------------------------

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        """One-line counter summary for reports."""
        tier = str(self.directory) if self.directory else "memory"
        return (
            f"{self.hits} hits ({self.disk_hits} from disk) / "
            f"{self.misses} misses ({self.hit_rate:.0%} hit rate, {tier})"
        )


def rebuild_record(
    record: dict[str, Any],
    layer,
    hw: HardwareConfig,
):
    """Re-evaluate a disk record's winning mapping on (``layer``, ``hw``).

    Returns the :class:`~repro.core.cost.CostReport` of the stored mapping,
    or ``None`` when the mapping no longer evaluates (a schema drift or a
    corrupted record) -- callers then fall back to a fresh search.
    """
    from repro.core.cost import InvalidMappingError, evaluate_mapping

    try:
        mapping = mapping_from_dict(record["mapping"])
        return evaluate_mapping(layer, hw, mapping)
    except (InvalidMappingError, KeyError, TypeError, ValueError):
        return None


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CACHE_MAX_BYTES_ENV",
    "DEFAULT_CACHE_DIRNAME",
    "MappingCache",
    "cache_key",
    "hardware_digest",
    "rebuild_record",
]
