"""The C3P (Critical-Capacity Critical-Position) methodology (Section IV-B).

For each buffer, the temporal loops split into *relevant* loops (they advance
the buffered datatype: C loops for weights, W/H loops for activations) and
*irrelevant* loops (they revisit it).  Walking the nest inside-out:

* each relevant loop grows the working set and marks a **critical position**
  whose working-set size is the **critical capacity** ``Cc_k``;
* each irrelevant loop between critical positions forms a **reuse region**:
  if the buffer is at least the inner critical capacity the region reuses the
  buffered data, otherwise every iteration refetches it -- the ``P_k``
  penalty of Equation 2.

Total access is ``A_0 * prod(P_k over unsatisfied critical points)``, the
paper's Equation 1 (we state the product form directly; the paper's worked
examples, Figure 6c-f, come out identically and are pinned in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.loopnest import LoopNest


@dataclass(frozen=True)
class CriticalPoint:
    """One critical position of a buffer's loop analysis.

    Attributes:
        capacity_bytes: The critical capacity Cc_k.
        penalty: P_k -- product of the irrelevant loop counts in the reuse
            region guarded by this critical point (1 when the region is
            empty, e.g. the boundary case of the paper's example-2).
        satisfied: Whether the buffer size reaches Cc_k (no penalty paid).
        label: Where the critical position sits (e.g. ``"block"``, ``"C1"``).
    """

    capacity_bytes: float
    penalty: int
    satisfied: bool
    label: str


@dataclass(frozen=True)
class C3PAnalysis:
    """Result of one buffer's C3P walk.

    Attributes:
        a0_bits: Intrinsic access A_0 (every distinct datum fetched once),
            in bits.
        reload_factor: Product of unsatisfied penalties (>= 1).
        fill_bits: Total fill traffic ``a0_bits * reload_factor``.
        critical_points: The walk's critical positions, inner to outer.
    """

    a0_bits: float
    reload_factor: float
    critical_points: tuple[CriticalPoint, ...] = field(default_factory=tuple)

    @property
    def fill_bits(self) -> float:
        """Total buffer fill traffic in bits."""
        return self.a0_bits * self.reload_factor

    def min_penalty_free_capacity(self) -> float:
        """Smallest buffer size (bytes) with reload_factor == 1.

        The largest critical capacity guarding a non-trivial reuse region;
        0.0 when no region exists (any buffer is penalty-free).
        """
        capacities = [
            cp.capacity_bytes for cp in self.critical_points if cp.penalty > 1
        ]
        return max(capacities, default=0.0)


def _data_bytes(nest: LoopNest) -> float:
    """Bytes per 8-bit datum (activations and weights)."""
    return nest.hw.tech.data_bits / 8.0


def analyze_weight_buffer(nest: LoopNest, buffer_bytes: float) -> C3PAnalysis:
    """C3P walk of a W-L1 buffer (or a merged W-L1 pool group).

    The working set starts at one core block's filters
    (``KH * KW * CI * core_co``, the paper's ``filters`` volume); every C loop
    multiplies it (critical position); every planar loop between critical
    positions refetches when the buffer is too small.

    Args:
        nest: The (layer, hardware, mapping) loop nest of one core.
        buffer_bytes: Effective capacity -- the physical W-L1 size times the
            sharing-group size when W-L1s are merged (Section III-A2).
    """
    if buffer_bytes < 0:
        raise ValueError(f"buffer size must be >= 0, got {buffer_bytes}")
    layer = nest.layer
    block_bytes = layer.weights_for(nest.core_co) * _data_bytes(nest)

    points: list[CriticalPoint] = []
    working_set = block_bytes
    reload_factor = 1.0
    pending_penalty = 1
    pending_label = "block"

    def flush_region() -> None:
        nonlocal pending_penalty
        satisfied = buffer_bytes >= working_set
        points.append(
            CriticalPoint(
                capacity_bytes=working_set,
                penalty=pending_penalty,
                satisfied=satisfied,
                label=pending_label,
            )
        )
        pending_penalty = 1

    for loop in nest.loops():
        if loop.is_channel:
            flush_region()
            working_set *= loop.count
            pending_label = loop.describe()
        else:
            if buffer_bytes < working_set:
                reload_factor *= loop.count
            pending_penalty *= loop.count
    flush_region()

    total_channel = 1
    for loop in nest.loops():
        if loop.is_channel:
            total_channel *= loop.count
    a0_bits = block_bytes * 8.0 * total_channel
    return C3PAnalysis(
        a0_bits=a0_bits,
        reload_factor=reload_factor,
        critical_points=tuple(points),
    )


def _window_bytes(nest: LoopNest, out_rows: int, out_cols: int, channels: int) -> float:
    """Input-window bytes for an output extent, halo included."""
    layer = nest.layer
    elements = (
        layer.input_rows_for(out_rows)
        * layer.input_cols_for(out_cols)
        * channels
    )
    return elements * _data_bytes(nest)


def analyze_activation_l1(nest: LoopNest, buffer_bytes: float) -> C3PAnalysis:
    """C3P walk of a core's A-L1 buffer.

    Relevant loops are the planar ones (they slide the input window);
    C loops are irrelevant and reuse the buffered input across output
    channels when the buffer holds the full-CI window of the extent covered
    so far.  The supplemental Cc_0 (Figure 6e-f) is the single-ci-chunk input
    window of one core block: below it, the in-block kernel sweep refetches
    the tile per kernel position.

    Grouped convolutions break the C-loop reuse: each output-channel slice
    reads its own input channels, so C loops contribute fresh fetches to
    A_0 (an upper bound; exact for depthwise) instead of reload penalties.
    """
    if buffer_bytes < 0:
        raise ValueError(f"buffer size must be >= 0, got {buffer_bytes}")
    layer = nest.layer
    hw = nest.hw
    grouped = layer.groups > 1
    block_channels = layer.input_channels_for(nest.core_co)

    # Cc_0: one P-channel chunk of the block's input window.
    chunk_channels = min(hw.vector_size, block_channels)
    cc0 = _window_bytes(nest, nest.core_ho, nest.core_wo, chunk_channels)
    intra_block_penalty = 1 if buffer_bytes >= cc0 else layer.kh * layer.kw

    points: list[CriticalPoint] = [
        CriticalPoint(
            capacity_bytes=cc0,
            penalty=layer.kh * layer.kw,
            satisfied=buffer_bytes >= cc0,
            label="block",
        )
    ]

    out_rows, out_cols = nest.core_ho, nest.core_wo
    reload_factor = float(intra_block_penalty)
    channel_multiplicity = 1
    for loop in nest.loops():
        if loop.is_channel:
            if grouped:
                # Distinct input channels per iteration: fresh data, no
                # reuse possible and no reload penalty either.
                channel_multiplicity *= loop.count
                continue
            working_set = _window_bytes(nest, out_rows, out_cols, layer.ci)
            satisfied = buffer_bytes >= working_set
            points.append(
                CriticalPoint(
                    capacity_bytes=working_set,
                    penalty=loop.count,
                    satisfied=satisfied,
                    label=loop.describe(),
                )
            )
            if not satisfied:
                reload_factor *= loop.count
        elif loop.kind == "W":
            out_cols *= loop.count
        else:
            out_rows *= loop.count

    # A_0: each planar iteration fetches its own window (inter-tile halo is
    # counted per consuming tile; the C-loop multiplicity is a *reload*, so
    # it lives in the factor, not in A_0 -- except for grouped layers, where
    # every channel iteration touches distinct data).
    planar_iterations = nest.w1 * nest.h1 * nest.w2 * nest.h2
    a0_channels = block_channels * channel_multiplicity if grouped else layer.ci
    a0_channels = min(a0_channels, layer.ci) if grouped else a0_channels
    a0_bits = (
        _window_bytes(nest, nest.core_ho, nest.core_wo, a0_channels)
        * 8.0
        * planar_iterations
    )
    return C3PAnalysis(
        a0_bits=a0_bits,
        reload_factor=reload_factor,
        critical_points=tuple(points),
    )


def analyze_activation_l2(nest: LoopNest, buffer_bytes: float) -> C3PAnalysis:
    """C3P walk of a chiplet's shared A-L2 buffer.

    Operates at chiplet-workload granularity: the intrinsic fill of one
    package-temporal iteration is the *union* input window of the
    ``HO_t x WO_t`` tile (the A-L2 serves the cores' halos once, Section
    III-A2).  Only the package-temporal (level 2) loops apply: C2 reuses the
    buffered window when it fits; W2/H2 slide it.
    """
    if buffer_bytes < 0:
        raise ValueError(f"buffer size must be >= 0, got {buffer_bytes}")
    layer = nest.layer
    grouped = layer.groups > 1
    tile_channels = layer.input_channels_for(nest.tile_co)

    out_rows, out_cols = nest.tile_ho, nest.tile_wo
    reload_factor = 1.0
    channel_multiplicity = 1
    points: list[CriticalPoint] = []
    for loop in nest.loops():
        if loop.level != 2:
            continue
        if loop.is_channel:
            if grouped:
                channel_multiplicity *= loop.count
                continue
            working_set = _window_bytes(nest, out_rows, out_cols, layer.ci)
            satisfied = buffer_bytes >= working_set
            points.append(
                CriticalPoint(
                    capacity_bytes=working_set,
                    penalty=loop.count,
                    satisfied=satisfied,
                    label=loop.describe(),
                )
            )
            if not satisfied:
                reload_factor *= loop.count
        elif loop.kind == "W":
            out_cols *= loop.count
        else:
            out_rows *= loop.count

    a0_channels = (
        min(tile_channels * channel_multiplicity, layer.ci) if grouped else layer.ci
    )
    a0_bits = (
        _window_bytes(nest, nest.tile_ho, nest.tile_wo, a0_channels)
        * 8.0
        * nest.w2
        * nest.h2
    )
    return C3PAnalysis(
        a0_bits=a0_bits,
        reload_factor=reload_factor,
        critical_points=tuple(points),
    )
