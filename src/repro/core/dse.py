"""The pre-design flow: chiplet granularity and resource-allocation DSE.

Implements the two Section VI-B studies:

* :func:`granularity_study` (Figure 14) -- with a required total MAC count,
  enumerate every (chiplets, cores, lanes, vector-size) factorization,
  assemble buffers proportional to the computation resources, and report the
  optimal implementation per chiplet count with and without a per-chiplet
  area constraint, plus the EDP winner.
* :func:`explore` (Figure 15) -- sweep the full Table II space (computation
  dimensions x memory footprints), prune invalid points ("such as the A-L1
  size smaller than A-L2 or the total MAC units less than the required
  quantities"), and evaluate energy/runtime of every valid design with the
  optimal per-layer mapping.

Table II reproduction note: the published O-L1 range (48-144 B) is read as a
per-lane register budget (the case-study machine's 1.5 KB O-L1 across 8
lanes is 192 B/lane, the same order); DESIGN.md section 5 records this
interpretation.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro import obs
from repro.arch.area import AreaModel
from repro.arch.config import HardwareConfig, MemoryConfig, build_hardware
from repro.arch.technology import DEFAULT_TECHNOLOGY, TechnologyParams
from repro.arch.topology import Topology
from repro.arch.validate import validation_errors
from repro.core.checkpoint import SweepCheckpoint, sweep_digest, task_key
from repro.core.cost import InvalidMappingError, model_cost
from repro.core.mapper import Mapper
from repro.core.parallel import (
    SweepStats,
    TaskFailure,
    TaskPolicy,
    is_picklable,
    resolve_jobs,
    run_tasks,
    worker_context,
)
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer

KB = 1024

#: Completed points per ``point.batch`` event.  Emitted parent-side per
#: fixed batch of completions (never per worker chunk), so the event set
#: of a ``--jobs N`` sweep equals the serial run's.
POINT_BATCH_EVERY = 16


@dataclass(frozen=True)
class DesignSpace:
    """The Table II exploration space.

    Computation resources are the published option lists; memory footprints
    are sampled within the published ranges (powers of two plus the
    case-study anchors).
    """

    vector_sizes: tuple[int, ...] = (2, 4, 8, 16)
    lanes: tuple[int, ...] = (2, 4, 8, 16)
    cores: tuple[int, ...] = (1, 2, 4, 8, 16)
    chiplets: tuple[int, ...] = (1, 2, 4, 8)
    o_l1_per_lane_bytes: tuple[int, ...] = (48, 96, 144)
    a_l1_kb: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    w_l1_kb: tuple[float, ...] = (2, 4, 8, 18, 36, 72, 144, 256)
    a_l2_kb: tuple[float, ...] = (32, 64, 128, 256)

    def computation_configs(
        self, total_macs: int | None = None
    ) -> list[tuple[int, int, int, int]]:
        """All (chiplets, cores, lanes, vector) tuples, optionally filtered
        to an exact total MAC budget.

        For 2048 MACs this yields the paper's "up to 63 possibilities".
        """
        configs = []
        for n_p, n_c, lane, vec in itertools.product(
            self.chiplets, self.cores, self.lanes, self.vector_sizes
        ):
            if total_macs is None or n_p * n_c * lane * vec == total_macs:
                configs.append((n_p, n_c, lane, vec))
        return configs

    def memory_configs(self, lanes: int) -> Iterator[MemoryConfig]:
        """Every memory combination for a core with ``lanes`` lanes.

        Skips hierarchy inversions (A-L2 smaller than A-L1) up front, the
        paper's explicit pruning example.
        """
        for o_l1_pl, a_l1, w_l1, a_l2 in itertools.product(
            self.o_l1_per_lane_bytes, self.a_l1_kb, self.w_l1_kb, self.a_l2_kb
        ):
            if a_l2 < a_l1:
                continue
            yield MemoryConfig(
                a_l1_bytes=int(a_l1 * KB),
                w_l1_bytes=int(w_l1 * KB),
                o_l1_bytes=o_l1_pl * lanes,
                a_l2_bytes=int(a_l2 * KB),
            )

    def sweep_size(self, total_macs: int | None = None) -> int:
        """Number of (computation, memory) points before validity pruning."""
        total = 0
        mem_per_lane = (
            len(self.o_l1_per_lane_bytes) * len(self.w_l1_kb)
        ) * sum(1 for a1 in self.a_l1_kb for a2 in self.a_l2_kb if a2 >= a1)
        total = len(self.computation_configs(total_macs)) * mem_per_lane
        return total


@dataclass
class DesignPoint:
    """One evaluated hardware design.

    Attributes:
        hw: The hardware instance.
        chiplet_area_mm2: Area of one chiplet.
        valid: Whether the point passed structural validation.
        errors: Validation messages when invalid.
        energy_pj: Per-model total energy (model name -> pJ).
        cycles: Per-model total cycles.
    """

    hw: HardwareConfig
    chiplet_area_mm2: float
    valid: bool
    errors: tuple[str, ...] = ()
    energy_pj: dict[str, float] = field(default_factory=dict)
    cycles: dict[str, int] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """The (chiplet, core, lane, vector) tuple label."""
        return self.hw.label()

    def runtime_s(self, model: str) -> float:
        """Model runtime in seconds."""
        return self.cycles[model] * self.hw.tech.cycle_time_ns() * 1e-9

    def edp(self, model: str) -> float:
        """Model energy-delay product in joule-seconds."""
        return self.energy_pj[model] * 1e-12 * self.runtime_s(model)

    def meets_area(self, max_chiplet_mm2: float) -> bool:
        """Whether the chiplet fits the area budget."""
        return self.chiplet_area_mm2 <= max_chiplet_mm2


def _evaluate_point(
    hw: HardwareConfig,
    models: dict[str, list[ConvLayer]],
    profile: SearchProfile,
) -> tuple[dict[str, float], dict[str, int], tuple[int, int]]:
    """Optimal-mapping energy and cycles of every model on ``hw``.

    Returns the per-model energy and cycle dicts plus the mapping-cache
    (hits, misses) counters of the point's search.  The layer search runs
    serially (``jobs=1``): sweep-level parallelism fans out across design
    points, and nesting pools inside pool workers is never a win.
    """
    energy: dict[str, float] = {}
    cycles: dict[str, int] = {}
    mapper = Mapper(hw=hw, profile=profile)
    for name, layers in models.items():
        results = mapper.search_model(layers, jobs=1)
        breakdown, total_cycles, _ = model_cost([r.best for r in results], hw)
        energy[name] = breakdown.total_pj
        cycles[name] = total_cycles
    return energy, cycles, (mapper.cache.hits, mapper.cache.misses)


def _make_point(
    hw: HardwareConfig,
    models: dict[str, list[ConvLayer]],
    profile: SearchProfile,
    required_macs: int | None = None,
    max_chiplet_mm2: float | None = None,
) -> tuple[DesignPoint, bool, int, int]:
    """Validate and (when structurally valid) evaluate one design point.

    Returns ``(point, structurally_valid, cache_hits, cache_misses)``; the
    flag lets :func:`explore` re-apply ``max_valid_points`` in deterministic
    sweep order after a parallel fan-out.
    """
    errors = validation_errors(
        hw,
        required_macs=required_macs,
        max_chiplet_area_mm2=max_chiplet_mm2,
    )
    area = AreaModel(hw).chiplet_area_mm2()
    point = DesignPoint(
        hw=hw,
        chiplet_area_mm2=area,
        valid=not errors,
        errors=tuple(errors),
    )
    hits = misses = 0
    structural = point.valid
    if point.valid:
        eval_start = time.perf_counter()
        try:
            point.energy_pj, point.cycles, (hits, misses) = _evaluate_point(
                hw, models, profile
            )
        except InvalidMappingError as exc:
            point.valid = False
            point.errors = (str(exc),)
        obs.histogram(
            "dse.point_eval_ms", (time.perf_counter() - eval_start) * 1e3
        )
    return point, structural, hits, misses


def _granularity_task(config: tuple[int, int, int, int]):
    """Worker: one Figure 14 factorization (context: models, profile, tech)."""
    models, profile, tech = worker_context()
    n_p, n_c, lane, vec = config
    hw = build_hardware(n_p, n_c, lane, vec, tech=tech)
    return _make_point(hw, models, profile)


def _explore_task(task: tuple[int, int, int, int, MemoryConfig]):
    """Worker: one Figure 15 (computation, memory) sweep point."""
    models, profile, tech, required_macs, max_chiplet_mm2, topology = (
        worker_context()
    )
    n_p, n_c, lane, vec, memory = task
    hw = build_hardware(
        n_p, n_c, lane, vec, memory=memory, tech=tech, topology=topology
    )
    return _make_point(
        hw,
        models,
        profile,
        required_macs=required_macs,
        max_chiplet_mm2=max_chiplet_mm2,
    )


def _failed_point(
    hw: HardwareConfig, failure: TaskFailure
) -> DesignPoint:
    """The invalid design point recorded for a task that exhausted retries."""
    return DesignPoint(
        hw=hw,
        chiplet_area_mm2=AreaModel(hw).chiplet_area_mm2(),
        valid=False,
        errors=(
            f"evaluation failed ({failure.error_type}) after "
            f"{failure.attempts} attempt(s): {failure.error}",
        ),
    )


def _label_failures(
    stats: SweepStats | None,
    fail_start: int,
    local_to_global: Sequence[int],
    labels: Sequence[str],
) -> None:
    """Rewrite run-local failure indices/labels into sweep terms."""
    if stats is None:
        return
    for pos in range(fail_start, len(stats.failures)):
        failure = stats.failures[pos]
        if failure.index < len(local_to_global):
            index = local_to_global[failure.index]
            stats.failures[pos] = replace(
                failure, index=index, label=labels[index]
            )


def granularity_study(
    models: dict[str, list[ConvLayer]],
    total_macs: int = 2048,
    space: DesignSpace | None = None,
    profile: SearchProfile = SearchProfile.FAST,
    tech: TechnologyParams = DEFAULT_TECHNOLOGY,
    jobs: int | None = None,
    stats: SweepStats | None = None,
    policy: TaskPolicy | None = None,
) -> list[DesignPoint]:
    """The Figure 14 study: every factorization of ``total_macs``.

    Buffers are assembled proportionally to the computation resources; every
    point is evaluated on every model with the optimal mapping strategy.
    Invalid points (structural rule violations) are returned unevaluated so
    callers can report the pruning.

    Args:
        models: Benchmarks to evaluate (name -> layers).
        total_macs: Exact MAC budget of every factorization.
        space: Exploration space (defaults to Table II).
        profile: Mapping-search profile per point.
        tech: Technology point.
        jobs: Worker processes fanning factorizations out (``None`` defers
            to ``REPRO_JOBS``, then serial); results are bit-identical at
            every worker count.
        stats: Optional instrumentation record filled in place.
        policy: Timeout/retry/on-error contract for the fan-out (defaults
            to abort-on-first-failure).
    """
    space = space or DesignSpace()
    jobs = resolve_jobs(jobs)
    context = (models, profile, tech)
    if jobs > 1 and not is_picklable(context):
        jobs = 1
    tasks = space.computation_configs(total_macs)
    if stats is not None:
        stats.jobs = max(stats.jobs, jobs)
        stats.points_total += len(tasks)
    fail_start = len(stats.failures) if stats is not None else 0
    timer = stats.stage("granularity") if stats else None
    if timer:
        timer.__enter__()
    try:
        outcomes = run_tasks(
            _granularity_task,
            tasks,
            jobs=jobs,
            context=context,
            policy=policy,
            stats=stats,
        )
    finally:
        if timer:
            timer.__exit__(None, None, None)
    labels = ["-".join(str(v) for v in config) for config in tasks]
    _label_failures(stats, fail_start, list(range(len(tasks))), labels)
    points: list[DesignPoint] = []
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, TaskFailure):
            hw = build_hardware(*tasks[index], tech=tech)
            point, hits, misses = _failed_point(hw, outcome), 0, 0
        else:
            point, _structural, hits, misses = outcome
        if stats is not None:
            stats.add_cache(hits, misses)
            if point.valid:
                stats.points_evaluated += 1
        points.append(point)
    obs.count("dse.points.total", len(points))
    obs.count("dse.points.evaluated", sum(1 for p in points if p.valid))
    obs.count("dse.points.invalid", sum(1 for p in points if not p.valid))
    return points


def best_point(
    points: Iterable[DesignPoint],
    model: str,
    objective: str = "edp",
    max_chiplet_mm2: float | None = None,
    max_runtime_s: float | None = None,
) -> DesignPoint | None:
    """The optimal evaluated point for ``model`` under optional budgets.

    Args:
        points: Candidate design points.
        model: Model name key into each point's results.
        objective: ``"edp"``, ``"energy"`` or ``"runtime"``.
        max_chiplet_mm2: Per-chiplet area constraint, if any.
        max_runtime_s: Performance budget -- points slower than this on
            ``model`` are excluded ("given area and performance budgets",
            Section IV-D).
    """
    scorers = {
        "edp": lambda p: p.edp(model),
        "energy": lambda p: p.energy_pj[model],
        "runtime": lambda p: p.runtime_s(model),
    }
    if objective not in scorers:
        raise ValueError(f"unknown objective {objective!r}")
    eligible = [
        p
        for p in points
        if p.valid
        and model in p.energy_pj
        and (max_chiplet_mm2 is None or p.meets_area(max_chiplet_mm2))
        and (max_runtime_s is None or p.runtime_s(model) <= max_runtime_s)
    ]
    if not eligible:
        return None
    return min(eligible, key=scorers[objective])


def _sweep_tasks(
    space: DesignSpace, required_macs: int, memory_stride: int
) -> list[tuple[int, int, int, int, MemoryConfig]]:
    """The stride-filtered (computation, memory) task list, in sweep order."""
    tasks = []
    for n_p, n_c, lane, vec in space.computation_configs(required_macs):
        for index, memory in enumerate(space.memory_configs(lane)):
            if index % memory_stride:
                continue
            tasks.append((n_p, n_c, lane, vec, memory))
    return tasks


def _record_from_outcome(
    outcome: tuple[DesignPoint, bool, int, int]
) -> dict:
    """The JSON-safe checkpoint record of one completed sweep outcome."""
    point, structural, hits, misses = outcome
    return {
        "structural": structural,
        "hits": hits,
        "misses": misses,
        "valid": point.valid,
        "errors": list(point.errors),
        "area": point.chiplet_area_mm2,
        "energy_pj": point.energy_pj,
        "cycles": point.cycles,
    }


def _outcome_from_record(
    task: tuple[int, int, int, int, MemoryConfig],
    record: dict,
    tech: TechnologyParams,
    topology: Topology = Topology.RING,
) -> tuple[DesignPoint, bool, int, int] | None:
    """Rebuild a sweep outcome from its checkpoint record.

    Returns ``None`` on any malformed record, so the point is simply
    re-evaluated rather than poisoning a resumed run.
    """
    try:
        n_p, n_c, lane, vec, memory = task
        hw = build_hardware(
            n_p, n_c, lane, vec, memory=memory, tech=tech, topology=topology
        )
        point = DesignPoint(
            hw=hw,
            chiplet_area_mm2=float(record["area"]),
            valid=bool(record["valid"]),
            errors=tuple(str(e) for e in record["errors"]),
            energy_pj={str(k): float(v) for k, v in record["energy_pj"].items()},
            cycles={str(k): int(v) for k, v in record["cycles"].items()},
        )
        return (
            point,
            bool(record["structural"]),
            int(record["hits"]),
            int(record["misses"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError):
        return None


def explore(
    models: dict[str, list[ConvLayer]],
    required_macs: int,
    space: DesignSpace | None = None,
    max_chiplet_mm2: float | None = None,
    topology: Topology = Topology.RING,
    profile: SearchProfile = SearchProfile.FAST,
    tech: TechnologyParams = DEFAULT_TECHNOLOGY,
    max_valid_points: int | None = None,
    memory_stride: int = 1,
    jobs: int | None = None,
    stats: SweepStats | None = None,
    policy: TaskPolicy | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    checkpoint_every: int = 16,
    strategy: str = "exhaustive",
    trials: int | None = None,
    study: str | Path | None = None,
    seed: int = 0,
    primary_model: str | None = None,
    progress: Any | None = None,
) -> list[DesignPoint]:
    """The Figure 15 full design-space exploration.

    Sweeps every (computation, memory) combination of ``space`` whose total
    MAC count equals ``required_macs``, prunes invalid points cheaply, and
    evaluates the survivors with the optimal per-layer mapping.

    With ``strategy="guided"`` the exhaustive sweep is replaced by the
    ask/tell optimizer of :func:`repro.core.search.guided_explore`: only
    ``trials`` full evaluations are paid, dominance-pruned and invalid
    proposals come back as labelled ``valid=False`` points, and ``study``
    (a sqlite file) makes the search resumable.  The exhaustive default
    is byte-for-byte the pre-guided behaviour.

    Args:
        models: Benchmarks to evaluate (name -> layers).
        required_macs: Exact MAC budget (4096 in the paper's Figure 15).
        space: Exploration space (defaults to Table II).
        max_chiplet_mm2: Points over this area are kept but marked invalid,
            mirroring the paper's constrained/unconstrained split.
        topology: Package interconnect every swept machine uses (the
            paper's directional ring by default; mesh/switch let the sweep
            answer "does the winning granularity survive a fabric change").
        profile: Mapping-search profile for each valid point.
        max_valid_points: Optional cap on evaluated points (sweep still
            counts the rest as valid-but-unevaluated=False for reporting).
        memory_stride: Evaluate every ``memory_stride``-th memory combo --
            a documented subsampling knob for quick runs.
        jobs: Worker processes fanning sweep points out (``None`` defers to
            ``REPRO_JOBS``, then serial).  Returned points are bit-identical
            at every worker count: the cap is re-applied in sweep order, so
            parallel runs with ``max_valid_points`` trade wasted evaluations
            beyond the cap for wall-clock speed.
        stats: Optional instrumentation record filled in place.
        policy: Timeout/retry/on-error contract for the fan-out (defaults
            to abort-on-first-failure, the pre-resilience semantics).
        checkpoint_dir: When set, completed design points stream to a
            :class:`~repro.core.checkpoint.SweepCheckpoint` under this
            directory, keyed by the sweep digest; the checkpoint is also
            flushed when the sweep is interrupted (``KeyboardInterrupt``).
        resume: Skip every point already answered by the checkpoint (the
            same ``checkpoint_dir`` must be supplied); resumed outputs are
            byte-identical to an uninterrupted run.
        checkpoint_every: Completed points buffered per checkpoint flush.
        strategy: ``"exhaustive"`` (default) or ``"guided"``.
        trials: Guided only -- the full-evaluation budget (required).
        study: Guided only -- optional sqlite study path for resume.
        seed: Guided only -- sampler seed (same seed, same trajectory).
        primary_model: Guided only -- the model whose EDP the search
            minimizes (defaults to the first ``models`` entry).
        progress: Optional :class:`repro.obs.progress.ProgressMeter`
            updated per completed point (stderr only; never stdout).
    """
    if strategy not in ("exhaustive", "guided"):
        raise ValueError(
            f"unknown strategy {strategy!r}; expected 'exhaustive' or 'guided'"
        )
    if strategy == "guided":
        if checkpoint_dir is not None or resume:
            raise ValueError(
                "guided search persists through --study, not the sweep "
                "checkpoint; drop checkpoint_dir/resume"
            )
        if max_valid_points is not None:
            raise ValueError(
                "guided search budgets with trials, not max_valid_points"
            )
        if memory_stride != 1:
            raise ValueError(
                "guided search samples the full memory lattice; "
                "memory_stride must stay 1"
            )
        if trials is None:
            raise ValueError("strategy='guided' requires a trials budget")
        from repro.core.search import guided_explore

        return guided_explore(
            models,
            required_macs,
            space=space,
            max_chiplet_mm2=max_chiplet_mm2,
            topology=topology,
            profile=profile,
            tech=tech,
            trials=trials,
            seed=seed,
            study=study,
            primary_model=primary_model,
            jobs=jobs,
            stats=stats,
            policy=policy,
            progress=progress,
        )
    if trials is not None or study is not None:
        raise ValueError(
            "trials/study only apply to strategy='guided'"
        )
    if memory_stride < 1:
        raise ValueError(f"memory_stride must be >= 1, got {memory_stride}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    space = space or DesignSpace()
    jobs = resolve_jobs(jobs)
    context = (models, profile, tech, required_macs, max_chiplet_mm2, topology)
    if jobs > 1 and not is_picklable(context):
        jobs = 1
    tasks = _sweep_tasks(space, required_macs, memory_stride)
    if stats is not None:
        stats.jobs = max(stats.jobs, jobs)
        stats.points_total += len(tasks)
    fail_start = len(stats.failures) if stats is not None else 0
    keys = [task_key(task) for task in tasks]

    checkpoint: SweepCheckpoint | None = None
    resumed: dict[int, tuple[DesignPoint, bool, int, int]] = {}
    if checkpoint_dir is not None:
        checkpoint = SweepCheckpoint(
            SweepCheckpoint.resolve_dir(checkpoint_dir),
            sweep_digest(
                models,
                required_macs,
                space,
                max_chiplet_mm2,
                profile,
                tech,
                memory_stride,
                topology=topology.value,
            ),
            flush_every=checkpoint_every,
        )
        if resume:
            stored = checkpoint.load()
            for index, key in enumerate(keys):
                record = stored.get(key)
                if record is None:
                    continue
                outcome = _outcome_from_record(
                    tasks[index], record, tech, topology=topology
                )
                if outcome is not None:
                    resumed[index] = outcome
            if resumed:
                obs.count("dse.points.resumed", len(resumed))
                if stats is not None:
                    stats.points_resumed += len(resumed)
        else:
            checkpoint.reset()

    pending = [index for index in range(len(tasks)) if index not in resumed]
    pending_tasks = [tasks[index] for index in pending]

    obs.event("run.start", op="explore", points=len(tasks))

    if progress is not None and getattr(progress, "total", None) is None:
        # The CLI cannot know the sweep size before the space is built.
        progress.total = len(pending_tasks)

    # Completion telemetry, parent-side so the event set is identical at
    # every --jobs N: one point.batch per POINT_BATCH_EVERY completions
    # (fields depend only on the completion *count*, not on order), plus
    # the live progress meter when one is attached.
    done = 0
    live_hits = 0
    live_misses = 0

    def _note_done(outcome: Any) -> None:
        nonlocal done, live_hits, live_misses
        done += 1
        if not isinstance(outcome, TaskFailure):
            _, _, hits, misses = outcome
            live_hits += hits
            live_misses += misses
        if done % POINT_BATCH_EVERY == 0 or done == len(pending_tasks):
            obs.event("point.batch", done=done, total=len(pending_tasks))
        if progress is not None:
            lookups = live_hits + live_misses
            extra = {"cache": live_hits / lookups} if lookups else {}
            progress.update(done, **extra)

    def _on_result(local_index: int, outcome) -> None:
        _note_done(outcome)
        if checkpoint is None or isinstance(outcome, TaskFailure):
            return
        checkpoint.record(
            keys[pending[local_index]], _record_from_outcome(outcome)
        )

    timer = stats.stage("explore") if stats else None
    if timer:
        timer.__enter__()
    try:
        if (
            jobs == 1
            and max_valid_points is not None
            and policy is None
            and checkpoint is None
        ):
            pending_outcomes = _explore_serial_capped(
                pending_tasks, context, max_valid_points, on_done=_note_done
            )
        else:
            pending_outcomes = run_tasks(
                _explore_task,
                pending_tasks,
                jobs=jobs,
                context=context,
                policy=policy,
                stats=stats,
                on_result=_on_result,
            )
    finally:
        if timer:
            timer.__exit__(None, None, None)
        if checkpoint is not None:
            # Flush whatever completed -- also on KeyboardInterrupt/SIGINT,
            # so an interrupted sweep can resume from here.  After the
            # stage timer: the flush is recovery I/O, not search time, and
            # an interrupted run's event log ends on ``checkpoint.flush``.
            checkpoint.flush()
    _label_failures(stats, fail_start, pending, keys)

    outcomes: list[Any] = [None] * len(tasks)
    for index, outcome in resumed.items():
        outcomes[index] = outcome
    for local_index, outcome in enumerate(pending_outcomes):
        outcomes[pending[local_index]] = outcome

    # Re-apply the evaluation cap in deterministic sweep order.  A parallel
    # run evaluates every structurally valid point, then demotes successes
    # beyond the cap to the exact "skipped" records the serial walk emits.
    points: list[DesignPoint] = []
    evaluated = 0
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, TaskFailure):
            n_p, n_c, lane, vec, memory = tasks[index]
            hw = build_hardware(
                n_p, n_c, lane, vec, memory=memory, tech=tech, topology=topology
            )
            point, structural, hits, misses = (
                _failed_point(hw, outcome),
                False,
                0,
                0,
            )
        else:
            point, structural, hits, misses = outcome
        if stats is not None:
            stats.add_cache(hits, misses)
        if structural:
            if max_valid_points is not None and evaluated >= max_valid_points:
                # Once the cap is reached the serial walk never evaluates, so
                # even points whose parallel evaluation failed become the
                # same "skipped" record here.
                point.valid = False
                point.errors = ("skipped: max_valid_points reached",)
                point.energy_pj = {}
                point.cycles = {}
            elif point.valid:
                evaluated += 1
        points.append(point)
    if stats is not None:
        stats.points_evaluated += evaluated
    obs.count("dse.points.total", len(points))
    obs.count("dse.points.evaluated", evaluated)
    obs.count("dse.points.invalid", sum(1 for p in points if not p.valid))
    obs.event(
        "run.finish", op="explore", points=len(points), evaluated=evaluated
    )
    return points


def _explore_serial_capped(
    tasks: Sequence[tuple[int, int, int, int, MemoryConfig]],
    context: tuple,
    max_valid_points: int,
    on_done: Callable[[Any], None] | None = None,
) -> list[tuple[DesignPoint, bool, int, int]]:
    """Serial sweep that stops evaluating once the cap is reached.

    Matches the parallel path's output exactly while never paying for
    evaluations beyond ``max_valid_points`` -- the cheap-skip behaviour the
    pre-parallel implementation had.
    """
    models, profile, tech, required_macs, max_chiplet_mm2, topology = context
    outcomes: list[tuple[DesignPoint, bool, int, int]] = []
    evaluated = 0
    for n_p, n_c, lane, vec, memory in tasks:
        hw = build_hardware(
            n_p, n_c, lane, vec, memory=memory, tech=tech, topology=topology
        )
        errors = validation_errors(
            hw,
            required_macs=required_macs,
            max_chiplet_area_mm2=max_chiplet_mm2,
        )
        area = AreaModel(hw).chiplet_area_mm2()
        point = DesignPoint(
            hw=hw,
            chiplet_area_mm2=area,
            valid=not errors,
            errors=tuple(errors),
        )
        hits = misses = 0
        structural = point.valid
        if point.valid and evaluated < max_valid_points:
            try:
                point.energy_pj, point.cycles, (hits, misses) = _evaluate_point(
                    hw, models, profile
                )
                evaluated += 1
            except InvalidMappingError as exc:
                point.valid = False
                point.errors = (str(exc),)
        elif point.valid:
            # Beyond the cap: the shared post-walk in explore() stamps the
            # canonical "skipped" record; leave the point unevaluated.
            pass
        outcomes.append((point, structural, hits, misses))
        if on_done is not None:
            on_done(outcomes[-1])
    return outcomes


def refine_with_simulator(
    points: Sequence[DesignPoint],
    models: dict[str, list[ConvLayer]],
    primary_model: str,
    top_k: int = 5,
    profile: SearchProfile = SearchProfile.FAST,
) -> list[DesignPoint]:
    """Re-rank the EDP finalists with discrete-event-simulated runtimes.

    The analytical cycle count ignores DRAM/ring bandwidth; for the ``top_k``
    EDP-best valid points, this re-runs the mapping search, simulates every
    layer's pipeline (:func:`repro.sim.simulate_runtime`) and replaces the
    cycle totals, then returns the finalists re-sorted by simulated EDP.
    Simulated cycles are never below the analytical ones, so refinement can
    only demote bandwidth-starved designs.

    Args:
        points: Evaluated design points (e.g. from :func:`explore`).
        models: The same benchmarks the points were evaluated on.
        primary_model: Model whose EDP picks and orders the finalists.
        top_k: Finalist count.
        profile: Mapping-search profile for the re-run.
    """
    from repro.sim.runtime import simulate_runtime

    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    finalists = sorted(
        (p for p in points if p.valid and primary_model in p.energy_pj),
        key=lambda p: p.edp(primary_model),
    )[:top_k]
    refined: list[DesignPoint] = []
    for point in finalists:
        mapper = Mapper(hw=point.hw, profile=profile)
        cycles: dict[str, int] = {}
        for name, layers in models.items():
            total = 0.0
            for result in mapper.search_model(layers):
                sim = simulate_runtime(result.layer, point.hw, result.mapping)
                total += sim.cycles
            cycles[name] = int(total)
        refined.append(
            DesignPoint(
                hw=point.hw,
                chiplet_area_mm2=point.chiplet_area_mm2,
                valid=point.valid,
                errors=point.errors,
                energy_pj=dict(point.energy_pj),
                cycles=cycles,
            )
        )
    return sorted(refined, key=lambda p: p.edp(primary_model))


def pareto_front(
    points: Sequence[DesignPoint], model: str
) -> list[DesignPoint]:
    """Area/EDP Pareto-optimal subset for one model (lower is better)."""
    evaluated = [p for p in points if p.valid and model in p.energy_pj]
    front: list[DesignPoint] = []
    for candidate in evaluated:
        dominated = any(
            other.chiplet_area_mm2 <= candidate.chiplet_area_mm2
            and other.edp(model) <= candidate.edp(model)
            and (
                other.chiplet_area_mm2 < candidate.chiplet_area_mm2
                or other.edp(model) < candidate.edp(model)
            )
            for other in evaluated
        )
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda p: p.chiplet_area_mm2)
