"""The pre-design flow: chiplet granularity and resource-allocation DSE.

Implements the two Section VI-B studies:

* :func:`granularity_study` (Figure 14) -- with a required total MAC count,
  enumerate every (chiplets, cores, lanes, vector-size) factorization,
  assemble buffers proportional to the computation resources, and report the
  optimal implementation per chiplet count with and without a per-chiplet
  area constraint, plus the EDP winner.
* :func:`explore` (Figure 15) -- sweep the full Table II space (computation
  dimensions x memory footprints), prune invalid points ("such as the A-L1
  size smaller than A-L2 or the total MAC units less than the required
  quantities"), and evaluate energy/runtime of every valid design with the
  optimal per-layer mapping.

Table II reproduction note: the published O-L1 range (48-144 B) is read as a
per-lane register budget (the case-study machine's 1.5 KB O-L1 across 8
lanes is 192 B/lane, the same order); DESIGN.md section 5 records this
interpretation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.arch.area import AreaModel
from repro.arch.config import HardwareConfig, MemoryConfig, build_hardware
from repro.arch.technology import DEFAULT_TECHNOLOGY, TechnologyParams
from repro.arch.validate import validation_errors
from repro.core.cost import InvalidMappingError, model_cost
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer

KB = 1024


@dataclass(frozen=True)
class DesignSpace:
    """The Table II exploration space.

    Computation resources are the published option lists; memory footprints
    are sampled within the published ranges (powers of two plus the
    case-study anchors).
    """

    vector_sizes: tuple[int, ...] = (2, 4, 8, 16)
    lanes: tuple[int, ...] = (2, 4, 8, 16)
    cores: tuple[int, ...] = (1, 2, 4, 8, 16)
    chiplets: tuple[int, ...] = (1, 2, 4, 8)
    o_l1_per_lane_bytes: tuple[int, ...] = (48, 96, 144)
    a_l1_kb: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    w_l1_kb: tuple[float, ...] = (2, 4, 8, 18, 36, 72, 144, 256)
    a_l2_kb: tuple[float, ...] = (32, 64, 128, 256)

    def computation_configs(
        self, total_macs: int | None = None
    ) -> list[tuple[int, int, int, int]]:
        """All (chiplets, cores, lanes, vector) tuples, optionally filtered
        to an exact total MAC budget.

        For 2048 MACs this yields the paper's "up to 63 possibilities".
        """
        configs = []
        for n_p, n_c, lane, vec in itertools.product(
            self.chiplets, self.cores, self.lanes, self.vector_sizes
        ):
            if total_macs is None or n_p * n_c * lane * vec == total_macs:
                configs.append((n_p, n_c, lane, vec))
        return configs

    def memory_configs(self, lanes: int) -> Iterator[MemoryConfig]:
        """Every memory combination for a core with ``lanes`` lanes.

        Skips hierarchy inversions (A-L2 smaller than A-L1) up front, the
        paper's explicit pruning example.
        """
        for o_l1_pl, a_l1, w_l1, a_l2 in itertools.product(
            self.o_l1_per_lane_bytes, self.a_l1_kb, self.w_l1_kb, self.a_l2_kb
        ):
            if a_l2 < a_l1:
                continue
            yield MemoryConfig(
                a_l1_bytes=int(a_l1 * KB),
                w_l1_bytes=int(w_l1 * KB),
                o_l1_bytes=o_l1_pl * lanes,
                a_l2_bytes=int(a_l2 * KB),
            )

    def sweep_size(self, total_macs: int | None = None) -> int:
        """Number of (computation, memory) points before validity pruning."""
        total = 0
        mem_per_lane = (
            len(self.o_l1_per_lane_bytes) * len(self.w_l1_kb)
        ) * sum(1 for a1 in self.a_l1_kb for a2 in self.a_l2_kb if a2 >= a1)
        total = len(self.computation_configs(total_macs)) * mem_per_lane
        return total


@dataclass
class DesignPoint:
    """One evaluated hardware design.

    Attributes:
        hw: The hardware instance.
        chiplet_area_mm2: Area of one chiplet.
        valid: Whether the point passed structural validation.
        errors: Validation messages when invalid.
        energy_pj: Per-model total energy (model name -> pJ).
        cycles: Per-model total cycles.
    """

    hw: HardwareConfig
    chiplet_area_mm2: float
    valid: bool
    errors: tuple[str, ...] = ()
    energy_pj: dict[str, float] = field(default_factory=dict)
    cycles: dict[str, int] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """The (chiplet, core, lane, vector) tuple label."""
        return self.hw.label()

    def runtime_s(self, model: str) -> float:
        """Model runtime in seconds."""
        return self.cycles[model] * self.hw.tech.cycle_time_ns() * 1e-9

    def edp(self, model: str) -> float:
        """Model energy-delay product in joule-seconds."""
        return self.energy_pj[model] * 1e-12 * self.runtime_s(model)

    def meets_area(self, max_chiplet_mm2: float) -> bool:
        """Whether the chiplet fits the area budget."""
        return self.chiplet_area_mm2 <= max_chiplet_mm2


def _evaluate_point(
    hw: HardwareConfig,
    models: dict[str, list[ConvLayer]],
    profile: SearchProfile,
) -> tuple[dict[str, float], dict[str, int]]:
    """Optimal-mapping energy and cycles of every model on ``hw``."""
    energy: dict[str, float] = {}
    cycles: dict[str, int] = {}
    mapper = Mapper(hw=hw, profile=profile)
    for name, layers in models.items():
        results = mapper.search_model(layers)
        breakdown, total_cycles, _ = model_cost([r.best for r in results], hw)
        energy[name] = breakdown.total_pj
        cycles[name] = total_cycles
    return energy, cycles


def granularity_study(
    models: dict[str, list[ConvLayer]],
    total_macs: int = 2048,
    space: DesignSpace | None = None,
    profile: SearchProfile = SearchProfile.FAST,
    tech: TechnologyParams = DEFAULT_TECHNOLOGY,
) -> list[DesignPoint]:
    """The Figure 14 study: every factorization of ``total_macs``.

    Buffers are assembled proportionally to the computation resources; every
    point is evaluated on every model with the optimal mapping strategy.
    Invalid points (structural rule violations) are returned unevaluated so
    callers can report the pruning.
    """
    space = space or DesignSpace()
    points: list[DesignPoint] = []
    for n_p, n_c, lane, vec in space.computation_configs(total_macs):
        hw = build_hardware(n_p, n_c, lane, vec, tech=tech)
        errors = validation_errors(hw)
        area = AreaModel(hw).chiplet_area_mm2()
        point = DesignPoint(
            hw=hw,
            chiplet_area_mm2=area,
            valid=not errors,
            errors=tuple(errors),
        )
        if point.valid:
            try:
                point.energy_pj, point.cycles = _evaluate_point(hw, models, profile)
            except InvalidMappingError as exc:
                point.valid = False
                point.errors = (str(exc),)
        points.append(point)
    return points


def best_point(
    points: Iterable[DesignPoint],
    model: str,
    objective: str = "edp",
    max_chiplet_mm2: float | None = None,
    max_runtime_s: float | None = None,
) -> DesignPoint | None:
    """The optimal evaluated point for ``model`` under optional budgets.

    Args:
        points: Candidate design points.
        model: Model name key into each point's results.
        objective: ``"edp"``, ``"energy"`` or ``"runtime"``.
        max_chiplet_mm2: Per-chiplet area constraint, if any.
        max_runtime_s: Performance budget -- points slower than this on
            ``model`` are excluded ("given area and performance budgets",
            Section IV-D).
    """
    scorers = {
        "edp": lambda p: p.edp(model),
        "energy": lambda p: p.energy_pj[model],
        "runtime": lambda p: p.runtime_s(model),
    }
    if objective not in scorers:
        raise ValueError(f"unknown objective {objective!r}")
    eligible = [
        p
        for p in points
        if p.valid
        and model in p.energy_pj
        and (max_chiplet_mm2 is None or p.meets_area(max_chiplet_mm2))
        and (max_runtime_s is None or p.runtime_s(model) <= max_runtime_s)
    ]
    if not eligible:
        return None
    return min(eligible, key=scorers[objective])


def explore(
    models: dict[str, list[ConvLayer]],
    required_macs: int,
    space: DesignSpace | None = None,
    max_chiplet_mm2: float | None = None,
    profile: SearchProfile = SearchProfile.FAST,
    tech: TechnologyParams = DEFAULT_TECHNOLOGY,
    max_valid_points: int | None = None,
    memory_stride: int = 1,
) -> list[DesignPoint]:
    """The Figure 15 full design-space exploration.

    Sweeps every (computation, memory) combination of ``space`` whose total
    MAC count equals ``required_macs``, prunes invalid points cheaply, and
    evaluates the survivors with the optimal per-layer mapping.

    Args:
        models: Benchmarks to evaluate (name -> layers).
        required_macs: Exact MAC budget (4096 in the paper's Figure 15).
        space: Exploration space (defaults to Table II).
        max_chiplet_mm2: Points over this area are kept but marked invalid,
            mirroring the paper's constrained/unconstrained split.
        profile: Mapping-search profile for each valid point.
        max_valid_points: Optional cap on evaluated points (sweep still
            counts the rest as valid-but-unevaluated=False for reporting).
        memory_stride: Evaluate every ``memory_stride``-th memory combo --
            a documented subsampling knob for quick runs.
    """
    if memory_stride < 1:
        raise ValueError(f"memory_stride must be >= 1, got {memory_stride}")
    space = space or DesignSpace()
    points: list[DesignPoint] = []
    evaluated = 0
    for n_p, n_c, lane, vec in space.computation_configs(required_macs):
        for index, memory in enumerate(space.memory_configs(lane)):
            if index % memory_stride:
                continue
            hw = build_hardware(n_p, n_c, lane, vec, memory=memory, tech=tech)
            errors = validation_errors(
                hw,
                required_macs=required_macs,
                max_chiplet_area_mm2=max_chiplet_mm2,
            )
            area = AreaModel(hw).chiplet_area_mm2()
            point = DesignPoint(
                hw=hw,
                chiplet_area_mm2=area,
                valid=not errors,
                errors=tuple(errors),
            )
            if point.valid:
                if max_valid_points is not None and evaluated >= max_valid_points:
                    point.valid = False
                    point.errors = ("skipped: max_valid_points reached",)
                else:
                    try:
                        point.energy_pj, point.cycles = _evaluate_point(
                            hw, models, profile
                        )
                        evaluated += 1
                    except InvalidMappingError as exc:
                        point.valid = False
                        point.errors = (str(exc),)
            points.append(point)
    return points


def refine_with_simulator(
    points: Sequence[DesignPoint],
    models: dict[str, list[ConvLayer]],
    primary_model: str,
    top_k: int = 5,
    profile: SearchProfile = SearchProfile.FAST,
) -> list[DesignPoint]:
    """Re-rank the EDP finalists with discrete-event-simulated runtimes.

    The analytical cycle count ignores DRAM/ring bandwidth; for the ``top_k``
    EDP-best valid points, this re-runs the mapping search, simulates every
    layer's pipeline (:func:`repro.sim.simulate_runtime`) and replaces the
    cycle totals, then returns the finalists re-sorted by simulated EDP.
    Simulated cycles are never below the analytical ones, so refinement can
    only demote bandwidth-starved designs.

    Args:
        points: Evaluated design points (e.g. from :func:`explore`).
        models: The same benchmarks the points were evaluated on.
        primary_model: Model whose EDP picks and orders the finalists.
        top_k: Finalist count.
        profile: Mapping-search profile for the re-run.
    """
    from repro.sim.runtime import simulate_runtime

    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    finalists = sorted(
        (p for p in points if p.valid and primary_model in p.energy_pj),
        key=lambda p: p.edp(primary_model),
    )[:top_k]
    refined: list[DesignPoint] = []
    for point in finalists:
        mapper = Mapper(hw=point.hw, profile=profile)
        cycles: dict[str, int] = {}
        for name, layers in models.items():
            total = 0.0
            for result in mapper.search_model(layers):
                sim = simulate_runtime(result.layer, point.hw, result.mapping)
                total += sim.cycles
            cycles[name] = int(total)
        refined.append(
            DesignPoint(
                hw=point.hw,
                chiplet_area_mm2=point.chiplet_area_mm2,
                valid=point.valid,
                errors=point.errors,
                energy_pj=dict(point.energy_pj),
                cycles=cycles,
            )
        )
    return sorted(refined, key=lambda p: p.edp(primary_model))


def pareto_front(
    points: Sequence[DesignPoint], model: str
) -> list[DesignPoint]:
    """Area/EDP Pareto-optimal subset for one model (lower is better)."""
    evaluated = [p for p in points if p.valid and model in p.energy_pj]
    front: list[DesignPoint] = []
    for candidate in evaluated:
        dominated = any(
            other.chiplet_area_mm2 <= candidate.chiplet_area_mm2
            and other.edp(model) <= candidate.edp(model)
            and (
                other.chiplet_area_mm2 < candidate.chiplet_area_mm2
                or other.edp(model) < candidate.edp(model)
            )
            for other in evaluated
        )
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda p: p.chiplet_area_mm2)
