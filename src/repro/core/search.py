"""Guided design-space search: ask/tell strategies over the Table II lattice.

The exhaustive :func:`repro.core.dse.explore` sweep reproduces Figure 15 by
enumerating every (computation, memory) point -- fine at the paper's ~10^4
scale, a dead end beyond it.  This module makes larger spaces tractable with
an optimizer-driven loop behind a small :class:`SearchStrategy` interface:

* **ask/tell** -- the driver asks a strategy for a batch of candidates,
  evaluates them (re-using the parallel executor and the mapping cache via
  the same worker the exhaustive sweep fans out), and tells the results
  back so the next batch is better informed.
* :class:`GuidedStrategy` -- a seeded TPE/SA-style sampler: each lattice
  dimension is drawn from an elite-weighted categorical distribution with
  an annealed uniform-exploration floor, and every batch first proposes the
  unvisited lattice neighbours of the incumbent (simulated-annealing-style
  local polish that makes the exact optimum reachable, not just its basin).
* **Dominance pruning** -- :func:`edp_lower_bound` is an admissible
  (never-overestimating) roofline bound on a design's EDP; a candidate
  whose bound already exceeds the incumbent's *actual* EDP cannot win and
  is never fully evaluated.
* :class:`Study` -- a stdlib-``sqlite3`` trial store keyed by the extended
  sweep digest (strategy, seed and trial budget included), so interrupted
  searches resume without re-evaluating and a guided study can never be
  silently replayed under different search parameters.

Determinism: given the same seed, space and models, a guided run proposes
and evaluates the identical trial sequence at every ``--jobs`` count -- the
batch composition depends only on the seeded RNG and the told results, and
:func:`repro.core.parallel.run_tasks` preserves task order.  The pruned /
deduped / evaluated accounting is therefore byte-stable too, which is what
the CI counter gate checks.
"""

from __future__ import annotations

import logging
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro import obs
from repro.arch.area import AreaModel
from repro.arch.config import HardwareConfig, MemoryConfig, build_hardware
from repro.arch.energy import EnergyModel
from repro.arch.technology import DEFAULT_TECHNOLOGY, TechnologyParams
from repro.arch.topology import Topology
from repro.arch.validate import validation_errors
from repro.core.checkpoint import sweep_digest, task_key
from repro.core.cost import intrinsic_compute_energy_pj
from repro import durable
from repro.errors import ConfigError, StateCorruptionError
from repro.core.parallel import (
    SweepStats,
    TaskFailure,
    TaskPolicy,
    _fault_plan,
    is_picklable,
    resolve_jobs,
    run_tasks,
    worker_context,  # noqa: F401  (re-exported for strategy implementers)
)
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer

KB = 1024

logger = logging.getLogger("repro.search")

#: Consecutive sampler collisions before falling back to a canonical scan.
_MAX_SAMPLER_MISSES = 64

#: Strategy names the CLI accepts (``exhaustive`` routes around this module).
STRATEGY_NAMES = ("exhaustive", "guided")


# --- the admissible EDP lower bound -----------------------------------------------


def edp_lower_bound(hw: HardwareConfig, layers: Sequence[ConvLayer]) -> float:
    """An admissible (never-overestimating) EDP bound for ``layers`` on ``hw``.

    Energy floor -- terms every mapping must pay, whatever the loop nest:

    * the dataflow-invariant compute-side energy
      (:func:`repro.core.cost.intrinsic_compute_energy_pj`: MACs, per-cycle
      O-L1 read-modify-writes, per-cycle A-L1 operand reads);
    * compulsory DRAM traffic -- every weight and output element crosses
      the DRAM boundary at least once (rotation shares data between
      chiplets but still loads each shared bit from DRAM once), and so
      does every *touched* input element: the union input window
      ``input_rows_for(ho) x input_cols_for(wo) x ci``, which is smaller
      than ``input_elements`` when stride exceeds the kernel (disjoint
      windows skip rows) and is capped at ``input_elements`` when padding
      inflates the window span;
    * one compulsory pass of each operand working set through its buffer
      level (reload factors and halos only ever add traffic), priced with
      the size-dependent Figure 10 energies of *this* configuration: every
      weight is written into W-L1 and read into the PE array at least once;
      every touched input is written into A-L2, read out of it, and written
      into A-L1 at least once; every output element transits O-L2 exactly
      once in each direction (priced at the auto-sized buffer's floor
      energy) and drains from the O-L1 register file once at psum width.

    Time floor -- the cost model has no bandwidth stalls, so
    ``cycles >= macs / total_macs`` exactly (utilization <= 1).

    The bound is cheap (no mapping search) yet configuration-sensitive:
    buffer sizes move the per-bit energies, so oversized memories price
    themselves out before the incumbent is ever re-threatened.
    """
    model = EnergyModel(hw)
    data_bits = hw.tech.data_bits
    psum_bits = hw.tech.psum_bits
    o_l2_floor_pj_per_bit = model.o_l2_pj_per_bit(0)
    energy_pj = 0.0
    macs = 0
    for layer in layers:
        touched_inputs = min(
            layer.input_elements,
            layer.input_rows_for(layer.ho)
            * layer.input_cols_for(layer.wo)
            * layer.ci,
        )
        weight_bits = layer.weight_elements * data_bits
        touched_bits = touched_inputs * data_bits
        output_bits = layer.output_elements * data_bits
        energy_pj += intrinsic_compute_energy_pj(layer, hw)
        energy_pj += model.dram_pj_per_bit * (
            touched_bits + weight_bits + output_bits
        )
        energy_pj += model.w_l1_pj_per_bit * 2 * weight_bits
        energy_pj += model.a_l2_pj_per_bit * 2 * touched_bits
        energy_pj += model.a_l1_pj_per_bit * touched_bits
        energy_pj += o_l2_floor_pj_per_bit * 2 * output_bits
        energy_pj += model.rf_rmw_pj_per_bit * layer.output_elements * psum_bits
        macs += layer.macs
    runtime_s = macs / hw.total_macs * hw.tech.cycle_time_ns() * 1e-9
    return energy_pj * 1e-12 * runtime_s


# --- candidates and trials ---------------------------------------------------------


@dataclass(frozen=True)
class Candidate:
    """One proposed design point: a computation config plus a memory config.

    Attributes:
        comp: ``(chiplets, cores, lanes, vector)``.
        memory: The resolved :class:`~repro.arch.config.MemoryConfig`.
        index: The lattice index ``(comp, o_l1, a_l1, w_l1, a_l2)`` the
            sampler drew (kept so strategies can reason in index space).
    """

    comp: tuple[int, int, int, int]
    memory: MemoryConfig
    index: tuple[int, int, int, int, int]

    @property
    def task(self) -> tuple[int, int, int, int, MemoryConfig]:
        """The sweep-task tuple :func:`repro.core.dse._explore_task` takes."""
        return (*self.comp, self.memory)

    @property
    def key(self) -> str:
        """The canonical task key (shared with the sweep checkpoint)."""
        return task_key(self.task)


@dataclass(frozen=True)
class Trial:
    """One told result: a candidate plus what happened to it.

    ``status`` is one of ``"evaluated"`` (fresh full evaluation),
    ``"resumed"`` (answered by the study store), ``"pruned"`` (dominance
    bound beat the incumbent), ``"invalid"`` (failed structural
    validation) or ``"failed"`` (task exhausted its retries).  ``edp`` is
    the primary-model EDP for evaluated/resumed trials, else ``None``.
    """

    candidate: Candidate
    status: str
    point: Any  # DesignPoint; typed loosely to keep the import graph acyclic
    edp: float | None = None
    lower_bound: float | None = None

    @property
    def charged(self) -> bool:
        """Whether this trial consumes the full-evaluation budget."""
        return self.status in ("evaluated", "resumed", "failed")


# --- the lattice -------------------------------------------------------------------


class Lattice:
    """Index-space view of a :class:`~repro.core.dse.DesignSpace`.

    Five dimensions: the computation-config list (filtered to the MAC
    budget) and the four memory option lists.  The ``a_l2 >= a_l1``
    hierarchy rule is enforced by :meth:`repair`, mirroring the filter
    :meth:`~repro.core.dse.DesignSpace.memory_configs` applies.
    """

    def __init__(self, space: Any, required_macs: int) -> None:
        self.space = space
        self.comp: list[tuple[int, int, int, int]] = space.computation_configs(
            required_macs
        )
        if not self.comp:
            raise ValueError(
                f"no (chiplets, cores, lanes, vector) factorization of "
                f"{required_macs} MACs in the design space"
            )
        self.o1 = list(space.o_l1_per_lane_bytes)
        self.a1 = list(space.a_l1_kb)
        self.w1 = list(space.w_l1_kb)
        self.a2 = list(space.a_l2_kb)
        self.dims = (
            len(self.comp), len(self.o1), len(self.a1), len(self.w1), len(self.a2)
        )

    def size(self) -> int:
        """Legal lattice points (after the ``a_l2 >= a_l1`` filter)."""
        legal_pairs = sum(
            1 for a1 in self.a1 for a2 in self.a2 if a2 >= a1
        )
        return len(self.comp) * len(self.o1) * len(self.w1) * legal_pairs

    def repair(
        self, index: tuple[int, int, int, int, int]
    ) -> tuple[int, int, int, int, int] | None:
        """Bump ``a_l2`` up to the smallest legal option, or ``None``."""
        ci, oi, ai, wi, a2i = index
        if self.a2[a2i] >= self.a1[ai]:
            return index
        for j in range(a2i + 1, len(self.a2)):
            if self.a2[j] >= self.a1[ai]:
                return (ci, oi, ai, wi, j)
        return None

    def candidate(self, index: tuple[int, int, int, int, int]) -> Candidate:
        """Materialize the hardware-facing candidate of one lattice index."""
        ci, oi, ai, wi, a2i = index
        comp = self.comp[ci]
        _n_p, _n_c, lane, _vec = comp
        memory = MemoryConfig(
            a_l1_bytes=int(self.a1[ai] * KB),
            w_l1_bytes=int(self.w1[wi] * KB),
            o_l1_bytes=self.o1[oi] * lane,
            a_l2_bytes=int(self.a2[a2i] * KB),
        )
        return Candidate(comp=comp, memory=memory, index=index)

    def neighbours(
        self, index: tuple[int, int, int, int, int]
    ) -> list[tuple[int, int, int, int, int]]:
        """The polish neighbourhood of ``index``, deterministic order.

        One +/-1 step per dimension (repaired), then every alternative
        computation config at the incumbent's memory footprint -- the best
        memory sizing transfers across factorizations far more often than
        the reverse, so the cross-sweep is cheap insurance that the exact
        optimum, not just its granularity class, is reached.
        """
        out: list[tuple[int, int, int, int, int]] = []
        seen = set()
        for dim in range(5):
            for step in (-1, 1):
                probe = list(index)
                probe[dim] += step
                if not 0 <= probe[dim] < self.dims[dim]:
                    continue
                fixed = self.repair(tuple(probe))
                if fixed is not None and fixed != index and fixed not in seen:
                    seen.add(fixed)
                    out.append(fixed)
        for ci in range(self.dims[0]):
            probe = (ci,) + index[1:]
            if probe != index and probe not in seen:
                seen.add(probe)
                out.append(probe)
        return out

    def scan(self) -> "list[tuple[int, int, int, int, int]]":
        """Every legal index in canonical (sweep-like) order."""
        out = []
        for ci in range(self.dims[0]):
            for oi in range(self.dims[1]):
                for ai in range(self.dims[2]):
                    for wi in range(self.dims[3]):
                        for a2i in range(self.dims[4]):
                            if self.a2[a2i] >= self.a1[ai]:
                                out.append((ci, oi, ai, wi, a2i))
        return out


# --- the strategy interface --------------------------------------------------------


class SearchStrategy(ABC):
    """The ask/tell contract the guided driver speaks.

    A strategy owns *what to try next*; the driver owns evaluation,
    pruning, persistence and accounting.  Implementations must be
    deterministic functions of their constructor arguments and the told
    trial sequence -- no wall-clock, no global RNG.
    """

    name: str = "strategy"

    @abstractmethod
    def ask(self, n: int) -> list[Candidate]:
        """Propose up to ``n`` never-before-proposed candidates."""

    @abstractmethod
    def tell(self, trials: Sequence[Trial]) -> None:
        """Record a batch of outcomes (in proposal order)."""

    @abstractmethod
    def finished(self) -> bool:
        """Whether the search is out of budget or out of space."""


class ExhaustiveStrategy(SearchStrategy):
    """The oracle strategy: canonical sweep order, no adaptation.

    Exists so the differential harness and the property suite can drive
    both modes through one interface; :func:`repro.core.dse.explore`
    keeps its dedicated (checkpointable, capped) exhaustive path as the
    default production route.
    """

    name = "exhaustive"

    def __init__(self, space: Any, required_macs: int) -> None:
        self.lattice = Lattice(space, required_macs)
        self._queue = self.lattice.scan()
        self._cursor = 0

    def ask(self, n: int) -> list[Candidate]:
        batch = self._queue[self._cursor : self._cursor + n]
        self._cursor += len(batch)
        return [self.lattice.candidate(index) for index in batch]

    def tell(self, trials: Sequence[Trial]) -> None:  # pragma: no cover - no-op
        return

    def finished(self) -> bool:
        return self._cursor >= len(self._queue)


class GuidedStrategy(SearchStrategy):
    """Seeded TPE/SA-style sampler with incumbent polish.

    Sampling: each lattice dimension is drawn independently.  With an
    annealed exploration probability the draw is uniform; otherwise it is
    categorical with weights ``1 + (occurrences among the elite trials)``
    -- the Laplace-smoothed "good region" estimate TPE keeps, over the
    top ``elite_fraction`` of evaluated trials by primary-model EDP.  The
    exploration probability decays linearly from 1 to ``explore_floor``
    as the budget is spent (the SA-style cooling schedule).

    Polish: every ``ask`` first proposes the unvisited lattice neighbours
    of the incumbent, so the loop hill-climbs to an exact local optimum
    while the sampler keeps seeding new basins.

    Dedup: a sampler draw that lands on an already-proposed index is a
    *collision*; collisions are counted (:attr:`deduped`) and re-drawn,
    so no design point is ever evaluated twice within a study.
    """

    name = "guided"

    def __init__(
        self,
        space: Any,
        required_macs: int,
        trials: int,
        seed: int = 0,
        elite_fraction: float = 0.2,
        explore_floor: float = 0.15,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.lattice = Lattice(space, required_macs)
        self.trials = trials
        self.seed = seed
        self.elite_fraction = elite_fraction
        self.explore_floor = explore_floor
        self.rng = random.Random(seed)
        self.deduped = 0
        self.spent = 0
        self._proposed: set[tuple[int, int, int, int, int]] = set()
        self._results: list[tuple[float, tuple[int, int, int, int, int]]] = []
        self._incumbent: tuple[int, int, int, int, int] | None = None
        self._incumbent_edp = float("inf")
        self._exhausted = False

    # -- state the driver reads --

    @property
    def incumbent_edp(self) -> float:
        """The best primary-model EDP told so far (inf before any)."""
        return self._incumbent_edp

    # -- the ask/tell contract --

    def ask(self, n: int) -> list[Candidate]:
        out: list[tuple[int, int, int, int, int]] = []
        if self._incumbent is not None:
            for index in self.lattice.neighbours(self._incumbent):
                if len(out) >= n:
                    break
                if index not in self._proposed:
                    self._proposed.add(index)
                    out.append(index)
        misses = 0
        while len(out) < n and misses < _MAX_SAMPLER_MISSES:
            index = self._sample()
            if index is None or index in self._proposed:
                if index is not None:
                    self.deduped += 1
                misses += 1
                continue
            self._proposed.add(index)
            out.append(index)
            misses = 0
        if len(out) < n and misses >= _MAX_SAMPLER_MISSES:
            # The sampler keeps colliding: the space is nearly covered.
            # Fall back to the canonical scan for whatever remains.
            for index in self.lattice.scan():
                if len(out) >= n:
                    break
                if index not in self._proposed:
                    self._proposed.add(index)
                    out.append(index)
        if not out:
            self._exhausted = True
        return [self.lattice.candidate(index) for index in out]

    def tell(self, trials: Sequence[Trial]) -> None:
        for trial in trials:
            if trial.charged:
                self.spent += 1
            if trial.edp is not None:
                self._results.append((trial.edp, trial.candidate.index))
                if trial.edp < self._incumbent_edp:
                    self._incumbent_edp = trial.edp
                    self._incumbent = trial.candidate.index

    def finished(self) -> bool:
        return self._exhausted or self.spent >= self.trials

    # -- sampling internals --

    def _sample(self) -> tuple[int, int, int, int, int] | None:
        explore_p = max(
            self.explore_floor, 1.0 - self.spent / max(self.trials, 1)
        )
        weights = self._elite_weights()
        index = []
        for dim, size in enumerate(self.lattice.dims):
            if self.rng.random() < explore_p or not weights:
                index.append(self.rng.randrange(size))
            else:
                index.append(self._weighted_draw(weights[dim], size))
        return self.lattice.repair(tuple(index))

    def _elite_weights(self) -> list[dict[int, int]] | None:
        """Per-dimension option counts among the elite trials."""
        if not self._results:
            return None
        ordered = sorted(self._results)
        take = max(3, int(len(ordered) * self.elite_fraction))
        elite = ordered[:take]
        weights: list[dict[int, int]] = [dict() for _ in range(5)]
        for _edp, index in elite:
            for dim, opt in enumerate(index):
                weights[dim][opt] = weights[dim].get(opt, 0) + 1
        return weights

    def _weighted_draw(self, counts: dict[int, int], size: int) -> int:
        total = size + sum(counts.values())  # Laplace: 1 + count per option
        ticket = self.rng.random() * total
        acc = 0.0
        for opt in range(size):
            acc += 1 + counts.get(opt, 0)
            if ticket < acc:
                return opt
        return size - 1


# --- the sqlite study --------------------------------------------------------------


class StudyConfigError(ConfigError, ValueError):
    """The study file was created under different search parameters.

    Still a ``ValueError`` (the historical contract) and now a
    :class:`repro.errors.ConfigError` (code ``config``, exit 3).
    """


class Study:
    """Persistent trial store for one guided search (stdlib ``sqlite3``).

    Layout: a ``meta`` key/value table pinning the extended sweep digest
    plus the human-readable search parameters, and a ``trials`` table of
    checkpoint-format JSON records keyed by the canonical task key.  A
    resumed run re-proposes the same trajectory (the sampler is seeded)
    and answers already-stored trials from here instead of re-evaluating,
    so interruption costs nothing but the lost in-flight batch.

    Durability: the database opens in WAL journal mode with
    ``synchronous=FULL``, so a committed trial survives ``kill -9`` at any
    instant.  A file that fails sqlite's ``quick_check`` (truncated,
    overwritten, not a database at all) is quarantined as
    ``<file>.corrupt-<ts>`` -- exactly like the mapping cache -- and the
    search restarts from a fresh study instead of dying on a raw
    ``sqlite3.DatabaseError``.
    """

    SCHEMA_VERSION = 1

    def __init__(self, path: str | Path, digest: str, meta: dict[str, Any]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.quarantined: Path | None = None
        plan = _fault_plan()
        if plan is not None:
            plan.corrupt_study_file(self.path)
        self._conn = self._open_verified()
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS trials ("
            "seq INTEGER PRIMARY KEY AUTOINCREMENT, "
            "key TEXT UNIQUE NOT NULL, record TEXT NOT NULL)"
        )
        stored = dict(self._conn.execute("SELECT key, value FROM meta"))
        expected = {
            "version": str(self.SCHEMA_VERSION),
            "digest": digest,
            **{key: str(value) for key, value in sorted(meta.items())},
        }
        if stored:
            clashes = [
                f"{key}: study has {stored.get(key)!r}, run wants {value!r}"
                for key, value in expected.items()
                if stored.get(key) != value
            ]
            if clashes:
                self._conn.close()
                raise StudyConfigError(
                    f"study {self.path} does not match this search "
                    f"({'; '.join(clashes)}); use a fresh --study path or "
                    "re-run with the study's parameters"
                )
        else:
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                sorted(expected.items()),
            )
            self._conn.commit()

    def _open_verified(self):
        """Connect in WAL mode, quarantining a corrupt file on the way.

        A truncated or garbage study file fails ``PRAGMA journal_mode`` or
        ``PRAGMA quick_check``; it is renamed ``<file>.corrupt-<ts>`` (the
        ``study.corrupt_files`` counter records it, one warning is logged)
        and a fresh database takes its place.

        Raises:
            StateCorruptionError: When the corrupt file cannot even be
                renamed out of the way -- there is no healthy path left.
        """
        import sqlite3
        import time

        for attempt in range(2):
            conn = None
            try:
                conn = sqlite3.connect(str(self.path))
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=FULL")
                row = conn.execute("PRAGMA quick_check").fetchone()
                if row is None or str(row[0]).lower() != "ok":
                    raise sqlite3.DatabaseError(
                        f"quick_check: {row[0] if row else 'no result'}"
                    )
                return conn
            except sqlite3.DatabaseError as exc:
                if conn is not None:
                    conn.close()
                if attempt:  # the freshly created replacement failed too
                    raise
                target = self.path.with_name(
                    f"{self.path.name}.corrupt-{int(time.time() * 1000)}"
                )
                try:
                    self.path.replace(target)
                except OSError as rename_exc:
                    raise StateCorruptionError(
                        f"study {self.path} is corrupt ({exc}) and could "
                        f"not be quarantined: {rename_exc}"
                    ) from exc
                self.quarantined = target
                obs.count("study.corrupt_files")
                logger.warning(
                    "set aside corrupt study %s (%s) -> %s; starting a "
                    "fresh study",
                    self.path,
                    exc,
                    target.name,
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def load(self) -> dict[str, dict[str, Any]]:
        """Stored trial records keyed by task key."""
        import json

        records: dict[str, dict[str, Any]] = {}
        for key, text in self._conn.execute(
            "SELECT key, record FROM trials ORDER BY seq"
        ):
            try:
                records[str(key)] = dict(json.loads(text))
            except (ValueError, TypeError):
                continue  # a torn record is re-evaluated, never fatal
        return records

    def record(self, key: str, record: dict[str, Any]) -> None:
        """Insert-or-replace one completed trial (commit via :meth:`flush`).

        A write that fails because the disk is full (or the device is
        erroring) degrades the study sink -- one warning, the
        ``degraded.study`` counter -- instead of killing the search; the
        run completes, it just cannot be resumed from this study.
        """
        import json
        import sqlite3

        if not durable.sink_enabled("study"):
            return
        try:
            self._conn.execute(
                "INSERT INTO trials (key, record) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET record = excluded.record",
                (key, json.dumps(record, sort_keys=True)),
            )
        except (sqlite3.OperationalError, sqlite3.DatabaseError) as exc:
            durable.record_sink_failure("study", exc)

    def flush(self) -> None:
        import sqlite3

        if not durable.sink_enabled("study"):
            return
        try:
            self._conn.commit()
        except (sqlite3.OperationalError, sqlite3.DatabaseError) as exc:
            durable.record_sink_failure("study", exc)

    def close(self) -> None:
        self.flush()
        self._conn.close()


# --- the driver --------------------------------------------------------------------


def guided_explore(
    models: dict[str, list[ConvLayer]],
    required_macs: int,
    space: Any = None,
    max_chiplet_mm2: float | None = None,
    topology: Topology = Topology.RING,
    profile: SearchProfile = SearchProfile.FAST,
    tech: TechnologyParams = DEFAULT_TECHNOLOGY,
    trials: int = 128,
    seed: int = 0,
    study: str | Path | None = None,
    primary_model: str | None = None,
    batch_size: int = 8,
    jobs: int | None = None,
    stats: SweepStats | None = None,
    policy: TaskPolicy | None = None,
    strategy: SearchStrategy | None = None,
    progress: Any | None = None,
) -> list:
    """Run an ask/tell search over the Table II space; return its points.

    The counterpart of :func:`repro.core.dse.explore` for the guided
    strategy: same models/budget/space/profile semantics, same
    :class:`~repro.core.dse.DesignPoint` results (pruned and invalid
    proposals are returned ``valid=False`` with a labelled error), but
    only ``trials`` full evaluations are ever paid.

    Args:
        models: Benchmarks to evaluate (name -> layers).
        required_macs: Exact MAC budget.
        space: Exploration space (Table II by default).
        max_chiplet_mm2: Per-chiplet area constraint (structural pruning).
        topology: Package interconnect every proposed machine is built
            with (directional ring by default).
        profile: Mapping-search profile per evaluated point.
        tech: Technology point.
        trials: Full-evaluation budget (resumed study trials count too).
        seed: Sampler seed; same seed => byte-identical trial sequence.
        study: Optional sqlite study path for persistence/resume.
        primary_model: Model whose EDP the search minimizes (defaults to
            the first entry of ``models``; all models are still evaluated
            per point, like the exhaustive sweep).
        batch_size: Proposals per ask/tell round.  Fixed independent of
            ``jobs`` so the trajectory is identical at every worker count.
        jobs: Worker processes per evaluation batch.
        stats: Optional instrumentation record filled in place.
        policy: Timeout/retry/on-error contract for the batch fan-outs.
        strategy: Injected strategy (defaults to a fresh
            :class:`GuidedStrategy`); mainly for tests.
        progress: Optional :class:`repro.obs.progress.ProgressMeter`
            updated per ask/tell round (stderr only; never stdout).
    """
    from repro.core.dse import (
        DesignPoint,
        DesignSpace,
        _explore_task,
        _failed_point,
        _outcome_from_record,
        _record_from_outcome,
    )

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    space = space or DesignSpace()
    if not models:
        raise ValueError("models must be non-empty")
    primary = primary_model or next(iter(models))
    if primary not in models:
        raise KeyError(f"primary model {primary!r} not in models")
    engine = strategy or GuidedStrategy(
        space, required_macs, trials=trials, seed=seed
    )
    jobs = resolve_jobs(jobs)
    context = (models, profile, tech, required_macs, max_chiplet_mm2, topology)
    if jobs > 1 and not is_picklable(context):
        jobs = 1
    if stats is not None:
        stats.jobs = max(stats.jobs, jobs)

    store: Study | None = None
    stored: dict[str, dict[str, Any]] = {}
    if study is not None:
        digest = sweep_digest(
            models,
            required_macs,
            space,
            max_chiplet_mm2,
            profile,
            tech,
            1,
            strategy=engine.name,
            seed=seed,
            trials=trials,
            topology=topology.value,
        )
        store = Study(
            study,
            digest,
            meta={"strategy": engine.name, "seed": seed, "trials": trials},
        )
        stored = store.load()

    points: list[DesignPoint] = []
    incumbent_edp = float("inf")
    n_evaluated = n_pruned = n_invalid = n_resumed = 0

    obs.event("run.start", op="guided_explore", trials=trials)

    timer = stats.stage("guided") if stats else None
    if timer:
        timer.__enter__()
    try:
        while not engine.finished():
            remaining = max(trials - engine.spent, 1) if isinstance(
                engine, GuidedStrategy
            ) else batch_size
            candidates = engine.ask(min(batch_size, remaining))
            if not candidates:
                break
            if stats is not None:
                stats.points_total += len(candidates)
            by_key: dict[str, Trial] = {}
            to_eval: list[Candidate] = []
            for cand in candidates:
                hw = build_hardware(
                    *cand.comp, memory=cand.memory, tech=tech, topology=topology
                )
                record = stored.get(cand.key)
                if record is not None:
                    outcome = _outcome_from_record(
                        cand.task, record, tech, topology=topology
                    )
                    if outcome is not None:
                        point, _structural, hits, misses = outcome
                        if stats is not None:
                            stats.add_cache(hits, misses)
                        edp = point.edp(primary) if point.valid else None
                        by_key[cand.key] = Trial(cand, "resumed", point, edp)
                        continue
                area = AreaModel(hw).chiplet_area_mm2()
                # The bound is the cheapest complete rejection: a dominated
                # candidate cannot beat the incumbent whether or not it is
                # even legal, so it is pruned before the validity check.
                if incumbent_edp < float("inf"):
                    bound = edp_lower_bound(hw, models[primary])
                    if bound > incumbent_edp:
                        point = DesignPoint(
                            hw=hw,
                            chiplet_area_mm2=area,
                            valid=False,
                            errors=(
                                f"pruned: EDP lower bound {bound:.4e} Js "
                                f"exceeds incumbent {incumbent_edp:.4e} Js",
                            ),
                        )
                        by_key[cand.key] = Trial(
                            cand, "pruned", point, lower_bound=bound
                        )
                        continue
                errors = validation_errors(
                    hw,
                    required_macs=required_macs,
                    max_chiplet_area_mm2=max_chiplet_mm2,
                )
                if errors:
                    point = DesignPoint(
                        hw=hw,
                        chiplet_area_mm2=area,
                        valid=False,
                        errors=tuple(errors),
                    )
                    by_key[cand.key] = Trial(cand, "invalid", point)
                    continue
                to_eval.append(cand)
            if to_eval:
                outcomes = run_tasks(
                    _explore_task,
                    [cand.task for cand in to_eval],
                    jobs=jobs,
                    context=context,
                    policy=policy,
                    stats=stats,
                )
                for cand, outcome in zip(to_eval, outcomes):
                    if isinstance(outcome, TaskFailure):
                        hw = build_hardware(
                            *cand.comp,
                            memory=cand.memory,
                            tech=tech,
                            topology=topology,
                        )
                        by_key[cand.key] = Trial(
                            cand, "failed", _failed_point(hw, outcome)
                        )
                        continue
                    point, _structural, hits, misses = outcome
                    if stats is not None:
                        stats.add_cache(hits, misses)
                    edp = point.edp(primary) if point.valid else None
                    by_key[cand.key] = Trial(cand, "evaluated", point, edp)
                    if store is not None:
                        store.record(cand.key, _record_from_outcome(outcome))
            # Tell in proposal order so the trajectory is jobs-independent.
            batch_trials = [by_key[cand.key] for cand in candidates]
            engine.tell(batch_trials)
            # Per-round, parent-side: fields track the (jobs-independent)
            # proposal count, so the event set equals the serial run's.
            obs.event(
                "point.batch",
                done=len(points) + len(batch_trials),
                total=trials,
            )
            for trial in batch_trials:
                points.append(trial.point)
                if trial.status == "evaluated":
                    n_evaluated += 1
                elif trial.status == "resumed":
                    n_resumed += 1
                elif trial.status == "pruned":
                    n_pruned += 1
                elif trial.status == "invalid":
                    n_invalid += 1
                if trial.edp is not None and trial.edp < incumbent_edp:
                    incumbent_edp = trial.edp
            if store is not None:
                store.flush()
            if progress is not None:
                progress.update(
                    len(points),
                    pruned=n_pruned,
                    deduped=(
                        engine.deduped
                        if isinstance(engine, GuidedStrategy)
                        else 0
                    ),
                )
    finally:
        if store is not None:
            store.close()
        if timer:
            timer.__exit__(None, None, None)

    deduped = engine.deduped if isinstance(engine, GuidedStrategy) else 0
    if stats is not None:
        stats.points_evaluated += sum(
            1 for p in points if p.valid and p.energy_pj
        )
        stats.points_pruned += n_pruned
        stats.points_deduped += deduped
        if n_resumed:
            stats.points_resumed += n_resumed
    obs.count("dse.points.total", len(points))
    obs.count("dse.points.evaluated", n_evaluated + n_resumed)
    obs.count("dse.points.invalid", n_invalid)
    obs.count("dse.points.pruned", n_pruned)
    obs.count("dse.points.deduped", deduped)
    if n_resumed:
        obs.count("dse.points.resumed", n_resumed)
    obs.event(
        "run.finish",
        op="guided_explore",
        points=len(points),
        evaluated=n_evaluated + n_resumed,
    )
    return points


__all__ = [
    "Candidate",
    "ExhaustiveStrategy",
    "GuidedStrategy",
    "Lattice",
    "STRATEGY_NAMES",
    "SearchStrategy",
    "Study",
    "StudyConfigError",
    "Trial",
    "edp_lower_bound",
    "guided_explore",
]
