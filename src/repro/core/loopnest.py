"""Per-core temporal loop-nest construction from a mapping.

Applying the two spatial primitives leaves each core a sequence of
``HO_C x WO_C x L`` core workloads.  Their iteration order, inner to outer:

1. the core block itself (the PE array sweeps KH, KW and ceil(CI/P) input
   chunks internally with the WS dataflow),
2. the chiplet-temporal loops C1 / W1 / H1 over the core's share of one
   chiplet workload,
3. the package-temporal loops C2 / W2 / H2 over the chiplet's macro
   partition.

Channel-priority places the C loop innermost within its level;
plane-priority places W then H innermost.  This nest is exactly what the C3P
methodology walks (Figure 6).

All derived extents are computed once at construction (the mapper evaluates
tens of thousands of nests per layer, so this is the hot path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.core.mapping import Mapping
from repro.core.primitives import LoopOrder, PartitionDim
from repro.workloads.layer import ConvLayer, ceil_div


@dataclass(frozen=True)
class Loop:
    """One temporal loop.

    Attributes:
        kind: ``"C"``, ``"W"`` or ``"H"`` -- the dimension it advances.
        level: 1 for chiplet-temporal, 2 for package-temporal.
        count: Loop trip count (LC in the paper's Equation 2).
    """

    kind: str
    level: int
    count: int

    def __post_init__(self) -> None:
        if self.kind not in ("C", "W", "H"):
            raise ValueError(f"loop kind must be C, W or H, got {self.kind!r}")
        if self.level not in (1, 2):
            raise ValueError(f"loop level must be 1 or 2, got {self.level}")
        if self.count < 1:
            raise ValueError(f"loop count must be >= 1, got {self.count}")

    @property
    def is_channel(self) -> bool:
        """Whether this loop advances the output-channel dimension."""
        return self.kind == "C"

    def describe(self) -> str:
        """Short label like ``C1:4``."""
        return f"{self.kind}{self.level}:{self.count}"


def _level_loops(order: LoopOrder, c: int, w: int, h: int, level: int) -> list[Loop]:
    """Loops of one temporal level, inner to outer, per the loop priority."""
    if order is LoopOrder.CHANNEL_PRIORITY:
        names = [("C", c), ("W", w), ("H", h)]
    else:
        names = [("W", w), ("H", h), ("C", c)]
    return [Loop(kind, level, count) for kind, count in names]


class LoopNest:
    """The fully derived loop structure of one (layer, hardware, mapping).

    All tile extents use ceil-splitting of the first (largest) partition, the
    same convention the runtime model uses, so loop-count products always
    cover the full workload (utilization absorbs the remainder slack).

    Attributes (all computed at construction):
        macro_ho / macro_wo / macro_co: One chiplet's macro partition.
        tile_ho / tile_wo / tile_co: One chiplet workload (HO_t, WO_t, CO_t).
        share_ho / share_wo / share_co: One core's share of a chiplet workload.
        core_ho / core_wo / core_co: One core workload (HO_C, WO_C, <= L).
        c1 / w1 / h1: Chiplet-temporal loop counts.
        c2 / w2 / h2: Package-temporal loop counts.
    """

    __slots__ = (
        "layer",
        "hw",
        "mapping",
        "macro_ho",
        "macro_wo",
        "macro_co",
        "tile_ho",
        "tile_wo",
        "tile_co",
        "share_ho",
        "share_wo",
        "share_co",
        "core_ho",
        "core_wo",
        "core_co",
        "c1",
        "w1",
        "h1",
        "c2",
        "w2",
        "h2",
        "_loops",
    )

    def __init__(self, layer: ConvLayer, hw: HardwareConfig, mapping: Mapping) -> None:
        self.layer = layer
        self.hw = hw
        self.mapping = mapping

        pkg = mapping.package_spatial
        chp = mapping.chiplet_spatial
        self.macro_ho = ceil_div(layer.ho, pkg.grid.rows)
        self.macro_wo = ceil_div(layer.wo, pkg.grid.cols)
        self.macro_co = ceil_div(layer.co, pkg.co_ways)

        self.tile_ho = min(mapping.package_temporal.tile_h, self.macro_ho)
        self.tile_wo = min(mapping.package_temporal.tile_w, self.macro_wo)
        self.tile_co = min(mapping.package_temporal.tile_co, self.macro_co)

        self.share_ho = ceil_div(self.tile_ho, chp.grid.rows)
        self.share_wo = ceil_div(self.tile_wo, chp.grid.cols)
        self.share_co = ceil_div(self.tile_co, chp.co_ways)

        self.core_ho = min(mapping.chiplet_temporal.tile_h, self.share_ho)
        self.core_wo = min(mapping.chiplet_temporal.tile_w, self.share_wo)
        self.core_co = min(hw.lanes, self.share_co)

        self.c1 = ceil_div(self.share_co, self.core_co)
        self.w1 = ceil_div(self.share_wo, self.core_wo)
        self.h1 = ceil_div(self.share_ho, self.core_ho)
        self.c2 = ceil_div(self.macro_co, self.tile_co)
        self.w2 = ceil_div(self.macro_wo, self.tile_wo)
        self.h2 = ceil_div(self.macro_ho, self.tile_ho)

        self._loops = tuple(
            _level_loops(
                mapping.chiplet_temporal.order, self.c1, self.w1, self.h1, level=1
            )
            + _level_loops(
                mapping.package_temporal.order, self.c2, self.w2, self.h2, level=2
            )
        )

    @property
    def active_chiplets(self) -> int:
        """Chiplets the package partition actually feeds (rest stay idle).

        Thin layers (e.g. a 10-class FC head) may occupy fewer units than
        the hardware provides; the idle units simply cost utilization.
        """
        return min(self.mapping.package_spatial.ways, self.hw.n_chiplets)

    @property
    def active_cores(self) -> int:
        """Cores per chiplet the chiplet partition actually feeds."""
        return min(self.mapping.chiplet_spatial.ways, self.hw.n_cores)

    def loops(self) -> tuple[Loop, ...]:
        """The per-core temporal nest, inner to outer (excluding the block)."""
        return self._loops

    def core_blocks_per_core(self) -> int:
        """Core workloads executed by one core over the whole layer."""
        return self.c1 * self.w1 * self.h1 * self.c2 * self.w2 * self.h2

    def chiplet_workloads(self) -> int:
        """Package-temporal iterations (chiplet workloads per chiplet)."""
        return self.c2 * self.w2 * self.h2

    def block_cycles(self) -> int:
        """PE-array cycles of one core block.

        The array computes one output-pixel row of L psum updates per cycle,
        sweeping KH * KW kernel positions and ceil(CI / P) input chunks.  For
        grouped convolutions only the channels feeding the block's output
        slice are swept (a depthwise block reads core_co channels), which is
        also where their poor vector utilization shows up.
        """
        channels = self.layer.input_channels_for(self.core_co)
        ci_chunks = ceil_div(max(channels, 1), self.hw.vector_size)
        return self.core_ho * self.core_wo * self.layer.kh * self.layer.kw * ci_chunks

    def total_cycles(self) -> int:
        """Analytical runtime in cycles (critical core, no bandwidth stalls)."""
        return self.core_blocks_per_core() * self.block_cycles()

    def utilization(self) -> float:
        """MAC-array utilization: ideal cycles over modeled cycles."""
        ideal = self.layer.macs / self.hw.total_macs
        return min(ideal / self.total_cycles(), 1.0)

    def describe(self) -> str:
        """Loop-nest summary, inner to outer."""
        chain = " -> ".join(loop.describe() for loop in self._loops)
        return f"block[{self.core_ho}x{self.core_wo}x{self.core_co}] -> {chain}"

    # --- validity ------------------------------------------------------------

    def o_l1_required_bytes(self) -> int:
        """O-L1 bytes needed for the core workload's partial sums."""
        psums = self.core_ho * self.core_wo * self.core_co
        return ceil_div(psums * self.hw.tech.psum_bits, 8)

    def validity_errors(self) -> list[str]:
        """Mapping-level validity violations (empty means legal)."""
        errors: list[str] = []
        mapping = self.mapping
        hw = self.hw
        layer = self.layer
        if mapping.package_spatial.ways > hw.n_chiplets:
            errors.append(
                f"package partition feeds {mapping.package_spatial.ways} units, "
                f"hardware has {hw.n_chiplets} chiplets"
            )
        if mapping.chiplet_spatial.ways > hw.n_cores:
            errors.append(
                f"chiplet partition feeds {mapping.chiplet_spatial.ways} units, "
                f"hardware has {hw.n_cores} cores"
            )
        required = self.o_l1_required_bytes()
        if required > hw.memory.o_l1_bytes:
            errors.append(
                f"core workload needs {required} B of O-L1 partial sums, "
                f"only {hw.memory.o_l1_bytes} B available"
            )
        # A-L1 must at least hold one P-channel input row of the core tile
        # (the minimal streaming granule of the WS dataflow).
        min_a_l1 = (
            layer.input_cols_for(self.core_wo)
            * min(hw.vector_size, layer.ci)
            * hw.tech.data_bits
            // 8
        )
        if min_a_l1 > hw.memory.a_l1_bytes:
            errors.append(
                f"A-L1 ({hw.memory.a_l1_bytes} B) below the minimal "
                f"streaming granule ({min_a_l1} B)"
            )
        if mapping.package_spatial.dim is PartitionDim.CHANNEL:
            if mapping.package_spatial.co_ways > layer.co:
                errors.append("package C-type partition exceeds the layer's channels")
        if mapping.chiplet_spatial.co_ways > self.macro_co:
            errors.append("chiplet channel split exceeds the macro partition's channels")
        if mapping.package_spatial.grid.rows > layer.ho or (
            mapping.package_spatial.grid.cols > layer.wo
        ):
            errors.append("package planar grid exceeds the output plane")
        if mapping.chiplet_spatial.grid.rows > self.tile_ho or (
            mapping.chiplet_spatial.grid.cols > self.tile_wo
        ):
            errors.append("chiplet planar grid exceeds the chiplet workload plane")
        return errors

    def is_valid(self) -> bool:
        """Whether the mapping is legal on this hardware for this layer."""
        return not self.validity_errors()
