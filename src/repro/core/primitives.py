"""Spatial, temporal and rotating primitives (Section IV-A).

The output-centric description partitions a layer's output cube with two
levels of **spatial** primitives (package: C-type or P-type; chiplet: C, P or
H-type hybrid), unrolls the remaining loops with **temporal** primitives
(channel-priority or plane-priority), and shares data among chiplets with the
**rotating** primitive over the directional ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.partition import PlanarGrid


class PartitionDim(Enum):
    """Spatial partition dimension of an output cube."""

    CHANNEL = "C"   # split output channels (weights differ, input shared)
    PLANE = "P"     # split the H-W plane (input differs, weights shared)
    HYBRID = "H"    # split both simultaneously (chiplet level only)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LoopOrder(Enum):
    """Temporal unrolling priority (which dimension sits in the inner loop)."""

    CHANNEL_PRIORITY = "channel"  # C dimension in the inner loop
    PLANE_PRIORITY = "plane"      # H-W dimensions in the inner loop

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RotationKind(Enum):
    """What the rotating transfer circulates on the package ring, if anything."""

    NONE = "none"
    ACTIVATIONS = "activations"  # C-type package split: chiplets share input
    WEIGHTS = "weights"          # P-type package split: chiplets share weights


@dataclass(frozen=True)
class SpatialPrimitive:
    """A spatial (parallel-for) partition of an output cube.

    Attributes:
        dim: Partition dimension (C / P / H).
        co_ways: Ways the output-channel dimension splits (1 for pure P-type).
        grid: Planar grid splitting the H-W plane (1x1 for pure C-type).

    The total parallelism is ``co_ways * grid.ways`` and must equal the number
    of units (chiplets or cores) at the level where the primitive applies.
    """

    dim: PartitionDim
    co_ways: int = 1
    grid: PlanarGrid = PlanarGrid(1, 1)

    def __post_init__(self) -> None:
        if self.co_ways < 1:
            raise ValueError(f"co_ways must be >= 1, got {self.co_ways}")
        if self.dim is PartitionDim.CHANNEL and self.grid.ways != 1:
            raise ValueError("C-type partition must not split the plane")
        if self.dim is PartitionDim.PLANE and self.co_ways != 1:
            raise ValueError("P-type partition must not split channels")
        if self.dim is PartitionDim.HYBRID and (self.co_ways == 1 or self.grid.ways == 1):
            raise ValueError("H-type partition must split both dimensions")

    @property
    def ways(self) -> int:
        """Total parallel units this primitive feeds."""
        return self.co_ways * self.grid.ways

    def describe(self) -> str:
        """Short label, e.g. ``C4`` or ``H(2xP2x2)``."""
        if self.dim is PartitionDim.CHANNEL:
            return f"C{self.co_ways}"
        if self.dim is PartitionDim.PLANE:
            return f"P{self.grid.rows}x{self.grid.cols}"
        return f"H(C{self.co_ways}xP{self.grid.rows}x{self.grid.cols})"

    @staticmethod
    def channel(ways: int) -> "SpatialPrimitive":
        """C-type partition into ``ways`` output-channel groups."""
        return SpatialPrimitive(PartitionDim.CHANNEL, co_ways=ways)

    @staticmethod
    def plane(grid: PlanarGrid) -> "SpatialPrimitive":
        """P-type partition over a planar grid."""
        return SpatialPrimitive(PartitionDim.PLANE, grid=grid)

    @staticmethod
    def hybrid(co_ways: int, grid: PlanarGrid) -> "SpatialPrimitive":
        """H-type partition splitting channels and plane simultaneously."""
        return SpatialPrimitive(PartitionDim.HYBRID, co_ways=co_ways, grid=grid)


@dataclass(frozen=True)
class TemporalPrimitive:
    """A temporal (for) unrolling: tile shape plus loop priority.

    The spatial-temporal pair "generates a single workload for chiplets or
    cores each time": at the package level the tile is the chiplet workload
    ``HO_t x WO_t x CO_t``; at the chiplet level it is the core workload
    ``HO_C x WO_C x L``.

    Attributes:
        order: Which dimension iterates innermost.
        tile_h: Output-tile height of the generated single workload.
        tile_w: Output-tile width.
        tile_co: Output channels of the single workload.
    """

    order: LoopOrder
    tile_h: int
    tile_w: int
    tile_co: int

    def __post_init__(self) -> None:
        for name in ("tile_h", "tile_w", "tile_co"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    def describe(self) -> str:
        """Short label, e.g. ``chan[8x8x64]``."""
        return f"{self.order.value}[{self.tile_h}x{self.tile_w}x{self.tile_co}]"
