"""A rule-based one-shot mapper: the paper's intuitions without the search.

Section VI-A1 distills rules of thumb -- P-type package partitions for
activation-intensive and large-kernel layers, C-type for weight-intensive
and point-wise ones, square temporal tiles, rotation whenever data is
shared.  This module codifies exactly those rules into a single mapping per
layer, with no enumeration.

It serves two purposes: a near-instant fallback when even the MINIMAL
search profile is too slow (enormous sweeps), and the comparison point for
``bench_ablation_heuristic`` -- quantifying what the exhaustive search buys
over the paper's own published intuitions.
"""

from __future__ import annotations

from repro.arch.config import HardwareConfig
from repro.core.cost import CostReport, evaluate_mapping
from repro.core.mapping import Mapping
from repro.core.partition import factor_grids, preferred_grid
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.workloads.extraction import LayerKind, classify_layer
from repro.workloads.layer import ConvLayer, ceil_div


def _square_core_tile(layer: ConvLayer, hw: HardwareConfig) -> tuple[int, int]:
    """Largest square core tile within the O-L1 psum budget and the A-L1 Cc0."""
    psum_bytes = hw.tech.psum_bits / 8.0
    max_pixels = max(int(hw.memory.o_l1_bytes / (psum_bytes * hw.lanes)), 1)
    chunk = min(hw.vector_size, max(layer.input_channels_for(hw.lanes), 1))
    side = 1
    while (side * 2) ** 2 <= max_pixels:
        window = (
            layer.input_rows_for(side * 2)
            * layer.input_cols_for(side * 2)
            * chunk
        )
        if window > hw.memory.a_l1_bytes:
            break
        side *= 2
    return min(side, layer.ho), min(side, layer.wo)


def _package_partition(layer: ConvLayer, hw: HardwareConfig) -> SpatialPrimitive:
    """The Section VI-A1 rule: plane for activation-heavy, channel for weight-heavy."""
    n = hw.n_chiplets
    if n == 1:
        return SpatialPrimitive.channel(1)
    kind = classify_layer(layer)
    plane_kinds = (
        LayerKind.ACTIVATION_INTENSIVE,
        LayerKind.LARGE_KERNEL,
        LayerKind.DEPTHWISE,
    )
    wants_plane = kind in plane_kinds and layer.ho * layer.wo >= n
    if wants_plane:
        grids = [g for g in factor_grids(n) if g.rows <= layer.ho and g.cols <= layer.wo]
        if grids:
            # Figure 8: bound the DRAM conflict degree at the package level.
            return SpatialPrimitive.plane(preferred_grid(layer, n, max_conflict=2))
    if layer.co >= n:
        return SpatialPrimitive.channel(n)
    if layer.ho * layer.wo >= n:
        return SpatialPrimitive.plane(preferred_grid(layer, n, max_conflict=2))
    return SpatialPrimitive.channel(min(n, layer.co))


def _chiplet_partition(
    layer: ConvLayer, hw: HardwareConfig, macro_co: int, macro_ho: int, macro_wo: int
) -> SpatialPrimitive:
    """Hybrid when both dimensions allow it, else whichever fits."""
    n = hw.n_cores
    if n == 1:
        return SpatialPrimitive.channel(1)
    # Prefer the hybrid split the paper finds strongest overall.
    for co_ways in (2, 4):
        plane_ways = n // co_ways
        if n % co_ways or plane_ways < 2:
            continue
        if macro_co < co_ways * hw.lanes:
            continue
        grids = [
            g
            for g in factor_grids(plane_ways)
            if g.rows <= macro_ho and g.cols <= macro_wo
        ]
        if grids:
            return SpatialPrimitive.hybrid(
                co_ways, min(grids, key=lambda g: g.aspect_ratio())
            )
    if macro_co >= n * hw.lanes:
        return SpatialPrimitive.channel(n)
    grids = [
        g for g in factor_grids(n) if g.rows <= macro_ho and g.cols <= macro_wo
    ]
    if grids:
        return SpatialPrimitive.plane(min(grids, key=lambda g: g.aspect_ratio()))
    return SpatialPrimitive.channel(min(n, max(macro_co, 1)))


def heuristic_mapping(layer: ConvLayer, hw: HardwareConfig) -> Mapping:
    """One mapping from the paper's rules of thumb, no search.

    Package partition by layer category, hybrid chiplet split when possible,
    square Cc0-respecting core tiles, channel-priority unrolling when the
    W-L1 can hold a chiplet workload's weights (plane-priority otherwise),
    rotation whenever the package shares data.
    """
    package = _package_partition(layer, hw)
    macro_co = ceil_div(layer.co, package.co_ways)
    macro_ho = ceil_div(layer.ho, package.grid.rows)
    macro_wo = ceil_div(layer.wo, package.grid.cols)
    chiplet = _chiplet_partition(layer, hw, macro_co, macro_ho, macro_wo)

    core_ho, core_wo = _square_core_tile(layer, hw)
    tile_ho = min(core_ho * chiplet.grid.rows * 2, macro_ho)
    tile_wo = min(core_wo * chiplet.grid.cols * 2, macro_wo)
    tile_co = min(chiplet.co_ways * hw.lanes * 2, macro_co)

    # Channel-priority reuses weights when the pooled W-L1 holds the chiplet
    # workload's filters (the paper's W-L1 reuse condition).
    workload_weights = layer.weights_for(tile_co)
    pooled_w_l1 = hw.memory.w_l1_bytes * chiplet.grid.ways * chiplet.co_ways
    order = (
        LoopOrder.CHANNEL_PRIORITY
        if workload_weights <= pooled_w_l1
        else LoopOrder.PLANE_PRIORITY
    )

    if package.ways == 1:
        rotation = RotationKind.NONE
    elif package.dim.value == "C":
        rotation = RotationKind.ACTIVATIONS
    else:
        rotation = RotationKind.WEIGHTS

    return Mapping(
        package_spatial=package,
        package_temporal=TemporalPrimitive(order, tile_ho, tile_wo, tile_co),
        chiplet_spatial=chiplet,
        chiplet_temporal=TemporalPrimitive(
            order, core_ho, core_wo, min(hw.lanes, tile_co)
        ),
        rotation=rotation,
    )


def heuristic_map_model(
    layers: list[ConvLayer], hw: HardwareConfig
) -> list[CostReport]:
    """Evaluate every layer under the rule-based mapping.

    Raises:
        InvalidMappingError: If a rule produces an illegal mapping (a bug --
            the rules are meant to be always-legal).
    """
    if not layers:
        raise ValueError("layers must be non-empty")
    return [evaluate_mapping(layer, hw, heuristic_mapping(layer, hw)) for layer in layers]
