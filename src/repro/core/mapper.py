"""The post-design flow: per-layer exhaustive mapping search (Section IV-D).

Given a fixed hardware configuration, the mapper enumerates the mapping space
(:mod:`repro.core.space`), evaluates every legal candidate with the C3P cost
engine and reports the energy-optimal strategy layer by layer -- "NN-Baton
provides a distinct mapping strategy layer-wise to minimize the overall
energy cost" (Section VI-A1).

Layers with identical shape share a mapping, so models with repeated blocks
(ResNet-50's bottlenecks) search each unique shape once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.arch.config import HardwareConfig
from repro.core.cost import CostReport, InvalidMappingError, evaluate_mapping
from repro.core.mapping import Mapping
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.layer import ConvLayer

#: Objective functions the mapper can minimize.
Objective = Callable[[CostReport, HardwareConfig], float]


def energy_objective(report: CostReport, hw: HardwareConfig) -> float:
    """Minimize total layer energy (the paper's default)."""
    return report.energy_pj


def edp_objective(report: CostReport, hw: HardwareConfig) -> float:
    """Minimize the layer's energy-delay product."""
    return report.edp(hw)


@dataclass(frozen=True)
class LayerMappingResult:
    """The optimal mapping of one layer plus search statistics."""

    layer: ConvLayer
    best: CostReport
    candidates_evaluated: int
    candidates_invalid: int

    @property
    def mapping(self) -> Mapping:
        """The winning mapping."""
        return self.best.mapping


def _shape_key(layer: ConvLayer) -> tuple:
    """Layers with equal geometry share an optimal mapping."""
    return (
        layer.h,
        layer.w,
        layer.ci,
        layer.co,
        layer.kh,
        layer.kw,
        layer.stride,
        layer.padding,
        layer.groups,
    )


@dataclass
class Mapper:
    """Exhaustive per-layer mapping search on one hardware instance.

    Attributes:
        hw: The fixed hardware configuration.
        profile: Mapping-space pruning profile.
        objective: Scalar objective to minimize (default: energy).
    """

    hw: HardwareConfig
    profile: SearchProfile = SearchProfile.EXHAUSTIVE
    objective: Objective = field(default=energy_objective)

    def __post_init__(self) -> None:
        self._space = MappingSpace(hw=self.hw, profile=self.profile)
        self._cache: dict[tuple, LayerMappingResult] = {}

    def search_layer(self, layer: ConvLayer) -> LayerMappingResult:
        """Find the optimal mapping of one layer.

        Raises:
            InvalidMappingError: If no candidate is legal (a structurally
                impossible layer/hardware pair).
        """
        key = _shape_key(layer)
        cached = self._cache.get(key)
        if cached is not None:
            if cached.layer.name == layer.name:
                return cached
            return LayerMappingResult(
                layer=layer,
                best=cached.best,
                candidates_evaluated=cached.candidates_evaluated,
                candidates_invalid=cached.candidates_invalid,
            )

        best: CostReport | None = None
        best_score = float("inf")
        evaluated = 0
        invalid = 0
        for mapping in self._space.unique_candidates(layer):
            try:
                report = evaluate_mapping(layer, self.hw, mapping)
            except InvalidMappingError:
                invalid += 1
                continue
            evaluated += 1
            score = self.objective(report, self.hw)
            if score < best_score:
                best_score = score
                best = report
        if best is None:
            raise InvalidMappingError(
                f"no legal mapping for layer {layer.name!r} on {self.hw.label()}"
            )
        result = LayerMappingResult(
            layer=layer,
            best=best,
            candidates_evaluated=evaluated,
            candidates_invalid=invalid,
        )
        self._cache[key] = result
        return result

    def search_model(self, layers: list[ConvLayer]) -> list[LayerMappingResult]:
        """Optimal mapping for every layer of a model."""
        if not layers:
            raise ValueError("layers must be non-empty")
        return [self.search_layer(layer) for layer in layers]


def map_model(
    layers: list[ConvLayer],
    hw: HardwareConfig,
    profile: SearchProfile = SearchProfile.EXHAUSTIVE,
    objective: Objective = energy_objective,
) -> list[LayerMappingResult]:
    """Convenience wrapper: search every layer of ``layers`` on ``hw``."""
    mapper = Mapper(hw=hw, profile=profile, objective=objective)
    return mapper.search_model(layers)
