"""The post-design flow: per-layer exhaustive mapping search (Section IV-D).

Given a fixed hardware configuration, the mapper enumerates the mapping space
(:mod:`repro.core.space`), evaluates every legal candidate with the C3P cost
engine and reports the energy-optimal strategy layer by layer -- "NN-Baton
provides a distinct mapping strategy layer-wise to minimize the overall
energy cost" (Section VI-A1).

Layers with identical shape share a mapping, so models with repeated blocks
(ResNet-50's bottlenecks) search each unique shape once.  The sharing is
backed by :class:`repro.core.cache.MappingCache`, which callers can inject
to reuse results across ``Mapper`` instances and (with a disk store) across
runs; unique shapes can also fan out over worker processes
(:mod:`repro.core.parallel`) via ``search_model(jobs=N)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.arch.config import HardwareConfig
from repro.core import batch
from repro.core.cache import MappingCache, cache_key, rebuild_record
from repro.core.cost import CostReport, InvalidMappingError, evaluate_mapping
from repro.core.mapping import Mapping
from repro.core.parallel import (
    SweepStats,
    TaskFailure,
    TaskPolicy,
    is_picklable,
    resolve_jobs,
    run_tasks,
    worker_context,
)
from repro.core.serialize import hardware_digest, mapping_to_dict
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.layer import ConvLayer

#: Objective functions the mapper can minimize.
Objective = Callable[[CostReport, HardwareConfig], float]


def energy_objective(report: CostReport, hw: HardwareConfig) -> float:
    """Minimize total layer energy (the paper's default)."""
    return report.energy_pj


def edp_objective(report: CostReport, hw: HardwareConfig) -> float:
    """Minimize the layer's energy-delay product."""
    return report.edp(hw)


@dataclass(frozen=True)
class LayerMappingResult:
    """The optimal mapping of one layer plus search statistics."""

    layer: ConvLayer
    best: CostReport
    candidates_evaluated: int
    candidates_invalid: int

    @property
    def mapping(self) -> Mapping:
        """The winning mapping."""
        return self.best.mapping


def _shape_key(layer: ConvLayer) -> tuple:
    """Layers with equal geometry share an optimal mapping."""
    return (
        layer.h,
        layer.w,
        layer.ci,
        layer.co,
        layer.kh,
        layer.kw,
        layer.stride,
        layer.padding,
        layer.groups,
    )


def _search_layer_task(layer: ConvLayer) -> LayerMappingResult:
    """Worker: search one layer with the context's (hw, profile, objective).

    Runs in a pool process with a private in-memory cache; the parent
    harvests the result into its shared cache.
    """
    hw, profile, objective = worker_context()
    mapper = Mapper(hw=hw, profile=profile, objective=objective, cache=MappingCache())
    return mapper.search_layer(layer)


@dataclass
class Mapper:
    """Exhaustive per-layer mapping search on one hardware instance.

    Attributes:
        hw: The fixed hardware configuration.
        profile: Mapping-space pruning profile.
        objective: Scalar objective to minimize (default: energy).
        cache: Mapping cache; injected instances are shared across mappers,
            the default honours ``REPRO_CACHE_DIR`` for an on-disk store.
        jobs: Default worker count for :meth:`search_model` (``None`` defers
            to ``REPRO_JOBS``, then serial).
    """

    hw: HardwareConfig
    profile: SearchProfile = SearchProfile.EXHAUSTIVE
    objective: Objective = field(default=energy_objective)
    cache: MappingCache | None = None
    jobs: int | None = None

    def __post_init__(self) -> None:
        self._space = MappingSpace(hw=self.hw, profile=self.profile)
        if self.cache is None:
            self.cache = MappingCache.from_env()
        self._hw_digest = hardware_digest(self.hw)
        self._objective_name = getattr(
            self.objective, "__name__", type(self.objective).__name__
        )
        # The batch kernel scores only the two known objectives; identity
        # (not name) equality, so a custom callable never takes the fast path.
        if self.objective is energy_objective:
            self._batch_objective: str | None = "energy_objective"
        elif self.objective is edp_objective:
            self._batch_objective = "edp_objective"
        else:
            self._batch_objective = None

    def _key(self, layer: ConvLayer) -> str:
        """The cache key of one layer on this (hw, profile, objective)."""
        return cache_key(
            _shape_key(layer),
            self._hw_digest,
            self.profile.value,
            self._objective_name,
        )

    def _relabel(self, cached: LayerMappingResult, layer: ConvLayer) -> LayerMappingResult:
        """A cached result presented under the asking layer's name."""
        if cached.layer.name == layer.name:
            return cached
        return LayerMappingResult(
            layer=layer,
            best=cached.best,
            candidates_evaluated=cached.candidates_evaluated,
            candidates_invalid=cached.candidates_invalid,
        )

    def _rebuild(self, record: dict, layer: ConvLayer) -> LayerMappingResult | None:
        """Turn a disk record back into a result (one cost-model call).

        A record missing any required key is a cache miss, not a zero: a
        legacy record without ``evaluated``/``invalid`` would otherwise
        resurface with fabricated search statistics and under-report
        ``mapper.candidates.evaluated`` forever after a format change.
        """
        if not all(key in record for key in ("mapping", "evaluated", "invalid")):
            return None
        best = rebuild_record(record, layer, self.hw)
        if best is None:
            return None
        return LayerMappingResult(
            layer=layer,
            best=best,
            candidates_evaluated=int(record["evaluated"]),
            candidates_invalid=int(record["invalid"]),
        )

    def search_layer(self, layer: ConvLayer) -> LayerMappingResult:
        """Find the optimal mapping of one layer.

        Raises:
            InvalidMappingError: If no candidate is legal (a structurally
                impossible layer/hardware pair).
        """
        key = self._key(layer)
        cached = self.cache.get(key, rebuild=lambda rec: self._rebuild(rec, layer))
        if cached is not None:
            return self._relabel(cached, layer)

        result = self._search_fresh(layer)
        self.cache.put(
            key,
            result,
            record={
                "mapping": mapping_to_dict(result.mapping),
                "evaluated": result.candidates_evaluated,
                "invalid": result.candidates_invalid,
            },
        )
        return result

    def _search_fresh(self, layer: ConvLayer) -> LayerMappingResult:
        """The exhaustive candidate scan (cache-oblivious).

        The struct-of-arrays batch kernel (:mod:`repro.core.batch`) scores
        every candidate in one numpy pass when it can guarantee bit-identity
        with the scalar loop (known objective, ``REPRO_BATCH_KERNEL`` not
        opted out); the winner's full :class:`CostReport` then comes from a
        single scalar ``evaluate_mapping`` call.  Otherwise the scalar
        strict-``<`` scan below is the path -- it stays the golden oracle
        either way (see ``tests/properties/test_batch_kernel.py``).

        Candidate counters are batched into one pair of ``obs.count`` calls
        after the scan, so the per-candidate hot loop carries no
        instrumentation at all.
        """
        best: CostReport | None = None
        best_score = float("inf")
        evaluated = 0
        invalid = 0
        search_start = time.perf_counter()
        with obs.span("mapper.search_fresh", layer=layer.name):
            candidates = self._space.unique_candidates(layer)
            outcome = None
            if batch.batch_kernel_enabled() and self._batch_objective is not None:
                outcome = batch.search_batch(
                    layer, self.hw, candidates, objective=self._batch_objective
                )
            if outcome is not None:
                evaluated = outcome.evaluated
                invalid = outcome.invalid
                if outcome.best_index is not None:
                    best = evaluate_mapping(
                        layer, self.hw, candidates[outcome.best_index]
                    )
                obs.count("mapper.batch.searches")
                obs.count("mapper.batch.candidates", len(candidates))
            else:
                for mapping in candidates:
                    try:
                        report = evaluate_mapping(layer, self.hw, mapping)
                    except InvalidMappingError:
                        invalid += 1
                        continue
                    evaluated += 1
                    score = self.objective(report, self.hw)
                    if score < best_score:
                        best_score = score
                        best = report
        obs.count("mapper.candidates.evaluated", evaluated)
        obs.count("mapper.candidates.invalid", invalid)
        obs.count("mapper.searches.fresh")
        obs.histogram(
            "mapper.search_ms", (time.perf_counter() - search_start) * 1e3
        )
        if best is None:
            raise InvalidMappingError(
                f"no legal mapping for layer {layer.name!r} on {self.hw.label()}"
            )
        return LayerMappingResult(
            layer=layer,
            best=best,
            candidates_evaluated=evaluated,
            candidates_invalid=invalid,
        )

    def _prefetch(
        self,
        layers: list[ConvLayer],
        jobs: int,
        policy: TaskPolicy | None = None,
        stats: SweepStats | None = None,
    ) -> None:
        """Search uncached unique shapes in parallel and fill the cache.

        Falls back to doing nothing (the serial per-layer path takes over)
        when fewer than two shapes are pending or the search context cannot
        cross a process boundary (e.g. a closure objective).  A shape whose
        task failed under ``policy.on_error="skip"`` is simply not cached --
        the serial per-layer pass re-searches it in-process.
        """
        pending: dict[str, ConvLayer] = {}
        for layer in layers:
            key = self._key(layer)
            if key not in pending and not self.cache.contains(key):
                pending[key] = layer
        if len(pending) < 2:
            return
        context = (self.hw, self.profile, self.objective)
        if not is_picklable(context) or not is_picklable(list(pending.values())):
            return
        for key in pending:
            self.cache.misses += 1
        # Mirror the manual miss accounting above (the workers' own cache
        # counters stay private to their throwaway caches).
        obs.count("cache.misses", len(pending))
        results = run_tasks(
            _search_layer_task,
            list(pending.values()),
            jobs=jobs,
            context=context,
            policy=policy,
            stats=stats,
        )
        for key, result in zip(pending, results):
            if isinstance(result, TaskFailure):
                continue
            self.cache.put(
                key,
                result,
                record={
                    "mapping": mapping_to_dict(result.mapping),
                    "evaluated": result.candidates_evaluated,
                    "invalid": result.candidates_invalid,
                },
            )

    def search_model(
        self,
        layers: list[ConvLayer],
        jobs: int | None = None,
        stats: SweepStats | None = None,
        policy: TaskPolicy | None = None,
    ) -> list[LayerMappingResult]:
        """Optimal mapping for every layer of a model.

        Args:
            layers: The model's layers (non-empty).
            jobs: Worker count for the unique-shape fan-out; ``None`` defers
                to the mapper default, then ``REPRO_JOBS``, then serial.
                Results are bit-identical at every worker count.
            stats: Optional instrumentation record to fill in place.
            policy: Timeout/retry contract for the parallel prefetch; a
                prefetch failure degrades to an in-process re-search.
        """
        if not layers:
            raise ValueError("layers must be non-empty")
        effective = resolve_jobs(jobs if jobs is not None else self.jobs)
        hits0, misses0 = self.cache.hits, self.cache.misses
        timer = stats.stage("search_model") if stats else None
        if timer:
            timer.__enter__()
        try:
            with obs.span("mapper.search_model", layers=len(layers), jobs=effective):
                if effective > 1:
                    self._prefetch(layers, effective, policy=policy, stats=stats)
                results = [self.search_layer(layer) for layer in layers]
        finally:
            if timer:
                timer.__exit__(None, None, None)
        obs.count("mapper.layers.searched", len(layers))
        self.cache.save()
        if stats is not None:
            stats.jobs = max(stats.jobs, effective)
            stats.points_total += len(layers)
            stats.points_evaluated += len(layers)
            stats.add_cache(
                self.cache.hits - hits0, self.cache.misses - misses0
            )
        return results


def map_model(
    layers: list[ConvLayer],
    hw: HardwareConfig,
    profile: SearchProfile = SearchProfile.EXHAUSTIVE,
    objective: Objective = energy_objective,
    jobs: int | None = None,
) -> list[LayerMappingResult]:
    """Convenience wrapper: search every layer of ``layers`` on ``hw``."""
    mapper = Mapper(hw=hw, profile=profile, objective=objective)
    return mapper.search_model(layers, jobs=jobs)
