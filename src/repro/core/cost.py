"""The C3P evaluation engine: energy, runtime, area, EDP for one mapping.

This is the module the paper's Figure 9 calls the "cost analysis" block: it
converts the traffic assembly into pico-joules with the Table I / Figure 10
energy laws, and the loop nest into cycles with the utilization model
("runtime is decided by the total number of MAC units and the utilization").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.arch.area import AreaModel
from repro.arch.config import HardwareConfig
from repro.arch.energy import EnergyModel
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.traffic import TrafficReport, compute_traffic
from repro.workloads.layer import ConvLayer, ceil_div


class InvalidMappingError(ValueError):
    """The mapping is illegal for the given layer and hardware."""


@dataclass(frozen=True)
class EnergyBreakdown:
    """Layer energy by component, in pico-joules.

    The categories match the stacked bars of Figures 11-12: DRAM, die-to-die,
    A-L2, O-L2, A-L1, W-L1, O-L1 (register file) and MAC.
    """

    dram_pj: float
    d2d_pj: float
    a_l2_pj: float
    o_l2_pj: float
    a_l1_pj: float
    w_l1_pj: float
    rf_pj: float
    mac_pj: float

    @property
    def total_pj(self) -> float:
        """Total layer energy."""
        return (
            self.dram_pj
            + self.d2d_pj
            + self.a_l2_pj
            + self.o_l2_pj
            + self.a_l1_pj
            + self.w_l1_pj
            + self.rf_pj
            + self.mac_pj
        )

    def as_dict(self) -> dict[str, float]:
        """Ordered component -> pJ mapping for reports."""
        return {
            "dram": self.dram_pj,
            "d2d": self.d2d_pj,
            "a_l2": self.a_l2_pj,
            "o_l2": self.o_l2_pj,
            "a_l1": self.a_l1_pj,
            "w_l1": self.w_l1_pj,
            "rf": self.rf_pj,
            "mac": self.mac_pj,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram_pj=self.dram_pj + other.dram_pj,
            d2d_pj=self.d2d_pj + other.d2d_pj,
            a_l2_pj=self.a_l2_pj + other.a_l2_pj,
            o_l2_pj=self.o_l2_pj + other.o_l2_pj,
            a_l1_pj=self.a_l1_pj + other.a_l1_pj,
            w_l1_pj=self.w_l1_pj + other.w_l1_pj,
            rf_pj=self.rf_pj + other.rf_pj,
            mac_pj=self.mac_pj + other.mac_pj,
        )

    @staticmethod
    def zero() -> "EnergyBreakdown":
        """An all-zero breakdown (sum identity)."""
        return EnergyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @staticmethod
    def fsum(breakdowns: Iterable["EnergyBreakdown"]) -> "EnergyBreakdown":
        """Order-independent component-wise total via :func:`math.fsum`.

        Repeated ``__add__`` is a naive left fold, so the total depends on
        the summand order (float addition is not associative).  Compensated
        summation returns the correctly rounded component sums, making
        model- and sweep-level totals permutation invariant -- the same fix
        the Figure 10 :class:`~repro.arch.memory.LinearFit` needed, and the
        reduction contract the batch kernel's aggregations must match.
        """
        items = list(breakdowns)
        return EnergyBreakdown(
            dram_pj=math.fsum(b.dram_pj for b in items),
            d2d_pj=math.fsum(b.d2d_pj for b in items),
            a_l2_pj=math.fsum(b.a_l2_pj for b in items),
            o_l2_pj=math.fsum(b.o_l2_pj for b in items),
            a_l1_pj=math.fsum(b.a_l1_pj for b in items),
            w_l1_pj=math.fsum(b.w_l1_pj for b in items),
            rf_pj=math.fsum(b.rf_pj for b in items),
            mac_pj=math.fsum(b.mac_pj for b in items),
        )


@dataclass(frozen=True)
class CostReport:
    """Full evaluation of one (layer, hardware, mapping) triple."""

    layer: ConvLayer
    mapping: Mapping
    energy: EnergyBreakdown
    traffic: TrafficReport
    cycles: int
    utilization: float
    o_l2_bytes: int

    @property
    def energy_pj(self) -> float:
        """Total energy in pico-joules."""
        return self.energy.total_pj

    @property
    def energy_mj(self) -> float:
        """Total energy in milli-joules."""
        return self.energy.total_pj * 1e-9

    def movement_pj(self, hw: HardwareConfig) -> float:
        """Data-movement energy: total minus the dataflow-invariant terms."""
        return max(
            self.energy_pj - intrinsic_compute_energy_pj(self.layer, hw), 0.0
        )

    def runtime_s(self, hw: HardwareConfig) -> float:
        """Runtime in seconds at the technology's clock."""
        return self.cycles * hw.tech.cycle_time_ns() * 1e-9

    def edp(self, hw: HardwareConfig) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy_pj * 1e-12 * self.runtime_s(hw)


def intrinsic_compute_energy_pj(layer: ConvLayer, hw: HardwareConfig) -> float:
    """The dataflow-invariant compute-side energy of one layer.

    MAC operations, per-cycle O-L1 partial-sum read-modify-writes and
    per-cycle A-L1 operand reads are identical for every mapping and for the
    Simba baseline (same PE array, same WS core).  The paper's comparison
    "primarily count[s] the memory write/read operations coupled with the
    die-to-die communication", so benchmarks report savings both on totals
    and on the data-movement remainder (total minus this term).
    """
    model = EnergyModel(hw)
    tech = hw.tech
    mac = model.mac_energy_pj(layer.macs)
    rf = layer.macs / hw.vector_size * tech.psum_bits * model.rf_rmw_pj_per_bit
    a_l1_read = layer.macs / hw.lanes * tech.data_bits * model.a_l1_pj_per_bit
    return mac + rf + a_l1_read


def o_l2_required_bytes(nest: LoopNest) -> int:
    """O-L2 size matching one chiplet workload's final elements (Section V-C)."""
    elements = nest.tile_ho * nest.tile_wo * nest.tile_co
    return ceil_div(elements * nest.hw.tech.data_bits, 8)


def energy_from_traffic(
    hw: HardwareConfig,
    layer: ConvLayer,
    traffic: TrafficReport,
    o_l2_bytes: int,
) -> EnergyBreakdown:
    """Convert a traffic report into the per-component energy breakdown."""
    model = EnergyModel(hw)
    o_l2_pj_bit = model.o_l2_pj_per_bit(o_l2_bytes)
    return EnergyBreakdown(
        dram_pj=model.dram_energy_pj(traffic.dram_bits),
        d2d_pj=model.d2d_energy_pj(traffic.d2d_bit_hops),
        a_l2_pj=(traffic.a_l2_write_bits + traffic.a_l2_read_bits)
        * model.a_l2_pj_per_bit,
        o_l2_pj=(traffic.o_l2_write_bits + traffic.o_l2_read_bits) * o_l2_pj_bit,
        a_l1_pj=(traffic.a_l1_write_bits + traffic.a_l1_read_bits)
        * model.a_l1_pj_per_bit,
        w_l1_pj=(traffic.w_l1_write_bits + traffic.w_l1_read_bits)
        * model.w_l1_pj_per_bit,
        rf_pj=(traffic.rf_rmw_bits + traffic.rf_drain_bits) * model.rf_rmw_pj_per_bit,
        mac_pj=model.mac_energy_pj(layer.macs),
    )


def evaluate_mapping(
    layer: ConvLayer, hw: HardwareConfig, mapping: Mapping
) -> CostReport:
    """Evaluate one mapping end to end.

    Raises:
        InvalidMappingError: When the mapping is illegal for this layer and
            hardware (the mapper filters these before calling).
    """
    nest = LoopNest(layer=layer, hw=hw, mapping=mapping)
    errors = nest.validity_errors()
    if errors:
        raise InvalidMappingError("; ".join(errors))
    traffic, _ = compute_traffic(nest)
    o_l2_bytes = o_l2_required_bytes(nest)
    energy = energy_from_traffic(hw, layer, traffic, o_l2_bytes)
    return CostReport(
        layer=layer,
        mapping=mapping,
        energy=energy,
        traffic=traffic,
        cycles=nest.total_cycles(),
        utilization=nest.utilization(),
        o_l2_bytes=o_l2_bytes,
    )


def model_cost(
    reports: list[CostReport], hw: HardwareConfig
) -> tuple[EnergyBreakdown, int, float]:
    """Aggregate per-layer reports into model totals.

    Returns:
        ``(energy_breakdown, total_cycles, edp_joule_seconds)``.
    """
    if not reports:
        raise ValueError("reports must be non-empty")
    energy = EnergyBreakdown.fsum(report.energy for report in reports)
    cycles = sum(report.cycles for report in reports)
    runtime_s = cycles * hw.tech.cycle_time_ns() * 1e-9
    edp = energy.total_pj * 1e-12 * runtime_s
    return energy, cycles, edp


def chiplet_area_mm2(hw: HardwareConfig, o_l2_bytes: int = 0) -> float:
    """Chiplet area with the workload-resolved O-L2 size."""
    return AreaModel(hw, o_l2_default_bytes=o_l2_bytes).chiplet_area_mm2()
