"""Hierarchical traffic assembly: DRAM, ring (D2D), L2, L1, register file.

Combines the per-buffer C3P analyses with the spatial sharing modes:

* **Chiplet sharing** -- cores in the same output-channel slice share weights
  (their W-L1s merge into a pool group: effective capacity multiplies, fill
  is counted once and broadcast); cores in the same planar tile share input
  (the central bus multicasts one A-L2 read stream to all of them).
* **Package sharing** -- a C-type package split means all chiplets consume
  the same input; a P-type split means they consume the same weights.  The
  *rotating transfer* (Figure 3) loads 1/N_P of the shared data per chiplet
  from DRAM and forwards it around the directional ring, so every shared bit
  costs one DRAM access plus ``N_P - 1`` ring hops instead of ``N_P`` DRAM
  accesses.

All quantities are totals for one layer across the whole package, in bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.c3p import (
    C3PAnalysis,
    analyze_activation_l1,
    analyze_activation_l2,
    analyze_weight_buffer,
)
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.primitives import PartitionDim, RotationKind


@dataclass(frozen=True)
class TrafficReport:
    """Layer-total traffic per level, in bits (bit-hops for the ring)."""

    dram_input_bits: float
    dram_weight_bits: float
    dram_output_bits: float
    d2d_bit_hops: float
    a_l2_write_bits: float
    a_l2_read_bits: float
    o_l2_write_bits: float
    o_l2_read_bits: float
    a_l1_write_bits: float
    a_l1_read_bits: float
    w_l1_write_bits: float
    w_l1_read_bits: float
    rf_rmw_bits: float
    rf_drain_bits: float

    @property
    def dram_bits(self) -> float:
        """Total DRAM traffic."""
        return self.dram_input_bits + self.dram_weight_bits + self.dram_output_bits

    @property
    def total_bits(self) -> float:
        """Every counted bit transfer (reporting convenience)."""
        return (
            self.dram_bits
            + self.d2d_bit_hops
            + self.a_l2_write_bits
            + self.a_l2_read_bits
            + self.o_l2_write_bits
            + self.o_l2_read_bits
            + self.a_l1_write_bits
            + self.a_l1_read_bits
            + self.w_l1_write_bits
            + self.w_l1_read_bits
            + self.rf_rmw_bits
            + self.rf_drain_bits
        )


@dataclass(frozen=True)
class TrafficBreakdownInputs:
    """The C3P analyses backing a traffic report (kept for explainability)."""

    weight: C3PAnalysis
    a_l1: C3PAnalysis
    a_l2: C3PAnalysis


def weight_group_size(mapping: Mapping) -> int:
    """Cores per merged W-L1 pool group (cores computing identical channels)."""
    return mapping.chiplet_spatial.grid.ways


def weight_groups_per_chiplet(mapping: Mapping) -> int:
    """Distinct weight groups in a chiplet (distinct channel slices)."""
    return mapping.chiplet_spatial.co_ways


def plane_groups_per_chiplet(mapping: Mapping) -> int:
    """Distinct planar tiles among a chiplet's cores (A-L2 multicast streams)."""
    return mapping.chiplet_spatial.grid.ways


def compute_traffic(nest: LoopNest) -> tuple[TrafficReport, TrafficBreakdownInputs]:
    """Assemble the layer's package-wide traffic for one mapping.

    Args:
        nest: A valid (layer, hardware, mapping) loop nest.

    Returns:
        The traffic totals and the underlying C3P analyses.
    """
    layer = nest.layer
    hw = nest.hw
    mapping = nest.mapping
    tech = hw.tech
    # Thin layers may leave units idle: traffic sums over the *active* ones.
    n_chiplets = nest.active_chiplets
    n_cores = nest.active_cores
    data_bits = tech.data_bits

    # --- C3P analyses -------------------------------------------------------
    group_size = weight_group_size(mapping)
    weight_analysis = analyze_weight_buffer(
        nest, hw.memory.w_l1_bytes * group_size
    )
    a_l1_analysis = analyze_activation_l1(nest, hw.memory.a_l1_bytes)
    a_l2_analysis = analyze_activation_l2(nest, hw.memory.a_l2_bytes)

    # --- weights --------------------------------------------------------------
    # Fill per weight group, broadcast to the group's cores.
    group_fill_bits = weight_analysis.fill_bits
    chiplet_weight_fill = group_fill_bits * weight_groups_per_chiplet(mapping)
    sharing_hops = hw.topology.sharing_hops_per_bit(n_chiplets)
    if mapping.package_spatial.dim is PartitionDim.PLANE:
        # Chiplets need identical weights.
        if mapping.rotation is RotationKind.WEIGHTS:
            dram_weight_bits = chiplet_weight_fill
            weight_d2d = chiplet_weight_fill * sharing_hops
        else:
            dram_weight_bits = chiplet_weight_fill * n_chiplets
            weight_d2d = 0.0
        w_l1_write_bits = chiplet_weight_fill * n_chiplets
    else:
        # C-type package: chiplets own distinct channels.
        dram_weight_bits = chiplet_weight_fill * n_chiplets
        weight_d2d = 0.0
        w_l1_write_bits = dram_weight_bits
    # The PE array re-reads each block's filters once per core block (weights
    # then stay in the array registers for the WS sweep).
    block_weight_bits = layer.weights_for(nest.core_co) * data_bits
    w_l1_read_bits = (
        block_weight_bits
        * nest.core_blocks_per_core()
        * n_cores
        * n_chiplets
    )

    # --- activations -----------------------------------------------------------
    # A-L2 fill per chiplet (union window of each chiplet workload).
    chiplet_a_l2_fill = a_l2_analysis.fill_bits
    if mapping.package_spatial.dim is PartitionDim.CHANNEL:
        # All chiplets consume the same input.
        if mapping.rotation is RotationKind.ACTIVATIONS:
            dram_input_bits = chiplet_a_l2_fill
            act_d2d = chiplet_a_l2_fill * sharing_hops
        else:
            dram_input_bits = chiplet_a_l2_fill * n_chiplets
            act_d2d = 0.0
    else:
        # P-type package: distinct planar macro tiles (halo counted per
        # consumer by the per-chiplet window math).
        dram_input_bits = chiplet_a_l2_fill * n_chiplets
        act_d2d = 0.0
    a_l2_write_bits = chiplet_a_l2_fill * n_chiplets

    # A-L1 fills per core; the bus multicasts one A-L2 read stream per planar
    # group, so L2 reads count one core's stream per group.
    core_a_l1_fill = a_l1_analysis.fill_bits
    a_l1_write_bits = core_a_l1_fill * n_cores * n_chiplets
    a_l2_read_bits = core_a_l1_fill * plane_groups_per_chiplet(mapping) * n_chiplets
    # Per-cycle PE feed: P activations broadcast across L lanes.
    a_l1_read_bits = layer.macs / hw.lanes * data_bits

    # --- outputs ------------------------------------------------------------------
    output_bits = layer.output_elements * data_bits
    psum_rmw_bits = layer.macs / hw.vector_size * tech.psum_bits
    rf_drain_bits = layer.output_elements * tech.psum_bits
    o_l2_write_bits = output_bits
    o_l2_read_bits = output_bits
    dram_output_bits = output_bits

    report = TrafficReport(
        dram_input_bits=dram_input_bits,
        dram_weight_bits=dram_weight_bits,
        dram_output_bits=dram_output_bits,
        d2d_bit_hops=act_d2d + weight_d2d,
        a_l2_write_bits=a_l2_write_bits,
        a_l2_read_bits=a_l2_read_bits,
        o_l2_write_bits=o_l2_write_bits,
        o_l2_read_bits=o_l2_read_bits,
        a_l1_write_bits=a_l1_write_bits,
        a_l1_read_bits=a_l1_read_bits,
        w_l1_write_bits=w_l1_write_bits,
        w_l1_read_bits=w_l1_read_bits,
        rf_rmw_bits=psum_rmw_bits,
        rf_drain_bits=rf_drain_bits,
    )
    return report, TrafficBreakdownInputs(
        weight=weight_analysis, a_l1=a_l1_analysis, a_l2=a_l2_analysis
    )

