"""Planar partition patterns and halo analysis (Section IV-C, Figures 7-8).

Splitting the output plane among chiplets/cores (or into temporal tiles)
forces each tile to fetch ``K - stride`` overlap rows/columns -- the *halo*.
With the same element count, the partition pattern (grid aspect ratio)
changes both the redundant memory access (Figure 7) and the number of
distinct consumers of each input element, which drives DRAM access conflicts
across the package's four DRAMs (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class PlanarGrid:
    """A ``rows x cols`` partition of the output plane.

    ``PlanarGrid(1, n)`` / ``PlanarGrid(n, 1)`` are the paper's stripe
    pattern, ``rows == cols`` its square pattern, anything else a rectangle.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid dims must be >= 1, got {self.rows}x{self.cols}")

    @property
    def ways(self) -> int:
        """Number of tiles the grid produces."""
        return self.rows * self.cols

    @property
    def is_square(self) -> bool:
        """Whether this is the paper's 1:1 (square) pattern."""
        return self.rows == self.cols

    @property
    def is_stripe(self) -> bool:
        """Whether the grid cuts along a single dimension."""
        return self.ways > 1 and (self.rows == 1 or self.cols == 1)

    def aspect_ratio(self) -> float:
        """Grid aspect ratio >= 1 (1.0 for square)."""
        return max(self.rows, self.cols) / min(self.rows, self.cols)

    def describe(self) -> str:
        """Short label, e.g. ``2x2``."""
        return f"{self.rows}x{self.cols}"

    def tile_shape(self, ho: int, wo: int) -> tuple[int, int]:
        """Ceil-sized output-tile shape when partitioning ``ho x wo``."""
        from repro.workloads.layer import ceil_div

        return ceil_div(ho, self.rows), ceil_div(wo, self.cols)

    def tiles(self, ho: int, wo: int) -> Iterator[tuple[int, int]]:
        """Yield every tile's actual ``(rows, cols)`` output extent.

        Edge tiles take the remainder, so extents sum exactly to the plane.
        """
        from repro.workloads.layer import tile_extent

        for r in range(self.rows):
            for c in range(self.cols):
                tr = tile_extent(ho, self.rows, r)
                tc = tile_extent(wo, self.cols, c)
                if tr > 0 and tc > 0:
                    yield tr, tc


def factor_grids(ways: int, max_aspect: float | None = None) -> list[PlanarGrid]:
    """Every ``rows x cols`` grid with ``rows * cols == ways``.

    Args:
        ways: Required tile count.
        max_aspect: Optional cap on the grid aspect ratio (the mapper sweeps
            "partition patterns with different height-width ratios").
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    grids = []
    for rows in range(1, ways + 1):
        if ways % rows == 0:
            grid = PlanarGrid(rows, ways // rows)
            if max_aspect is None or grid.aspect_ratio() <= max_aspect:
                grids.append(grid)
    return grids


def tile_input_elements(layer: "ConvLayer", grid: PlanarGrid) -> int:
    """Total input elements fetched when each tile loads its own halo.

    Sums the per-tile input windows (``(t*s + K - s)`` rows/cols per tile of
    ``t`` output rows/cols), so inter-tile overlap is counted once per
    consuming tile -- the redundant access of Figure 7.
    """
    total = 0
    for tr, tc in grid.tiles(layer.ho, layer.wo):
        total += layer.input_rows_for(tr) * layer.input_cols_for(tc) * layer.ci
    return total


def unique_input_elements(layer: "ConvLayer") -> int:
    """Input elements of the whole layer fetched exactly once (incl. padding).

    Uses the padded window of the full output plane so that redundancy ratios
    compare tiles against the same padded coordinate space.
    """
    return layer.input_rows_for(layer.ho) * layer.input_cols_for(layer.wo) * layer.ci


def halo_redundancy_ratio(layer: "ConvLayer", grid: PlanarGrid) -> float:
    """Redundant memory access fraction of a planar partition (Figure 7).

    Returns ``(sum of tile windows - unique window) / unique window``; 0.0
    means no halo refetch, 6.5 means the 650% worst case the paper reports
    for ResNet-50 conv1 at fine granularity.
    """
    unique = unique_input_elements(layer)
    return (tile_input_elements(layer, grid) - unique) / unique


def max_conflict_degree(layer: "ConvLayer", grid: PlanarGrid) -> int:
    """Maximum number of tiles that need one input element (Figure 8).

    A square 2x2 package split makes the central halo region visible to all
    four chiplets (degree 4); a 1x4 rectangle caps the degree at 2, avoiding
    four-way DRAM access conflicts.
    """
    row_overlap = layer.halo_rows > 0 and grid.rows > 1
    col_overlap = layer.halo_cols > 0 and grid.cols > 1
    degree = 1
    if row_overlap:
        degree *= 2
    if col_overlap:
        degree *= 2
    # Degenerate tiles smaller than the halo would raise the degree further;
    # cap at the grid size which is the physical maximum.
    return min(degree, grid.ways)


def conflict_elements(layer: "ConvLayer", grid: PlanarGrid) -> int:
    """Input elements needed by more than one tile of ``grid`` (Figure 8).

    Counts the (padded) input halo strips between adjacent tiles: horizontal
    strips of ``halo_rows`` input rows between row-adjacent tiles, vertical
    strips of ``halo_cols`` columns, overlap intersections counted once.
    """
    in_rows = layer.input_rows_for(layer.ho)
    in_cols = layer.input_cols_for(layer.wo)
    h_strips = (grid.rows - 1) * layer.halo_rows * in_cols
    v_strips = (grid.cols - 1) * layer.halo_cols * in_rows
    crossings = (
        (grid.rows - 1) * (grid.cols - 1) * layer.halo_rows * layer.halo_cols
    )
    return (h_strips + v_strips - crossings) * layer.ci


def preferred_grid(
    layer: "ConvLayer",
    ways: int,
    prefer_square: bool = True,
    max_conflict: int | None = None,
) -> PlanarGrid:
    """Pick the grid the paper's analysis recommends.

    Square patterns minimize halo redundancy (temporal tiles); rectangles cap
    the DRAM conflict degree (package-level split across multiple DRAMs), so
    callers can bound ``max_conflict`` to 2 at the package level.
    """
    candidates = factor_grids(ways)
    if max_conflict is not None:
        bounded = [
            g for g in candidates if max_conflict_degree(layer, g) <= max_conflict
        ]
        if bounded:
            candidates = bounded
    key = (
        (lambda g: (halo_redundancy_ratio(layer, g), g.aspect_ratio()))
        if prefer_square
        else (lambda g: (g.aspect_ratio(), halo_redundancy_ratio(layer, g)))
    )
    return min(candidates, key=key)
