"""The NN-Baton facade: pre-design and post-design flows (Figure 9).

``NNBaton`` ties the mapping analysis engine, the C3P evaluation engine and
the hardware DSE together behind the two entry points the paper describes:

* :meth:`NNBaton.post_design` -- "a detailed mapping strategy for deploying
  the model on hardware with spatial and temporal primitives" for a fixed
  configuration.
* :meth:`NNBaton.pre_design` -- "decide the chiplet granularity and choose an
  appropriate hardware resource scheme" under MAC-count and area budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.arch.config import HardwareConfig
from repro.arch.technology import DEFAULT_TECHNOLOGY, TechnologyParams
from repro.arch.topology import Topology
from repro.core.cost import EnergyBreakdown, model_cost
from repro.core.dse import DesignPoint, DesignSpace, best_point, explore
from repro.core.mapper import LayerMappingResult, Mapper
from repro.core.parallel import SweepStats, TaskPolicy
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class PostDesignResult:
    """Output of the post-design flow for one model."""

    hw: HardwareConfig
    layers: tuple[LayerMappingResult, ...]
    energy: EnergyBreakdown
    cycles: int
    edp_js: float

    @property
    def energy_pj(self) -> float:
        """Total model energy in pico-joules."""
        return self.energy.total_pj

    def runtime_s(self) -> float:
        """Model runtime in seconds."""
        return self.cycles * self.hw.tech.cycle_time_ns() * 1e-9

    def mapping_table(self) -> list[str]:
        """Per-layer mapping strategy lines (the compiler-facing report)."""
        return [
            f"{result.layer.name}: {result.mapping.describe()}"
            for result in self.layers
        ]


@dataclass(frozen=True)
class PreDesignResult:
    """Output of the pre-design flow."""

    points: tuple[DesignPoint, ...]
    recommended: DesignPoint | None
    model: str
    required_macs: int
    max_chiplet_mm2: float | None

    @property
    def valid_points(self) -> list[DesignPoint]:
        """Structurally valid, evaluated design points."""
        return [p for p in self.points if p.valid and p.energy_pj]

    @property
    def swept(self) -> int:
        """Total points swept (including pruned ones)."""
        return len(self.points)


@dataclass
class NNBaton:
    """The automatic tool: workload orchestration + granularity exploration.

    Attributes:
        tech: Technology point for all evaluations.
        profile: Mapping-search pruning profile.
    """

    tech: TechnologyParams = DEFAULT_TECHNOLOGY
    profile: SearchProfile = SearchProfile.EXHAUSTIVE

    def post_design(
        self,
        layers: list[ConvLayer],
        hw: HardwareConfig,
        jobs: int | None = None,
        stats: SweepStats | None = None,
    ) -> PostDesignResult:
        """Map every layer of a model onto a fixed hardware configuration.

        Args:
            layers: The model's layers.
            hw: The machine to map onto.
            jobs: Worker processes for the layer search (``None`` defers to
                ``REPRO_JOBS``, then serial).
            stats: Optional instrumentation record filled in place.
        """
        mapper = Mapper(hw=hw, profile=self.profile)
        results = mapper.search_model(layers, jobs=jobs, stats=stats)
        energy, cycles, edp = model_cost([r.best for r in results], hw)
        return PostDesignResult(
            hw=hw,
            layers=tuple(results),
            energy=energy,
            cycles=cycles,
            edp_js=edp,
        )

    def pre_design(
        self,
        models: dict[str, list[ConvLayer]],
        required_macs: int,
        max_chiplet_mm2: float | None = None,
        topology: Topology = Topology.RING,
        space: DesignSpace | None = None,
        objective: str = "edp",
        primary_model: str | None = None,
        memory_stride: int = 1,
        max_valid_points: int | None = None,
        profile: SearchProfile | None = None,
        max_runtime_s: float | None = None,
        jobs: int | None = None,
        stats: SweepStats | None = None,
        policy: TaskPolicy | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        checkpoint_every: int = 16,
        strategy: str = "exhaustive",
        trials: int | None = None,
        study: str | Path | None = None,
        seed: int = 0,
        progress: Any | None = None,
    ) -> PreDesignResult:
        """Explore the design space and recommend a configuration.

        Args:
            models: Benchmarks driving the exploration.
            required_macs: Exact MAC budget.
            max_chiplet_mm2: Per-chiplet area constraint.
            topology: Package interconnect fabric every swept machine is
                built with (directional ring by default).
            space: Exploration space (Table II by default).
            objective: Recommendation objective (EDP by default, Figure 14).
            primary_model: Model the recommendation optimizes (defaults to
                the first entry of ``models``).
            memory_stride: Memory-sweep subsampling knob.
            max_valid_points: Cap on evaluated valid points.
            profile: Mapping-search profile for the sweep (defaults to FAST;
                large sweeps typically use MINIMAL).
            max_runtime_s: Performance budget on the primary model.
            jobs: Worker processes fanning sweep points out (``None`` defers
                to ``REPRO_JOBS``, then serial); results are bit-identical
                at every worker count.
            stats: Optional instrumentation record filled in place.
            policy: Timeout/retry/on-error contract for the sweep fan-out.
            checkpoint_dir: Stream completed points to a sweep checkpoint
                under this directory (see :func:`repro.core.dse.explore`).
            resume: Skip points already answered by the checkpoint.
            checkpoint_every: Completed points buffered per checkpoint flush.
            strategy: ``"exhaustive"`` (default) or ``"guided"`` -- the
                ask/tell optimizer of :mod:`repro.core.search`.
            trials: Guided only -- the full-evaluation budget.
            study: Guided only -- sqlite study path for persistence/resume.
            seed: Guided only -- sampler seed.
            progress: Optional :class:`repro.obs.progress.ProgressMeter`
                updated as the sweep completes points (stderr only).
        """
        if not models:
            raise ValueError("models must be non-empty")
        model = primary_model or next(iter(models))
        if model not in models:
            raise KeyError(f"primary model {model!r} not in models")
        points = explore(
            models,
            required_macs=required_macs,
            space=space,
            max_chiplet_mm2=max_chiplet_mm2,
            topology=topology,
            profile=profile or SearchProfile.FAST,
            tech=self.tech,
            memory_stride=memory_stride,
            max_valid_points=max_valid_points,
            jobs=jobs,
            stats=stats,
            policy=policy,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            checkpoint_every=checkpoint_every,
            strategy=strategy,
            trials=trials,
            study=study,
            seed=seed,
            primary_model=model,
            progress=progress,
        )
        recommended = best_point(
            points,
            model,
            objective=objective,
            max_chiplet_mm2=max_chiplet_mm2,
            max_runtime_s=max_runtime_s,
        )
        return PreDesignResult(
            points=tuple(points),
            recommended=recommended,
            model=model,
            required_macs=required_macs,
            max_chiplet_mm2=max_chiplet_mm2,
        )
