"""Versioned JSONL checkpoints for the DSE sweep (crash/interrupt safety).

A Figure-15-scale :func:`repro.core.dse.explore` sweep evaluates thousands
of design points; one OOM-killed worker or one Ctrl-C used to throw the
whole run away.  This module persists completed design-point results as
they arrive, so an interrupted sweep restarted with ``--resume`` skips
every point it already answered and produces byte-identical output to an
uninterrupted run.

Format -- one JSON object per line, append-only:

* a **header** line ``{"kind": "header", "version": 1, "sweep": <digest>}``;
* **point** lines ``{"kind": "point", "key": <task key>, "record": {...}}``.

The file is keyed by a SHA-256 **sweep digest** over everything that
determines a point's result (model layer shapes, MAC budget, the space,
the area budget, search profile, technology point and memory stride), the
same discipline the mapping cache applies to hardware digests: a changed
sweep parameter lands in a different file and never poisons a resume.
Appends are buffered and flushed as one ``write`` on an ``O_APPEND``
descriptor, so concurrent or killed writers can at worst leave one torn
*tail* line -- the loader tolerates (and counts) undecodable lines instead
of discarding the checkpoint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any

from repro import durable, obs

logger = logging.getLogger("repro.checkpoint")

#: On-disk schema version; bump to invalidate existing checkpoints.
CHECKPOINT_FORMAT_VERSION = 1

#: Environment variable naming the default checkpoint directory.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

#: Default directory name for sweep checkpoints (under the working dir).
DEFAULT_CHECKPOINT_DIRNAME = ".repro_checkpoints"


def sweep_digest(
    models: dict[str, list],
    required_macs: int,
    space: Any,
    max_chiplet_mm2: float | None,
    profile: Any,
    tech: Any,
    memory_stride: int,
    strategy: str = "exhaustive",
    seed: int | None = None,
    trials: int | None = None,
    topology: str = "ring",
) -> str:
    """A stable hex digest of everything a sweep's results depend on.

    The search strategy, sampler seed and trial budget are always part of
    the canonical payload (``exhaustive``/``None``/``None`` for the
    default sweep), so a guided study can never be silently resumed by an
    exhaustive run -- or by a guided run with a different seed or budget.
    """
    from repro.core.mapper import _shape_key

    canonical = json.dumps(
        {
            "models": {
                name: [list(_shape_key(layer)) for layer in layers]
                for name, layers in sorted(models.items())
            },
            "required_macs": required_macs,
            "space": list(dataclasses.astuple(space)),
            "max_chiplet_mm2": max_chiplet_mm2,
            "profile": getattr(profile, "value", str(profile)),
            "tech": dataclasses.asdict(tech),
            "memory_stride": memory_stride,
            "strategy": strategy,
            "seed": seed,
            "trials": trials,
            "topology": topology,
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def task_key(task: tuple) -> str:
    """The canonical string key of one (computation, memory) sweep task."""
    n_p, n_c, lane, vec, memory = task
    return (
        f"{n_p}-{n_c}-{lane}-{vec}"
        f"|a1:{memory.a_l1_bytes}|w1:{memory.w_l1_bytes}"
        f"|o1:{memory.o_l1_bytes}|a2:{memory.a_l2_bytes}"
    )


class SweepCheckpoint:
    """Append-only JSONL store of completed design-point results.

    Attributes:
        path: The checkpoint file (``sweep-<digest16>.jsonl``).
        flush_every: Buffered point records per append (1 = every point).
        corrupt_lines: Undecodable lines tolerated during the last load.
    """

    def __init__(
        self,
        directory: str | Path,
        digest: str,
        flush_every: int = 16,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.directory = Path(directory)
        self.digest = digest
        self.path = self.directory / f"sweep-{digest[:16]}.jsonl"
        self.flush_every = flush_every
        self.corrupt_lines = 0
        self._buffer: list[str] = []
        self._header_written = False

    @staticmethod
    def resolve_dir(directory: str | Path | None) -> Path:
        """The effective checkpoint directory (argument, env, default)."""
        if directory is not None:
            return Path(directory)
        raw = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
        return Path(raw) if raw else Path(DEFAULT_CHECKPOINT_DIRNAME)

    # --- reading ---------------------------------------------------------------

    def load(self) -> dict[str, dict[str, Any]]:
        """Completed point records keyed by task key (last write wins).

        Tolerates a torn tail (or any undecodable line), counting it in
        :attr:`corrupt_lines` and the ``checkpoint.corrupt_lines`` obs
        counter.  A checkpoint of a different format version is set aside
        (renamed) and treated as empty.
        """
        self.corrupt_lines = 0
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return {}
        except OSError as exc:
            # No checkpoint is a clean cold start; an unreadable device is
            # not -- count it so persistent EIO degrades the sink.
            if durable.is_resource_error(exc):
                durable.record_sink_failure("checkpoint", exc)
            return {}
        records: dict[str, dict[str, Any]] = {}
        version_ok = False
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                kind = payload["kind"]
            except (ValueError, TypeError, KeyError):
                self.corrupt_lines += 1
                continue
            if kind == "header":
                if payload.get("version") != CHECKPOINT_FORMAT_VERSION:
                    self._set_aside(
                        f"format version {payload.get('version')!r}"
                    )
                    return {}
                version_ok = True
            elif kind == "point":
                try:
                    records[str(payload["key"])] = dict(payload["record"])
                except (KeyError, TypeError, ValueError):
                    self.corrupt_lines += 1
        if self.corrupt_lines:
            obs.count("checkpoint.corrupt_lines", self.corrupt_lines)
            logger.warning(
                "checkpoint %s: tolerated %d undecodable line(s)",
                self.path,
                self.corrupt_lines,
            )
        if not version_ok and records:
            # Point lines without any header: treat as foreign/corrupt.
            self._set_aside("missing header")
            return {}
        self._header_written = version_ok
        return records

    def _set_aside(self, reason: str) -> None:
        """Quarantine an unusable checkpoint file instead of deleting it."""
        target = self.path.with_name(self.path.name + f".corrupt-{os.getpid()}")
        try:
            self.path.replace(target)
        except FileNotFoundError:
            return
        except OSError as exc:
            if durable.is_resource_error(exc):
                durable.record_sink_failure("checkpoint", exc)
            return
        obs.count("checkpoint.set_aside")
        logger.warning(
            "set aside unusable checkpoint %s (%s) -> %s",
            self.path,
            reason,
            target.name,
        )

    # --- writing ---------------------------------------------------------------

    def reset(self) -> None:
        """Start a fresh checkpoint (truncate + header, atomic + fsync'd).

        A full or failing disk degrades the checkpoint sink exactly like
        :meth:`flush` -- the sweep proceeds without resumability rather
        than dying before the first point.
        """
        if not durable.sink_enabled("checkpoint"):
            return
        header = json.dumps(
            {
                "kind": "header",
                "version": CHECKPOINT_FORMAT_VERSION,
                "sweep": self.digest,
            },
            sort_keys=True,
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            durable.atomic_write(self.path, header + "\n", sink="checkpoint")
        except OSError as exc:
            if durable.is_resource_error(exc):
                durable.record_sink_failure("checkpoint", exc)
                return
            raise
        self._buffer.clear()
        self._header_written = True

    def record(self, key: str, record: dict[str, Any]) -> None:
        """Buffer one completed point; auto-flush at ``flush_every``."""
        self._buffer.append(
            json.dumps(
                {"kind": "point", "key": key, "record": record},
                sort_keys=True,
            )
        )
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Append every buffered record in one atomic-enough write.

        The payload goes out as a single ``write`` on an ``O_APPEND``
        descriptor and is fsync'd (:func:`repro.durable.durable_append`);
        a crash mid-write can tear at most the final line, which
        :meth:`load` tolerates, and a flush that returned cannot be lost
        to a power cut.

        A full or failing disk (ENOSPC/EIO/...) degrades the checkpoint
        sink -- one warning, the ``degraded.checkpoint`` counter -- and
        the sweep continues without resumability; results are unaffected.
        """
        if not self._buffer:
            return
        if not durable.sink_enabled("checkpoint"):
            self._buffer.clear()
            return
        try:
            if not self._header_written:
                if self.path.exists():
                    self._header_written = True
                else:
                    self.reset()
            payload = "".join(line + "\n" for line in self._buffer)
            durable.durable_append(self.path, payload, sink="checkpoint")
        except OSError as exc:
            if durable.is_resource_error(exc):
                durable.record_sink_failure("checkpoint", exc)
                self._buffer.clear()
                return
            raise
        obs.count("checkpoint.flushes")
        obs.count("checkpoint.points_flushed", len(self._buffer))
        obs.event("checkpoint.flush", points=len(self._buffer))
        self._buffer.clear()


__all__ = [
    "CHECKPOINT_DIR_ENV",
    "CHECKPOINT_FORMAT_VERSION",
    "DEFAULT_CHECKPOINT_DIRNAME",
    "SweepCheckpoint",
    "sweep_digest",
    "task_key",
]
