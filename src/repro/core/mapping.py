"""The complete mapping description for one layer on one hardware instance.

A :class:`Mapping` bundles the two spatial primitives, the two temporal
primitives and the rotating primitive -- the exact output the paper's
post-design flow reports ("partition dimension and the partition pattern ...
loop order and loop counts").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.primitives import (
    LoopOrder,
    PartitionDim,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)


@dataclass(frozen=True)
class Mapping:
    """One layer's workload orchestration across the three-level hierarchy.

    Attributes:
        package_spatial: How the output cube splits across the N_P chiplets
            (C-type or P-type only; the package level never uses H-type).
        package_temporal: Chiplet-workload tiling ``HO_t x WO_t x CO_t`` and
            the package-level loop priority.
        chiplet_spatial: How a chiplet workload splits across the N_C cores
            (C, P or H-type).
        chiplet_temporal: Core-workload tiling ``HO_C x WO_C x L`` and the
            chiplet-level loop priority.
        rotation: What the ring's rotating transfer circulates.
    """

    package_spatial: SpatialPrimitive
    package_temporal: TemporalPrimitive
    chiplet_spatial: SpatialPrimitive
    chiplet_temporal: TemporalPrimitive
    rotation: RotationKind = RotationKind.NONE

    def __post_init__(self) -> None:
        if self.package_spatial.dim is PartitionDim.HYBRID:
            raise ValueError("the package level uses C-type or P-type partitions only")
        if (
            self.rotation is RotationKind.ACTIVATIONS
            and self.package_spatial.dim is not PartitionDim.CHANNEL
        ):
            raise ValueError("activation rotation requires a C-type package partition")
        if (
            self.rotation is RotationKind.WEIGHTS
            and self.package_spatial.dim is not PartitionDim.PLANE
        ):
            raise ValueError("weight rotation requires a P-type package partition")

    @property
    def spatial_combo(self) -> tuple[str, str]:
        """The figure-11 x-axis pair, e.g. ``("C", "H")``."""
        return (self.package_spatial.dim.value, self.chiplet_spatial.dim.value)

    @property
    def temporal_combo(self) -> tuple[LoopOrder, LoopOrder]:
        """The (package, chiplet) loop priorities."""
        return (self.package_temporal.order, self.chiplet_temporal.order)

    def with_rotation(self, rotation: RotationKind) -> "Mapping":
        """Return a copy with a different rotating primitive."""
        return replace(self, rotation=rotation)

    def describe(self) -> str:
        """Compact single-line mapping description for reports."""
        return (
            f"pkg[{self.package_spatial.describe()} "
            f"{self.package_temporal.describe()}] "
            f"chip[{self.chiplet_spatial.describe()} "
            f"{self.chiplet_temporal.describe()}] "
            f"rot={self.rotation.value}"
        )
