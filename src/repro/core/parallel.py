"""Fault-tolerant parallel execution for the sweep-scale search paths.

The DSE sweeps are embarrassingly parallel across design points, and a
model's mapping search is embarrassingly parallel across unique layer
shapes.  This module provides the one fan-out primitive both reuse:

* :func:`resolve_jobs` -- worker-count policy (explicit argument, then the
  ``REPRO_JOBS`` environment variable, then serial).
* :func:`run_tasks` -- order-preserving map over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with a **serial
  fallback at ``jobs=1``** that runs in-process so results stay
  bit-identical and debuggable (breakpoints, exact tracebacks, no pickling).
  Shared read-only state travels once per worker through an initializer
  rather than once per task.
* :class:`TaskPolicy` / :class:`TaskFailure` -- the resilience contract.
  Tasks are submitted chunk by chunk as individual futures; a per-task
  exception becomes a structured :class:`TaskFailure` instead of aborting
  the sweep (``on_error="skip"``), crash-only faults (worker death,
  timeouts, :class:`TransientTaskError`) are retried with exponential
  backoff while deterministic exceptions are not, a broken pool is rebuilt
  once and the run degrades to the serial in-process path if it breaks
  again.
* :class:`SweepStats` -- the per-run instrumentation record (stage timings,
  cache counters, failure/retry/pool-restart accounting, points/sec)
  surfaced by the CLI and
  :func:`repro.analysis.reporting.format_search_stats`.

Workers receive their shared context via :func:`worker_context`; worker
functions must be module-level (picklable) callables of one task argument.

When a live :mod:`repro.obs` recorder is installed in the parent, every
worker process runs its tasks under a private recorder and ships the
captured spans and counters back alongside each outcome (successes *and*
failures); the parent merges them, so a ``--jobs N`` sweep reports
identically-shaped metrics to the serial run (counters are
order-independent sums).

Fault injection (:mod:`repro.testing.faults`) hooks both execution paths:
when ``REPRO_FAULTS`` is set (or a plan is installed in-process), every
task consults the plan right before running -- the mechanism the
resilience tests use to prove each recovery path.  The hook costs one
environment lookup per task when no plan is active.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro import obs
from repro.errors import ReproError

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Extra seconds granted beyond ``timeout_s * len(chunk)`` before a chunk
#: is declared hung (covers submission/pickling latency).
TIMEOUT_GRACE_S = 0.5

#: Poll interval of the completion loop (seconds).
_POLL_S = 0.05

# Per-process shared state for worker tasks (set by the pool initializer in
# child processes, and by run_tasks itself on the serial path).
_WORKER_CONTEXT: Any = None

# The task callable of the current pool (set by the pool initializer in
# child processes; lets the chunk runner stay module-level).
_WORKER_FN: Callable[[Any], Any] | None = None

# Whether tasks in this process run under per-task obs capture.
_WORKER_CAPTURE = False

# True inside pool worker processes (lets the fault injector distinguish
# "kill this worker" from "kill the host process").
_IN_WORKER = False


class TransientTaskError(ReproError, RuntimeError):
    """A crash-like task fault that merits a bounded retry.

    Raise (or subclass) this from a worker function for failures that are
    expected to vanish on a re-run -- lost connections, injected crashes.
    Every other exception type is treated as deterministic and is never
    retried.

    Still a ``RuntimeError`` (the historical contract) and a
    :class:`repro.errors.ReproError` with its own ``transient`` code; it
    is normally consumed by the retry machinery and never reaches the
    exit-code mapping.
    """

    code = "transient"


class TaskError(RuntimeError):
    """Raised under ``on_error="abort"`` when the original exception could
    not cross the process boundary; carries its repr and traceback text."""


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the effective worker count.

    Args:
        jobs: Explicit request; ``None`` defers to ``REPRO_JOBS`` (with a
            serial default), ``0`` means "all cores".

    Raises:
        ValueError: On a negative request (here or in the environment).
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV} must be an integer, got {raw!r}") from exc
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def is_picklable(obj: Any) -> bool:
    """Whether ``obj`` can cross a process boundary.

    Callers use this to fall back to the serial path when the shared context
    contains e.g. a closure objective.
    """
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def worker_context() -> Any:
    """The shared context of the current task (see :func:`run_tasks`)."""
    return _WORKER_CONTEXT


def in_worker() -> bool:
    """True when called from inside a pool worker process."""
    return _IN_WORKER


@dataclass(frozen=True)
class TaskPolicy:
    """The resilience contract of one :func:`run_tasks` call.

    Attributes:
        timeout_s: Per-task wall-clock budget.  A chunk overdue past
            ``timeout_s * len(chunk) + grace`` has its workers killed and
            its tasks retried (a timeout counts as a crash-only fault).
            ``None`` disables the watchdog.  Not enforceable on the serial
            in-process path.
        max_attempts: Total tries per task for crash-only faults (worker
            death, timeout, :class:`TransientTaskError`).  Deterministic
            exceptions always fail on the first attempt.
        backoff_s: Base of the exponential retry backoff: attempt ``n``
            waits ``backoff_s * 2**(n-1)`` seconds before re-running.
        on_error: ``"abort"`` re-raises the first task failure (the
            pre-resilience semantics); ``"skip"`` records a
            :class:`TaskFailure` in the task's result slot and carries on.
        max_pool_restarts: Unexpected pool breaks tolerated before the run
            degrades to the serial in-process path (timeout kills are
            deliberate and do not count).
    """

    timeout_s: float | None = None
    max_attempts: int = 3
    backoff_s: float = 0.05
    on_error: str = "abort"
    max_pool_restarts: int = 1

    def __post_init__(self) -> None:
        if self.on_error not in ("abort", "skip"):
            raise ValueError(
                f"on_error must be 'abort' or 'skip', got {self.on_error!r}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")

    def retry_delay_s(self, attempt: int) -> float:
        """Backoff before executing ``attempt`` (0-based; 0 has none)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_s * 2 ** (attempt - 1)


#: The default policy: abort on first failure, retry crashes twice.
DEFAULT_POLICY = TaskPolicy()


@dataclass(frozen=True)
class TaskFailure:
    """The structured record of one task that exhausted its attempts.

    Under ``on_error="skip"`` these appear *in place of* results in the
    list :func:`run_tasks` returns, and accumulate in
    :attr:`SweepStats.failures`.

    Attributes:
        index: Position of the task in the submitted sequence.
        error: ``repr`` of the final exception.
        error_type: Class name of the final exception.
        traceback: Formatted traceback text of the final attempt (empty
            when the worker died without one, e.g. a kill or timeout).
        attempts: Attempts consumed before giving up.
        kind: ``"exception"`` (deterministic), ``"crash"`` (transient /
            worker death) or ``"timeout"``.
        label: Human-readable task label, filled in by callers that know
            what the task was (e.g. a design-point id).
    """

    index: int
    error: str
    error_type: str
    traceback: str = ""
    attempts: int = 1
    kind: str = "exception"
    label: str = ""


def _fault_plan():
    """The active fault-injection plan, without importing the harness.

    Zero-cost in production: the harness module is only imported when
    ``REPRO_FAULTS`` is set or a test already imported it to install a
    plan.
    """
    module = sys.modules.get("repro.testing.faults")
    if module is None:
        if not os.environ.get("REPRO_FAULTS", "").strip():
            return None
        from repro.testing import faults as module
    return module.active_plan()


def _call_task(fn: Callable[[Any], Any], index: int, task: Any, attempt: int) -> Any:
    """Run one task, consulting the fault injector first."""
    plan = _fault_plan()
    if plan is not None:
        plan.before_task(index, attempt)
    return fn(task)


def _init_worker(
    context: Any,
    worker: Callable[[Any], Any] | None = None,
    capture_obs: bool = False,
) -> None:
    global _WORKER_CONTEXT, _WORKER_FN, _WORKER_CAPTURE, _IN_WORKER
    _WORKER_CONTEXT = context
    _WORKER_FN = worker
    _WORKER_CAPTURE = capture_obs
    _IN_WORKER = True


def _encode_exception(exc: BaseException) -> dict[str, Any]:
    """A picklable description of a worker-side task exception."""
    return {
        "exc": exc if is_picklable(exc) else None,
        "repr": repr(exc),
        "type": type(exc).__name__,
        "traceback": traceback_module.format_exc(),
        "transient": isinstance(exc, TransientTaskError),
    }


def _run_chunk(payload: tuple[int, float, tuple[tuple[int, Any], ...]]) -> list[tuple]:
    """Pool target: run one chunk of (index, task) pairs.

    Per-task exceptions are isolated into ``("err", ...)`` outcome records
    rather than propagating through the future -- only worker death (and
    the resulting ``BrokenProcessPool``) aborts a chunk.  Retried chunks
    carry their backoff delay here so the parent never sleeps.
    """
    attempt, delay_s, items = payload
    if delay_s > 0:
        time.sleep(delay_s)
    assert _WORKER_FN is not None
    outcomes: list[tuple] = []
    for index, task in items:
        recorder = obs.Recorder() if _WORKER_CAPTURE else None
        try:
            if recorder is not None:
                with obs.use(recorder):
                    result = _call_task(_WORKER_FN, index, task, attempt)
            else:
                result = _call_task(_WORKER_FN, index, task, attempt)
        except Exception as exc:
            outcomes.append(
                (
                    "err",
                    index,
                    _encode_exception(exc),
                    recorder.snapshot() if recorder else None,
                )
            )
        else:
            outcomes.append(
                ("ok", index, result, recorder.snapshot() if recorder else None)
            )
    return outcomes


@dataclass
class _Chunk:
    """One in-flight unit of work: a slice of tasks plus its attempt."""

    items: tuple[tuple[int, Any], ...]
    attempt: int = 0
    deadline: float | None = None


class _Run:
    """Bookkeeping shared by the pool and serial execution paths."""

    def __init__(
        self,
        tasks: Sequence[Any],
        policy: TaskPolicy,
        stats: "SweepStats | None",
        on_result: Callable[[int, Any], None] | None,
    ) -> None:
        self.tasks = tasks
        self.policy = policy
        self.stats = stats
        self.on_result = on_result
        self.slots: list[Any] = [_UNSET] * len(tasks)

    def record_result(self, index: int, result: Any) -> None:
        self.slots[index] = result
        if self.on_result is not None:
            self.on_result(index, result)

    def record_retry(self, count: int = 1) -> None:
        obs.count("parallel.retries", count)
        obs.event("task.retry", count=count)
        if self.stats is not None:
            self.stats.retries += count

    def record_failure(
        self, index: int, encoded: dict[str, Any], attempts: int, kind: str
    ) -> None:
        """Finalize one task as failed (skip) or abort the run."""
        if self.policy.on_error == "abort":
            original = encoded.get("exc")
            if original is not None:
                raise original
            raise TaskError(
                f"task {index} failed ({encoded['repr']}) after "
                f"{attempts} attempt(s)\n{encoded['traceback']}"
            )
        failure = TaskFailure(
            index=index,
            error=encoded["repr"],
            error_type=encoded["type"],
            traceback=encoded["traceback"],
            attempts=attempts,
            kind=kind,
        )
        obs.count("parallel.failures")
        if self.stats is not None:
            self.stats.points_failed += 1
            self.stats.failures.append(failure)
        self.record_result(index, failure)


class _UnsetType:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _UnsetType()


def run_tasks(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int | None = None,
    context: Any = None,
    policy: TaskPolicy | None = None,
    stats: "SweepStats | None" = None,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Apply ``worker`` to every task, preserving task order.

    At an effective worker count of 1 (or a single task) this is an
    in-process loop -- bit-identical results, ordinary tracebacks.  Above
    that, tasks fan out chunk by chunk over a process pool; ``context`` is
    shipped once per worker and read back with :func:`worker_context`.

    Failure semantics are governed by ``policy`` (see :class:`TaskPolicy`):
    with the default policy the first task exception re-raises exactly as
    the pre-resilience implementation did, while ``on_error="skip"``
    returns a :class:`TaskFailure` in the failed task's slot.  Worker
    death and per-task timeouts are survived by rebuilding the pool
    (:attr:`SweepStats.pool_restarts`) and, if it keeps breaking, by
    degrading to the serial in-process path.

    Args:
        worker: Module-level callable of one task.
        tasks: Task payloads (each must be picklable when ``jobs > 1``).
        jobs: Worker count (``None`` -> ``REPRO_JOBS`` -> serial).
        context: Shared read-only state for the workers.
        policy: Timeout/retry/on-error contract (defaults to
            :data:`DEFAULT_POLICY`).
        stats: Optional instrumentation record filled in place.
        on_result: Callback invoked in the parent as each task settles,
            with ``(task index, result-or-TaskFailure)``; completion order
            is arbitrary above ``jobs=1``.  Lets callers checkpoint
            incrementally.
    """
    policy = policy or DEFAULT_POLICY
    jobs = resolve_jobs(jobs)
    tasks = list(tasks)
    run = _Run(tasks, policy, stats, on_result)
    if jobs == 1 or len(tasks) <= 1:
        _run_serial(run, worker, list(enumerate(tasks)), context)
        return run.slots
    _run_pool(run, worker, context, jobs)
    return run.slots


def _run_serial(
    run: _Run,
    worker: Callable[[Any], Any],
    items: Sequence[tuple[int, Any]],
    context: Any,
    start_attempts: dict[int, int] | None = None,
) -> None:
    """The in-process path: per-task retry loop, no timeout watchdog."""
    global _WORKER_CONTEXT
    previous = _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    try:
        for index, task in items:
            attempt = (start_attempts or {}).get(index, 0)
            while True:
                if attempt > 0:
                    time.sleep(run.policy.retry_delay_s(attempt))
                try:
                    result = _call_task(worker, index, task, attempt)
                except Exception as exc:
                    transient = isinstance(exc, TransientTaskError)
                    if transient and attempt + 1 < run.policy.max_attempts:
                        run.record_retry()
                        attempt += 1
                        continue
                    if run.policy.on_error == "abort":
                        raise
                    run.record_failure(
                        index,
                        _encode_exception(exc),
                        attempts=attempt + 1,
                        kind="crash" if transient else "exception",
                    )
                    break
                else:
                    run.record_result(index, result)
                    break
    finally:
        _WORKER_CONTEXT = previous


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's worker processes and discard the executor."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pool(
    run: _Run,
    worker: Callable[[Any], Any],
    context: Any,
    jobs: int,
) -> None:
    """The future-per-chunk submission loop with recovery.

    State machine: submit pending chunks, wait for completions, and on
    each hazard (task error, overdue chunk, broken pool) either retry the
    affected tasks as single-task chunks with backoff or finalize them as
    failures.  After ``policy.max_pool_restarts`` unexpected pool breaks
    the remaining work drains through the serial in-process path.
    """
    policy = run.policy
    tasks = run.tasks
    recorder = obs.get_recorder()
    capture = recorder.enabled
    chunksize = 1 if policy.timeout_s is not None else max(
        1, len(tasks) // (jobs * 4)
    )
    pending: deque[_Chunk] = deque(
        _Chunk(items=tuple(pairs))
        for pairs in chunked(list(enumerate(tasks)), chunksize)
    )
    in_flight: dict[Any, _Chunk] = {}
    pool: ProcessPoolExecutor | None = None
    breaks = 0
    serial_rest = False

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            initializer=_init_worker,
            initargs=(context, worker, capture),
        )

    def requeue_for_retry(chunk: _Chunk, kind: str, reason: str) -> None:
        """Retry a crashed/overdue chunk's tasks, or fail them out."""
        next_attempt = chunk.attempt + 1
        if next_attempt < policy.max_attempts:
            run.record_retry(len(chunk.items))
            for pair in chunk.items:
                pending.append(_Chunk(items=(pair,), attempt=next_attempt))
            return
        for index, _task in chunk.items:
            run.record_failure(
                index,
                {"exc": None, "repr": reason, "type": kind, "traceback": ""},
                attempts=next_attempt,
                kind=kind,
            )

    def reschedule_in_flight(culprits: list[_Chunk], kind: str, reason: str) -> None:
        """After a pool loss: bump culprits' attempts, requeue the rest."""
        culprit_ids = {id(chunk) for chunk in culprits}
        for chunk in culprits:
            requeue_for_retry(chunk, kind, reason)
        for chunk in in_flight.values():
            if id(chunk) not in culprit_ids:
                pending.appendleft(chunk)
        in_flight.clear()

    try:
        while pending or in_flight:
            if serial_rest:
                remaining = [
                    (index, task)
                    for chunk in pending
                    for index, task in chunk.items
                ]
                attempts = {
                    index: chunk.attempt
                    for chunk in pending
                    for index, _ in chunk.items
                }
                pending.clear()
                _run_serial(run, worker, remaining, context, attempts)
                continue
            if pool is None:
                pool = make_pool()
            submit_broken = False
            while pending:
                chunk = pending.popleft()
                delay = policy.retry_delay_s(chunk.attempt)
                try:
                    future = pool.submit(
                        _run_chunk, (chunk.attempt, delay, chunk.items)
                    )
                except (BrokenProcessPool, RuntimeError):
                    # The pool died between completions; put the chunk back
                    # and run the break recovery below.
                    pending.appendleft(chunk)
                    submit_broken = True
                    break
                if policy.timeout_s is not None:
                    chunk.deadline = (
                        time.monotonic()
                        + delay
                        + policy.timeout_s * len(chunk.items)
                        + TIMEOUT_GRACE_S
                    )
                in_flight[future] = chunk

            done, _ = wait(
                list(in_flight), timeout=_POLL_S, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            overdue = [
                chunk
                for future, chunk in in_flight.items()
                if future not in done
                and chunk.deadline is not None
                and now > chunk.deadline
            ]
            broken: list[_Chunk] = []
            for future in done:
                chunk = in_flight.pop(future)
                try:
                    outcomes = future.result()
                except BrokenProcessPool:
                    broken.append(chunk)
                    continue
                except Exception:
                    # A chunk-level error outside task execution (e.g. a
                    # cancelled future during shutdown): crash-like.
                    broken.append(chunk)
                    continue
                for status, index, payload, snapshot in outcomes:
                    if capture and snapshot is not None:
                        recorder.merge_snapshot(snapshot)
                    if status == "ok":
                        run.record_result(index, payload)
                        continue
                    if (
                        payload["transient"]
                        and chunk.attempt + 1 < policy.max_attempts
                    ):
                        run.record_retry()
                        pending.append(
                            _Chunk(
                                items=((index, tasks[index]),),
                                attempt=chunk.attempt + 1,
                            )
                        )
                    else:
                        run.record_failure(
                            index,
                            payload,
                            attempts=chunk.attempt + 1,
                            kind="crash" if payload["transient"] else "exception",
                        )
            if broken or submit_broken:
                breaks += 1
                obs.count("parallel.pool_restarts")
                if run.stats is not None:
                    run.stats.pool_restarts += 1
                _kill_pool(pool)
                pool = None
                reschedule_in_flight(broken, "crash", "worker process died")
                if breaks > policy.max_pool_restarts:
                    obs.count("parallel.serial_fallbacks")
                    serial_rest = True
                continue
            if overdue:
                obs.count("parallel.timeouts", len(overdue))
                obs.count("parallel.pool_restarts")
                if run.stats is not None:
                    run.stats.pool_restarts += 1
                _kill_pool(pool)
                pool = None
                reschedule_in_flight(
                    overdue,
                    "timeout",
                    f"task exceeded the {policy.timeout_s} s timeout",
                )
    except BaseException:
        if pool is not None:
            _kill_pool(pool)
        raise
    else:
        if pool is not None:
            pool.shutdown(wait=True)


@dataclass
class SweepStats:
    """Instrumentation for one search/sweep run.

    Attributes:
        jobs: Effective worker count.
        points_total: Design points (or layers) handed to the run.
        points_evaluated: Points that completed a full evaluation.
        points_failed: Points whose task exhausted every attempt
            (``on_error="skip"`` only; an aborting run raises instead).
        points_resumed: Points answered from a sweep checkpoint instead of
            being re-evaluated (:mod:`repro.core.checkpoint`).
        points_pruned: Points discarded by dominance pruning -- their EDP
            lower bound already exceeded the incumbent's actual EDP, so the
            full evaluation was never paid (:mod:`repro.core.search`).
        points_deduped: Sampler proposals discarded as duplicates of an
            already-proposed design point within the same guided run.
        retries: Task attempts re-dispatched after crash-only faults.
        pool_restarts: Worker pools rebuilt after a break or timeout kill.
        cache_hits: Mapping-cache hits accumulated across the run.
        cache_misses: Mapping-cache misses (fresh searches).
        failures: The structured per-task failure records.
        stage_s: Wall-clock seconds per named stage.
    """

    jobs: int = 1
    points_total: int = 0
    points_evaluated: int = 0
    points_failed: int = 0
    points_resumed: int = 0
    points_pruned: int = 0
    points_deduped: int = 0
    retries: int = 0
    pool_restarts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    failures: list[TaskFailure] = field(default_factory=list)
    stage_s: dict[str, float] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        """Total wall-clock seconds across the recorded stages."""
        return sum(self.stage_s.values())

    @property
    def points_per_sec(self) -> float:
        """Evaluated-point throughput over the whole run."""
        wall = self.wall_s
        return self.points_evaluated / wall if wall > 0 else 0.0

    def stage(self, name: str) -> "_StageTimer":
        """Context manager accumulating a stage's wall-clock time."""
        return _StageTimer(self, name)

    def add_cache(self, hits: int, misses: int) -> None:
        """Accumulate cache counters from one evaluation."""
        self.cache_hits += hits
        self.cache_misses += misses


class _StageTimer:
    """Accumulates elapsed wall time into ``stats.stage_s[name]``.

    Each stage also opens a ``stage.<name>`` span on the current
    :mod:`repro.obs` recorder, so profiled runs see the same stage
    boundaries in their trace that the CLI prints from ``stage_s``.
    """

    def __init__(self, stats: SweepStats, name: str) -> None:
        self._stats = stats
        self._name = name
        self._start = 0.0
        self._span = None

    def __enter__(self) -> "_StageTimer":
        self._span = obs.span(f"stage.{self._name}")
        self._span.__enter__()
        # The event carries the phase name only -- no duration or timing
        # fields -- so the event *set* stays identical across --jobs N.
        obs.event("phase.start", phase=self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._stats.stage_s[self._name] = (
            self._stats.stage_s.get(self._name, 0.0) + elapsed
        )
        obs.event("phase.finish", phase=self._name)
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None


def chunked(items: Sequence[Any], size: int) -> Iterator[list[Any]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])


__all__ = [
    "DEFAULT_POLICY",
    "JOBS_ENV",
    "SweepStats",
    "TaskError",
    "TaskFailure",
    "TaskPolicy",
    "TransientTaskError",
    "chunked",
    "in_worker",
    "is_picklable",
    "resolve_jobs",
    "run_tasks",
    "worker_context",
]
