"""Parallel execution layer for the sweep-scale search paths.

The DSE sweeps are embarrassingly parallel across design points, and a
model's mapping search is embarrassingly parallel across unique layer
shapes.  This module provides the one fan-out primitive both reuse:

* :func:`resolve_jobs` -- worker-count policy (explicit argument, then the
  ``REPRO_JOBS`` environment variable, then serial).
* :func:`run_tasks` -- order-preserving map over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with a **serial
  fallback at ``jobs=1``** that runs in-process so results stay
  bit-identical and debuggable (breakpoints, exact tracebacks, no pickling).
  Shared read-only state travels once per worker through an initializer
  rather than once per task.
* :class:`SweepStats` -- the per-run instrumentation record (stage timings,
  cache counters, points/sec) surfaced by the CLI and
  :func:`repro.analysis.reporting.format_search_stats`.  Stage timers also
  open :mod:`repro.obs` spans, so a sweep profiled with a live recorder
  shows the same stages in its Chrome trace.

Workers receive their shared context via :func:`worker_context`; worker
functions must be module-level (picklable) callables of one task argument.

When a live :mod:`repro.obs` recorder is installed in the parent, every
worker process runs its tasks under a private recorder and ships the
captured spans and counters back alongside each result; the parent merges
them, so a ``--jobs N`` sweep reports identically-shaped metrics to the
serial run (counters are order-independent sums).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro import obs

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

# Per-process shared state for worker tasks (set by the pool initializer in
# child processes, and by run_tasks itself on the serial path).
_WORKER_CONTEXT: Any = None

# The task callable of the current pool (set by the pool initializer in
# child processes; lets the obs-capturing wrapper stay module-level).
_WORKER_FN: Callable[[Any], Any] | None = None


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the effective worker count.

    Args:
        jobs: Explicit request; ``None`` defers to ``REPRO_JOBS`` (with a
            serial default), ``0`` means "all cores".

    Raises:
        ValueError: On a negative request (here or in the environment).
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV} must be an integer, got {raw!r}") from exc
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def is_picklable(obj: Any) -> bool:
    """Whether ``obj`` can cross a process boundary.

    Callers use this to fall back to the serial path when the shared context
    contains e.g. a closure objective.
    """
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def worker_context() -> Any:
    """The shared context of the current task (see :func:`run_tasks`)."""
    return _WORKER_CONTEXT


def _init_worker(
    context: Any,
    worker: Callable[[Any], Any] | None = None,
    capture_obs: bool = False,
) -> None:
    global _WORKER_CONTEXT, _WORKER_FN
    _WORKER_CONTEXT = context
    _WORKER_FN = worker
    if capture_obs:
        # Each task gets a fresh recorder (see _run_captured); installing a
        # live one here just marks the process as capturing.
        obs.set_recorder(obs.Recorder())


def _run_captured(task: Any) -> tuple[Any, dict[str, Any]]:
    """Pool target when the parent has a live recorder.

    Runs the task under a fresh per-task recorder and returns the result
    plus the recorder's picklable snapshot (spans keep this worker's pid,
    counters merge as order-independent sums in the parent).
    """
    assert _WORKER_FN is not None
    recorder = obs.Recorder()
    with obs.use(recorder):
        result = _WORKER_FN(task)
    return result, recorder.snapshot()


def run_tasks(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int | None = None,
    context: Any = None,
) -> list[Any]:
    """Apply ``worker`` to every task, preserving task order.

    At an effective worker count of 1 (or a single task) this is a plain
    in-process loop -- bit-identical results, ordinary tracebacks.  Above
    that, tasks fan out over a process pool; ``context`` is shipped once per
    worker and read back with :func:`worker_context`.

    Args:
        worker: Module-level callable of one task.
        tasks: Task payloads (each must be picklable when ``jobs > 1``).
        jobs: Worker count (``None`` -> ``REPRO_JOBS`` -> serial).
        context: Shared read-only state for the workers.
    """
    global _WORKER_CONTEXT
    jobs = resolve_jobs(jobs)
    tasks = list(tasks)
    if jobs == 1 or len(tasks) <= 1:
        previous = _WORKER_CONTEXT
        _WORKER_CONTEXT = context
        try:
            # The in-process path records straight into the parent's
            # recorder -- no capture round-trip needed.
            return [worker(task) for task in tasks]
        finally:
            _WORKER_CONTEXT = previous
    recorder = obs.get_recorder()
    capture = recorder.enabled
    chunksize = max(1, len(tasks) // (jobs * 4))
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(tasks)),
        initializer=_init_worker,
        initargs=(context, worker, capture),
    ) as pool:
        if not capture:
            return list(pool.map(worker, tasks, chunksize=chunksize))
        outcomes = list(pool.map(_run_captured, tasks, chunksize=chunksize))
    results = []
    for result, snapshot in outcomes:
        recorder.merge_snapshot(snapshot)
        results.append(result)
    return results


@dataclass
class SweepStats:
    """Instrumentation for one search/sweep run.

    Attributes:
        jobs: Effective worker count.
        points_total: Design points (or layers) handed to the run.
        points_evaluated: Points that completed a full evaluation.
        cache_hits: Mapping-cache hits accumulated across the run.
        cache_misses: Mapping-cache misses (fresh searches).
        stage_s: Wall-clock seconds per named stage.
    """

    jobs: int = 1
    points_total: int = 0
    points_evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    stage_s: dict[str, float] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        """Total wall-clock seconds across the recorded stages."""
        return sum(self.stage_s.values())

    @property
    def points_per_sec(self) -> float:
        """Evaluated-point throughput over the whole run."""
        wall = self.wall_s
        return self.points_evaluated / wall if wall > 0 else 0.0

    def stage(self, name: str) -> "_StageTimer":
        """Context manager accumulating a stage's wall-clock time."""
        return _StageTimer(self, name)

    def add_cache(self, hits: int, misses: int) -> None:
        """Accumulate cache counters from one evaluation."""
        self.cache_hits += hits
        self.cache_misses += misses


class _StageTimer:
    """Accumulates elapsed wall time into ``stats.stage_s[name]``.

    Each stage also opens a ``stage.<name>`` span on the current
    :mod:`repro.obs` recorder, so profiled runs see the same stage
    boundaries in their trace that the CLI prints from ``stage_s``.
    """

    def __init__(self, stats: SweepStats, name: str) -> None:
        self._stats = stats
        self._name = name
        self._start = 0.0
        self._span = None

    def __enter__(self) -> "_StageTimer":
        self._span = obs.span(f"stage.{self._name}")
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._stats.stage_s[self._name] = (
            self._stats.stage_s.get(self._name, 0.0) + elapsed
        )
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None


def chunked(items: Sequence[Any], size: int) -> Iterator[list[Any]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])


__all__ = [
    "JOBS_ENV",
    "SweepStats",
    "chunked",
    "is_picklable",
    "resolve_jobs",
    "run_tasks",
    "worker_context",
]
