"""Mapping-space enumeration for the exhaustive search (Section V-C).

"The mapping analysis engine adopts exhaustive search to evaluate hundreds of
cases, including partition patterns with different height-width ratios and
loop transformation of various spatial-temporal combinations."

Two profiles bound the enumeration:

* ``EXHAUSTIVE`` -- the full candidate set for the per-layer case studies
  (Figures 11-13): every spatial combination, every temporal priority pair,
  several planar patterns and tile multipliers, rotation on and off.
* ``FAST`` -- a pruned set for the pre-design sweeps (Figures 14-15), where
  thousands of hardware points each need a mapping search: rotation is
  always preferred when data is shared (one DRAM access plus ``N_P - 1``
  ring hops is strictly cheaper than ``N_P`` DRAM accesses under Table I),
  and only the strongest tile shapes survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.arch.config import HardwareConfig
from repro.core.mapping import Mapping
from repro.core.partition import factor_grids
from repro.core.primitives import (
    LoopOrder,
    PartitionDim,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.workloads.layer import ConvLayer, ceil_div


class SearchProfile(Enum):
    """How aggressively the mapping space is pruned.

    ``EXHAUSTIVE`` keeps every spatial combination and temporal pair (the
    per-layer case studies).  ``FAST`` keeps one partition per dimension kind
    and a few tile shapes (the Figure 14 granularity study).  ``MINIMAL``
    keeps a heuristic core so the ~10^4-point Figure 15 sweep stays
    laptop-scale on one core.
    """

    EXHAUSTIVE = "exhaustive"
    FAST = "fast"
    MINIMAL = "minimal"


def _divisors(n: int) -> list[int]:
    """All divisors of ``n``, ascending."""
    result = [d for d in range(1, n + 1) if n % d == 0]
    return result


def _dedupe(items: list) -> list:
    """Order-preserving deduplication."""
    seen = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


@dataclass(frozen=True)
class MappingSpace:
    """Candidate mappings for one hardware instance.

    Attributes:
        hw: Target hardware.
        profile: Enumeration aggressiveness.
    """

    hw: HardwareConfig
    profile: SearchProfile = SearchProfile.EXHAUSTIVE

    # --- spatial candidates ------------------------------------------------------

    def package_spatials(self, layer: ConvLayer) -> list[SpatialPrimitive]:
        """Package-level C-type / P-type partitions feeding N_P chiplets."""
        n = self.hw.n_chiplets
        if n == 1:
            return [SpatialPrimitive.channel(1)]
        options: list[SpatialPrimitive] = []
        if layer.co >= n:
            options.append(SpatialPrimitive.channel(n))
        grids = [
            g
            for g in factor_grids(n)
            if g.ways > 1 and g.rows <= layer.ho and g.cols <= layer.wo
        ]
        if self.profile is not SearchProfile.EXHAUSTIVE and len(grids) > 2:
            # Keep the rectangle (low DRAM-conflict degree, Figure 8) and the
            # most square grid.
            grids = _dedupe(
                [
                    min(grids, key=lambda g: g.aspect_ratio()),
                    max(grids, key=lambda g: g.aspect_ratio()),
                ]
            )
        options.extend(SpatialPrimitive.plane(g) for g in grids)
        if not options:
            # Thin layer: occupy as many chiplets as it has channels; the
            # rest idle (utilization pays for them).
            options.append(SpatialPrimitive.channel(min(n, layer.co)))
        return options

    def chiplet_spatials(
        self, layer: ConvLayer, package: SpatialPrimitive
    ) -> list[SpatialPrimitive]:
        """Chiplet-level C / P / H partitions feeding N_C cores."""
        n = self.hw.n_cores
        macro_co = ceil_div(layer.co, package.co_ways)
        macro_ho = ceil_div(layer.ho, package.grid.rows)
        macro_wo = ceil_div(layer.wo, package.grid.cols)
        if n == 1:
            return [SpatialPrimitive.channel(1)]
        options: list[SpatialPrimitive] = []
        if macro_co >= n:
            options.append(SpatialPrimitive.channel(n))
        plane_grids = [
            g
            for g in factor_grids(n)
            if g.ways > 1 and g.rows <= macro_ho and g.cols <= macro_wo
        ]
        if self.profile is not SearchProfile.EXHAUSTIVE and len(plane_grids) > 1:
            plane_grids = [min(plane_grids, key=lambda g: g.aspect_ratio())]
        options.extend(SpatialPrimitive.plane(g) for g in plane_grids)
        for co_ways in _divisors(n):
            if co_ways in (1, n) or macro_co < co_ways:
                continue
            sub_grids = [
                g
                for g in factor_grids(n // co_ways)
                if g.rows <= macro_ho and g.cols <= macro_wo
            ]
            if not sub_grids:
                continue
            if self.profile is not SearchProfile.EXHAUSTIVE:
                sub_grids = [min(sub_grids, key=lambda g: g.aspect_ratio())]
            options.extend(SpatialPrimitive.hybrid(co_ways, g) for g in sub_grids)
        if self.profile is not SearchProfile.EXHAUSTIVE:
            # Keep at most one partition per dimension kind.
            kept: dict[PartitionDim, SpatialPrimitive] = {}
            for opt in options:
                kept.setdefault(opt.dim, opt)
            options = list(kept.values())
        if not options:
            # Thin macro partition: occupy as many cores as it has channels.
            options.append(SpatialPrimitive.channel(min(n, max(macro_co, 1))))
        return options

    # --- tile candidates ------------------------------------------------------------

    def core_tiles(self, layer: ConvLayer, share_ho: int, share_wo: int) -> list[tuple[int, int]]:
        """Core-workload planar tiles respecting the O-L1 psum capacity."""
        psum_bytes = self.hw.tech.psum_bits / 8.0
        max_pixels = max(int(self.hw.memory.o_l1_bytes / (psum_bytes * self.hw.lanes)), 1)
        tiles: list[tuple[int, int]] = []
        side = 1
        while side * side <= max_pixels:
            tiles.append((min(side, share_ho), min(side, share_wo)))
            if side * 2 * side <= max_pixels:
                tiles.append((min(side, share_ho), min(2 * side, share_wo)))
                tiles.append((min(2 * side, share_ho), min(side, share_wo)))
            side *= 2
        # Full-width row stripe (friendly to sliding-window input reuse).
        row_w = min(share_wo, max_pixels)
        tiles.append((1, row_w))
        # The largest tile covering the share, if it fits.
        if share_ho * share_wo <= max_pixels:
            tiles.append((share_ho, share_wo))
        # The largest square tile whose Cc0 (one P-channel input window) fits
        # the A-L1 -- the C3P-guided choice that dodges the kernel-sweep
        # reload penalty on large-kernel layers.
        cc0_tile = self._cc0_square_tile(layer, max_pixels)
        if cc0_tile is not None:
            tiles.append((min(cc0_tile, share_ho), min(cc0_tile, share_wo)))
        tiles = _dedupe([(h, w) for h, w in tiles if 1 <= h and 1 <= w])
        cc0_kept = (
            [(min(cc0_tile, share_ho), min(cc0_tile, share_wo))]
            if cc0_tile is not None
            else []
        )
        if self.profile is not SearchProfile.EXHAUSTIVE and len(tiles) > 3:
            # The largest square, the largest overall, the row stripe, and
            # the Cc0-fitting tile.
            largest_square = max(
                (t for t in tiles if t[0] == t[1]),
                key=lambda t: t[0] * t[1],
                default=tiles[0],
            )
            largest = max(tiles, key=lambda t: t[0] * t[1])
            stripe = (1, row_w)
            tiles = _dedupe([largest_square, largest, stripe] + cc0_kept)
        if self.profile is SearchProfile.MINIMAL and len(tiles) > 2:
            largest_square = max(
                (t for t in tiles if t[0] == t[1]),
                key=lambda t: t[0] * t[1],
                default=tiles[0],
            )
            largest = max(tiles, key=lambda t: t[0] * t[1])
            tiles = _dedupe([largest_square, largest] + cc0_kept)
        return tiles

    def _cc0_square_tile(self, layer: ConvLayer, max_pixels: int) -> int | None:
        """Side of the largest square tile whose Cc0 fits the A-L1.

        Cc0 is one P-channel chunk of the tile's input window (the paper's
        supplemental critical capacity).  Returns ``None`` when even a 1x1
        tile overflows, or when the unconstrained largest tile already fits
        (no separate candidate needed).
        """
        chunk = min(self.hw.vector_size, layer.ci)
        bytes_per = self.hw.tech.data_bits / 8.0
        budget = self.hw.memory.a_l1_bytes

        def cc0(side: int) -> float:
            return (
                layer.input_rows_for(side) * layer.input_cols_for(side) * chunk * bytes_per
            )

        if cc0(1) > budget:
            return None
        side = 1
        while side * 2 * side * 2 <= max_pixels and cc0(side * 2) <= budget:
            side *= 2
        return side

    def tile_multipliers(self) -> list[int]:
        """Chiplet-workload tile multipliers over the core grid footprint."""
        if self.profile is SearchProfile.MINIMAL:
            return [2]
        return [1, 4]

    def channel_multipliers(self) -> list[int]:
        """Chiplet-workload channel multipliers over ``co_ways * L``."""
        if self.profile is SearchProfile.MINIMAL:
            return [2]
        return [1, 4]

    def orders(self) -> list[tuple[LoopOrder, LoopOrder]]:
        """(package, chiplet) temporal priority pairs.

        All four combinations, except in MINIMAL where only the two matched
        pairs survive (mixed priorities rarely win; see the ablation bench).
        """
        priorities = (LoopOrder.CHANNEL_PRIORITY, LoopOrder.PLANE_PRIORITY)
        if self.profile is SearchProfile.MINIMAL:
            return [(p, p) for p in priorities]
        return [(pkg, chip) for pkg in priorities for chip in priorities]

    def rotations(self, package: SpatialPrimitive) -> list[RotationKind]:
        """Rotating-transfer choices for a package partition."""
        if package.ways == 1:
            return [RotationKind.NONE]
        if package.dim is PartitionDim.CHANNEL:
            shared = RotationKind.ACTIVATIONS
        else:
            shared = RotationKind.WEIGHTS
        if self.profile is SearchProfile.EXHAUSTIVE:
            return [shared, RotationKind.NONE]
        return [shared]

    # --- enumeration ------------------------------------------------------------

    def candidates(self, layer: ConvLayer) -> Iterator[Mapping]:
        """Yield every candidate mapping for ``layer`` (unvalidated)."""
        hw = self.hw
        for package in self.package_spatials(layer):
            macro_ho = ceil_div(layer.ho, package.grid.rows)
            macro_wo = ceil_div(layer.wo, package.grid.cols)
            macro_co = ceil_div(layer.co, package.co_ways)
            for chiplet in self.chiplet_spatials(layer, package):
                share_cap_ho = ceil_div(macro_ho, chiplet.grid.rows)
                share_cap_wo = ceil_div(macro_wo, chiplet.grid.cols)
                for core_ho, core_wo in self.core_tiles(layer, share_cap_ho, share_cap_wo):
                    for mult_h in self.tile_multipliers():
                        tile_ho = min(core_ho * chiplet.grid.rows * mult_h, macro_ho)
                        for mult_w in self.tile_multipliers():
                            tile_wo = min(core_wo * chiplet.grid.cols * mult_w, macro_wo)
                            for mult_c in self.channel_multipliers():
                                tile_co = min(
                                    chiplet.co_ways * hw.lanes * mult_c, macro_co
                                )
                                for pkg_order, chip_order in self.orders():
                                    for rotation in self.rotations(package):
                                        yield Mapping(
                                            package_spatial=package,
                                            package_temporal=TemporalPrimitive(
                                                pkg_order, tile_ho, tile_wo, tile_co
                                            ),
                                            chiplet_spatial=chiplet,
                                            chiplet_temporal=TemporalPrimitive(
                                                chip_order,
                                                core_ho,
                                                core_wo,
                                                min(hw.lanes, tile_co),
                                            ),
                                            rotation=rotation,
                                        )

    def congruence_key(self, layer: ConvLayer, mapping: Mapping) -> tuple:
        """The cost-determining signature of ``mapping`` on ``layer``.

        The cost model reads a mapping only through its derived
        :class:`~repro.core.loopnest.LoopNest` (clamped tile extents and
        the loop structure they induce) plus the spatial primitives,
        rotation and loop orders.  Two candidates with equal keys are
        therefore *congruent*: they produce identical traffic, energy and
        cycle numbers, and evaluating both is pure waste.  Declared tile
        sizes that clamp to the same extent (the common case -- several
        multipliers saturate at the macro-tile bound) land on one key.
        """
        from repro.core.loopnest import LoopNest

        nest = LoopNest(layer, self.hw, mapping)
        return (
            mapping.package_spatial,
            mapping.chiplet_spatial,
            mapping.rotation,
            mapping.package_temporal.order,
            mapping.chiplet_temporal.order,
            nest.tile_ho,
            nest.tile_wo,
            nest.tile_co,
            nest.core_ho,
            nest.core_wo,
            nest.core_co,
        )

    def unique_candidates(self, layer: ConvLayer) -> list[Mapping]:
        """Candidates deduplicated up to cost-model congruence.

        Keeps the *first* representative of each congruence class
        (order-preserving, like :func:`_dedupe`), so the mapper's
        strict-``<`` minimum selects the same winning mapping object it
        always did.  The number of discarded congruent candidates is
        exported as the ``space.candidates.deduped`` obs counter.
        """
        from repro import obs

        seen: set[tuple] = set()
        out: list[Mapping] = []
        dropped = 0
        for mapping in self.candidates(layer):
            key = self.congruence_key(layer, mapping)
            if key in seen:
                dropped += 1
                continue
            seen.add(key)
            out.append(mapping)
        if dropped:
            obs.count("space.candidates.deduped", dropped)
        return out
