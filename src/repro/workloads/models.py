"""From-scratch layer tables for the paper's four benchmark networks.

The evaluation (Section V-B) uses AlexNet, VGG-16, ResNet-50 and DarkNet-19
at 224x224 (classification) and 512x512 (detection) input resolutions, and
folds FC layers into pointwise convolutions.  The shape tables below are the
standard published architectures; pooling and activation layers carry no MACs
in this cost model and appear only through the feature-map sizes they induce.
"""

from __future__ import annotations

from repro.workloads.layer import ConvLayer, fc_as_pointwise


def _scale_all(layers: list[ConvLayer], resolution: int) -> list[ConvLayer]:
    """Scale every layer's plane from the 224 base to ``resolution``."""
    return [layer.scaled_to(resolution) for layer in layers]


def alexnet(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """AlexNet: five convolutions of diverse kernel sizes plus three FCs.

    The paper highlights AlexNet's kernel diversity (3x3 up to 11x11).
    """
    layers = [
        ConvLayer("conv1", h=224, w=224, ci=3, co=96, kh=11, kw=11, stride=4, padding=2),
        ConvLayer("conv2", h=27, w=27, ci=96, co=256, kh=5, kw=5, stride=1, padding=2),
        ConvLayer("conv3", h=13, w=13, ci=256, co=384, kh=3, kw=3, stride=1, padding=1),
        ConvLayer("conv4", h=13, w=13, ci=384, co=384, kh=3, kw=3, stride=1, padding=1),
        ConvLayer("conv5", h=13, w=13, ci=384, co=256, kh=3, kw=3, stride=1, padding=1),
    ]
    layers = _scale_all(layers, resolution)
    if include_fc:
        layers += [
            fc_as_pointwise("fc6", 256 * 6 * 6, 4096),
            fc_as_pointwise("fc7", 4096, 4096),
            fc_as_pointwise("fc8", 4096, 1000),
        ]
    return layers


def vgg16(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """VGG-16: thirteen 3x3 convolutions plus three FCs.

    ``conv1`` (conv1_1) is the paper's activation-intensive example layer and
    ``conv12`` (conv5_2) its weight-intensive one.
    """
    plan = [
        # (name, plane, ci, co)
        ("conv1", 224, 3, 64),
        ("conv2", 224, 64, 64),
        ("conv3", 112, 64, 128),
        ("conv4", 112, 128, 128),
        ("conv5", 56, 128, 256),
        ("conv6", 56, 256, 256),
        ("conv7", 56, 256, 256),
        ("conv8", 28, 256, 512),
        ("conv9", 28, 512, 512),
        ("conv10", 28, 512, 512),
        ("conv11", 14, 512, 512),
        ("conv12", 14, 512, 512),
        ("conv13", 14, 512, 512),
    ]
    layers = [
        ConvLayer(name, h=plane, w=plane, ci=ci, co=co, kh=3, kw=3, stride=1, padding=1)
        for name, plane, ci, co in plan
    ]
    layers = _scale_all(layers, resolution)
    if include_fc:
        layers += [
            fc_as_pointwise("fc14", 512 * 7 * 7, 4096),
            fc_as_pointwise("fc15", 4096, 4096),
            fc_as_pointwise("fc16", 4096, 1000),
        ]
    return layers


def _bottleneck(
    stage: str,
    block: str,
    plane: int,
    in_ch: int,
    mid_ch: int,
    out_ch: int,
    stride: int,
    project: bool,
) -> list[ConvLayer]:
    """One ResNet-50 bottleneck: 1x1 reduce, 3x3, 1x1 expand (+ projection)."""
    prefix = f"res{stage}{block}_branch"
    layers = [
        ConvLayer(f"{prefix}2a", h=plane, w=plane, ci=in_ch, co=mid_ch, kh=1, kw=1, stride=stride),
        ConvLayer(
            f"{prefix}2b",
            h=plane // stride,
            w=plane // stride,
            ci=mid_ch,
            co=mid_ch,
            kh=3,
            kw=3,
            stride=1,
            padding=1,
        ),
        ConvLayer(
            f"{prefix}2c",
            h=plane // stride,
            w=plane // stride,
            ci=mid_ch,
            co=out_ch,
            kh=1,
            kw=1,
        ),
    ]
    if project:
        layers.append(
            ConvLayer(f"{prefix}1", h=plane, w=plane, ci=in_ch, co=out_ch, kh=1, kw=1, stride=stride)
        )
    return layers


def resnet50(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """ResNet-50: conv1 (7x7 s2) plus four bottleneck stages, up to 2048 channels.

    ``conv1`` is the paper's large-kernel example, ``res2a_branch2a`` its
    pointwise example and ``res2a_branch2b`` its common-layer example.
    """
    layers = [
        ConvLayer("conv1", h=224, w=224, ci=3, co=64, kh=7, kw=7, stride=2, padding=3),
    ]
    # (stage, blocks, plane at stage entry, in, mid, out, first stride)
    stage_plan = [
        ("2", 3, 56, 64, 64, 256, 1),
        ("3", 4, 56, 256, 128, 512, 2),
        ("4", 6, 28, 512, 256, 1024, 2),
        ("5", 3, 14, 1024, 512, 2048, 2),
    ]
    for stage, blocks, plane, in_ch, mid_ch, out_ch, first_stride in stage_plan:
        for i in range(blocks):
            block = chr(ord("a") + i)
            stride = first_stride if i == 0 else 1
            block_plane = plane if i == 0 else plane // first_stride
            block_in = in_ch if i == 0 else out_ch
            layers += _bottleneck(
                stage, block, block_plane, block_in, mid_ch, out_ch, stride, project=(i == 0)
            )
    layers = _scale_all(layers, resolution)
    if include_fc:
        layers.append(fc_as_pointwise("fc1000", 2048, 1000))
    return layers


def darknet19(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """DarkNet-19: alternating 3x3 and squeezing 1x1 convolutions.

    A wide model whose feature map, like VGG-16's, shrinks late -- the case
    where NN-Baton saves the most energy over Simba (Figure 13).
    """
    plan = [
        # (name, plane, ci, co, k)
        ("conv1", 224, 3, 32, 3),
        ("conv2", 112, 32, 64, 3),
        ("conv3", 56, 64, 128, 3),
        ("conv4", 56, 128, 64, 1),
        ("conv5", 56, 64, 128, 3),
        ("conv6", 28, 128, 256, 3),
        ("conv7", 28, 256, 128, 1),
        ("conv8", 28, 128, 256, 3),
        ("conv9", 14, 256, 512, 3),
        ("conv10", 14, 512, 256, 1),
        ("conv11", 14, 256, 512, 3),
        ("conv12", 14, 512, 256, 1),
        ("conv13", 14, 256, 512, 3),
        ("conv14", 7, 512, 1024, 3),
        ("conv15", 7, 1024, 512, 1),
        ("conv16", 7, 512, 1024, 3),
        ("conv17", 7, 1024, 512, 1),
        ("conv18", 7, 512, 1024, 3),
    ]
    layers = [
        ConvLayer(
            name,
            h=plane,
            w=plane,
            ci=ci,
            co=co,
            kh=k,
            kw=k,
            stride=1,
            padding=k // 2,
        )
        for name, plane, ci, co, k in plan
    ]
    layers = _scale_all(layers, resolution)
    if include_fc:
        # DarkNet-19's classifier head is itself a 1x1 convolution.
        head_plane = layers[-1].ho
        layers.append(
            ConvLayer("conv19", h=head_plane, w=head_plane, ci=1024, co=1000, kh=1, kw=1)
        )
    return layers


def _inverted_residual(
    index: int,
    plane: int,
    in_ch: int,
    out_ch: int,
    stride: int,
    expansion: int,
) -> list[ConvLayer]:
    """One MobileNetV2 inverted-residual block: expand, depthwise, project."""
    hidden = in_ch * expansion
    prefix = f"block{index}"
    layers = []
    if expansion != 1:
        layers.append(
            ConvLayer(f"{prefix}_expand", h=plane, w=plane, ci=in_ch, co=hidden, kh=1, kw=1)
        )
    layers.append(
        ConvLayer(
            f"{prefix}_dwise",
            h=plane,
            w=plane,
            ci=hidden,
            co=hidden,
            kh=3,
            kw=3,
            stride=stride,
            padding=1,
            groups=hidden,
        )
    )
    layers.append(
        ConvLayer(
            f"{prefix}_project",
            h=plane // stride,
            w=plane // stride,
            ci=hidden,
            co=out_ch,
            kh=1,
            kw=1,
        )
    )
    return layers


def mobilenetv2(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """MobileNetV2: depthwise-separable inverted residuals (Sandler et al.).

    Cited among the paper's workload sources [53]; exercises the grouped /
    depthwise convolution support of the cost model, where vector-MAC
    utilization and activation reuse behave very differently from dense
    convolutions.
    """
    layers = [
        ConvLayer("conv1", h=224, w=224, ci=3, co=32, kh=3, kw=3, stride=2, padding=1),
    ]
    # (expansion t, out channels c, repeats n, first stride s)
    plan = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    plane = 112
    in_ch = 32
    index = 0
    for expansion, out_ch, repeats, first_stride in plan:
        for i in range(repeats):
            index += 1
            stride = first_stride if i == 0 else 1
            layers += _inverted_residual(index, plane, in_ch, out_ch, stride, expansion)
            plane //= stride
            in_ch = out_ch
    layers.append(ConvLayer("conv_last", h=plane, w=plane, ci=320, co=1280, kh=1, kw=1))
    layers = _scale_all(layers, resolution)
    if include_fc:
        layers.append(fc_as_pointwise("fc", 1280, 1000))
    return layers


def peak_activation_elements(layers: list[ConvLayer]) -> int:
    """Largest single-layer input activation volume across ``layers``.

    The paper notes VGG-16/DarkNet-19 peak activation storage is about four
    times ResNet-50's (their planes shrink later); this helper backs that
    check in the tests.
    """
    if not layers:
        raise ValueError("layers must be non-empty")
    return max(layer.input_elements for layer in layers)


def peak_weight_elements(layers: list[ConvLayer]) -> int:
    """Largest single-layer weight volume across ``layers``."""
    if not layers:
        raise ValueError("layers must be non-empty")
    return max(layer.weight_elements for layer in layers)
