"""DNN workload substrate: layer geometry and network definitions.

The mapping and DSE engines consume layer shape tuples only, so this package
replaces the paper's ``torch.jit`` model parsing with from-scratch layer
tables for the paper's four networks (AlexNet, VGG-16, ResNet-50, DarkNet-19)
plus MobileNetV2 (grouped/depthwise convolutions), at both evaluated input
resolutions (224x224 classification, 512x512 detection).  Native matmul and
attention layer types (:mod:`repro.workloads.transformer`) extend the
substrate to transformer-class workloads -- BERT-base and ViT-B/16 encoder
stacks and a batch-1 LLM decoder block.  Custom models load from JSON layer
lists via :mod:`repro.workloads.io`.
"""

from repro.workloads.extraction import (
    LayerKind,
    classify_layer,
    representative_layers,
)
from repro.workloads.io import layers_from_specs, load_model_file, save_model_file
from repro.workloads.layer import ConvLayer, MatmulLayer, fc_as_pointwise, matmul
from repro.workloads.models import alexnet, darknet19, mobilenetv2, resnet50, vgg16
from repro.workloads.registry import MODEL_BUILDERS, get_model, list_models
from repro.workloads.stats import LayerStats, ModelStats
from repro.workloads.transformer import (
    AttentionLayer,
    bert_base,
    encoder_block,
    llm_decode,
    vit_b16,
)

__all__ = [
    "AttentionLayer",
    "ConvLayer",
    "LayerKind",
    "LayerStats",
    "MatmulLayer",
    "ModelStats",
    "MODEL_BUILDERS",
    "alexnet",
    "bert_base",
    "classify_layer",
    "darknet19",
    "encoder_block",
    "fc_as_pointwise",
    "get_model",
    "layers_from_specs",
    "llm_decode",
    "load_model_file",
    "save_model_file",
    "list_models",
    "matmul",
    "mobilenetv2",
    "representative_layers",
    "resnet50",
    "vgg16",
    "vit_b16",
]
