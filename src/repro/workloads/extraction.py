"""Representative-layer extraction (Section V-B).

The paper extracts five representative layer types from the benchmark models:

* activation-intensive (activations > weights) -- VGG-16 conv1,
* weight-intensive (weights > activations) -- VGG-16 conv12,
* large kernel-size (7x7) -- ResNet-50 conv1,
* point-wise (1x1) -- ResNet-50 res2a_branch2a,
* common (3x3) -- ResNet-50 res2a_branch2b.

(The paper's prose swaps the inequality signs in its parenthetical; the layer
choices make the intended meaning unambiguous, and we follow the choices.)
"""

from __future__ import annotations

from enum import Enum

from repro.workloads.layer import ConvLayer, MatmulLayer
from repro.workloads.models import resnet50, vgg16


class LayerKind(Enum):
    """The five representative layer categories of Section V-B.

    DEPTHWISE extends the paper's taxonomy for grouped convolutions
    (MobileNetV2), whose mapping behavior differs from every dense category.
    MATMUL extends it for native GEMM layers (FC heads, transformer
    projections and attention einsums), which have no kernel sweep and no
    halo and therefore map unlike any convolution category.
    """

    ACTIVATION_INTENSIVE = "activation-intensive"
    WEIGHT_INTENSIVE = "weight-intensive"
    LARGE_KERNEL = "large-kernel"
    POINTWISE = "point-wise"
    COMMON = "common"
    DEPTHWISE = "depthwise"
    MATMUL = "matmul"


def classify_layer(layer: ConvLayer) -> LayerKind:
    """Classify a layer into its representative category.

    Native matmul layers are their own category (checked first: a grouped
    attention einsum is a multi-head GEMM, not a depthwise convolution).
    Kernel-shape categories take precedence (large-kernel, point-wise), then
    the activation/weight volume comparison decides the rest; a 3x3 layer
    whose two volumes are within 8x of each other is "common" (the paper's
    common example, res2a_branch2b, carries ~5x more activations than
    weights and is still called common).
    """
    if isinstance(layer, MatmulLayer):
        return LayerKind.MATMUL
    if layer.groups > 1:
        return LayerKind.DEPTHWISE
    if layer.kh >= 7 or layer.kw >= 7:
        return LayerKind.LARGE_KERNEL
    if layer.is_pointwise:
        return LayerKind.POINTWISE
    acts = layer.input_elements
    weights = layer.weight_elements
    if acts > 8 * weights:
        return LayerKind.ACTIVATION_INTENSIVE
    if weights > 8 * acts:
        return LayerKind.WEIGHT_INTENSIVE
    return LayerKind.COMMON


def _layer(layers: list[ConvLayer], name: str) -> ConvLayer:
    for layer in layers:
        if layer.name == name:
            return layer
    raise KeyError(f"layer {name!r} not found")


def representative_layers(resolution: int = 224) -> dict[LayerKind, ConvLayer]:
    """The paper's five case-study layers at the given input resolution."""
    vgg = vgg16(resolution, include_fc=False)
    res = resnet50(resolution, include_fc=False)
    return {
        LayerKind.ACTIVATION_INTENSIVE: _layer(vgg, "conv1"),
        LayerKind.WEIGHT_INTENSIVE: _layer(vgg, "conv12"),
        LayerKind.LARGE_KERNEL: _layer(res, "conv1"),
        LayerKind.POINTWISE: _layer(res, "res2a_branch2a"),
        LayerKind.COMMON: _layer(res, "res2a_branch2b"),
    }
