"""Model registry: name -> layer-table builder.

Gives benchmarks and examples a single place to resolve workloads by name
(``"vgg16"``, ``"resnet50@512"``, ...).
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.layer import ConvLayer
from repro.workloads.models import alexnet, darknet19, mobilenetv2, resnet50, vgg16
from repro.workloads.transformer import bert_base, llm_decode, vit_b16

ModelBuilder = Callable[..., list[ConvLayer]]

#: Registered builders, keyed by canonical lowercase name.
MODEL_BUILDERS: dict[str, ModelBuilder] = {
    "alexnet": alexnet,
    "mobilenetv2": mobilenetv2,
    "vgg16": vgg16,
    "resnet50": resnet50,
    "darknet19": darknet19,
    "bertbase": bert_base,
    "vitb16": vit_b16,
    "llmdecode": llm_decode,
}


def list_models() -> list[str]:
    """Canonical names of every registered model."""
    return sorted(MODEL_BUILDERS)


def get_model(
    name: str, resolution: int = 224, include_fc: bool = True
) -> list[ConvLayer]:
    """Build a model's layer table by name.

    Args:
        name: Registered name, optionally with an ``@resolution`` suffix
            (e.g. ``"vgg16@512"``), which overrides ``resolution``.
            Separator characters are ignored, so ``"mobilenet_v2"`` and
            ``"MobileNet-V2"`` both resolve to ``"mobilenetv2"``.
        resolution: Network input resolution (224 or 512 in the paper).
            Transformer models reinterpret it: ``bert_base@N`` selects the
            sequence length and ``llm_decode@N`` the KV-cache length (the
            default maps to their canonical 128/512 configurations);
            ``vit_b16`` uses it as a true image resolution.
        include_fc: Whether to append the FC/classifier-head layers (built
            as native matmul layers).

    Raises:
        KeyError: For an unregistered name.
    """
    canonical = name.strip().lower()
    if "@" in canonical:
        canonical, _, suffix = canonical.partition("@")
        resolution = int(suffix)
    canonical = canonical.replace("_", "").replace("-", "")
    if canonical not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; registered models: {', '.join(list_models())}"
        )
    return MODEL_BUILDERS[canonical](resolution=resolution, include_fc=include_fc)
