"""Model registry: name -> layer-table builder.

Gives benchmarks and examples a single place to resolve workloads by name
(``"vgg16"``, ``"resnet50@512"``, ...).
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.layer import ConvLayer
from repro.workloads.models import alexnet, darknet19, mobilenetv2, resnet50, vgg16

ModelBuilder = Callable[..., list[ConvLayer]]

#: Registered builders, keyed by canonical lowercase name.
MODEL_BUILDERS: dict[str, ModelBuilder] = {
    "alexnet": alexnet,
    "mobilenetv2": mobilenetv2,
    "vgg16": vgg16,
    "resnet50": resnet50,
    "darknet19": darknet19,
}


def list_models() -> list[str]:
    """Canonical names of every registered model."""
    return sorted(MODEL_BUILDERS)


def get_model(
    name: str, resolution: int = 224, include_fc: bool = True
) -> list[ConvLayer]:
    """Build a model's layer table by name.

    Args:
        name: Registered name, optionally with an ``@resolution`` suffix
            (e.g. ``"vgg16@512"``), which overrides ``resolution``.
            Separator characters are ignored, so ``"mobilenet_v2"`` and
            ``"MobileNet-V2"`` both resolve to ``"mobilenetv2"``.
        resolution: Network input resolution (224 or 512 in the paper).
        include_fc: Whether to append the FC layers folded into pointwise
            convolutions.

    Raises:
        KeyError: For an unregistered name.
    """
    canonical = name.strip().lower()
    if "@" in canonical:
        canonical, _, suffix = canonical.partition("@")
        resolution = int(suffix)
    canonical = canonical.replace("_", "").replace("-", "")
    if canonical not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; registered models: {', '.join(list_models())}"
        )
    return MODEL_BUILDERS[canonical](resolution=resolution, include_fc=include_fc)
