"""Per-model workload statistics.

Backs the Section V-B characterization the paper does by hand (extracting
activation-intensive / weight-intensive / large-kernel / point-wise / common
layers) with computed per-model summaries: category histograms, arithmetic
intensity, and peak storage requirements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.extraction import LayerKind, classify_layer
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class LayerStats:
    """Derived statistics of one layer."""

    layer: ConvLayer
    kind: LayerKind
    arithmetic_intensity: float  # MACs per byte moved (ideal, 8-bit data)

    @staticmethod
    def of(layer: ConvLayer) -> "LayerStats":
        """Compute a layer's statistics."""
        moved_bytes = (
            layer.input_elements + layer.weight_elements + layer.output_elements
        )
        return LayerStats(
            layer=layer,
            kind=classify_layer(layer),
            arithmetic_intensity=layer.macs / moved_bytes,
        )


@dataclass(frozen=True)
class ModelStats:
    """Aggregate statistics of one model."""

    name: str
    layers: int
    total_macs: int
    total_weights: int
    peak_activations: int
    kind_histogram: dict[LayerKind, int]
    mean_arithmetic_intensity: float

    @staticmethod
    def of(name: str, layers: list[ConvLayer]) -> "ModelStats":
        """Compute a model's statistics.

        Raises:
            ValueError: For an empty layer list.
        """
        if not layers:
            raise ValueError("layers must be non-empty")
        per_layer = [LayerStats.of(layer) for layer in layers]
        histogram: dict[LayerKind, int] = {kind: 0 for kind in LayerKind}
        for stats in per_layer:
            histogram[stats.kind] += 1
        return ModelStats(
            name=name,
            layers=len(layers),
            total_macs=sum(l.macs for l in layers),
            total_weights=sum(l.weight_elements for l in layers),
            peak_activations=max(l.input_elements for l in layers),
            kind_histogram=histogram,
            mean_arithmetic_intensity=(
                sum(s.arithmetic_intensity for s in per_layer) / len(per_layer)
            ),
        )

    def describe(self) -> str:
        """One-line model summary."""
        kinds = ", ".join(
            f"{kind.value}:{count}"
            for kind, count in self.kind_histogram.items()
            if count
        )
        return (
            f"{self.name}: {self.layers} layers, "
            f"{self.total_macs / 1e9:.2f} GMACs, "
            f"{self.total_weights / 1e6:.1f}M weights, "
            f"AI {self.mean_arithmetic_intensity:.1f} MAC/B [{kinds}]"
        )
