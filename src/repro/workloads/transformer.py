"""Transformer workloads: attention blocks and the BERT/ViT/LLM builders.

Matmul layers (:class:`~repro.workloads.layer.MatmulLayer`) are native
first-class citizens of the mapping substrate; *attention* is a composite.
A single softmax(QK^T)V block is several einsums with different operand
shapes, so it cannot be one loop nest -- :class:`AttentionLayer` therefore
describes the block and :meth:`AttentionLayer.sublayers` expands it into
the six GEMMs that actually run through ``MappingSpace``/C3P/DES:

========  =========================================  ==================
sublayer  einsum (per batch)                          grouped?
========  =========================================  ==================
``_q``    ``(S x d) @ (d x d)``                       no
``_k``    ``(S x d) @ (d x d)``                       no
``_v``    ``(S x d) @ (d x d)``                       no
``_scores``  per head ``(S x d_h) @ (d_h x T)``       ``groups = heads``
``_context`` per head ``(S x T) @ (T x d_h)``         ``groups = heads``
``_out``  ``(S x d) @ (d x d)``                       no
========  =========================================  ==================

where ``S`` is the query length, ``T`` the key/value length (the KV-cache
length during decode) and ``d_h = d / heads``.  The softmax itself carries
no MACs and is not modeled.  Model builders flatten the expansion, so every
downstream consumer only ever sees :class:`ConvLayer`-compatible objects.

The registered models:

* ``bert_base`` -- 12 encoder blocks (d=768, 12 heads, FFN 3072) at
  sequence length 128 (an ``@N`` resolution suffix overrides it).
* ``vit_b16`` -- the 16x16 patch-embedding *convolution* followed by 12
  encoder blocks over the ``(res/16)^2 + 1`` patch tokens, plus the
  1000-way classifier head.
* ``llm_decode`` -- one batch-1 GEMV-heavy decoder block (d=4096, 32
  heads, FFN 11008) generating a single token against a 512-entry KV
  cache (an ``@N`` suffix overrides the cache length), plus the 32000-way
  LM head.

Identical blocks repeat identical layer shapes, so the mapper's shape-keyed
cache searches each unique GEMM once regardless of model depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.layer import ConvLayer, MatmulLayer, matmul


@dataclass(frozen=True)
class AttentionLayer:
    """A multi-head self-attention block (composite; see module docstring).

    Attributes:
        name: Block name; sublayers are suffixed ``_q``/``_k``/``_v``/
            ``_scores``/``_context``/``_out``.
        seq: Query positions processed (1 for single-token decode).
        d_model: Model width; must be divisible by ``heads``.
        heads: Attention heads (the grouped-GEMM group count).
        kv_seq: Key/value positions attended to -- the KV-cache length
            during decode.  Defaults to ``seq`` (bidirectional encoder).
        batch: Independent sequences sharing the same weights.
    """

    name: str
    seq: int
    d_model: int
    heads: int
    kv_seq: int | None = None
    batch: int = 1

    def __post_init__(self) -> None:
        if min(self.seq, self.d_model, self.heads, self.batch) < 1:
            raise ValueError("attention dimensions must all be >= 1")
        if self.d_model % self.heads:
            raise ValueError(
                f"heads ({self.heads}) must divide d_model ({self.d_model})"
            )
        if self.kv_seq is not None and self.kv_seq < 1:
            raise ValueError(f"kv_seq must be >= 1, got {self.kv_seq}")

    @property
    def context_length(self) -> int:
        """Key/value positions each query attends to."""
        return self.kv_seq if self.kv_seq is not None else self.seq

    def sublayers(self) -> tuple[MatmulLayer, ...]:
        """The six GEMMs the block expands into, in execution order."""
        d, h, s, t = self.d_model, self.heads, self.seq, self.context_length
        return (
            matmul(f"{self.name}_q", m=s, k=d, n=d, batch=self.batch),
            matmul(f"{self.name}_k", m=s, k=d, n=d, batch=self.batch),
            matmul(f"{self.name}_v", m=s, k=d, n=d, batch=self.batch),
            matmul(
                f"{self.name}_scores",
                m=s, k=d, n=h * t, batch=self.batch, heads=h,
            ),
            matmul(
                f"{self.name}_context",
                m=s, k=h * t, n=d, batch=self.batch, heads=h,
            ),
            matmul(f"{self.name}_out", m=s, k=d, n=d, batch=self.batch),
        )

    @property
    def macs(self) -> int:
        """Total multiply-accumulates across the expansion."""
        return sum(layer.macs for layer in self.sublayers())

    def describe(self) -> str:
        """A one-line human-readable summary."""
        kv = f" kv={self.context_length}" if self.kv_seq is not None else ""
        return (
            f"{self.name}: attention seq={self.seq} d={self.d_model} "
            f"heads={self.heads}{kv} -> {self.macs / 1e6:.1f} MMACs"
        )


def encoder_block(
    prefix: str,
    seq: int,
    d_model: int,
    heads: int,
    ffn: int,
    batch: int = 1,
    kv_seq: int | None = None,
) -> list[ConvLayer]:
    """One pre-norm transformer block, flattened to its GEMMs."""
    attention = AttentionLayer(
        f"{prefix}_attn", seq=seq, d_model=d_model, heads=heads,
        kv_seq=kv_seq, batch=batch,
    )
    return [
        *attention.sublayers(),
        matmul(f"{prefix}_ffn1", m=seq, k=d_model, n=ffn, batch=batch),
        matmul(f"{prefix}_ffn2", m=seq, k=ffn, n=d_model, batch=batch),
    ]


def bert_base(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """BERT-base: 12 encoder blocks, d=768, 12 heads, FFN 3072.

    For transformer models the ``@N`` resolution suffix selects the
    sequence length; the registry default (224, an image resolution)
    maps to the canonical 128-token configuration.  ``include_fc`` keeps
    the pooler and 2-way classifier head.
    """
    seq = 128 if resolution == 224 else resolution
    layers: list[ConvLayer] = []
    for index in range(12):
        layers.extend(encoder_block(f"enc{index}", seq, 768, 12, 3072))
    if include_fc:
        layers.append(matmul("pooler", m=1, k=768, n=768))
        layers.append(matmul("cls", m=1, k=768, n=2))
    return layers


def vit_b16(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """ViT-B/16: patch-embedding conv + 12 encoder blocks + classifier."""
    if resolution < 16 or resolution % 16:
        raise ValueError(
            f"vit_b16 needs a resolution divisible by 16, got {resolution}"
        )
    seq = (resolution // 16) ** 2 + 1  # patch tokens + [CLS]
    layers: list[ConvLayer] = [
        ConvLayer(
            "patch_embed", h=resolution, w=resolution, ci=3, co=768,
            kh=16, kw=16, stride=16,
        ),
    ]
    for index in range(12):
        layers.extend(encoder_block(f"enc{index}", seq, 768, 12, 3072))
    if include_fc:
        layers.append(matmul("head", m=1, k=768, n=1000))
    return layers


def llm_decode(resolution: int = 224, include_fc: bool = True) -> list[ConvLayer]:
    """One batch-1 LLM decoder block: single-token GEMV decode.

    Every GEMM has ``m = 1`` (one new token), which is the degenerate
    matrix-vector regime the conv-centric substrate never exercised; the
    KV cache enters through ``kv_seq`` (512 by default, overridden by the
    ``@N`` resolution suffix).  ``include_fc`` keeps the 32000-way LM head.
    """
    kv = 512 if resolution == 224 else resolution
    layers = encoder_block(
        "dec0", seq=1, d_model=4096, heads=32, ffn=11008, kv_seq=kv
    )
    if include_fc:
        layers.append(matmul("lm_head", m=1, k=4096, n=32000))
    return layers
