"""Convolution layer geometry: the seven-dimensional loop nest of Figure 1.

A layer workload is defined output-centrically: a complete ``HO x WO x CO``
output cube consuming a 3-D input cube (``H x W x CI``) and a 4-D weight
tensor (``KH x KW x CI x CO``).  Batch size is fixed to one (Section II-A).

The halo arithmetic here is the foundation of the partition-pattern analysis
(Figures 7-8): when the stride is smaller than the kernel, adjacent output
tiles require overlapping input regions of ``K - stride`` rows/columns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer, batch size 1.

    Attributes:
        name: Layer label (e.g. ``"conv1"`` or ``"res2a_branch2a"``).
        h: Input feature-map height.
        w: Input feature-map width.
        ci: Input channels.
        co: Output channels.
        kh: Kernel height.
        kw: Kernel width.
        stride: Convolution stride (same in both planar dimensions).
        padding: Zero padding on each side.
        groups: Grouped-convolution group count (1 = dense convolution;
            ``groups == ci == co`` is a depthwise convolution, as in
            MobileNetV2's inverted residual blocks).
    """

    name: str
    h: int
    w: int
    ci: int
    co: int
    kh: int
    kw: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        for field_name in ("h", "w", "ci", "co", "kh", "kw", "stride", "groups"):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")
        if self.padding < 0:
            raise ValueError(f"padding must be >= 0, got {self.padding}")
        if self.ci % self.groups or self.co % self.groups:
            raise ValueError(
                f"layer {self.name!r}: groups ({self.groups}) must divide "
                f"both ci ({self.ci}) and co ({self.co})"
            )
        if self.ho < 1 or self.wo < 1:
            raise ValueError(
                f"layer {self.name!r} produces an empty output plane "
                f"({self.ho}x{self.wo})"
            )

    @property
    def ci_per_group(self) -> int:
        """Input channels feeding each output channel."""
        return self.ci // self.groups

    @property
    def co_per_group(self) -> int:
        """Output channels produced per group."""
        return self.co // self.groups

    @property
    def is_depthwise(self) -> bool:
        """Whether every channel forms its own group."""
        return self.groups == self.ci == self.co

    # --- derived geometry ------------------------------------------------------

    @property
    def ho(self) -> int:
        """Output height."""
        return (self.h + 2 * self.padding - self.kh) // self.stride + 1

    @property
    def wo(self) -> int:
        """Output width."""
        return (self.w + 2 * self.padding - self.kw) // self.stride + 1

    @property
    def output_elements(self) -> int:
        """Total output activations (HO * WO * CO)."""
        return self.ho * self.wo * self.co

    @property
    def input_elements(self) -> int:
        """Total input activations (H * W * CI), excluding padding."""
        return self.h * self.w * self.ci

    @property
    def weight_elements(self) -> int:
        """Total weights (KH * KW * CI/G * CO)."""
        return self.kh * self.kw * self.ci_per_group * self.co

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations."""
        return self.output_elements * self.kh * self.kw * self.ci_per_group

    @property
    def is_pointwise(self) -> bool:
        """Whether this is a 1x1 convolution (includes folded FC layers)."""
        return self.kh == 1 and self.kw == 1

    @property
    def halo_rows(self) -> int:
        """Overlap rows between vertically adjacent output tiles."""
        return max(self.kh - self.stride, 0)

    @property
    def halo_cols(self) -> int:
        """Overlap columns between horizontally adjacent output tiles."""
        return max(self.kw - self.stride, 0)

    # --- tile arithmetic ----------------------------------------------------------

    def input_rows_for(self, out_rows: int) -> int:
        """Input rows actually read for ``out_rows`` consecutive output rows.

        For stride <= kernel the windows overlap into a contiguous span of
        ``(n-1)*s + k`` rows; for stride > kernel the windows are disjoint
        and only ``n*k`` rows are touched.  Both collapse to
        ``(n-1)*min(s, k) + k``.
        """
        if out_rows < 0:
            raise ValueError(f"out_rows must be >= 0, got {out_rows}")
        if out_rows == 0:
            return 0
        return (out_rows - 1) * min(self.stride, self.kh) + self.kh

    def input_cols_for(self, out_cols: int) -> int:
        """Input columns actually read for ``out_cols`` consecutive columns."""
        if out_cols < 0:
            raise ValueError(f"out_cols must be >= 0, got {out_cols}")
        if out_cols == 0:
            return 0
        return (out_cols - 1) * min(self.stride, self.kw) + self.kw

    def input_tile_elements(self, out_rows: int, out_cols: int, channels: int | None = None) -> int:
        """Input activations feeding an ``out_rows x out_cols`` output tile.

        Args:
            out_rows: Output tile height.
            out_cols: Output tile width.
            channels: Input channels counted (defaults to all ``ci``).
        """
        ch = self.ci if channels is None else channels
        if ch < 0:
            raise ValueError(f"channels must be >= 0, got {ch}")
        return self.input_rows_for(out_rows) * self.input_cols_for(out_cols) * ch

    def weights_for(self, out_channels: int, in_channels: int | None = None) -> int:
        """Weights feeding ``out_channels`` output channels."""
        ch = self.ci_per_group if in_channels is None else in_channels
        if out_channels < 0 or ch < 0:
            raise ValueError("channel counts must be >= 0")
        return self.kh * self.kw * ch * out_channels

    def input_channels_for(self, out_channels: int) -> int:
        """Input channels read when computing ``out_channels`` outputs.

        Dense convolution: all of ``ci``.  Grouped convolution: only the
        groups spanned by the output slice (a depthwise layer's ``n``-channel
        output slice reads exactly ``n`` input channels).
        """
        if out_channels < 0:
            raise ValueError(f"out_channels must be >= 0, got {out_channels}")
        if out_channels == 0:
            return 0
        groups_spanned = min(ceil_div(out_channels, self.co_per_group), self.groups)
        return min(groups_spanned * self.ci_per_group, self.ci)

    def scaled_to(self, resolution: int, base_resolution: int = 224) -> "ConvLayer":
        """Return this layer at a different network input resolution.

        Planar dimensions scale by ``resolution / base_resolution`` (the paper
        evaluates every model at 224x224 and 512x512); channel and kernel
        dimensions are unchanged.  FC-derived pointwise layers (1x1 plane)
        do not scale.
        """
        if resolution < 1 or base_resolution < 1:
            raise ValueError("resolutions must be >= 1")
        if resolution == base_resolution or (self.h == 1 and self.w == 1):
            return self
        factor = resolution / base_resolution
        new_h = max(int(round(self.h * factor)), self.kh)
        new_w = max(int(round(self.w * factor)), self.kw)
        return replace(self, h=new_h, w=new_w)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.h}x{self.w}x{self.ci} -> "
            f"{self.ho}x{self.wo}x{self.co}, k={self.kh}x{self.kw}, "
            f"s={self.stride}, p={self.padding}, "
            f"{self.macs / 1e6:.1f} MMACs"
        )


@dataclass(frozen=True)
class MatmulLayer(ConvLayer):
    """A ``(m x k) @ (k x n)`` GEMM expressed in convolution coordinates.

    The C3P computation-pattern abstraction is not conv-specific: a GEMM is
    exactly a 1x1 (point-wise) convolution whose output plane is the
    ``m x batch`` result grid -- output rows map onto the H loop slot, the
    batch dimension onto W, the reduction dimension onto the input channels
    and the output features onto the output channels.  Multi-head einsums
    (attention scores / context) use ``groups = heads``: each head reduces
    only over its own ``k / heads`` slice, which is precisely the grouped
    convolution contract every walk already honours.

    The subclass adds *no* stored fields, so a :class:`MatmulLayer` flows
    through ``MappingSpace``, the three C3P walks, the scalar cost model,
    the batch kernel and the DES bit-identically to the equal-geometry
    :class:`ConvLayer` -- only the constructors, accessors and
    classification differ.  Use :func:`matmul` to build one.
    """

    @property
    def m(self) -> int:
        """GEMM output rows (sequence positions / batch rows)."""
        return self.h

    @property
    def k(self) -> int:
        """Total reduction depth across all heads."""
        return self.ci

    @property
    def n(self) -> int:
        """Total output features across all heads."""
        return self.co

    @property
    def batch(self) -> int:
        """Independent GEMM instances sharing the weight operand."""
        return self.w

    @property
    def heads(self) -> int:
        """Independent reduction groups (attention heads)."""
        return self.groups

    def describe(self) -> str:
        """A one-line human-readable summary in GEMM terms."""
        head = f" heads={self.heads}" if self.heads > 1 else ""
        batch = f" batch={self.batch}" if self.batch > 1 else ""
        return (
            f"{self.name}: ({self.m}x{self.k // self.heads})"
            f"@({self.k // self.heads}x{self.n // self.heads})"
            f"{head}{batch} -> {self.macs / 1e6:.1f} MMACs"
        )


def matmul(
    name: str,
    m: int,
    k: int,
    n: int,
    batch: int = 1,
    heads: int = 1,
) -> MatmulLayer:
    """Build a native matmul layer (see :class:`MatmulLayer`).

    Args:
        name: Layer name.
        m: Output rows of the GEMM.
        k: Total reduction depth (summed over ``heads``).
        n: Total output features (summed over ``heads``).
        batch: Independent GEMM instances sharing the same weights.
        heads: Independent reduction groups; must divide ``k`` and ``n``.
    """
    if min(m, k, n, batch, heads) < 1:
        raise ValueError("matmul dimensions must all be >= 1")
    if k % heads or n % heads:
        raise ValueError(
            f"heads ({heads}) must divide both k ({k}) and n ({n})"
        )
    return MatmulLayer(
        name=name, h=m, w=batch, ci=k, co=n, kh=1, kw=1, groups=heads
    )


def fc_as_pointwise(
    name: str, in_features: int, out_features: int, batch: int = 1
) -> MatmulLayer:
    """A fully-connected layer, routed through the native matmul path.

    The paper's evaluation "reorganizes FC layers into point-wise layers"
    (Figure 13 caption); historically this helper built that 1x1-plane
    pointwise fold directly, which silently dropped any batch dimension
    greater than one.  It now returns the equivalent
    :func:`matmul`-constructed layer -- identical geometry (and therefore
    identical energy/cycles) for ``batch == 1``, and a correct
    ``(batch x in) @ (in x out)`` GEMM otherwise.
    """
    if in_features < 1 or out_features < 1:
        raise ValueError("FC feature counts must be >= 1")
    return matmul(name, m=batch, k=in_features, n=out_features)


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division (``b`` must be positive)."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def tile_extent(total: int, ways: int, index: int) -> int:
    """Extent of the ``index``-th tile when ``total`` splits ``ways`` ways.

    Tiles are ceil-sized except the last, which takes the remainder; this is
    the allocation rule the workload orchestration uses everywhere.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    if not 0 <= index < ways:
        raise ValueError(f"index {index} out of range for {ways} ways")
    size = ceil_div(total, ways)
    start = index * size
    return max(min(total - start, size), 0)
