"""Workload import/export: map your own network.

The paper parses models with ``torch.jit``; this repository keeps the core
dependency-free and instead accepts a plain JSON description -- a list of
layer dictionaries -- so any frontend (a PyTorch exporter, a hand-written
file) can feed the tool::

    [
      {"name": "conv1", "h": 224, "w": 224, "ci": 3, "co": 64,
       "kh": 7, "kw": 7, "stride": 2, "padding": 3},
      {"name": "enc0", "attn_seq": 128, "attn_d": 768, "attn_heads": 12},
      {"name": "ffn1", "m": 128, "k": 768, "n": 3072},
      {"name": "fc", "fc_in": 2048, "fc_out": 1000}
    ]

Four entry shapes are accepted:

* convolutions (``h``/``w``/``ci``/``co``/``kh``/``kw`` + options),
* native matmuls (``m``/``k``/``n`` + optional ``batch``/``heads``),
* attention blocks (``attn_seq``/``attn_d``/``attn_heads`` + optional
  ``attn_kv``/``batch``), which expand in place into their six GEMMs, and
* FC entries (``fc_in``/``fc_out`` + optional ``batch``), routed through
  the native matmul path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import DataError
from repro.workloads.layer import ConvLayer, MatmulLayer, fc_as_pointwise, matmul
from repro.workloads.transformer import AttentionLayer


class WorkloadSpecError(DataError, ValueError):
    """A workload description (JSON file or spec dict) is invalid.

    Still a ``ValueError`` (the historical contract) and now a
    :class:`repro.errors.DataError` (code ``data``, exit 4).  Every error
    escaping this module's loaders is of this type, with the offending
    layer index or file named in the message.
    """

#: Accepted convolution keys (everything else is rejected loudly).
_CONV_KEYS = {"name", "h", "w", "ci", "co", "kh", "kw", "stride", "padding", "groups"}
_FC_KEYS = {"name", "fc_in", "fc_out", "batch"}
_MATMUL_KEYS = {"name", "m", "k", "n", "batch", "heads"}
_ATTENTION_KEYS = {"name", "attn_seq", "attn_d", "attn_heads", "attn_kv", "batch"}


def layer_from_spec(spec: dict[str, Any]) -> ConvLayer:
    """Build one layer from a JSON-style dictionary.

    Attention entries cannot be built through this single-layer hook (they
    expand into several GEMMs); use :func:`layers_from_specs` for those.

    Raises:
        ValueError: For unknown keys or a spec that is none of the accepted
            entry shapes.
    """
    keys = set(spec)
    if {"fc_in", "fc_out"} <= keys:
        unknown = keys - _FC_KEYS
        if unknown:
            raise ValueError(f"unknown FC keys: {', '.join(sorted(unknown))}")
        return fc_as_pointwise(
            spec.get("name", "fc"),
            spec["fc_in"],
            spec["fc_out"],
            batch=spec.get("batch", 1),
        )
    if {"m", "k", "n"} <= keys:
        unknown = keys - _MATMUL_KEYS
        if unknown:
            raise ValueError(
                f"unknown matmul keys: {', '.join(sorted(unknown))}"
            )
        return matmul(
            spec.get("name", "matmul"),
            m=spec["m"],
            k=spec["k"],
            n=spec["n"],
            batch=spec.get("batch", 1),
            heads=spec.get("heads", 1),
        )
    if "attn_seq" in keys:
        raise ValueError(
            "attention entries expand into several layers; load them via "
            "layers_from_specs/load_model_file"
        )
    unknown = keys - _CONV_KEYS
    if unknown:
        raise ValueError(f"unknown layer keys: {', '.join(sorted(unknown))}")
    missing = {"h", "w", "ci", "co", "kh", "kw"} - keys
    if missing:
        raise ValueError(f"missing layer keys: {', '.join(sorted(missing))}")
    return ConvLayer(
        name=spec.get("name", "layer"),
        h=spec["h"],
        w=spec["w"],
        ci=spec["ci"],
        co=spec["co"],
        kh=spec["kh"],
        kw=spec["kw"],
        stride=spec.get("stride", 1),
        padding=spec.get("padding", 0),
        groups=spec.get("groups", 1),
    )


def _attention_from_spec(spec: dict[str, Any]) -> AttentionLayer:
    keys = set(spec)
    unknown = keys - _ATTENTION_KEYS
    if unknown:
        raise ValueError(
            f"unknown attention keys: {', '.join(sorted(unknown))}"
        )
    missing = {"attn_seq", "attn_d", "attn_heads"} - keys
    if missing:
        raise ValueError(
            f"missing attention keys: {', '.join(sorted(missing))}"
        )
    return AttentionLayer(
        name=spec.get("name", "attn"),
        seq=spec["attn_seq"],
        d_model=spec["attn_d"],
        heads=spec["attn_heads"],
        kv_seq=spec.get("attn_kv"),
        batch=spec.get("batch", 1),
    )


def layers_from_specs(specs: list[dict[str, Any]]) -> list[ConvLayer]:
    """Build a model from a list of layer dictionaries.

    Attention entries expand in place into their six GEMM sublayers.

    Raises:
        WorkloadSpecError: For an empty list (with the index of any bad
            entry prepended to its error).
    """
    if not specs:
        raise WorkloadSpecError("model description is empty")
    layers: list[ConvLayer] = []
    for index, spec in enumerate(specs):
        try:
            if isinstance(spec, dict) and "attn_seq" in spec:
                layers.extend(_attention_from_spec(spec).sublayers())
            else:
                layers.append(layer_from_spec(spec))
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            raise WorkloadSpecError(f"layer {index}: {exc}") from exc
    return layers


def load_model_file(path: str | Path) -> list[ConvLayer]:
    """Load a model from a JSON file (a list of layer dictionaries).

    Raises:
        WorkloadSpecError: For undecodable JSON or a top-level shape that
            is not a list (the file path is named in the message).
    """
    try:
        data = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise WorkloadSpecError(f"model file {path}: invalid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise WorkloadSpecError(
            f"model file must contain a JSON list of layers, got {type(data).__name__}"
        )
    return layers_from_specs(data)


def save_model_file(layers: list[ConvLayer], path: str | Path) -> None:
    """Write a model to a JSON file in the import format.

    Matmul layers are written as native matmul entries, so the round-trip
    preserves the layer type (an expanded attention block round-trips as
    its six GEMMs).
    """
    specs = []
    for layer in layers:
        spec: dict[str, Any]
        if isinstance(layer, MatmulLayer):
            spec = {
                "name": layer.name,
                "m": layer.m,
                "k": layer.k,
                "n": layer.n,
            }
            if layer.batch != 1:
                spec["batch"] = layer.batch
            if layer.heads != 1:
                spec["heads"] = layer.heads
            specs.append(spec)
            continue
        spec = {
            "name": layer.name,
            "h": layer.h,
            "w": layer.w,
            "ci": layer.ci,
            "co": layer.co,
            "kh": layer.kh,
            "kw": layer.kw,
        }
        if layer.stride != 1:
            spec["stride"] = layer.stride
        if layer.padding:
            spec["padding"] = layer.padding
        if layer.groups != 1:
            spec["groups"] = layer.groups
        specs.append(spec)
    Path(path).write_text(json.dumps(specs, indent=2) + "\n")
