"""Workload import/export: map your own network.

The paper parses models with ``torch.jit``; this repository keeps the core
dependency-free and instead accepts a plain JSON description -- a list of
layer dictionaries -- so any frontend (a PyTorch exporter, a hand-written
file) can feed the tool::

    [
      {"name": "conv1", "h": 224, "w": 224, "ci": 3, "co": 64,
       "kh": 7, "kw": 7, "stride": 2, "padding": 3},
      {"name": "fc", "fc_in": 2048, "fc_out": 1000}
    ]

Entries with ``fc_in``/``fc_out`` are folded into pointwise layers, the
same treatment the paper applies to FC layers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.workloads.layer import ConvLayer, fc_as_pointwise

#: Accepted convolution keys (everything else is rejected loudly).
_CONV_KEYS = {"name", "h", "w", "ci", "co", "kh", "kw", "stride", "padding", "groups"}
_FC_KEYS = {"name", "fc_in", "fc_out"}


def layer_from_spec(spec: dict[str, Any]) -> ConvLayer:
    """Build one layer from a JSON-style dictionary.

    Raises:
        ValueError: For unknown keys or a spec that is neither a convolution
            nor an FC entry.
    """
    keys = set(spec)
    if {"fc_in", "fc_out"} <= keys:
        unknown = keys - _FC_KEYS
        if unknown:
            raise ValueError(f"unknown FC keys: {', '.join(sorted(unknown))}")
        return fc_as_pointwise(
            spec.get("name", "fc"), spec["fc_in"], spec["fc_out"]
        )
    unknown = keys - _CONV_KEYS
    if unknown:
        raise ValueError(f"unknown layer keys: {', '.join(sorted(unknown))}")
    missing = {"h", "w", "ci", "co", "kh", "kw"} - keys
    if missing:
        raise ValueError(f"missing layer keys: {', '.join(sorted(missing))}")
    return ConvLayer(
        name=spec.get("name", "layer"),
        h=spec["h"],
        w=spec["w"],
        ci=spec["ci"],
        co=spec["co"],
        kh=spec["kh"],
        kw=spec["kw"],
        stride=spec.get("stride", 1),
        padding=spec.get("padding", 0),
        groups=spec.get("groups", 1),
    )


def layers_from_specs(specs: list[dict[str, Any]]) -> list[ConvLayer]:
    """Build a model from a list of layer dictionaries.

    Raises:
        ValueError: For an empty list (with the index of any bad entry
            prepended to its error).
    """
    if not specs:
        raise ValueError("model description is empty")
    layers = []
    for index, spec in enumerate(specs):
        try:
            layers.append(layer_from_spec(spec))
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"layer {index}: {exc}") from exc
    return layers


def load_model_file(path: str | Path) -> list[ConvLayer]:
    """Load a model from a JSON file (a list of layer dictionaries)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ValueError(
            f"model file must contain a JSON list of layers, got {type(data).__name__}"
        )
    return layers_from_specs(data)


def save_model_file(layers: list[ConvLayer], path: str | Path) -> None:
    """Write a model to a JSON file in the import format."""
    specs = []
    for layer in layers:
        spec: dict[str, Any] = {
            "name": layer.name,
            "h": layer.h,
            "w": layer.w,
            "ci": layer.ci,
            "co": layer.co,
            "kh": layer.kh,
            "kw": layer.kw,
        }
        if layer.stride != 1:
            spec["stride"] = layer.stride
        if layer.padding:
            spec["padding"] = layer.padding
        if layer.groups != 1:
            spec["groups"] = layer.groups
        specs.append(spec)
    Path(path).write_text(json.dumps(specs, indent=2) + "\n")
