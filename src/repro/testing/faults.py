"""Deterministic fault injection for the sweep execution path.

The resilience layer of :mod:`repro.core.parallel` promises to survive
crashing tasks, hung workers, killed worker processes and corrupted cache
records.  Those failure modes are hard to produce on demand, so this module
injects them *reproducibly*: every fault fires at task indices derived from
a seed (or at explicitly listed indices), never from wall-clock state, so a
faulted run is exactly repeatable and a retried attempt can be told apart
from a first attempt.

Faults are described by a tiny DSL, normally supplied through the
``REPRO_FAULTS`` environment variable (which worker processes inherit)::

    REPRO_FAULTS="crash:0.1@seed=7"              # ~10% of tasks crash once
    REPRO_FAULTS="hang:@indices=3&sleep=30"      # task 3 sleeps 30 s
    REPRO_FAULTS="kill:@indices=0,exc:@indices=5"

Grammar (specs joined by ``,``; params joined by ``&``)::

    spec   := kind [":" rate] ["@" param ("&" param)*]
    param  := "seed=" int | "attempts=" int | "indices=" int (";" int)*
            | "sleep=" float | "sink=" name

Kinds:

``crash``
    Raise :class:`InjectedCrashError` -- a *transient* (crash-only) fault
    the executor retries with backoff.
``exc``
    Raise :class:`InjectedTaskError` -- a *deterministic* exception the
    executor must not retry (it records a
    :class:`~repro.core.parallel.TaskFailure` instead).
``hang``
    Sleep ``sleep`` seconds (default 30) before running the task -- long
    enough to trip any configured per-task timeout.
``kill``
    ``os._exit(86)`` inside a pool worker (the executor sees a
    ``BrokenProcessPool``); downgraded to :class:`InjectedCrashError` when
    running in-process, where exiting would kill the host.
``interrupt``
    Raise :class:`KeyboardInterrupt` -- drives the SIGINT/checkpoint-flush
    path deterministically, without real signal timing.
``corrupt-cache``
    Corrupt the next mapping-cache flush
    (:meth:`FaultPlan.corrupt_text`, consulted by
    :meth:`repro.core.cache.MappingCache.save`).
``enospc`` / ``eio``
    Raise ``OSError(ENOSPC)`` / ``OSError(EIO)`` at a persistent-sink
    write boundary (:meth:`FaultPlan.before_io`, consulted by
    :mod:`repro.durable` before every :func:`~repro.durable.atomic_write`
    and :func:`~repro.durable.durable_append`).  Indices count writes per
    sink, so ``enospc:0.5@seed=3`` deterministically fails ~half of a
    sink's flushes; ``sink=cache`` restricts the fault to one sink
    (``cache``, ``checkpoint``, ``history``, ``bench``...).
``slow-disk``
    Sleep ``sleep`` seconds before a sink write -- models a saturated or
    dying disk without failing the write (pair it with ``sleep=``).
``corrupt-study``
    Garble the guided-search sqlite study file just before it is opened
    (:meth:`FaultPlan.corrupt_study_file`, consulted by
    :class:`repro.core.search.Study`), driving the quarantine-and-restart
    recovery path deterministically.

``attempts=N`` fires the fault only on attempts ``< N`` (default 1, so a
retried task succeeds -- the retry-then-recover path); ``attempts=0`` fires
on every attempt (the permanent-failure path).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Iterable

from repro import obs
from repro.core.parallel import TransientTaskError, in_worker

#: Environment variable supplying the fault plan (inherited by workers).
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds that act at task boundaries (see :meth:`FaultPlan.before_task`).
TASK_KINDS = ("crash", "exc", "hang", "kill", "interrupt")

#: Fault kinds that act at sink-write boundaries (see :meth:`FaultPlan.before_io`).
IO_KINDS = ("enospc", "eio", "slow-disk")

#: Every recognised fault kind.
KNOWN_KINDS = TASK_KINDS + IO_KINDS + ("corrupt-cache", "corrupt-study")


class InjectedCrashError(TransientTaskError):
    """An injected crash-only fault: the executor should retry the task."""


class InjectedTaskError(RuntimeError):
    """An injected deterministic failure: the executor must not retry."""


def _chance(seed: int, index: int) -> float:
    """A stable pseudo-random draw in [0, 1) for (seed, task index)."""
    digest = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive.

    Attributes:
        kind: Fault kind (see the module docstring).
        rate: Firing probability per task index (ignored with ``indices``).
        seed: Seed of the per-index draw, so runs are repeatable.
        attempts: Fire only on attempts ``< attempts``; ``0`` means every
            attempt.
        indices: Explicit task indices (overrides ``rate``).
        sleep_s: Sleep duration of the ``hang`` and ``slow-disk`` kinds.
        sink: I/O kinds only -- restrict the fault to writes of one named
            sink (``None`` hits every sink).
    """

    kind: str
    rate: float = 1.0
    seed: int = 0
    attempts: int = 1
    indices: tuple[int, ...] | None = None
    sleep_s: float = 30.0
    sink: str | None = None

    def fires(self, index: int, attempt: int = 0) -> bool:
        """Whether this fault fires for (task ``index``, ``attempt``)."""
        if self.attempts and attempt >= self.attempts:
            return False
        if self.indices is not None:
            return index in self.indices
        if self.rate >= 1.0:
            return True
        return _chance(self.seed, index) < self.rate


def parse_fault_specs(text: str) -> tuple[FaultSpec, ...]:
    """Parse the ``REPRO_FAULTS`` DSL into fault specs.

    Raises:
        ValueError: On an unknown kind or a malformed rate/param.
    """
    specs: list[FaultSpec] = []
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        body, _, params = raw.partition("@")
        kind, _, rate_text = body.partition(":")
        kind = kind.strip()
        if kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known kinds: "
                f"{', '.join(KNOWN_KINDS)}"
            )
        fields: dict = {"kind": kind}
        rate_text = rate_text.strip()
        if rate_text:
            try:
                fields["rate"] = float(rate_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad rate {rate_text!r} in fault spec {raw!r}"
                ) from exc
        for param in filter(None, params.split("&")):
            key, sep, value = param.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep:
                raise ValueError(f"bad param {param!r} in fault spec {raw!r}")
            try:
                if key == "seed":
                    fields["seed"] = int(value)
                elif key == "attempts":
                    fields["attempts"] = int(value)
                elif key == "sleep":
                    fields["sleep_s"] = float(value)
                elif key == "sink":
                    if not value:
                        raise ValueError("empty sink name")
                    fields["sink"] = value
                elif key == "indices":
                    fields["indices"] = tuple(
                        int(v) for v in value.split(";") if v
                    )
                else:
                    raise ValueError(f"unknown fault param {key!r}")
            except ValueError:
                raise ValueError(
                    f"bad value {value!r} for param {key!r} in fault "
                    f"spec {raw!r}"
                ) from None
        specs.append(FaultSpec(**fields))
    return tuple(specs)


class FaultPlan:
    """A set of fault specs consulted by the execution layer.

    The executor calls :meth:`before_task` immediately before running each
    task (both in pool workers and on the serial path), and
    :meth:`repro.core.cache.MappingCache.save` calls :meth:`corrupt_text`
    before each disk flush.
    """

    def __init__(self, specs: Iterable[FaultSpec]) -> None:
        self.specs = tuple(specs)

    def before_task(self, index: int, attempt: int = 0) -> None:
        """Inject any task-boundary fault scheduled for (index, attempt)."""
        for spec in self.specs:
            if spec.kind not in TASK_KINDS or not spec.fires(index, attempt):
                continue
            obs.count(f"faults.injected.{spec.kind}")
            obs.event("fault.injected", kind=spec.kind, site="task")
            if spec.kind == "crash":
                raise InjectedCrashError(
                    f"injected crash at task {index} (attempt {attempt})"
                )
            if spec.kind == "exc":
                raise InjectedTaskError(
                    f"injected deterministic failure at task {index}"
                )
            if spec.kind == "hang":
                time.sleep(spec.sleep_s)
            elif spec.kind == "interrupt":
                raise KeyboardInterrupt(f"injected interrupt at task {index}")
            elif spec.kind == "kill":
                if in_worker():
                    os._exit(86)
                # In-process there is no worker to kill; the nearest
                # honest behaviour is a retryable crash.
                raise InjectedCrashError(
                    f"injected kill (inline) at task {index}"
                )

    def before_io(self, sink: str, index: int) -> None:
        """Inject any I/O fault scheduled for write ``index`` of ``sink``.

        Called by :mod:`repro.durable` immediately before each
        atomic-write/durable-append on the named sink; ``index`` counts
        that sink's writes from 0, so rate draws are deterministic per
        (seed, sink write index).
        """
        import errno

        for spec in self.specs:
            if spec.kind not in IO_KINDS:
                continue
            if spec.sink is not None and spec.sink != sink:
                continue
            if not spec.fires(index):
                continue
            obs.count(f"faults.injected.{spec.kind}")
            obs.event("fault.injected", kind=spec.kind, site="io")
            if spec.kind == "enospc":
                raise OSError(
                    errno.ENOSPC,
                    f"injected ENOSPC at {sink} write {index}",
                )
            if spec.kind == "eio":
                raise OSError(
                    errno.EIO, f"injected EIO at {sink} write {index}"
                )
            if spec.kind == "slow-disk":
                time.sleep(spec.sleep_s)

    def corrupt_study_file(self, path, index: int = 0) -> bool:
        """Garble the study file at ``path`` when a ``corrupt-study`` fires.

        Consulted by :class:`repro.core.search.Study` before opening its
        sqlite file.  An existing file is truncated mid-byte (the
        signature of a torn writer); a missing one is filled with
        non-sqlite garbage.  Returns whether corruption was injected.
        """
        from pathlib import Path

        for spec in self.specs:
            if spec.kind != "corrupt-study" or not spec.fires(index):
                continue
            obs.count("faults.injected.corrupt-study")
            obs.event("fault.injected", kind="corrupt-study", site="study")
            target = Path(path)
            if target.exists():
                data = target.read_bytes()
                target.write_bytes(data[: max(1, len(data) // 2)] + b"\xff")
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(b"this is not a sqlite database\n")
            return True
        return False

    def corrupt_text(self, text: str, index: int) -> str | None:
        """The corrupted replacement for flush ``index``, or ``None``.

        Truncates the payload mid-record, the signature a crashed or
        misbehaving writer leaves behind.
        """
        for spec in self.specs:
            if spec.kind == "corrupt-cache" and spec.fires(index):
                obs.count("faults.injected.corrupt-cache")
                obs.event("fault.injected", kind="corrupt-cache", site="cache")
                return text[: max(1, len(text) // 2)] + '{"truncated":'
        return None


_installed: FaultPlan | None = None
_env_cache: tuple[str, FaultPlan] | None = None


def install_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide (tests); returns the previous plan.

    An installed plan overrides ``REPRO_FAULTS`` but does **not** cross
    process boundaries -- pool-worker faults need the environment variable.
    """
    global _installed
    previous = _installed
    _installed = plan
    return previous


def active_plan() -> FaultPlan | None:
    """The current fault plan: installed first, then ``REPRO_FAULTS``."""
    if _installed is not None:
        return _installed
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    global _env_cache
    if _env_cache is None or _env_cache[0] != raw:
        _env_cache = (raw, FaultPlan(parse_fault_specs(raw)))
    return _env_cache[1]


__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedTaskError",
    "IO_KINDS",
    "KNOWN_KINDS",
    "TASK_KINDS",
    "active_plan",
    "install_plan",
    "parse_fault_specs",
]
