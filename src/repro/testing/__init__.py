"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
the resilience tests (and the CI ``fault-injection`` job) use to prove
every recovery path of the sweep execution layer.
"""

from repro.testing.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedTaskError,
    active_plan,
    install_plan,
    parse_fault_specs,
)

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedTaskError",
    "active_plan",
    "install_plan",
    "parse_fault_specs",
]
