"""Cross-validation of the analytical cost model against the DES.

The analytical C3P cost model (:mod:`repro.core.cost`) and the tile-pipeline
simulator (:mod:`repro.sim.engine`) compute the same layer execution from
the same mapping, independently.  CHIPSIM and DNN-Chip Predictor both show
that an analytical predictor is only trustworthy while it is continuously
reconciled against an execution-level reference -- this module is that
reconciliation for any (layer, hardware, mapping) triple:

* the simulated cycles must dominate the **roofline bound** (every MAC unit
  busy every cycle) and the analytical compute estimate, always;
* in **uncontended** configurations (no rotating transfer, no halo
  conflict) the simulated cycles must also stay within a configurable
  envelope of the analytical estimate -- the estimate is
  ``max(compute cycles, busiest-channel DRAM cycles)`` plus the pipeline
  fill/drain slack the analytical model deliberately omits;
* when the two diverge, the report carries per-phase deltas
  (load / ring / compute / writeback) so the disagreeing term is visible
  immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.audit.invariants import check_run
from repro.core.cost import InvalidMappingError, evaluate_mapping
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.primitives import RotationKind
from repro.sim.engine import TilePipelineModel
from repro.sim.trace import Phase, Trace
from repro.workloads.layer import ConvLayer

#: Default agreement envelope: simulated cycles may exceed the analytical
#: estimate (plus fill/drain slack) by at most this fraction in uncontended
#: configurations.  See docs/modeling.md ("Consistency audit").
DEFAULT_ENVELOPE = 0.05

#: Absolute cycle tolerance for lower-bound comparisons.
_CYCLE_EPS = 1e-6


@dataclass(frozen=True)
class PhaseDelta:
    """One phase's simulated vs. analytically expected busy cycles."""

    phase: str
    simulated: float
    expected: float

    @property
    def delta(self) -> float:
        """Signed divergence (positive: the simulator spent more)."""
        return self.simulated - self.expected

    @property
    def relative(self) -> float:
        """Divergence as a fraction of the expected cycles."""
        if self.expected == 0:
            return 0.0 if abs(self.simulated) < _CYCLE_EPS else float("inf")
        return self.delta / self.expected

    def describe(self) -> str:
        """One-line report entry, e.g. ``load: sim 120.0 vs 118.0 (+1.7%)``."""
        return (
            f"{self.phase}: sim {self.simulated:.1f} vs expected "
            f"{self.expected:.1f} ({self.relative:+.1%})"
        )


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of one analytical-vs-simulated reconciliation.

    Attributes:
        layer_name: The audited layer.
        mapping: Compact mapping description.
        analytical_cycles: The cost model's compute-only cycle estimate.
        roofline_cycles: Ideal cycles with every MAC busy (hard lower bound).
        estimate_cycles: The bandwidth-aware analytical estimate the
            envelope is measured against (compute vs. DRAM roof, plus
            pipeline fill/drain slack).
        simulated_cycles: What the DES reported.
        uncontended: No rotation and no halo conflict -- the configurations
            where the analytical model claims cycle-accuracy.
        envelope: The agreement envelope used.
        phase_deltas: Per-phase simulated vs. expected busy cycles.
        violations: Invariant and bound violations (empty means the pair is
            consistent).
        flagged: Whether this pair diverged out of envelope (uncontended
            pairs only) or violated an invariant.
    """

    layer_name: str
    mapping: str
    analytical_cycles: float
    roofline_cycles: float
    estimate_cycles: float
    simulated_cycles: float
    uncontended: bool
    envelope: float
    phase_deltas: tuple[PhaseDelta, ...] = ()
    violations: tuple[str, ...] = ()

    @property
    def flagged(self) -> bool:
        """Whether this pair needs human attention."""
        return bool(self.violations)

    @property
    def ratio(self) -> float:
        """Simulated over estimated cycles (1.0 means exact agreement)."""
        if self.estimate_cycles <= 0:
            return float("inf")
        return self.simulated_cycles / self.estimate_cycles

    def describe(self) -> str:
        """Multi-line divergence report for flagged pairs."""
        lines = [
            f"{self.layer_name} [{self.mapping}]: "
            f"sim {self.simulated_cycles:.0f} vs est {self.estimate_cycles:.0f} "
            f"cycles (ratio {self.ratio:.3f}, "
            f"{'uncontended' if self.uncontended else 'contended'})"
        ]
        lines.extend(f"  {d.describe()}" for d in self.phase_deltas)
        lines.extend(f"  VIOLATION: {v}" for v in self.violations)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form for the audit report."""
        return {
            "layer": self.layer_name,
            "mapping": self.mapping,
            "analytical_cycles": self.analytical_cycles,
            "roofline_cycles": self.roofline_cycles,
            "estimate_cycles": self.estimate_cycles,
            "simulated_cycles": self.simulated_cycles,
            "ratio": self.ratio,
            "uncontended": self.uncontended,
            "envelope": self.envelope,
            "flagged": self.flagged,
            "phase_deltas": {
                d.phase: {"simulated": d.simulated, "expected": d.expected}
                for d in self.phase_deltas
            },
            "violations": list(self.violations),
        }


@dataclass
class _ExpectedPhases:
    """Analytically expected busy cycles per pipeline phase."""

    load: float = 0.0
    ring: float = 0.0
    compute: float = 0.0
    writeback: float = 0.0


def _expected_phases(model: TilePipelineModel, hw: HardwareConfig) -> _ExpectedPhases:
    """Expected per-phase busy cycles, summed over chiplets and iterations."""
    tech = hw.tech
    n = model.n_chiplets
    iters = model.iterations
    dram_bw = tech.dram_bandwidth_bits_per_cycle
    ring_bw = tech.ring_bandwidth_bits_per_cycle
    return _ExpectedPhases(
        load=(model.dram_load_bits / dram_bw) * n * iters,
        ring=(model.ring_bits / ring_bw) * n * iters if model.ring_bits else 0.0,
        compute=model.compute_cycles * n * iters,
        writeback=(model.writeback_bits / dram_bw) * n * iters,
    )


def _phase_deltas(trace: Trace, expected: _ExpectedPhases) -> tuple[PhaseDelta, ...]:
    """Per-phase simulated vs. expected busy cycles."""
    pairs = (
        ("load", Phase.DRAM_LOAD, expected.load),
        ("ring", Phase.RING_ROTATE, expected.ring),
        ("compute", Phase.COMPUTE, expected.compute),
        ("writeback", Phase.WRITEBACK, expected.writeback),
    )
    return tuple(
        PhaseDelta(phase=name, simulated=trace.busy_cycles(phase), expected=exp)
        for name, phase, exp in pairs
    )


def cross_validate(
    layer: ConvLayer,
    hw: HardwareConfig,
    mapping: Mapping,
    envelope: float = DEFAULT_ENVELOPE,
) -> CrossCheckResult:
    """Run the cost model and the DES side by side; reconcile the cycles.

    Args:
        layer: The workload layer.
        hw: The hardware instance.
        mapping: A legal mapping for (layer, hw).
        envelope: Allowed fractional excess of simulated over estimated
            cycles for uncontended configurations.

    Raises:
        InvalidMappingError: When the mapping is illegal (callers filter
            candidates through the mapper/space first).
    """
    report = evaluate_mapping(layer, hw, mapping)  # raises InvalidMappingError
    nest = LoopNest(layer=layer, hw=hw, mapping=mapping)
    trace = Trace()
    model = TilePipelineModel(nest, trace=trace)
    simulated = model.run()

    violations = list(check_run(model, simulated, trace))

    analytical = float(report.cycles)
    roofline = layer.macs / hw.total_macs
    uncontended = (
        mapping.rotation is RotationKind.NONE and model.conflict_bits == 0.0
    )

    # The bandwidth-aware estimate: whichever roof binds -- compute, the
    # DRAM channel, or (for rotating mappings) the per-link occupancy of
    # the package interconnect -- plus the pipeline fill (first load) and
    # drain (last writeback) the analytical model deliberately leaves out.
    dram_bw = hw.tech.dram_bandwidth_bits_per_cycle
    channel_cycles = (
        (model.dram_load_bits + model.writeback_bits + model.conflict_bits)
        * model.iterations
        / dram_bw
    )
    link_cycles = (
        model.ring_bits
        * model.iterations
        / hw.tech.ring_bandwidth_bits_per_cycle
    )
    fill = model.dram_load_bits / dram_bw
    drain = model.writeback_bits / dram_bw
    estimate = max(analytical, channel_cycles, link_cycles) + fill + drain

    if simulated < roofline - _CYCLE_EPS:
        violations.append(
            f"simulated cycles {simulated:.1f} below the roofline bound "
            f"{roofline:.1f} (impossible: more throughput than the hardware has)"
        )
    if simulated < analytical - _CYCLE_EPS:
        violations.append(
            f"simulated cycles {simulated:.1f} below the analytical compute "
            f"estimate {analytical:.1f} (the DES must include all compute)"
        )
    if uncontended and simulated > estimate * (1.0 + envelope) + _CYCLE_EPS:
        violations.append(
            f"uncontended divergence: simulated {simulated:.1f} cycles "
            f"exceeds the analytical estimate {estimate:.1f} by more than "
            f"the {envelope:.0%} envelope"
        )

    expected = _expected_phases(model, hw)
    return CrossCheckResult(
        layer_name=layer.name,
        mapping=mapping.describe(),
        analytical_cycles=analytical,
        roofline_cycles=roofline,
        estimate_cycles=estimate,
        simulated_cycles=simulated,
        uncontended=uncontended,
        envelope=envelope,
        phase_deltas=_phase_deltas(trace, expected),
        violations=tuple(violations),
    )


__all__ = [
    "DEFAULT_ENVELOPE",
    "CrossCheckResult",
    "PhaseDelta",
    "cross_validate",
    "InvalidMappingError",
]
