"""Consistency audit: cost-model vs. simulator cross-validation.

The analytical C3P cost model and the tile-pipeline DES describe the same
execution independently; this package reconciles them (cross-validation
harness), enforces runtime invariants over every simulated run (causality,
exclusive service, bits conservation), and drives the ``repro audit`` CLI
sweep whose JSON report gates CI.
"""

from repro.audit.crosscheck import (
    DEFAULT_ENVELOPE,
    CrossCheckResult,
    PhaseDelta,
    cross_validate,
)
from repro.audit.invariants import check_run
from repro.audit.report import AuditReport, ModelAudit
from repro.audit.runner import audit_model, run_audit, sample_mappings

__all__ = [
    "DEFAULT_ENVELOPE",
    "AuditReport",
    "CrossCheckResult",
    "ModelAudit",
    "PhaseDelta",
    "audit_model",
    "check_run",
    "cross_validate",
    "run_audit",
    "sample_mappings",
]
