"""Runtime invariant checks over a completed tile-pipeline run.

Three families of invariants, all of which must hold for *every* simulated
execution regardless of mapping or hardware:

* **causality** -- no pipeline phase starts before its dependencies end
  (:meth:`repro.sim.trace.Trace.validate`);
* **exclusive service** -- no two transfers overlap on one bandwidth
  server, and no server is busier than wall-clock
  (:meth:`repro.sim.resources.BandwidthResource.invariant_violations`);
* **bits conservation** -- the bits actually pushed through the DRAM
  channels and ring links equal what the engine derived from the analytical
  traffic assembly: nothing dropped, nothing double-served.

A violation in any family means the simulator and the cost model are no
longer describing the same execution, which is exactly the silent failure
mode this audit layer exists to catch.
"""

from __future__ import annotations

from repro.sim.engine import TilePipelineModel
from repro.sim.resources import ResourceInvariantError
from repro.sim.trace import Trace

#: Relative tolerance for conserved-bits comparisons.
_BITS_RTOL = 1e-9


def _expected_dram_bits(model: TilePipelineModel) -> float:
    """DRAM bits the engine should push, derived from its per-iteration plan."""
    per_chiplet = (
        model.dram_load_bits + model.writeback_bits + model.conflict_bits
    )
    return per_chiplet * model.iterations * model.n_chiplets


def _expected_ring_bits(model: TilePipelineModel) -> float:
    """Ring bits the engine should push across all links."""
    if model.ring_bits <= 0 or model.n_chiplets <= 1:
        return 0.0
    return model.ring_bits * model.iterations * model.n_chiplets


def check_run(
    model: TilePipelineModel, cycles: float, trace: Trace | None = None
) -> list[str]:
    """Audit one completed run; return every invariant violation found.

    Args:
        model: The pipeline model, after :meth:`~TilePipelineModel.run`.
        cycles: The completion time the run reported.
        trace: The execution trace, when one was collected.
    """
    violations: list[str] = []
    if trace is not None:
        violations.extend(trace.validate())

    for resource in [*model.dram_channels, *model.ring_links]:
        violations.extend(resource.invariant_violations())
        try:
            resource.utilization(cycles)
        except ResourceInvariantError as exc:
            violations.append(str(exc))

    dram_served = sum(c.bits_served for c in model.dram_channels)
    dram_expected = _expected_dram_bits(model)
    tol = _BITS_RTOL * max(dram_expected, 1.0)
    if abs(dram_served - dram_expected) > tol:
        violations.append(
            f"DRAM bits conservation broken: channels served "
            f"{dram_served:.3f} bits, the traffic model accounts for "
            f"{dram_expected:.3f}"
        )

    ring_served = sum(l.bits_served for l in model.ring_links)
    ring_expected = _expected_ring_bits(model)
    tol = _BITS_RTOL * max(ring_expected, 1.0)
    if abs(ring_served - ring_expected) > tol:
        violations.append(
            f"ring bits conservation broken: links served {ring_served:.3f} "
            f"bit-hops, the traffic model accounts for {ring_expected:.3f}"
        )
    return violations
