"""The audit sweep: registered models x a deterministic mapping sample.

For every audited layer the runner cross-checks a small, deterministic
sample of legal mappings -- always including the mapper's chosen best
mapping, plus evenly spaced candidates from the enumeration so both
uncontended and contended (rotating / halo-conflicted) configurations are
exercised.  Determinism matters: the audit runs in CI, so two runs over the
same tree must flag the same pairs.
"""

from __future__ import annotations

from repro import obs
from repro.arch.config import HardwareConfig
from repro.audit.crosscheck import DEFAULT_ENVELOPE, cross_validate
from repro.audit.report import AuditReport, ModelAudit
from repro.core.cost import InvalidMappingError
from repro.core.loopnest import LoopNest
from repro.core.mapper import Mapper
from repro.core.mapping import Mapping
from repro.core.primitives import RotationKind
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.layer import ConvLayer


def sample_mappings(
    layer: ConvLayer,
    hw: HardwareConfig,
    profile: SearchProfile,
    sample: int,
) -> list[Mapping]:
    """A deterministic sample of legal mappings for one layer.

    The mapper's best mapping always leads; the remainder are evenly spaced
    over the legal candidate enumeration (first and last included), so the
    sample covers the spread of the space without rerunning the full search.
    """
    if sample < 1:
        raise ValueError(f"sample must be >= 1, got {sample}")
    space = MappingSpace(hw, profile)
    legal = [
        m
        for m in space.unique_candidates(layer)
        if LoopNest(layer=layer, hw=hw, mapping=m).is_valid()
    ]
    chosen: list[Mapping] = []
    try:
        chosen.append(Mapper(hw=hw, profile=profile).search_layer(layer).mapping)
    except InvalidMappingError:
        pass
    extra = max(sample - len(chosen), 0)
    if legal and extra:
        if len(legal) <= extra:
            picks = legal
        else:
            step = (len(legal) - 1) / max(extra - 1, 1)
            picks = [legal[round(i * step)] for i in range(extra)]
        chosen.extend(p for p in picks if p not in chosen)
    # The pruned profiles always prefer rotation (it is strictly cheaper in
    # energy), but the envelope claim is made for *uncontended* runs -- so
    # audit each sampled mapping's no-rotation variant as well.
    for mapping in list(chosen):
        plain = mapping.with_rotation(RotationKind.NONE)
        if plain not in chosen:
            chosen.append(plain)
    return chosen


def audit_model(
    name: str,
    layers: list[ConvLayer],
    hw: HardwareConfig,
    profile: SearchProfile = SearchProfile.MINIMAL,
    sample: int = 3,
    envelope: float = DEFAULT_ENVELOPE,
    max_layers: int | None = None,
) -> ModelAudit:
    """Cross-check one model's layers against the mapping sample."""
    audited = ModelAudit(model=name)
    picked = layers
    if max_layers is not None and 0 < max_layers < len(layers):
        step = (len(layers) - 1) / max(max_layers - 1, 1)
        picked = [layers[round(i * step)] for i in range(max_layers)]
    with obs.span("audit.model", model=name, layers=len(picked)):
        for layer in picked:
            for mapping in sample_mappings(layer, hw, profile, sample):
                audited.results.append(
                    cross_validate(layer, hw, mapping, envelope=envelope)
                )
    obs.count("audit.layers", len(picked))
    obs.count("audit.pairs", len(audited.results))
    return audited


def run_audit(
    models: dict[str, list[ConvLayer]],
    hw: HardwareConfig,
    profile: SearchProfile = SearchProfile.MINIMAL,
    sample: int = 3,
    envelope: float = DEFAULT_ENVELOPE,
    max_layers: int | None = None,
) -> AuditReport:
    """Audit every model in ``models``; return the aggregated report."""
    report = AuditReport(
        hw_label=hw.label(), profile=profile.value, envelope=envelope
    )
    with obs.span("audit.run", models=len(models)):
        for name in sorted(models):
            report.models.append(
                audit_model(
                    name,
                    models[name],
                    hw,
                    profile=profile,
                    sample=sample,
                    envelope=envelope,
                    max_layers=max_layers,
                )
            )
    obs.count("audit.models", len(models))
    return report
