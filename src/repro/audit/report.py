"""The audit report: aggregate cross-check results, serialize, summarize.

``repro audit`` sweeps registered models against a mapping sample and emits
one :class:`AuditReport` as JSON; the CI audit job fails the build when the
report carries any violation, and benchmarks archive the JSON next to the
reproduced figures so every run documents that the cost model and the
simulator still agree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.crosscheck import CrossCheckResult


@dataclass
class ModelAudit:
    """All cross-check results of one model."""

    model: str
    results: list[CrossCheckResult] = field(default_factory=list)

    @property
    def checked(self) -> int:
        """Audited (layer, mapping) pairs."""
        return len(self.results)

    @property
    def flagged(self) -> list[CrossCheckResult]:
        """Pairs with invariant violations or out-of-envelope divergence."""
        return [r for r in self.results if r.flagged]

    @property
    def violation_count(self) -> int:
        """Total violations across this model's pairs."""
        return sum(len(r.violations) for r in self.results)

    @property
    def worst_ratio(self) -> float:
        """Largest simulated/estimated ratio among uncontended pairs."""
        ratios = [r.ratio for r in self.results if r.uncontended]
        return max(ratios, default=0.0)


@dataclass
class AuditReport:
    """One full audit sweep: models x layers x sampled mappings."""

    hw_label: str
    profile: str
    envelope: float
    models: list[ModelAudit] = field(default_factory=list)

    @property
    def checked(self) -> int:
        """Total audited pairs."""
        return sum(m.checked for m in self.models)

    @property
    def flagged(self) -> list[CrossCheckResult]:
        """Every flagged pair across all models."""
        return [r for m in self.models for r in m.flagged]

    @property
    def violation_count(self) -> int:
        """Total violations across the sweep."""
        return sum(m.violation_count for m in self.models)

    @property
    def ok(self) -> bool:
        """Whether the whole sweep is clean."""
        return self.violation_count == 0

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "hardware": self.hw_label,
            "profile": self.profile,
            "envelope": self.envelope,
            "checked": self.checked,
            "violations": self.violation_count,
            "ok": self.ok,
            "models": {
                m.model: {
                    "checked": m.checked,
                    "flagged": len(m.flagged),
                    "worst_uncontended_ratio": m.worst_ratio,
                    "results": [r.to_dict() for r in m.results],
                }
                for m in self.models
            },
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the report to ``path`` (parent directories created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    def summary(self) -> str:
        """Human-readable sweep summary with divergence details."""
        lines = [
            f"Consistency audit on {self.hw_label} "
            f"(profile {self.profile}, envelope {self.envelope:.0%}):"
        ]
        for model in self.models:
            status = "ok" if not model.flagged else f"{len(model.flagged)} FLAGGED"
            lines.append(
                f"  {model.model}: {model.checked} pairs checked, "
                f"worst uncontended ratio {model.worst_ratio:.3f} -- {status}"
            )
        if self.flagged:
            lines.append("")
            lines.append("Flagged pairs:")
            for result in self.flagged:
                lines.append(result.describe())
        else:
            lines.append(
                f"All {self.checked} pairs consistent: zero invariant "
                "violations, all uncontended pairs within envelope."
            )
        return "\n".join(lines)
