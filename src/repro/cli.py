"""Command-line interface for the NN-Baton tool.

Subcommands mirror the paper's two flows plus inspection helpers::

    python -m repro models                         # registered workloads
    python -m repro table1                         # the energy table
    python -m repro map resnet50 --hw 4-8-8-8      # post-design flow
    python -m repro compare vgg16 --resolution 512 # vs the Simba baseline
    python -m repro explore --macs 2048 --area 2.0 # pre-design flow
    python -m repro profile mobilenetv2            # spans + counters

``explore`` is also reachable as ``dse``.  ``map``, ``explore``/``dse``,
``audit`` and ``profile`` accept ``--trace-out`` (Chrome trace-event JSON,
opens in Perfetto) and ``--metrics-out`` (counters/gauges JSON); either flag
installs a live :mod:`repro.obs` recorder for the run.
"""

from __future__ import annotations

import argparse
import json
import os
import sqlite3
import sys
from pathlib import Path
from typing import NoReturn

from repro import obs
from repro.obs.progress import progress_enabled
from repro.errors import (
    EXIT_INTERRUPT,
    EXIT_USAGE,
    ReproError,
    error_code_for,
    exit_code_for,
)
from repro.analysis.reporting import (
    format_failures,
    format_profile,
    format_search_stats,
    format_table,
)
from repro.arch.config import build_hardware, case_study_hardware
from repro.arch.technology import TABLE_I
from repro.arch.topology import Topology
from repro.core.baton import NNBaton
from repro.core.cache import MappingCache
from repro.core.checkpoint import CHECKPOINT_DIR_ENV, SweepCheckpoint
from repro.core.parallel import SweepStats, TaskPolicy
from repro.core.serialize import compiler_report
from repro.core.space import SearchProfile
from repro.simba import evaluate_simba_model
from repro.workloads.registry import get_model, list_models


def _parse_hw(spec: str):
    """Parse a ``chiplets-cores-lanes-vector`` tuple into hardware."""
    if spec == "case-study":
        return case_study_hardware()
    parts = spec.split("-")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"hardware spec must be N_P-N_C-L-P (e.g. 4-8-8-8), got {spec!r}"
        )
    try:
        chiplets, cores, lanes, vector = (int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return build_hardware(chiplets, cores, lanes, vector)


def _parse_jobs(spec: str) -> int:
    try:
        jobs = int(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid int value: {spec!r}") from exc
    if jobs < 0:
        raise argparse.ArgumentTypeError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _add_topology_flag(cmd: argparse.ArgumentParser) -> None:
    """Register ``--topology`` (package interconnect) on a subcommand."""
    cmd.add_argument(
        "--topology", choices=[t.value for t in Topology], default=None,
        help="package interconnect for the machine (default: the ring, or "
        "whatever an --hw-file specifies)",
    )


def cmd_models(args: argparse.Namespace) -> int:
    """List registered models with their headline statistics."""
    from repro.workloads.stats import ModelStats

    rows = []
    for name in list_models():
        layers = get_model(name, args.resolution)
        stats = ModelStats.of(name, layers)
        rows.append(
            [
                name,
                stats.layers,
                f"{stats.total_macs / 1e9:.2f}",
                f"{stats.total_weights / 1e6:.1f}",
                sum(1 for l in layers if l.groups > 1),
                f"{stats.mean_arithmetic_intensity:.1f}",
            ]
        )
    print(
        format_table(
            ["Model", "Layers", "GMACs", "MParams", "Grouped", "AI MAC/B"],
            rows,
            title=f"Registered workloads @ {args.resolution}x{args.resolution}",
        )
    )
    if args.detail:
        for name in list_models():
            print()
            layers = get_model(name, args.resolution)
            print(ModelStats.of(name, layers).describe())
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Print the Table I operation energies."""
    print(
        format_table(
            ["Operation", "pJ/bit", "Relative"],
            [
                [r.name, f"{r.energy_pj_per_bit:.3f}", f"{r.relative_cost:.2f}x"]
                for r in TABLE_I
            ],
            title="Table I -- 16 nm operation energies",
        )
    )
    return 0


def _fail(message: str) -> "NoReturn":
    """Print a one-line error and exit with the usage-error code (2)."""
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(EXIT_USAGE)


def _get_model(name: str, resolution: int):
    """Resolve a registry model name, exiting cleanly when unknown."""
    try:
        return get_model(name, resolution)
    except KeyError:
        _fail(
            f"unknown model {name!r}; registered models: "
            f"{', '.join(list_models())} (use --model-file for a JSON file)"
        )


def _resolve_model(args: argparse.Namespace):
    """Resolve the workload: --model-file wins over the registry name.

    A registry name that is not registered exits with code 2 and a one-line
    error; only ``--model-file`` arguments are treated as files.
    """
    if getattr(args, "model_file", None):
        from repro.workloads.io import load_model_file

        path = Path(args.model_file)
        if not path.is_file():
            _fail(f"model file not found: {args.model_file}")
        return load_model_file(args.model_file), path.stem
    return _get_model(args.model, args.resolution), args.model


def _resolve_hw(args: argparse.Namespace):
    """Pick the hardware: --hw-file wins over the --hw tuple.

    ``--topology`` (when the command exposes it) rebuilds the package
    around the requested interconnect; it applies to ``--hw`` tuples and
    the case-study machine, while an explicit ``--hw-file`` carries its
    own topology field and is left untouched.
    """
    if getattr(args, "hw_file", None):
        from repro.arch.io import load_hardware

        return load_hardware(args.hw_file)
    hw = args.hw
    topology = getattr(args, "topology", None)
    if topology is not None:
        from dataclasses import replace

        hw = replace(
            hw, package=replace(hw.package, topology=Topology(topology))
        )
    return hw


def cmd_map(args: argparse.Namespace) -> int:
    """Run the post-design flow for one model on one hardware instance."""
    from repro.core.mapper import Mapper, edp_objective, energy_objective
    from repro.core.cost import model_cost
    from repro.core.baton import PostDesignResult

    hw = _resolve_hw(args)
    layers, model_name = _resolve_model(args)
    objective = edp_objective if args.objective == "edp" else energy_objective
    cache = (
        MappingCache(args.cache_dir) if args.cache_dir else MappingCache.from_env()
    )
    stats = SweepStats()
    mapper = Mapper(
        hw=hw,
        profile=SearchProfile(args.profile),
        objective=objective,
        cache=cache,
    )
    results = mapper.search_model(layers, jobs=args.jobs, stats=stats)
    energy, cycles, edp = model_cost([r.best for r in results], hw)
    result = PostDesignResult(
        hw=hw, layers=tuple(results), energy=energy, cycles=cycles, edp_js=edp
    )

    rows = [
        [
            r.layer.name,
            r.mapping.describe(),
            f"{r.best.energy_pj / 1e9:.3f}",
            f"{r.best.utilization:.0%}",
        ]
        for r in result.layers
    ]
    print(
        format_table(
            ["Layer", "Mapping", "mJ", "Util"],
            rows,
            title=f"Post-design flow: {model_name}@{args.resolution} on {hw.label()}",
        )
    )
    print(
        f"\nTotal: {result.energy_pj / 1e9:.2f} mJ, "
        f"{result.cycles:,} cycles ({result.runtime_s() * 1e3:.2f} ms), "
        f"EDP {result.edp_js:.3e} Js"
    )
    print(format_search_stats(stats))
    print(f"Mapping cache: {cache.describe()}")

    if args.json:
        reports = [
            compiler_report(r.layer, hw, r.mapping) for r in result.layers
        ]
        with open(args.json, "w") as handle:
            json.dump(
                {
                    "hardware": hw.label(),
                    "model": model_name,
                    "resolution": args.resolution,
                    "total_energy_pj": result.energy_pj,
                    "total_cycles": result.cycles,
                    "layers": reports,
                },
                handle,
                indent=2,
            )
        print(f"Wrote compiler report to {args.json}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Compare NN-Baton against the Simba baseline on one model."""
    hw = _resolve_hw(args)
    layers = _get_model(args.model, args.resolution)
    baton = NNBaton(profile=SearchProfile(args.profile))
    result = baton.post_design(layers, hw)
    simba_energy, simba_cycles, _ = evaluate_simba_model(layers, hw)
    saving = 1 - result.energy_pj / simba_energy.total_pj
    print(
        format_table(
            ["", "Energy mJ", "Cycles"],
            [
                ["Simba baseline", f"{simba_energy.total_pj / 1e9:.2f}", f"{simba_cycles:,}"],
                ["NN-Baton", f"{result.energy_pj / 1e9:.2f}", f"{result.cycles:,}"],
            ],
            title=f"{args.model}@{args.resolution} on {hw.label()}",
        )
    )
    print(f"\nEnergy saving: {saving:.1%} (paper: 22.5%~44% across models)")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Run the pre-design flow under MAC and area budgets."""
    models = {
        name: _get_model(name, args.resolution)
        for name in args.models.split(",")
    }
    baton = NNBaton()
    stats = SweepStats()
    policy = None
    if (
        args.on_error != "abort"
        or args.timeout is not None
        or args.max_attempts != 3
    ):
        policy = TaskPolicy(
            timeout_s=args.timeout,
            max_attempts=args.max_attempts,
            on_error=args.on_error,
        )
    guided = args.strategy == "guided"
    if guided and args.trials is None:
        print("--strategy guided requires --trials", file=sys.stderr)
        return 2
    if not guided and (args.trials is not None or args.study is not None):
        print(
            "--trials/--study only apply to --strategy guided",
            file=sys.stderr,
        )
        return 2
    if guided and args.stride not in (None, 1):
        print(
            "--strategy guided samples the full memory lattice; "
            "drop --stride (or pass --stride 1)",
            file=sys.stderr,
        )
        return 2
    stride = args.stride if args.stride is not None else (1 if guided else 8)
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and (
        args.checkpoint
        or args.resume
        or os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    ):
        checkpoint_dir = SweepCheckpoint.resolve_dir(None)
    if guided and (checkpoint_dir is not None or args.resume):
        print(
            "--strategy guided persists through --study, not the sweep "
            "checkpoint; drop --checkpoint/--checkpoint-dir/--resume",
            file=sys.stderr,
        )
        return 2
    meter = None
    if progress_enabled(getattr(args, "progress", None)):
        from repro.obs.progress import ProgressMeter

        meter = ProgressMeter(
            total=args.trials if guided else None,
            label="guided" if guided else "explore",
        )
    try:
        result = baton.pre_design(
            models,
            required_macs=args.macs,
            max_chiplet_mm2=args.area,
            topology=Topology(args.topology) if args.topology else Topology.RING,
            memory_stride=stride,
            profile=SearchProfile(args.profile),
            jobs=args.jobs,
            stats=stats,
            policy=policy,
            checkpoint_dir=checkpoint_dir,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            strategy=args.strategy,
            trials=args.trials,
            study=args.study,
            seed=args.seed,
            progress=meter,
        )
    except KeyboardInterrupt:
        # explore() has already flushed the sweep checkpoint (or the guided
        # study) on its way out; report where the run can pick up and exit
        # like SIGINT.
        print()
        print("Interrupted.", file=sys.stderr)
        if checkpoint_dir is not None:
            print(
                f"Partial results checkpointed under {checkpoint_dir}; "
                "re-run with --resume to continue.",
                file=sys.stderr,
            )
        if guided and args.study is not None:
            print(
                f"Completed trials persisted to {args.study}; re-run the "
                "same command to resume.",
                file=sys.stderr,
            )
        return 130
    finally:
        if meter is not None:
            meter.finish()
    print(
        f"Swept {result.swept} design points; "
        f"{len(result.valid_points)} valid evaluated."
    )
    print(format_search_stats(stats))
    if stats.failures:
        print(format_failures(stats.failures))
    if args.json:
        def _point_entry(point):
            return {
                "config": point.label,
                "chiplets": point.hw.n_chiplets,
                "chiplet_area_mm2": point.chiplet_area_mm2,
                "memory": {
                    "a_l1_bytes": point.hw.memory.a_l1_bytes,
                    "w_l1_bytes": point.hw.memory.w_l1_bytes,
                    "o_l1_bytes": point.hw.memory.o_l1_bytes,
                    "a_l2_bytes": point.hw.memory.a_l2_bytes,
                },
                "energy_pj": {m: point.energy_pj[m] for m in sorted(models)},
                "cycles": {m: point.cycles[m] for m in sorted(models)},
            }

        payload = {
            "macs": args.macs,
            "max_chiplet_mm2": args.area,
            "memory_stride": stride,
            "models": sorted(models),
            "resolution": args.resolution,
            "strategy": args.strategy,
            "seed": args.seed if guided else None,
            "trials": args.trials,
            # Run-provenance counters stay out of exhaustive payloads:
            # interrupted-and-resumed sweeps must stay byte-identical to
            # clean ones (the fault-injection contract).  A guided payload
            # is defined by its trajectory, so there they are semantics.
            "search": (
                {
                    "evaluated": stats.points_evaluated,
                    "pruned": stats.points_pruned,
                    "deduped": stats.points_deduped,
                    "resumed": stats.points_resumed,
                    "proposed": stats.points_total,
                }
                if guided
                else None
            ),
            "swept": result.swept,
            "recommended": (
                result.recommended.label if result.recommended else None
            ),
            "recommended_point": (
                _point_entry(result.recommended)
                if result.recommended
                else None
            ),
            "valid_points": [
                _point_entry(point) for point in result.valid_points
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"Wrote sweep results to {args.json}")
    if result.recommended is None:
        print("No design satisfies the budgets.")
        return 1
    best = result.recommended
    mem = best.hw.memory
    print(
        f"Recommended: {best.label} "
        f"(chiplet {best.chiplet_area_mm2:.2f} mm^2; "
        f"A-L1 {mem.a_l1_bytes} B, W-L1 {mem.w_l1_bytes} B, "
        f"A-L2 {mem.a_l2_bytes} B)"
    )
    for model in models:
        print(
            f"  {model}: {best.energy_pj[model] / 1e9:.2f} mJ, "
            f"{best.runtime_s(model) * 1e3:.2f} ms, EDP {best.edp(model):.3e} Js"
        )
    if args.csv:
        import csv as csv_module

        with open(args.csv, "w", newline="") as handle:
            writer = csv_module.writer(handle)
            writer.writerow(
                ["config", "chiplets", "area_mm2"]
                + [f"energy_pj[{m}]" for m in models]
                + [f"edp_js[{m}]" for m in models]
            )
            for point in result.valid_points:
                writer.writerow(
                    [point.label, point.hw.n_chiplets, f"{point.chiplet_area_mm2:.4f}"]
                    + [f"{point.energy_pj[m]:.1f}" for m in models]
                    + [f"{point.edp(m):.6g}" for m in models]
                )
        print(f"Wrote {len(result.valid_points)} valid points to {args.csv}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Cross-validate the cost model against the simulator; emit the report."""
    from repro.audit import DEFAULT_ENVELOPE, run_audit

    hw = _resolve_hw(args)
    names = args.models.split(",") if args.models else list_models()
    models = {name: _get_model(name, args.resolution) for name in names}
    report = run_audit(
        models,
        hw,
        profile=SearchProfile(args.profile),
        sample=args.sample,
        envelope=args.envelope if args.envelope is not None else DEFAULT_ENVELOPE,
        max_layers=args.max_layers,
    )
    print(report.summary())
    if args.json:
        target = report.write_json(args.json)
        print(f"Wrote audit report to {target}")
    return 0 if report.ok else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one model's post-design flow (always under a live recorder)."""
    from repro.core.cost import model_cost
    from repro.core.mapper import Mapper

    hw = _resolve_hw(args)
    layers, model_name = _resolve_model(args)
    recorder = obs.get_recorder()
    cache = (
        MappingCache(args.cache_dir) if args.cache_dir else MappingCache()
    )
    mapper = Mapper(hw=hw, profile=SearchProfile(args.profile), cache=cache)
    results = mapper.search_model(layers, jobs=args.jobs)
    energy, cycles, _ = model_cost([r.best for r in results], hw)
    if args.simulate:
        from repro.sim.runtime import simulate_runtime

        for r in results:
            simulate_runtime(r.layer, hw, r.mapping)
    print(
        f"Profiled {model_name}@{args.resolution} on {hw.label()}: "
        f"{energy.total_pj / 1e9:.2f} mJ, {int(cycles):,} cycles"
    )
    print()
    print(format_profile(recorder, top=args.top, sort=args.sort))
    if args.json:
        payload = {
            "model": model_name,
            "resolution": args.resolution,
            "hardware": hw.label(),
            "energy_pj": energy.total_pj,
            "cycles": int(cycles),
            "spans": {
                path: {"calls": count, "total_ns": total_ns}
                for path, (count, total_ns) in recorder.aggregate_spans().items()
            },
            "counters": recorder.metrics.counters(),
            "gauges": recorder.metrics.gauges(),
            "histograms": recorder.metrics.as_dict()["histograms"],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"Wrote profile JSON to {args.json}")
    return 0


def _format_event_line(event: dict, t0: float) -> str:
    """One human timeline line: offset, event name, payload fields."""
    t = event.get("t")
    offset = f"+{t - t0:9.3f}s" if isinstance(t, (int, float)) else " " * 11
    fields = " ".join(
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in ("v", "run", "seq", "pid", "t", "event")
    )
    name = str(event.get("event", "?"))
    return f"{offset}  {name:<18} {fields}".rstrip()


def cmd_tail(args: argparse.Namespace) -> int:
    """Render a run's event log as a human timeline (optionally following)."""
    import time as time_mod

    from repro.obs.events import load_events, resolve_events_path

    path = resolve_events_path(args.target)
    if not path.exists() and not args.follow:
        _fail(f"no event log at {path}")
    events, corrupt = load_events(path)
    if events:
        run_id = events[0].get("run", "?")
        print(f"run {run_id} -- {len(events)} event(s) from {path}")
    else:
        print(f"empty event log at {path}")
    if corrupt:
        print(
            f"warning: tolerated {corrupt} undecodable line(s) "
            "(torn tail or foreign schema)",
            file=sys.stderr,
        )
    t0 = next(
        (e["t"] for e in events if isinstance(e.get("t"), (int, float))), 0.0
    )
    for event in events:
        print(_format_event_line(event, t0))
    if not args.follow:
        return 0
    # Follow mode: poll for complete new lines (a torn tail stays pending
    # until its newline arrives), like `tail -f`.  Ctrl-C exits cleanly.
    import json as json_mod

    offset = path.stat().st_size if path.exists() else 0
    pending = ""
    try:
        while True:
            time_mod.sleep(args.poll_interval)
            if not path.exists():
                continue
            size = path.stat().st_size
            if size <= offset:
                continue
            with open(path, "r") as handle:
                handle.seek(offset)
                pending += handle.read()
            offset = size
            while "\n" in pending:
                line, pending = pending.split("\n", 1)
                try:
                    event = json_mod.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    if not events:
                        t0 = event.get("t", 0.0)
                    events.append(event)
                    print(_format_event_line(event, t0), flush=True)
    except KeyboardInterrupt:
        print(file=sys.stderr)
        return 0


def _repo_root() -> Path:
    """The checkout root (the directory holding ``src`` and ``benchmarks``)."""
    import repro

    return Path(repro.__file__).resolve().parents[2]


def _run_bench(args: argparse.Namespace) -> int:
    """``repro bench``: repeat the benchmark suite, emit a structured record."""
    import shutil
    import tempfile

    from repro.obs import bench as bench_mod
    from repro.obs.goldens import fidelity_block

    root = _repo_root()
    bench_dir = Path(args.benchmarks_dir) if args.benchmarks_dir else root / "benchmarks"
    if not bench_dir.is_dir():
        _fail(f"benchmark directory not found: {bench_dir}")
    if args.repeats < 1:
        _fail(f"--repeats must be >= 1, got {args.repeats}")
    if args.warmup < 0:
        _fail(f"--warmup must be >= 0, got {args.warmup}")

    env = dict(os.environ)
    src_dir = Path(__file__).resolve().parents[1]
    env["PYTHONPATH"] = str(src_dir) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_BENCH_PROFILE"] = args.profile
    env["REPRO_FIG15_STRIDE"] = str(args.stride)
    if args.jobs is not None:
        env["REPRO_JOBS"] = str(args.jobs)

    import subprocess

    staging = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    total = args.warmup + args.repeats
    fragment_runs = []
    try:
        for index in range(total):
            run_dir = staging / f"run{index}"
            env[bench_mod.RECORD_DIR_ENV] = str(run_dir)
            cmd = [
                sys.executable,
                "-m",
                "pytest",
                str(bench_dir),
                "-q",
                "--benchmark-disable",
                "-p",
                "no:cacheprovider",
            ]
            if args.select:
                cmd += ["-k", args.select]
            kind = "warmup" if index < args.warmup else "repeat"
            print(f"bench run {index + 1}/{total} ({kind}) ...", flush=True)
            proc = subprocess.run(
                cmd, cwd=root, env=env, capture_output=True, text=True
            )
            tail = proc.stdout.strip().splitlines()
            if tail:
                print(f"  {tail[-1]}")
            if proc.returncode != 0:
                print(proc.stdout, file=sys.stderr)
                print(proc.stderr, file=sys.stderr)
                print(
                    f"repro: error: benchmark run exited {proc.returncode}",
                    file=sys.stderr,
                )
                return 1
            fragments = bench_mod.load_fragments(run_dir)
            if not fragments:
                print(
                    "repro: error: benchmark run produced no structured "
                    "records (is the record_bench fixture wired up?)",
                    file=sys.stderr,
                )
                return 1
            fragment_runs.append(fragments)
    finally:
        shutil.rmtree(staging, ignore_errors=True)

    kept = fragment_runs[args.warmup :]
    fidelity = fidelity_block(tol=args.fidelity_tol)
    record = bench_mod.assemble_record(
        kept,
        config={
            "profile": args.profile,
            "stride": args.stride,
            "jobs": args.jobs,
            "repeats": args.repeats,
            "warmup": args.warmup,
            "select": args.select,
        },
        fidelity=fidelity,
    )
    out = Path(args.out) if args.out else root / (
        f"BENCH_{bench_mod.git_sha(short=True)}.json"
    )
    bench_mod.write_record(record, out)
    print(f"Wrote bench record ({len(record['benches'])} benches) to {out}")
    if not args.no_history:
        history = Path(args.history) if args.history else (
            bench_dir / "results" / "history.jsonl"
        )
        bench_mod.append_history(record, history)
        print(f"Appended to {history}")
    if not fidelity["ok"]:
        drifted = [
            name
            for name, entry in fidelity["goldens"].items()
            if abs(entry["deviation"]) > args.fidelity_tol
        ]
        print(
            f"repro: error: {len(drifted)} paper golden(s) drifted: "
            + ", ".join(drifted),
            file=sys.stderr,
        )
        return 1
    print("Fidelity: every paper golden reproduced exactly.")
    return 0


def _compare_bench(args: argparse.Namespace) -> int:
    """``repro bench compare``: gate a new record against an old one."""
    from repro.obs import bench as bench_mod

    try:
        old = bench_mod.load_record(args.old)
        new = bench_mod.load_record(args.new)
    except (OSError, ValueError) as exc:
        _fail(str(exc))
    try:
        report = bench_mod.compare_records(
            old,
            new,
            k=args.k,
            rel_floor=args.rel_floor,
            min_delta_s=args.min_delta_s,
            fidelity_tol=args.fidelity_tol,
            gate_counters=args.gate_counter,
        )
    except ValueError as exc:
        _fail(str(exc))
    print(report.summary())
    if not report.fidelity_ok:
        return 1
    if not report.counters_ok:
        return 1
    if not report.perf_ok:
        if args.perf == "advisory":
            print(
                "Perf regressions are advisory on this runner (--perf advisory)."
            )
            return 0
        return 1
    return 0


def _report_bench(args: argparse.Namespace) -> int:
    """``repro bench report``: render the history into markdown/HTML."""
    from repro.obs import bench as bench_mod
    from repro.obs.report import render_html, render_markdown

    history = Path(args.history) if args.history else (
        _repo_root() / "benchmarks" / "results" / "history.jsonl"
    )
    records, corrupt = bench_mod.load_history(history)
    if corrupt:
        print(
            f"warning: tolerated {corrupt} undecodable history line(s)",
            file=sys.stderr,
        )
    if not records:
        print(f"No bench history at {history}; run `repro bench` first.")
        return 1
    render = render_html if args.format == "html" else render_markdown
    text = render(records, max_runs=args.max_runs)
    if args.out:
        Path(args.out).write_text(text + ("\n" if not text.endswith("\n") else ""))
        print(f"Wrote bench report ({len(records)} run(s)) to {args.out}")
    else:
        print(text)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Dispatch the ``repro bench`` action (default: run the suite)."""
    if args.bench_action == "compare":
        return _compare_bench(args)
    if args.bench_action == "report":
        return _report_bench(args)
    return _run_bench(args)


def _add_obs_flags(cmd: argparse.ArgumentParser) -> None:
    """The observability export flags shared by the flow subcommands."""
    cmd.add_argument(
        "--trace-out",
        help="write a Chrome trace-event JSON of this run "
        "(open in https://ui.perfetto.dev)",
    )
    cmd.add_argument(
        "--metrics-out",
        help="write the run's counters, gauges and histograms as JSON",
    )
    cmd.add_argument(
        "--metrics-prom",
        help="write the run's metrics in Prometheus text exposition format",
    )
    cmd.add_argument(
        "--events-out",
        help="stream the run's lifecycle event log (schema-versioned "
        "JSONL) to this file or directory; read it with `repro tail`",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NN-Baton: DNN workload orchestration and chiplet granularity exploration",
        # No prefix abbreviation: `--model nope` must not silently resolve
        # to --model-file and then fail as a file read.
        allow_abbrev=False,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser(
        "models", help="list registered workloads", allow_abbrev=False
    )
    models.add_argument("--resolution", type=int, default=224)
    models.add_argument(
        "--detail", action="store_true", help="print per-model category histograms"
    )
    models.set_defaults(func=cmd_models)

    table1 = sub.add_parser(
        "table1", help="print the Table I energies", allow_abbrev=False
    )
    table1.set_defaults(func=cmd_table1)

    map_cmd = sub.add_parser(
        "map", help="post-design flow: map a model", allow_abbrev=False
    )
    map_cmd.add_argument("model", nargs="?", default="resnet50")
    map_cmd.add_argument("--hw", type=_parse_hw, default="case-study")
    map_cmd.add_argument("--hw-file", help="load the machine from a JSON file")
    _add_topology_flag(map_cmd)
    map_cmd.add_argument(
        "--model-file", help="load the workload from a JSON layer list"
    )
    map_cmd.add_argument("--resolution", type=int, default=224)
    map_cmd.add_argument(
        "--profile", choices=[p.value for p in SearchProfile], default="fast"
    )
    map_cmd.add_argument(
        "--objective", choices=["energy", "edp"], default="energy",
        help="per-layer search objective",
    )
    map_cmd.add_argument("--json", help="write the compiler report to this path")
    map_cmd.add_argument(
        "--jobs", type=_parse_jobs, default=None,
        help="worker processes for the layer search "
        "(default: $REPRO_JOBS, then serial; 0 = all cores)",
    )
    map_cmd.add_argument(
        "--cache-dir",
        help="persist the mapping cache under this directory "
        "(default: $REPRO_CACHE_DIR, else memory-only)",
    )
    _add_obs_flags(map_cmd)
    map_cmd.set_defaults(func=cmd_map)

    compare = sub.add_parser(
        "compare", help="compare against the Simba baseline", allow_abbrev=False
    )
    compare.add_argument("model")
    compare.add_argument("--hw", type=_parse_hw, default="case-study")
    compare.add_argument("--hw-file", help="load the machine from a JSON file")
    _add_topology_flag(compare)
    compare.add_argument("--resolution", type=int, default=224)
    compare.add_argument(
        "--profile", choices=[p.value for p in SearchProfile], default="fast"
    )
    compare.set_defaults(func=cmd_compare)

    explore = sub.add_parser(
        "explore",
        aliases=["dse"],
        help="pre-design flow: explore the design space (alias: dse)",
        allow_abbrev=False,
    )
    explore.add_argument("--macs", type=int, required=True)
    explore.add_argument("--area", type=float, default=None)
    explore.add_argument("--models", default="resnet50")
    explore.add_argument("--resolution", type=int, default=224)
    explore.add_argument(
        "--stride", type=int, default=None,
        help="evaluate every Nth memory combination (exhaustive only; "
        "default: 8)",
    )
    explore.add_argument(
        "--strategy", choices=["exhaustive", "guided"], default="exhaustive",
        help="exhaustive: sweep every point (default, the paper's oracle); "
        "guided: seeded ask/tell optimizer with dominance pruning",
    )
    explore.add_argument(
        "--trials", type=int, default=None,
        help="guided only: full-evaluation budget (required with "
        "--strategy guided)",
    )
    explore.add_argument(
        "--study", default=None,
        help="guided only: sqlite study file persisting completed trials "
        "so an interrupted search resumes",
    )
    explore.add_argument(
        "--seed", type=int, default=0,
        help="guided only: sampler seed; the same seed replays the same "
        "trial sequence at every --jobs count (default: 0)",
    )
    explore.add_argument(
        "--profile", choices=[p.value for p in SearchProfile], default="minimal"
    )
    _add_topology_flag(explore)
    explore.add_argument("--csv", help="export valid design points to this CSV")
    explore.add_argument(
        "--json",
        help="export the sweep result (valid points + recommendation) to "
        "this JSON file, byte-identical at every --jobs count",
    )
    explore.add_argument(
        "--jobs", type=_parse_jobs, default=None,
        help="worker processes fanning sweep points out "
        "(default: $REPRO_JOBS, then serial; 0 = all cores)",
    )
    explore.add_argument(
        "--on-error", choices=["abort", "skip"], default="abort",
        help="abort: first task failure stops the sweep (default); "
        "skip: record the failure and keep sweeping",
    )
    explore.add_argument(
        "--timeout", type=float, default=None,
        help="per-task wall-clock budget in seconds (parallel runs only); "
        "overdue workers are killed and the task retried",
    )
    explore.add_argument(
        "--max-attempts", type=int, default=3,
        help="total tries per task for crash-only faults (default: 3)",
    )
    explore.add_argument(
        "--checkpoint", action="store_true",
        help="stream completed points to a sweep checkpoint under "
        "$REPRO_CHECKPOINT_DIR (or .repro_checkpoints)",
    )
    explore.add_argument(
        "--checkpoint-dir", default=None,
        help="stream completed points to a sweep checkpoint under this "
        "directory (implies --checkpoint)",
    )
    explore.add_argument(
        "--checkpoint-every", type=int, default=16,
        help="completed points buffered per checkpoint flush (default: 16)",
    )
    explore.add_argument(
        "--resume", action="store_true",
        help="skip points already answered by the sweep checkpoint "
        "(implies --checkpoint)",
    )
    explore.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="live stderr progress meter (done/total, rate, ETA); "
        "renders only on a TTY and never touches stdout "
        "(--no-progress forces it off)",
    )
    _add_obs_flags(explore)
    explore.set_defaults(func=cmd_explore)

    audit = sub.add_parser(
        "audit",
        help="cross-validate the cost model against the simulator",
        allow_abbrev=False,
    )
    audit.add_argument(
        "--models", default=None,
        help="comma-separated registry names (default: every registered model)",
    )
    audit.add_argument("--hw", type=_parse_hw, default="case-study")
    audit.add_argument("--hw-file", help="load the machine from a JSON file")
    _add_topology_flag(audit)
    audit.add_argument("--resolution", type=int, default=224)
    audit.add_argument(
        "--profile", choices=[p.value for p in SearchProfile], default="minimal"
    )
    audit.add_argument(
        "--sample", type=int, default=3,
        help="mappings sampled per layer (plus their no-rotation variants)",
    )
    audit.add_argument(
        "--envelope", type=float, default=None,
        help="allowed fractional excess of simulated over estimated cycles "
        "for uncontended pairs (default: 0.05)",
    )
    audit.add_argument(
        "--max-layers", type=int, default=None,
        help="audit at most this many evenly spaced layers per model",
    )
    audit.add_argument("--json", help="write the audit report to this path")
    _add_obs_flags(audit)
    audit.set_defaults(func=cmd_audit)

    profile_cmd = sub.add_parser(
        "profile",
        help="profile a model's mapping flow: spans, counters, Chrome trace",
        allow_abbrev=False,
    )
    profile_cmd.add_argument("model", nargs="?", default="resnet50")
    profile_cmd.add_argument("--hw", type=_parse_hw, default="case-study")
    profile_cmd.add_argument("--hw-file", help="load the machine from a JSON file")
    _add_topology_flag(profile_cmd)
    profile_cmd.add_argument(
        "--model-file", help="load the workload from a JSON layer list"
    )
    profile_cmd.add_argument("--resolution", type=int, default=224)
    profile_cmd.add_argument(
        "--profile", choices=[p.value for p in SearchProfile], default="fast"
    )
    profile_cmd.add_argument(
        "--jobs", type=_parse_jobs, default=None,
        help="worker processes for the layer search "
        "(default: $REPRO_JOBS, then serial; 0 = all cores)",
    )
    profile_cmd.add_argument(
        "--simulate", action="store_true",
        help="also run the tile-pipeline simulator on every layer's "
        "winning mapping",
    )
    profile_cmd.add_argument(
        "--top", type=int, default=15,
        help="span paths shown in the profile table",
    )
    profile_cmd.add_argument(
        "--sort", choices=["time", "count", "name"], default="time",
        help="span table order: cumulative time descending (default), "
        "call count descending, or span path",
    )
    profile_cmd.add_argument(
        "--cache-dir",
        help="persist the mapping cache under this directory (default: a "
        "fresh in-memory cache, so the profile shows real search cost)",
    )
    profile_cmd.add_argument(
        "--json",
        help="write the span/counter profile as machine-readable JSON "
        "(the shape bench records embed)",
    )
    _add_obs_flags(profile_cmd)
    profile_cmd.set_defaults(func=cmd_profile)

    tail = sub.add_parser(
        "tail",
        help="render a run's event log (--events-out JSONL) as a timeline",
        allow_abbrev=False,
    )
    tail.add_argument(
        "target",
        help="an events.jsonl file, or a run directory containing one",
    )
    tail.add_argument(
        "--follow", "-f", action="store_true",
        help="keep polling for new events until interrupted (like tail -f)",
    )
    tail.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between polls with --follow (default: 0.5)",
    )
    tail.set_defaults(func=cmd_tail)

    bench = sub.add_parser(
        "bench",
        help="run the paper benchmarks and record/compare/report "
        "structured perf + fidelity results",
        allow_abbrev=False,
    )
    bench.add_argument(
        "--profile", choices=[p.value for p in SearchProfile], default="fast",
        help="mapping-search profile for the benches (REPRO_BENCH_PROFILE)",
    )
    bench.add_argument(
        "--stride", type=int, default=4,
        help="Figure 15 memory-sweep stride (REPRO_FIG15_STRIDE, default 4)",
    )
    bench.add_argument(
        "--jobs", type=_parse_jobs, default=None,
        help="worker processes for the sweep benches (REPRO_JOBS)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="timed repeats per bench; median + MAD land in the record "
        "(default: 3)",
    )
    bench.add_argument(
        "--warmup", type=int, default=1,
        help="discarded warmup runs before the timed repeats (default: 1)",
    )
    bench.add_argument(
        "-k", dest="select", default=None, metavar="EXPR",
        help="pytest -k expression selecting a bench subset",
    )
    bench.add_argument(
        "--out", default=None,
        help="record path (default: BENCH_<gitsha>.json at the repo root)",
    )
    bench.add_argument(
        "--history", default=None,
        help="history file to append to "
        "(default: benchmarks/results/history.jsonl)",
    )
    bench.add_argument(
        "--no-history", action="store_true",
        help="do not append this record to the history",
    )
    bench.add_argument(
        "--fidelity-tol", type=float, default=0.0,
        help="allowed relative deviation from the paper goldens "
        "(default: 0 -- exact)",
    )
    bench.add_argument(
        "--benchmarks-dir", default=None,
        help="benchmark suite location (default: <repo>/benchmarks)",
    )
    bench_sub = bench.add_subparsers(dest="bench_action")

    bench_compare = bench_sub.add_parser(
        "compare",
        help="compare two bench records; non-zero exit on perf regression "
        "or fidelity drift",
        allow_abbrev=False,
    )
    bench_compare.add_argument("old", help="baseline BENCH_*.json")
    bench_compare.add_argument("new", help="candidate BENCH_*.json")
    bench_compare.add_argument(
        "--k", type=float, default=3.0,
        help="noise gate: median shift must exceed k x MAD (default: 3)",
    )
    bench_compare.add_argument(
        "--rel-floor", type=float, default=0.10,
        help="and exceed this fraction of the old median (default: 0.10)",
    )
    bench_compare.add_argument(
        "--min-delta-s", type=float, default=0.010,
        help="and exceed this many seconds absolute (default: 0.01)",
    )
    bench_compare.add_argument(
        "--fidelity-tol", type=float, default=0.0,
        help="allowed golden deviation/change (default: 0 -- exact)",
    )
    bench_compare.add_argument(
        "--perf", choices=["gate", "advisory"], default="gate",
        help="gate: perf regressions fail the compare (default); "
        "advisory: report them but exit 0 (fidelity always gates)",
    )
    bench_compare.add_argument(
        "--gate-counter", action="append", default=[], metavar="NAME",
        help="obs counter that must be exactly equal between the records "
        "in every bench (repeatable); any drift fails the compare. "
        "Histogram names are rejected -- timing distributions are never "
        "exactly equal",
    )

    bench_report = bench_sub.add_parser(
        "report",
        help="render the bench history as a consolidated markdown/HTML report",
        allow_abbrev=False,
    )
    bench_report.add_argument(
        "--history", default=None,
        help="history file (default: benchmarks/results/history.jsonl)",
    )
    bench_report.add_argument(
        "--out", default=None, help="write here instead of stdout"
    )
    bench_report.add_argument(
        "--format", choices=["md", "html"], default="md",
        help="markdown (default) or a self-contained HTML page",
    )
    bench_report.add_argument(
        "--max-runs", type=int, default=8,
        help="runs shown in the trend table (default: 8)",
    )
    bench.set_defaults(func=cmd_bench)

    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected subcommand, recording observability when asked.

    Installs a live :mod:`repro.obs` recorder around the subcommand when
    observability output was requested (``--trace-out`` / ``--metrics-out``,
    or the always-recording ``profile`` command) and writes the exports
    after the command returns -- even a failing run keeps its trace.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    metrics_prom = getattr(args, "metrics_prom", None)
    events_out = getattr(args, "events_out", None)
    wants_obs = trace_out or metrics_out or metrics_prom or events_out
    if not wants_obs and args.func is not cmd_profile:
        return args.func(args)
    recorder = obs.Recorder()
    if events_out:
        from repro.obs.events import EventLog, resolve_events_path

        recorder.attach_event_log(EventLog(resolve_events_path(events_out)))
    try:
        with obs.use(recorder):
            code = args.func(args)
    finally:
        if trace_out:
            target = recorder.write_chrome_trace(trace_out)
            print(
                f"Wrote Chrome trace to {target} "
                "(open in https://ui.perfetto.dev)"
            )
        if metrics_out:
            target = recorder.write_metrics(metrics_out)
            print(f"Wrote metrics to {target}")
        if metrics_prom:
            from repro.obs.export import write_prometheus

            target = write_prometheus(recorder.metrics, metrics_prom)
            print(f"Wrote Prometheus metrics to {target}")
        if events_out and recorder.event_log is not None:
            print(f"Wrote event log to {recorder.event_log.path}")
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: parse, dispatch, and map errors to exit codes.

    Every taxonomy error (:class:`repro.errors.ReproError`) escaping a
    subcommand is printed as one ``repro: error [<code>]: <message>`` line
    and mapped to its exit code in exactly one place: usage 2, config 3,
    data 4, corrupt state 5, exhausted resources 6.  ``KeyboardInterrupt``
    exits 130 (SIGINT convention) and a raw ``sqlite3.DatabaseError`` --
    corrupt state that slipped past the quarantine -- exits 5.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        print()
        print("Interrupted.", file=sys.stderr)
        return EXIT_INTERRUPT
    except BrokenPipeError:
        # `repro tail run | head` closes stdout early; die quietly with
        # the SIGPIPE convention instead of a traceback.  Redirecting
        # stdout to devnull stops the interpreter's exit-time flush from
        # raising the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13
    except (ReproError, sqlite3.DatabaseError) as exc:
        print(
            f"repro: error [{error_code_for(exc)}]: {exc}", file=sys.stderr
        )
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
