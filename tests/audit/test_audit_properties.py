"""Property tests: runtime invariants hold across hypothesis-sampled mappings.

Every legal (layer, hardware, mapping) triple must simulate to a trace that
passes :meth:`Trace.validate` and to resources whose exclusive-service and
bits-conservation invariants hold -- regardless of partition type, rotation,
or halo conflicts.  These properties are exactly what ``check_run`` enforces
inside the audit sweep; here hypothesis hunts for a counterexample.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import build_hardware
from repro.audit.invariants import check_run
from repro.core.loopnest import LoopNest
from repro.core.space import MappingSpace, SearchProfile
from repro.sim.engine import TilePipelineModel
from repro.sim.trace import Trace
from repro.workloads.layer import ConvLayer


@st.composite
def layer_and_hw(draw):
    layer = ConvLayer(
        name="prop",
        h=draw(st.sampled_from([14, 28, 56])),
        w=draw(st.sampled_from([14, 28])),
        ci=draw(st.sampled_from([16, 64])),
        co=draw(st.sampled_from([16, 64, 128])),
        kh=draw(st.sampled_from([1, 3])),
        kw=draw(st.sampled_from([1, 3])),
        stride=draw(st.sampled_from([1, 2])),
        padding=1,
    )
    hw = build_hardware(
        draw(st.sampled_from([1, 2, 4])),
        draw(st.sampled_from([2, 4])),
        draw(st.sampled_from([4, 8])),
        draw(st.sampled_from([4, 8])),
    )
    return layer, hw


class TestRuntimeInvariantProperties:
    @given(layer_and_hw(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_simulated_runs_satisfy_all_invariants(self, pair, pick):
        layer, hw = pair
        space = MappingSpace(hw, SearchProfile.MINIMAL)
        legal = [
            m
            for m in space.unique_candidates(layer)
            if LoopNest(layer=layer, hw=hw, mapping=m).is_valid()
        ]
        if not legal:
            return
        mapping = legal[pick % len(legal)]
        nest = LoopNest(layer=layer, hw=hw, mapping=mapping)
        trace = Trace()
        model = TilePipelineModel(nest, trace=trace)
        cycles = model.run()

        assert trace.validate() == []
        assert check_run(model, cycles, trace) == [], (
            f"invariant violation for {mapping.describe()}"
        )
        # Utilization is a fraction on every resource.
        for resource in [*model.dram_channels, *model.ring_links]:
            assert 0.0 <= resource.utilization(cycles) <= 1.0 + 1e-6
