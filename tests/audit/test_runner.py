"""Tests for the audit sweep runner and report aggregation."""

import json

import pytest

from repro.arch.config import build_hardware
from repro.audit import audit_model, run_audit, sample_mappings
from repro.core.primitives import RotationKind
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


def layers():
    return [
        ConvLayer("a", h=28, w=28, ci=64, co=128, kh=3, kw=3, stride=1, padding=1),
        ConvLayer("b", h=14, w=14, ci=128, co=128, kh=1, kw=1, stride=1, padding=0),
        ConvLayer("c", h=28, w=28, ci=32, co=64, kh=3, kw=3, stride=2, padding=1),
    ]


def small_hw():
    return build_hardware(2, 4, 8, 8)


class TestSampleMappings:
    def test_deterministic(self):
        layer, hw = layers()[0], small_hw()
        first = sample_mappings(layer, hw, SearchProfile.MINIMAL, sample=3)
        second = sample_mappings(layer, hw, SearchProfile.MINIMAL, sample=3)
        assert first == second

    def test_includes_uncontended_variant(self):
        layer, hw = layers()[0], small_hw()
        sampled = sample_mappings(layer, hw, SearchProfile.MINIMAL, sample=3)
        assert sampled
        assert any(m.rotation is RotationKind.NONE for m in sampled)

    def test_sample_must_be_positive(self):
        with pytest.raises(ValueError, match="sample"):
            sample_mappings(layers()[0], small_hw(), SearchProfile.MINIMAL, sample=0)


class TestAuditSweep:
    def test_max_layers_subsamples(self):
        audit = audit_model(
            "tiny", layers(), small_hw(), sample=1, max_layers=2
        )
        audited_layers = {r.layer_name for r in audit.results}
        assert audited_layers == {"a", "c"}

    def test_report_aggregates_and_serializes(self, tmp_path):
        report = run_audit({"tiny": layers()[:2]}, small_hw(), sample=1)
        assert report.checked == sum(m.checked for m in report.models)
        assert report.ok, report.summary()
        assert "consistent" in report.summary()

        target = report.write_json(tmp_path / "nested" / "audit.json")
        payload = json.loads(target.read_text())
        assert payload["ok"] is True
        assert payload["violations"] == 0
        assert set(payload["models"]) == {"tiny"}
        assert payload["models"]["tiny"]["checked"] == report.checked
        for result in payload["models"]["tiny"]["results"]:
            assert result["simulated_cycles"] >= result["roofline_cycles"]
