"""Cost-model vs. simulator reconciliation for transformer workloads.

The matmul/attention path reuses the conv C3P machinery, so the audit
contract must hold for GEMM-shaped layers exactly as it does for convs:
every sampled (layer, hardware, mapping) pair stays inside the agreement
envelope, and uncontended single-iteration pairs agree with the analytical
estimate exactly (ratio 1.000) -- on the ring and on the mesh alike.
"""

import pytest

from repro.arch.config import build_hardware
from repro.arch.topology import Topology
from repro.audit import DEFAULT_ENVELOPE, cross_validate
from repro.audit.runner import run_audit
from repro.core.loopnest import LoopNest
from repro.core.primitives import PartitionDim, RotationKind
from repro.core.space import MappingSpace, SearchProfile
from repro.workloads.layer import matmul
from repro.workloads.transformer import bert_base, llm_decode


def gemm_layers():
    """Small-but-representative transformer GEMM shapes."""
    return [
        matmul("proj", m=64, k=256, n=256),
        matmul("scores", m=64, k=256, n=4 * 64, heads=4),
        matmul("gemv", m=1, k=1024, n=2048),
    ]


def hardware(topology=Topology.RING):
    return build_hardware(4, 4, 8, 8, topology=topology)


def sampled_mappings(layer, hw, limit=6):
    """The first ``limit`` legal mappings of the minimal space."""
    mappings = []
    for mapping in MappingSpace(hw, SearchProfile.MINIMAL).unique_candidates(layer):
        if LoopNest(layer=layer, hw=hw, mapping=mapping).is_valid():
            mappings.append(mapping)
        if len(mappings) >= limit:
            break
    return mappings


def exact_agreement_mapping(layer, hw):
    """An uncontended, single-iteration mapping: the pipeline cannot
    overlap anything, so simulated == estimated cycles exactly."""
    for mapping in MappingSpace(hw, SearchProfile.MINIMAL).unique_candidates(layer):
        candidate = mapping.with_rotation(RotationKind.NONE)
        if candidate.package_spatial.dim is not PartitionDim.CHANNEL:
            continue
        nest = LoopNest(layer=layer, hw=hw, mapping=candidate)
        if nest.is_valid() and nest.chiplet_workloads() == 1:
            return candidate
    return None


class TestEveryPairInsideEnvelope:
    @pytest.mark.parametrize("topology", [Topology.RING, Topology.MESH])
    @pytest.mark.parametrize(
        "layer", gemm_layers(), ids=lambda layer: layer.name
    )
    def test_sampled_pairs_unflagged(self, layer, topology):
        hw = hardware(topology)
        mappings = sampled_mappings(layer, hw)
        assert mappings, "minimal space produced no legal GEMM mapping"
        for mapping in mappings:
            result = cross_validate(layer, hw, mapping)
            assert not result.flagged, result.describe()
            if result.uncontended:
                assert result.ratio <= 1.0 + DEFAULT_ENVELOPE


class TestUncontendedExactAgreement:
    @pytest.mark.parametrize(
        "topology", [Topology.RING, Topology.MESH, Topology.SWITCH]
    )
    def test_single_iteration_ratio_is_one(self, topology):
        hw = hardware(topology)
        layer = matmul("proj", m=64, k=256, n=256)
        mapping = exact_agreement_mapping(layer, hw)
        assert mapping is not None, "no single-iteration uncontended mapping"
        result = cross_validate(layer, hw, mapping)
        assert result.uncontended
        assert not result.flagged, result.describe()
        assert result.ratio == pytest.approx(1.0)


class TestModelLevelAudit:
    @pytest.mark.parametrize("topology", [Topology.RING, Topology.MESH])
    def test_bert_and_decode_audit_clean(self, topology):
        hw = hardware(topology)
        models = {
            "bert_base": bert_base(),
            "llm_decode": llm_decode(),
        }
        report = run_audit(models, hw, sample=2, max_layers=2)
        assert report.checked > 0
        assert report.ok, "\n".join(r.describe() for r in report.flagged)
