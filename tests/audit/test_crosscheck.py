"""Tests for the cost-model vs. simulator cross-validation harness."""

import pytest

from repro.arch.config import build_hardware
from repro.audit import DEFAULT_ENVELOPE, cross_validate
from repro.audit.invariants import check_run
from repro.core.loopnest import LoopNest
from repro.core.mapper import Mapper
from repro.core.primitives import RotationKind
from repro.core.space import SearchProfile
from repro.sim.engine import TilePipelineModel
from repro.sim.trace import Trace
from repro.workloads.layer import ConvLayer


def small_layer() -> ConvLayer:
    return ConvLayer("small", h=28, w=28, ci=64, co=128, kh=3, kw=3, stride=1, padding=1)


def small_hw():
    return build_hardware(2, 4, 8, 8)


def best_mapping(layer, hw):
    return Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer).mapping


def uncontended_mapping(layer, hw):
    """A legal C-type, no-rotation mapping: no ring traffic, no halo conflict."""
    from repro.core.primitives import PartitionDim
    from repro.core.space import MappingSpace

    for candidate in MappingSpace(hw, SearchProfile.MINIMAL).unique_candidates(layer):
        mapping = candidate.with_rotation(RotationKind.NONE)
        if (
            mapping.package_spatial.dim is PartitionDim.CHANNEL
            and LoopNest(layer=layer, hw=hw, mapping=mapping).is_valid()
        ):
            return mapping
    raise AssertionError("no uncontended mapping in the minimal space")


class TestCrossValidate:
    def test_uncontended_pair_within_envelope(self):
        layer, hw = small_layer(), small_hw()
        result = cross_validate(layer, hw, uncontended_mapping(layer, hw))
        assert result.uncontended
        assert not result.flagged, result.describe()
        assert result.ratio <= 1.0 + DEFAULT_ENVELOPE
        assert result.simulated_cycles >= result.roofline_cycles
        assert result.simulated_cycles >= result.analytical_cycles

    def test_contended_pair_not_held_to_envelope(self):
        layer, hw = small_layer(), small_hw()
        mapping = best_mapping(layer, hw)
        if mapping.rotation is RotationKind.NONE:
            # The pruned profiles prefer rotation; fall back to any legal
            # rotating candidate when the best happens not to rotate.
            from repro.core.space import MappingSpace

            candidates = [
                m
                for m in MappingSpace(hw, SearchProfile.MINIMAL).unique_candidates(layer)
                if m.rotation is not RotationKind.NONE
                and LoopNest(layer=layer, hw=hw, mapping=m).is_valid()
            ]
            if not candidates:
                pytest.skip("no legal rotating mapping on this hardware")
            mapping = candidates[0]
        result = cross_validate(layer, hw, mapping)
        assert not result.uncontended
        assert not any("envelope" in v for v in result.violations)

    def test_phase_deltas_cover_all_phases(self):
        layer, hw = small_layer(), small_hw()
        result = cross_validate(layer, hw, best_mapping(layer, hw))
        assert {d.phase for d in result.phase_deltas} == {
            "load",
            "ring",
            "compute",
            "writeback",
        }
        # Busy cycles are accounted exactly: the engine serves precisely the
        # traffic the analytical assembly derived, phase by phase.
        for delta in result.phase_deltas:
            assert abs(delta.relative) < 1e-6, delta.describe()

    def test_to_dict_is_json_shaped(self):
        layer, hw = small_layer(), small_hw()
        result = cross_validate(layer, hw, best_mapping(layer, hw))
        payload = result.to_dict()
        assert payload["layer"] == layer.name
        assert payload["uncontended"] == result.uncontended
        assert payload["flagged"] == result.flagged
        assert set(payload["phase_deltas"]) == {"load", "ring", "compute", "writeback"}

    def test_tight_envelope_flags_divergence(self):
        # An impossible negative envelope guarantees a flag, proving the
        # uncontended-divergence check is actually armed.
        layer, hw = small_layer(), small_hw()
        result = cross_validate(
            layer, hw, uncontended_mapping(layer, hw), envelope=-0.5
        )
        assert result.uncontended
        assert result.flagged
        assert any("envelope" in v for v in result.violations)


class TestCheckRun:
    def test_clean_run_has_no_violations(self):
        layer, hw = small_layer(), small_hw()
        nest = LoopNest(layer=layer, hw=hw, mapping=best_mapping(layer, hw))
        trace = Trace()
        model = TilePipelineModel(nest, trace=trace)
        cycles = model.run()
        assert check_run(model, cycles, trace) == []

    def test_corrupted_channel_accounting_is_reported(self):
        layer, hw = small_layer(), small_hw()
        nest = LoopNest(layer=layer, hw=hw, mapping=best_mapping(layer, hw))
        model = TilePipelineModel(nest)
        cycles = model.run()
        model.dram_channels[0].bits_served *= 2
        violations = check_run(model, cycles)
        assert any("conservation" in v for v in violations)
