"""Tests for the Simba weight-centric dataflow cost model."""

import pytest

from repro.arch.config import simba_like_hardware
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.simba.config import SimbaGrid
from repro.simba.dataflow import evaluate_grid, evaluate_simba, evaluate_simba_model
from repro.workloads.extraction import representative_layers
from repro.workloads.layer import ConvLayer


def common_layer():
    return ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


@pytest.fixture
def hw():
    return simba_like_hardware()


class TestEvaluateGrid:
    def test_positive_energy_and_cycles(self, hw):
        report = evaluate_grid(common_layer(), hw, SimbaGrid(2, 2, 2, 4))
        assert report.energy_pj > 0
        assert report.cycles > 0
        assert 0 < report.utilization <= 1

    def test_psum_d2d_only_with_package_ci_split(self, hw):
        no_split = evaluate_grid(common_layer(), hw, SimbaGrid(1, 4, 2, 4))
        split = evaluate_grid(common_layer(), hw, SimbaGrid(2, 2, 2, 4))
        assert no_split.energy.d2d_pj == 0.0
        assert split.energy.d2d_pj > 0.0

    def test_psum_d2d_scales_with_chiplet_rows(self, hw):
        two_rows = evaluate_grid(common_layer(), hw, SimbaGrid(2, 2, 2, 4))
        four_rows = evaluate_grid(common_layer(), hw, SimbaGrid(4, 1, 2, 4))
        # 3 hops vs 1 hop per output at the 24-bit psum width.
        assert four_rows.energy.d2d_pj == pytest.approx(3 * two_rows.energy.d2d_pj)

    def test_input_duplication_grows_with_co_columns(self, hw):
        narrow = evaluate_grid(common_layer(), hw, SimbaGrid(4, 1, 8, 1))
        wide = evaluate_grid(common_layer(), hw, SimbaGrid(1, 4, 8, 1))
        # Chiplet columns re-read the same input from DRAM (no rotation).
        assert wide.energy.dram_pj > narrow.energy.dram_pj

    def test_weights_fetched_once(self, hw):
        layer = common_layer()
        report = evaluate_grid(layer, hw, SimbaGrid(2, 2, 2, 4))
        weight_bits = layer.weight_elements * 8
        # DRAM = inputs + weights + outputs; weights exactly once.
        non_weight = report.energy.dram_pj / hw.tech.dram_energy_pj_per_bit - weight_bits
        assert non_weight > 0

    def test_mac_energy_matches_nn_baton(self, hw):
        report = evaluate_grid(common_layer(), hw, SimbaGrid(2, 2, 2, 4))
        assert report.energy.mac_pj == pytest.approx(common_layer().macs * 0.024)


class TestEvaluateSimba:
    def test_picks_cheapest_grid(self, hw):
        layer = common_layer()
        best = evaluate_simba(layer, hw)
        assert best.energy_pj <= evaluate_grid(layer, hw, SimbaGrid(2, 2, 2, 4)).energy_pj + 1e-6

    def test_movement_below_total(self, hw):
        report = evaluate_simba(common_layer(), hw)
        assert 0 < report.movement_pj(hw) < report.energy_pj

    @pytest.mark.parametrize("resolution", [224, 512])
    def test_nn_baton_beats_simba_on_every_representative_layer(self, hw, resolution):
        # The headline claim, layer by layer (Figure 12).
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        for kind, layer in representative_layers(resolution).items():
            simba = evaluate_simba(layer, hw)
            baton = mapper.search_layer(layer).best
            assert baton.energy_pj < simba.energy_pj, kind


class TestEvaluateSimbaModel:
    def test_aggregates(self, hw):
        layers = [common_layer(), common_layer()]
        energy, cycles, reports = evaluate_simba_model(layers, hw)
        assert len(reports) == 2
        assert energy.total_pj == pytest.approx(sum(r.energy_pj for r in reports))
        assert cycles == sum(r.cycles for r in reports)

    def test_empty_rejected(self, hw):
        with pytest.raises(ValueError):
            evaluate_simba_model([], hw)
