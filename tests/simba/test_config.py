"""Tests for the Simba baseline grid organization."""

import pytest

from repro.simba.config import SimbaGrid, grid_options
from repro.workloads.layer import ConvLayer


class TestSimbaGrid:
    def test_total_ways(self):
        grid = SimbaGrid(2, 2, 4, 2)
        assert grid.ci_ways == 8
        assert grid.co_ways == 4

    def test_invalid_ways_raise(self):
        with pytest.raises(ValueError):
            SimbaGrid(0, 2, 2, 2)

    def test_describe(self):
        assert SimbaGrid(2, 2, 4, 2).describe() == "pkg2x2/core4x2"


class TestGridOptions:
    def test_balanced_default_is_square_mesh(self):
        # 4 chiplets -> 2x2 only; 8 cores -> 2x4 and 4x2 (both near-square).
        grids = grid_options(4, 8)
        assert all(g.package_ci_ways == 2 and g.package_co_ways == 2 for g in grids)
        assert {(g.core_ci_ways, g.core_co_ways) for g in grids} == {(2, 4), (4, 2)}

    def test_full_factorization_option(self):
        grids = grid_options(4, 8, balanced_only=False)
        assert len(grids) == 3 * 4  # all factorizations of 4 and 8

    def test_layer_channel_limits_respected(self):
        deep = ConvLayer("d", h=14, w=14, ci=512, co=512, kh=3, kw=3, padding=1)
        for grid in grid_options(4, 8, deep):
            assert grid.ci_ways <= deep.ci
            assert grid.co_ways <= deep.co

    def test_shallow_layer_falls_back_to_co_split(self):
        # VGG conv1 has 3 input channels: no balanced CI split fits, so the
        # baseline falls back to output-channel-heavy grids.
        shallow = ConvLayer("c1", h=224, w=224, ci=3, co=64, kh=3, kw=3, padding=1)
        grids = grid_options(4, 8, shallow)
        assert grids
        assert all(g.ci_ways <= 3 for g in grids)

    def test_always_returns_something(self):
        degenerate = ConvLayer("deg", h=8, w=8, ci=1, co=1, kh=1, kw=1)
        assert grid_options(4, 8, degenerate)
