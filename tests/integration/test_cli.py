"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hw_spec_parsing(self):
        args = build_parser().parse_args(["map", "alexnet", "--hw", "2-4-8-8"])
        assert args.hw.config_tuple() == (2, 4, 8, 8)

    def test_case_study_default(self):
        args = build_parser().parse_args(["map", "alexnet"])
        assert args.hw.config_tuple() == (4, 8, 8, 8)

    def test_bad_hw_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "alexnet", "--hw", "4x8"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "mobilenetv2" in out and "GMACs" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "8.750" in out and "DRAM" in out

    def test_map_minimal_profile(self, capsys):
        assert main(["map", "alexnet", "--profile", "minimal"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "Total:" in out and "EDP" in out

    def test_map_json_export(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "map",
                    "alexnet",
                    "--profile",
                    "minimal",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        data = json.loads(out_path.read_text())
        assert data["model"] == "alexnet"
        assert len(data["layers"]) == 8
        assert data["layers"][0]["mapping"]["rotation"] in (
            "none",
            "activations",
            "weights",
        )

    def test_compare(self, capsys):
        assert main(["compare", "alexnet", "--profile", "minimal"]) == 0
        out = capsys.readouterr().out
        assert "Simba baseline" in out and "Energy saving" in out

    def test_explore(self, capsys):
        assert (
            main(
                [
                    "explore",
                    "--macs",
                    "512",
                    "--models",
                    "alexnet",
                    "--stride",
                    "24",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Recommended:" in out

    def test_explore_impossible_budget(self, capsys):
        assert (
            main(
                [
                    "explore",
                    "--macs",
                    "512",
                    "--models",
                    "alexnet",
                    "--area",
                    "0.001",
                    "--stride",
                    "24",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "No design satisfies" in out
