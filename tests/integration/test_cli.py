"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


def _run_cli(*argv: str) -> subprocess.CompletedProcess:
    """Run ``python -m repro`` in a subprocess with src on PYTHONPATH."""
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo_root,
    )


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hw_spec_parsing(self):
        args = build_parser().parse_args(["map", "alexnet", "--hw", "2-4-8-8"])
        assert args.hw.config_tuple() == (2, 4, 8, 8)

    def test_case_study_default(self):
        args = build_parser().parse_args(["map", "alexnet"])
        assert args.hw.config_tuple() == (4, 8, 8, 8)

    def test_bad_hw_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "alexnet", "--hw", "4x8"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "mobilenetv2" in out and "GMACs" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "8.750" in out and "DRAM" in out

    def test_map_minimal_profile(self, capsys):
        assert main(["map", "alexnet", "--profile", "minimal"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "Total:" in out and "EDP" in out

    def test_map_json_export(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "map",
                    "alexnet",
                    "--profile",
                    "minimal",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        data = json.loads(out_path.read_text())
        assert data["model"] == "alexnet"
        assert len(data["layers"]) == 8
        assert data["layers"][0]["mapping"]["rotation"] in (
            "none",
            "activations",
            "weights",
        )

    def test_compare(self, capsys):
        assert main(["compare", "alexnet", "--profile", "minimal"]) == 0
        out = capsys.readouterr().out
        assert "Simba baseline" in out and "Energy saving" in out

    def test_explore(self, capsys):
        assert (
            main(
                [
                    "explore",
                    "--macs",
                    "512",
                    "--models",
                    "alexnet",
                    "--stride",
                    "24",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Recommended:" in out

    def test_explore_guided_json_payload(self, tmp_path, capsys):
        out_path = tmp_path / "guided.json"
        assert (
            main(
                [
                    "explore",
                    "--macs",
                    "512",
                    "--models",
                    "alexnet",
                    "--profile",
                    "minimal",
                    "--strategy",
                    "guided",
                    "--trials",
                    "6",
                    "--seed",
                    "3",
                    "--study",
                    str(tmp_path / "study.sqlite"),
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Recommended:" in out
        data = json.loads(out_path.read_text())
        assert data["strategy"] == "guided"
        assert data["seed"] == 3
        assert data["trials"] == 6
        search = data["search"]
        assert set(search) >= {"evaluated", "pruned", "deduped", "resumed"}
        assert search["evaluated"] <= 6
        assert (tmp_path / "study.sqlite").exists()

    def test_explore_guided_requires_trials(self, capsys):
        code = main(
            [
                "explore",
                "--macs",
                "512",
                "--models",
                "alexnet",
                "--strategy",
                "guided",
            ]
        )
        assert code == 2
        assert "--trials" in capsys.readouterr().err

    def test_unknown_model_exits_2_in_process(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["map", "nope", "--profile", "minimal"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1 and "unknown model 'nope'" in err

    def test_audit_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "audit.json"
        assert (
            main(
                [
                    "audit",
                    "--models",
                    "alexnet",
                    "--hw",
                    "2-4-8-8",
                    "--max-layers",
                    "1",
                    "--sample",
                    "1",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Consistency audit" in out and "alexnet" in out
        data = json.loads(out_path.read_text())
        assert data["ok"] is True
        assert data["violations"] == 0
        assert "alexnet" in data["models"]

    def test_audit_unknown_model_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["audit", "--models", "nope"])
        assert exc.value.code == 2
        assert "unknown model 'nope'" in capsys.readouterr().err

    def test_explore_impossible_budget(self, capsys):
        assert (
            main(
                [
                    "explore",
                    "--macs",
                    "512",
                    "--models",
                    "alexnet",
                    "--area",
                    "0.001",
                    "--stride",
                    "24",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "No design satisfies" in out


class TestUnknownModelSubprocess:
    """The three fixed failure modes, end to end through ``python -m repro``."""

    def test_unknown_model_exit_code_and_message(self):
        from repro.workloads.registry import list_models

        proc = _run_cli("map", "nope")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        # One line, naming every registered model.
        assert proc.stderr.strip().count("\n") == 0
        for name in list_models():
            assert name in proc.stderr

    def test_model_flag_not_abbreviated_to_model_file(self):
        proc = _run_cli("map", "--model", "nope")
        assert proc.returncode == 2
        assert "FileNotFoundError" not in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_missing_model_file_clean_error(self):
        proc = _run_cli("map", "--model-file", "/no/such/model.json")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "model file not found" in proc.stderr

    def test_compare_unknown_model(self):
        proc = _run_cli("compare", "nope")
        assert proc.returncode == 2
        assert "unknown model" in proc.stderr

    def test_explore_unknown_model(self):
        proc = _run_cli("explore", "--macs", "512", "--models", "nope")
        assert proc.returncode == 2
        assert "unknown model" in proc.stderr


class TestObservabilityFlags:
    """The --trace-out / --metrics-out exports and the profile subcommand."""

    def _assert_valid_chrome_trace(self, path):
        trace = json.loads(path.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert complete, "trace has no complete-duration events"
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0 and event["dur"] >= 0
        meta = [e for e in trace["traceEvents"] if e.get("ph") == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        return trace

    def test_profile_emits_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "profile",
                    "mobilenet_v2",
                    "--profile",
                    "minimal",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Profiled mobilenet_v2" in out
        assert "Span path" in out and "mapper.search_model" in out
        assert "mapper.candidates.evaluated" in out
        trace = self._assert_valid_chrome_trace(trace_path)
        names = {e["name"] for e in trace["traceEvents"]}
        assert "mapper.search_fresh" in names

    def test_profile_simulate_adds_sim_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "profile",
                    "alexnet",
                    "--profile",
                    "minimal",
                    "--simulate",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sim.runs" in out
        trace = self._assert_valid_chrome_trace(trace_path)
        assert "sim.run" in {e["name"] for e in trace["traceEvents"]}

    def test_map_metrics_out(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        assert (
            main(
                [
                    "map",
                    "alexnet",
                    "--profile",
                    "minimal",
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        metrics = json.loads(metrics_path.read_text())
        assert set(metrics) == {"counters", "gauges", "histograms"}
        assert metrics["counters"]["mapper.layers.searched"] == 8
        assert metrics["counters"]["mapper.searches.fresh"] > 0
        assert metrics["histograms"]["mapper.search_ms"]["count"] > 0

    def test_audit_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        assert (
            main(
                [
                    "audit",
                    "--models",
                    "alexnet",
                    "--hw",
                    "2-4-8-8",
                    "--max-layers",
                    "1",
                    "--sample",
                    "1",
                    "--trace-out",
                    str(trace_path),
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )
        trace = self._assert_valid_chrome_trace(trace_path)
        assert "audit.model" in {e["name"] for e in trace["traceEvents"]}
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["audit.models"] == 1
        assert metrics["counters"]["audit.pairs"] > 0

    def test_dse_alias_parses_like_explore(self):
        parser = build_parser()
        args = parser.parse_args(["dse", "--macs", "512"])
        assert args.func.__name__ == "cmd_explore"

    def test_no_flags_means_null_recorder(self, capsys):
        # Without observability flags the run stays on the null recorder.
        from repro import obs

        assert main(["map", "alexnet", "--profile", "minimal"]) == 0
        assert obs.get_recorder() is obs.NULL_RECORDER
        capsys.readouterr()


class TestRunTelemetryCLI:
    """--events-out / --metrics-prom / --progress / tail / profile --sort."""

    SWEEP = [
        "explore",
        "--macs", "512",
        "--models", "alexnet",
        "--stride", "997",
        "--profile", "minimal",
    ]

    def test_events_out_and_metrics_prom(self, tmp_path, capsys):
        from repro.obs.events import load_events, schema_errors

        run_dir = tmp_path / "run1"
        prom_path = tmp_path / "metrics.prom"
        code = main(
            self.SWEEP
            + ["--events-out", str(run_dir), "--metrics-prom", str(prom_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Wrote Prometheus metrics" in out
        assert "Wrote event log" in out
        events, corrupt = load_events(run_dir)
        assert corrupt == 0 and schema_errors(events) == []
        names = [e["event"] for e in events]
        assert names[0] == "run.start" and names[-1] == "run.finish"
        prom = prom_path.read_text()
        assert "# TYPE repro_dse_points_evaluated counter" in prom
        assert 'repro_dse_point_eval_ms_bucket{le="+Inf"} 50' in prom

    def test_progress_into_a_pipe_leaves_stdout_identical(
        self, tmp_path, capsys
    ):
        # capsys streams are not TTYs, so --progress auto-disables; the
        # result payload must be byte-identical either way and no meter
        # bytes may reach stdout or stderr.
        with_progress = tmp_path / "with.json"
        without = tmp_path / "without.json"
        assert (
            main(self.SWEEP + ["--progress", "--json", str(with_progress)])
            == 0
        )
        captured = capsys.readouterr()
        assert "\r" not in captured.out and "\r" not in captured.err
        assert (
            main(self.SWEEP + ["--no-progress", "--json", str(without)]) == 0
        )
        capsys.readouterr()
        assert with_progress.read_bytes() == without.read_bytes()

    def test_tail_renders_the_timeline(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main(self.SWEEP + ["--events-out", str(events_path)]) == 0
        capsys.readouterr()
        assert main(["tail", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "event(s) from" in out.splitlines()[0]
        assert "run.start" in out and "op=explore" in out
        assert "point.batch" in out and "done=16" in out

    def test_tail_missing_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tail", str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        assert "no event log" in capsys.readouterr().err

    def test_tail_warns_about_torn_tail(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main(self.SWEEP + ["--events-out", str(events_path)]) == 0
        capsys.readouterr()
        with open(events_path, "a") as handle:
            handle.write('{"v": 1, "torn')
        assert main(["tail", str(events_path)]) == 0
        assert "tolerated 1 undecodable" in capsys.readouterr().err

    def test_profile_sort_orders(self, capsys):
        for sort in ("time", "count", "name"):
            assert (
                main(
                    [
                        "profile",
                        "alexnet",
                        "--profile", "minimal",
                        "--sort", sort,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "Histograms (log2 buckets)" in out
            assert "mapper.search_ms" in out
        # --sort name lists span paths alphabetically.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "alexnet", "--sort", "pid"])


class TestBenchCLI:
    """The ``repro bench`` family: run, compare, report."""

    def _record(self, **kwargs):
        from tests.obs.test_bench import make_record

        return make_record(**kwargs)

    def _write(self, tmp_path, name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_bench_end_to_end(self, tmp_path):
        # The acceptance path: run one light bench twice, get a valid
        # record with zero fidelity deviation, and a clean self-compare.
        out = tmp_path / "BENCH_test.json"
        history = tmp_path / "history.jsonl"
        proc = _run_cli(
            "bench",
            "-k",
            "fig10",
            "--repeats",
            "2",
            "--warmup",
            "0",
            "--profile",
            "minimal",
            "--out",
            str(out),
            "--history",
            str(history),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "every paper golden reproduced exactly" in proc.stdout

        from repro.obs.bench import load_history, load_record

        record = load_record(out)
        fig10 = record["benches"][
            "bench_fig10_memory_model.py::test_fig10_linear_fits"
        ]
        assert fig10["wall_s"]["repeats"] == 2
        assert fig10["values"]["area_fit_r2"] == pytest.approx(0.99997, abs=1e-4)
        assert record["fidelity"]["ok"]
        assert record["fidelity"]["max_abs_deviation"] == 0.0
        assert record["config"]["profile"] == "minimal"
        records, corrupt = load_history(history)
        assert corrupt == 0 and len(records) == 1

        # A record compared against itself is clean: exit 0.
        assert main(["bench", "compare", str(out), str(out)]) == 0

    def test_compare_flags_injected_regression(self, tmp_path, capsys):
        old = self._write(
            tmp_path, "old.json", self._record(benches={"b": (0.100, 0.002)})
        )
        new = self._write(
            tmp_path, "new.json", self._record(benches={"b": (0.250, 0.002)})
        )
        assert main(["bench", "compare", str(old), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The same regression is advisory-only when the runner is noisy.
        assert (
            main(["bench", "compare", str(old), str(new), "--perf", "advisory"])
            == 0
        )

    def test_compare_noise_is_clean(self, tmp_path, capsys):
        old = self._write(
            tmp_path, "old.json", self._record(benches={"b": (1.000, 0.040)})
        )
        new = self._write(
            tmp_path, "new.json", self._record(benches={"b": (1.030, 0.040)})
        )
        assert main(["bench", "compare", str(old), str(new)]) == 0
        capsys.readouterr()

    def test_compare_fidelity_drift_fails_even_advisory(self, tmp_path, capsys):
        old = self._write(
            tmp_path, "old.json", self._record(goldens={"g": (8.75, 8.75)})
        )
        new = self._write(
            tmp_path, "new.json", self._record(goldens={"g": (8.75, 9.00)})
        )
        assert (
            main(["bench", "compare", str(old), str(new), "--perf", "advisory"])
            == 1
        )
        assert "DRIFT g" in capsys.readouterr().out

    def test_compare_rejects_invalid_record(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(bad), str(bad)])

    def test_report_markdown_and_html(self, tmp_path, capsys):
        from repro.obs.bench import append_history

        history = tmp_path / "history.jsonl"
        append_history(
            self._record(sha="a" * 40, benches={"b": (0.1, 0.0)}), history
        )
        append_history(
            self._record(sha="b" * 40, benches={"b": (0.2, 0.0)}), history
        )
        md = tmp_path / "report.md"
        assert (
            main(
                [
                    "bench",
                    "report",
                    "--history",
                    str(history),
                    "--out",
                    str(md),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert "# Bench report" in md.read_text()
        html = tmp_path / "report.html"
        assert (
            main(
                [
                    "bench",
                    "report",
                    "--history",
                    str(history),
                    "--format",
                    "html",
                    "--out",
                    str(html),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert html.read_text().startswith("<!doctype html>")

    def test_report_without_history_fails(self, tmp_path, capsys):
        assert (
            main(
                ["bench", "report", "--history", str(tmp_path / "none.jsonl")]
            )
            == 1
        )
        assert "No bench history" in capsys.readouterr().out

    def test_bench_rejects_bad_repeats(self):
        with pytest.raises(SystemExit):
            main(["bench", "--repeats", "0"])

    def test_profile_json_export(self, tmp_path, capsys):
        target = tmp_path / "profile.json"
        assert (
            main(
                [
                    "profile",
                    "alexnet",
                    "--profile",
                    "minimal",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert payload["model"] == "alexnet"
        assert payload["counters"]["mapper.candidates.evaluated"] > 0
        span = payload["spans"]["mapper.search_model"]
        assert span["calls"] == 1 and span["total_ns"] > 0


class TestTaxonomyExitCodes:
    """The taxonomy -> exit-code mapping, through the single main() handler."""

    def test_data_error_model_file_exits_4(self, tmp_path, capsys):
        bad = tmp_path / "model.json"
        bad.write_text("{not json")
        code = main(["map", "--model-file", str(bad), "--profile", "minimal"])
        assert code == 4
        err = capsys.readouterr().err
        assert err.startswith("repro: error [data]:")
        assert "invalid JSON" in err

    def test_data_error_hw_file_exits_4(self, tmp_path, capsys):
        bad = tmp_path / "machine.json"
        bad.write_text(json.dumps({"chiplets": 2}))  # missing every other field
        code = main(
            ["map", "alexnet", "--hw-file", str(bad), "--profile", "minimal"]
        )
        assert code == 4
        err = capsys.readouterr().err
        assert "repro: error [data]:" in err
        assert "missing hardware field" in err

    def test_config_error_mismatched_study_exits_3(self, tmp_path, capsys):
        study = tmp_path / "study.sqlite"
        argv = [
            "explore",
            "--macs", "32",
            "--models", "alexnet",
            "--strategy", "guided",
            "--trials", "4",
            "--study", str(study),
            "--profile", "minimal",
            "--jobs", "1",
        ]
        assert main(argv + ["--seed", "0"]) == 0
        capsys.readouterr()
        code = main(argv + ["--seed", "1"])
        assert code == 3
        err = capsys.readouterr().err
        assert "repro: error [config]:" in err
        assert "seed" in err

    def test_data_error_subprocess_no_traceback(self, tmp_path):
        bad = tmp_path / "model.json"
        bad.write_text("[[1,2,3]]")
        proc = _run_cli("map", "--model-file", str(bad))
        assert proc.returncode == 4
        assert "Traceback" not in proc.stderr
        assert proc.stderr.startswith("repro: error [data]:")
