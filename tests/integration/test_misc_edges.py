"""Edge-case coverage across modules: the paths the happy tests miss."""

import dataclasses

import pytest

from repro.arch.config import KB, MemoryConfig, build_hardware, case_study_hardware
from repro.arch.memory import MemoryLibrary
from repro.arch.topology import Topology
from repro.cli import main
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


class TestCliEdges:
    def test_map_edp_objective(self, capsys):
        assert main(["map", "alexnet", "--profile", "minimal", "--objective", "edp"]) == 0
        assert "EDP" in capsys.readouterr().out

    def test_compare_with_custom_hw(self, capsys):
        assert main(["compare", "alexnet", "--hw", "2-4-8-8", "--profile", "minimal"]) == 0
        assert "2-4-8-8" in capsys.readouterr().out

    def test_map_default_model(self, capsys):
        # `map` with no model falls back to resnet50.
        assert main(["map", "--profile", "minimal"]) == 0
        assert "resnet50" in capsys.readouterr().out

    def test_models_at_512(self, capsys):
        assert main(["models", "--resolution", "512"]) == 0
        assert "512x512" in capsys.readouterr().out


class TestMemoryLibraryEdges:
    def test_custom_sizes(self):
        library = MemoryLibrary(sizes_kb=[2, 8, 32, 128])
        assert len(library.points) == 4
        assert library.fit_area().r_squared > 0.99

    def test_two_point_library_fits(self):
        library = MemoryLibrary(sizes_kb=[4, 64])
        assert library.fit_energy().slope > 0


class TestTopologyEdges:
    def test_prime_chiplet_count_mesh(self):
        # 7 chiplets: the only factorization is 1x7 (a degenerate mesh).
        assert Topology.MESH.mesh_dims(7) == (1, 7)
        assert Topology.MESH.link_count(7) == 6

    def test_single_chiplet_distances(self):
        assert Topology.RING.average_distance(1) == 0.0
        assert Topology.MESH.average_distance(1) == 0.0


class TestMapperEdges:
    def test_minimal_buffer_machine_still_maps(self):
        # The smallest legal Table II-style corner.
        hw = build_hardware(
            2, 2, 2, 2,
            memory=MemoryConfig(
                a_l1_bytes=1 * KB,
                w_l1_bytes=2 * KB,
                o_l1_bytes=96,
                a_l2_bytes=32 * KB,
            ),
        )
        layer = ConvLayer("c", h=28, w=28, ci=16, co=16, kh=3, kw=3, padding=1)
        result = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        assert result.best.energy_pj > 0

    def test_asymmetric_kernel(self):
        hw = case_study_hardware()
        layer = ConvLayer("asym", h=32, w=32, ci=16, co=32, kh=1, kw=7, padding=0)
        assert layer.wo == 26 and layer.ho == 32
        result = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        assert result.best.energy_pj > 0

    def test_stride_larger_than_kernel(self):
        hw = case_study_hardware()
        layer = ConvLayer("sub", h=64, w=64, ci=16, co=32, kh=2, kw=2, stride=4)
        assert layer.halo_rows == 0
        result = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        # Disjoint windows: no halo redundancy anywhere in the traffic.
        assert result.best.energy_pj > 0

    def test_mesh_hardware_full_flow(self):
        hw = build_hardware(9, 2, 8, 8, topology=Topology.MESH)
        layer = ConvLayer("c", h=54, w=54, ci=32, co=128, kh=3, kw=3, padding=1)
        result = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer)
        assert result.best.energy_pj > 0


class TestTechnologyVariants:
    def test_faster_clock_shortens_runtime_not_energy(self):
        hw = case_study_hardware()
        fast = dataclasses.replace(
            hw, tech=dataclasses.replace(hw.tech, frequency_mhz=1000.0)
        )
        layer = ConvLayer("c", h=28, w=28, ci=32, co=64, kh=3, kw=3, padding=1)
        base = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer).best
        quick = Mapper(hw=fast, profile=SearchProfile.MINIMAL).search_layer(layer).best
        assert quick.energy_pj == pytest.approx(base.energy_pj)
        assert quick.runtime_s(fast) == pytest.approx(base.runtime_s(hw) / 2)

    def test_cheaper_dram_shifts_breakdown(self):
        hw = case_study_hardware()
        cheap = dataclasses.replace(
            hw, tech=dataclasses.replace(hw.tech, dram_energy_pj_per_bit=1.0)
        )
        layer = ConvLayer("c", h=28, w=28, ci=32, co=64, kh=3, kw=3, padding=1)
        base = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer).best
        shifted = Mapper(hw=cheap, profile=SearchProfile.MINIMAL).search_layer(layer).best
        assert shifted.energy.dram_pj < base.energy.dram_pj
        assert shifted.energy.mac_pj == pytest.approx(base.energy.mac_pj)
