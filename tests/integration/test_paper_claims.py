"""Fast regression pins for the paper's headline claims.

The benchmark harness asserts these on full runs; this suite re-checks the
cheap subset on every ``pytest tests/`` so cost-model regressions surface
immediately.  Each test cites the paper section it guards.
"""

import pytest

from repro.analysis.experiments import best_by_combo
from repro.arch.config import case_study_hardware
from repro.core.mapper import Mapper
from repro.core.primitives import PartitionDim
from repro.core.space import SearchProfile
from repro.simba import evaluate_simba
from repro.workloads.extraction import LayerKind, representative_layers


@pytest.fixture(scope="module")
def hw():
    return case_study_hardware()


@pytest.fixture(scope="module")
def combos_224(hw):
    return {
        kind: best_by_combo(layer, hw, SearchProfile.FAST)
        for kind, layer in representative_layers(224).items()
    }


class TestFigure11Claims:
    """Section VI-A1: spatial-partition preferences per layer type."""

    def test_weight_intensive_prefers_c_package(self, combos_224):
        combos = combos_224[LayerKind.WEIGHT_INTENSIVE]
        best = min(combos, key=lambda c: combos[c].energy_pj)
        assert best[0] == "C"

    def test_activation_intensive_prefers_p_package(self, combos_224):
        combos = combos_224[LayerKind.ACTIVATION_INTENSIVE]
        best = min(combos, key=lambda c: combos[c].energy_pj)
        assert best[0] == "P"

    def test_large_kernel_prefers_p_package(self, combos_224):
        combos = combos_224[LayerKind.LARGE_KERNEL]
        best = min(combos, key=lambda c: combos[c].energy_pj)
        assert best[0] == "P"

    def test_cc_removed_for_small_channel_large_plane_layers(self, combos_224):
        # Figure 11(a)/(c): the paper drops (C,C) for the 64-channel layers.
        assert ("C", "C") not in combos_224[LayerKind.ACTIVATION_INTENSIVE]
        assert ("C", "C") not in combos_224[LayerKind.LARGE_KERNEL]

    def test_cc_present_for_wide_layer(self, combos_224):
        # VGG conv12 has 512 output channels: (C,C) fills every lane.
        assert ("C", "C") in combos_224[LayerKind.WEIGHT_INTENSIVE]


class TestFigure12Claims:
    """Section VI-A2: NN-Baton vs the Simba baseline, per layer."""

    @pytest.fixture(scope="class")
    def comparisons(self, hw):
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        out = {}
        for kind, layer in representative_layers(224).items():
            out[kind] = (evaluate_simba(layer, hw), mapper.search_layer(layer).best)
        return out

    def test_nn_baton_wins_every_layer(self, comparisons):
        for kind, (simba, baton) in comparisons.items():
            assert baton.energy_pj < simba.energy_pj, kind

    def test_output_centric_mappings_never_rotate_psums(self, comparisons):
        # The output-centric flow keeps 24-bit partial sums inside the core:
        # NN-Baton's D2D traffic is only 8-bit operand rotation.
        for kind, (simba, baton) in comparisons.items():
            if baton.mapping.package_spatial.dim is PartitionDim.CHANNEL:
                continue
            assert baton.traffic.d2d_bit_hops <= simba.energy.d2d_pj / 1.17 + 1e9


class TestRotationClaim:
    """Section III-A3: the rotating transfer beats DRAM refetch (Table I)."""

    def test_winning_mappings_rotate_when_sharing(self, hw):
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        for kind, layer in representative_layers(224).items():
            mapping = mapper.search_layer(layer).mapping
            if mapping.package_spatial.ways > 1:
                assert mapping.rotation.value != "none", kind
