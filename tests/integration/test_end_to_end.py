"""Integration tests: the public API exercised end to end."""

import pytest

import repro
from repro import (
    NNBaton,
    SearchProfile,
    case_study_hardware,
    evaluate_simba_model,
    get_model,
    simulate_runtime,
)
from repro.core.dse import DesignSpace


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestPostDesignFlow:
    @pytest.fixture(scope="class")
    def result(self):
        baton = NNBaton(profile=SearchProfile.FAST)
        layers = get_model("alexnet")
        return baton.post_design(layers, case_study_hardware())

    def test_maps_all_layers(self, result):
        assert len(result.layers) == 8

    def test_energy_in_plausible_range(self, result):
        # AlexNet at 224 on the case-study machine: single-digit mJ.
        assert 0.1 < result.energy_pj / 1e9 < 100

    def test_runtime_in_plausible_range(self, result):
        # ~1.1 GMACs on 2048 MACs at 500 MHz: around a millisecond.
        assert 1e-4 < result.runtime_s() < 1e-1

    def test_mapping_table_is_compiler_ready(self, result):
        table = result.mapping_table()
        assert len(table) == 8
        for line in table:
            assert "pkg[" in line and "chip[" in line and "rot=" in line

    def test_distinct_layers_get_distinct_strategies(self, result):
        # "NN-Baton provides a distinct mapping strategy layer-wise."
        mappings = {r.mapping.describe() for r in result.layers}
        assert len(mappings) > 1


class TestBaselineComparison:
    def test_nn_baton_beats_simba_on_alexnet(self):
        hw = case_study_hardware()
        layers = get_model("alexnet")
        simba_energy, _, _ = evaluate_simba_model(layers, hw)
        baton = NNBaton(profile=SearchProfile.FAST).post_design(layers, hw)
        assert baton.energy_pj < simba_energy.total_pj


class TestSimulatorAgreement:
    def test_simulated_runtime_close_to_analytical(self):
        # The DES adds pipeline fill and bandwidth stalls but should stay
        # within 2x of the compute bound for the case-study machine.
        hw = case_study_hardware()
        baton = NNBaton(profile=SearchProfile.MINIMAL)
        layers = get_model("alexnet", include_fc=False)
        result = baton.post_design(layers, hw)
        for layer_result in result.layers:
            sim = simulate_runtime(layer_result.layer, hw, layer_result.mapping)
            assert sim.compute_cycles <= sim.cycles < 2.5 * sim.compute_cycles


class TestPreDesignFlow:
    def test_recommends_valid_hardware(self):
        baton = NNBaton()
        space = DesignSpace(
            vector_sizes=(8,),
            lanes=(8,),
            cores=(2, 4),
            chiplets=(2, 4),
            o_l1_per_lane_bytes=(96,),
            a_l1_kb=(1,),
            w_l1_kb=(18,),
            a_l2_kb=(64,),
        )
        result = baton.pre_design(
            {"alexnet": get_model("alexnet", include_fc=False)},
            required_macs=512,
            space=space,
        )
        assert result.recommended is not None
        assert result.recommended.hw.total_macs == 512


class TestResolutionScalingBehaviour:
    def test_energy_grows_with_resolution(self):
        hw = case_study_hardware()
        baton = NNBaton(profile=SearchProfile.MINIMAL)
        small = baton.post_design(get_model("darknet19", 224, include_fc=False), hw)
        large = baton.post_design(get_model("darknet19", 512, include_fc=False), hw)
        assert large.energy_pj > 3 * small.energy_pj
        assert large.cycles > 3 * small.cycles
