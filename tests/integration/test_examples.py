"""Smoke tests: the example scripts run end to end.

Only the fast examples run under pytest (the DSE-scale ones are exercised
by the benchmark harness); each is executed as a real subprocess so import
paths and ``__main__`` blocks are covered.
"""

import os
import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
SRC = Path(__file__).resolve().parents[2] / "src"


def example_env() -> dict:
    """The subprocess environment, with ``src`` importable.

    The examples run as real subprocesses, so the ``repro`` package must be
    reachable even when it is not pip-installed: prepend the in-repo ``src``
    directory to ``PYTHONPATH``.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    return env


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=example_env(),
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Winner:" in out
        assert "Energy breakdown" in out
        assert "utilization" in out

    def test_simulate_and_trace(self):
        out = run_example("simulate_and_trace.py")
        assert "Roofline" in out
        assert "chiplet 0" in out
        assert "DRAM bandwidth / 16" in out

    def test_map_model_vs_simba_small(self):
        out = run_example("map_model_vs_simba.py", "alexnet", "224")
        assert "Model totals" in out
        assert "Energy saving vs Simba" in out

    def test_custom_model(self, tmp_path):
        out = subprocess.run(
            [sys.executable, str(EXAMPLES / "custom_model.py")],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=tmp_path,
            env=example_env(),
        )
        assert out.returncode == 0, out.stderr
        assert "Compiler report written" in out.stdout
        assert (tmp_path / "custom_model_mapping.json").exists()

    def test_design_space_sweep_small(self, tmp_path):
        out = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "design_space_sweep.py"),
                "alexnet",
                "512",
                "48",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=tmp_path,
            env=example_env(),
        )
        assert out.returncode == 0, out.stderr
        assert "Pareto front" in out.stdout
        assert (tmp_path / "dse_sweep.csv").exists()
