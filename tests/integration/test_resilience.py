"""Fault-tolerant sweep execution, end to end through the real CLI.

The acceptance scenarios of the resilience layer:

* a sweep run under injected crash faults (``REPRO_FAULTS=crash:0.1@seed=7``,
  ``--on-error skip --jobs 4``) completes, and its surviving points are
  byte-identical to a clean serial run;
* a sweep interrupted around 50% and re-run with ``--resume`` produces
  byte-identical output, answering at least 40% of its points from the
  checkpoint;
* a real SIGINT delivered to a running ``repro dse`` process flushes the
  checkpoint and exits with code 130;
* ``--on-error skip`` exits non-zero only when *every* point failed.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import durable
from repro.cli import main
from repro.obs.events import load_events, schema_errors
from repro.testing.faults import FAULTS_ENV

SWEEP_ARGS = [
    "dse",
    "--macs", "512",
    "--models", "alexnet",
    "--stride", "997",
    "--profile", "minimal",
]

#: Task count of the SWEEP_ARGS sweep (keeps the 40%-resumed math honest).
SWEEP_POINTS = 50


def run_cli(tmp_path: Path, tag: str, extra: list[str], expect: int = 0):
    result_path = tmp_path / f"result-{tag}.json"
    code = main(SWEEP_ARGS + ["--json", str(result_path)] + extra)
    assert code == expect, f"{tag}: exit {code}, expected {expect}"
    return result_path.read_bytes() if result_path.exists() else b""


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    durable.reset_degraded()
    yield
    durable.reset_degraded()


@pytest.fixture(scope="module")
def clean_bytes(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("resilience-clean")
    result_path = tmp_path / "clean.json"
    code = main(SWEEP_ARGS + ["--jobs", "1", "--json", str(result_path)])
    assert code == 0
    return result_path.read_bytes()


class TestFaultedSweepMatchesClean:
    def test_crash_faults_survive_byte_identical(
        self, tmp_path, monkeypatch, clean_bytes, capsys
    ):
        monkeypatch.setenv(FAULTS_ENV, "crash:0.1@seed=7")
        faulted = run_cli(
            tmp_path, "faulted", ["--jobs", "4", "--on-error", "skip"]
        )
        assert faulted == clean_bytes
        # The faults really fired: the run reports its retries.
        assert "retries" in capsys.readouterr().out

    def test_permanent_failures_reported_and_skipped(
        self, tmp_path, monkeypatch, clean_bytes, capsys
    ):
        monkeypatch.setenv(FAULTS_ENV, "exc:@indices=7&attempts=0")
        faulted = run_cli(
            tmp_path, "one-failed", ["--jobs", "1", "--on-error", "skip"]
        )
        out = capsys.readouterr().out
        assert "Failed points (1)" in out
        assert "InjectedTaskError" in out
        # One point lost, the rest still there and the run exits 0.
        assert faulted != clean_bytes
        payload = json.loads(faulted)
        assert payload["swept"] == SWEEP_POINTS

    def test_abort_is_still_the_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exc:@indices=7&attempts=0")
        with pytest.raises(Exception, match="injected deterministic"):
            main(SWEEP_ARGS + ["--jobs", "1", "--json", str(tmp_path / "x.json")])

    def test_all_points_failed_exits_nonzero(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exc:@attempts=0")  # every index
        code = main(
            SWEEP_ARGS
            + ["--jobs", "1", "--on-error", "skip", "--json", str(tmp_path / "x.json")]
        )
        assert code == 1


class TestInterruptAndResume:
    def test_interrupt_then_resume_byte_identical(
        self, tmp_path, monkeypatch, clean_bytes
    ):
        ckpt = tmp_path / "ckpt"
        # Injected KeyboardInterrupt at the mid-sweep point: deterministic
        # stand-in for Ctrl-C, same code path as the signal handler.
        monkeypatch.setenv(FAULTS_ENV, f"interrupt:@indices={SWEEP_POINTS // 2}")
        code = main(
            SWEEP_ARGS
            + [
                "--jobs", "1",
                "--checkpoint-dir", str(ckpt),
                "--json", str(tmp_path / "interrupted.json"),
            ]
        )
        assert code == 130
        monkeypatch.delenv(FAULTS_ENV)
        resumed = run_cli(
            tmp_path,
            "resumed",
            ["--jobs", "1", "--checkpoint-dir", str(ckpt), "--resume"],
        )
        assert resumed == clean_bytes
        # At least 40% of the sweep came from the checkpoint.
        point_lines = [
            line
            for line in next(ckpt.glob("sweep-*.jsonl")).read_text().splitlines()
            if '"kind": "point"' in line
        ]
        assert len(point_lines) >= int(0.4 * SWEEP_POINTS)


class TestEventLogDurability:
    """The run event log is an observer: it degrades, never participates."""

    def test_enospc_on_events_sink_degrades_once_answers_identical(
        self, tmp_path, monkeypatch, clean_bytes, caplog
    ):
        monkeypatch.setenv(FAULTS_ENV, "enospc:@indices=0&sink=events")
        events_path = tmp_path / "events.jsonl"
        faulted = run_cli(
            tmp_path,
            "events-enospc",
            ["--jobs", "1", "--events-out", str(events_path)],
        )
        assert faulted == clean_bytes
        # Exactly one degradation warning, not one per dropped event.
        warnings = [
            r for r in caplog.records if "sink disabled" in r.getMessage()
        ]
        assert len(warnings) == 1
        assert "events" in warnings[0].getMessage()
        # The sink died on the very first append, so the log is empty (or
        # at worst holds nothing corrupt).
        events, corrupt = load_events(events_path)
        assert events == [] and corrupt == 0

    def test_eio_on_events_sink_keeps_the_sweep_alive(
        self, tmp_path, monkeypatch, clean_bytes
    ):
        monkeypatch.setenv(FAULTS_ENV, "eio:@sink=events")
        faulted = run_cli(
            tmp_path,
            "events-eio",
            ["--jobs", "1", "--events-out", str(tmp_path / "ev.jsonl")],
        )
        assert faulted == clean_bytes

    def test_interrupt_leaves_loadable_log_ending_in_checkpoint_flush(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            FAULTS_ENV, f"interrupt:@indices={SWEEP_POINTS // 2}"
        )
        events_path = tmp_path / "events.jsonl"
        code = main(
            SWEEP_ARGS
            + [
                "--jobs", "1",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--events-out", str(events_path),
                "--json", str(tmp_path / "interrupted.json"),
            ]
        )
        assert code == 130
        events, corrupt = load_events(events_path)
        assert corrupt == 0
        assert schema_errors(events) == []
        names = [e["event"] for e in events]
        assert names[0] == "run.start"
        assert "run.finish" not in names  # the sweep never completed
        # The KeyboardInterrupt path flushes the checkpoint on its way
        # out, and that flush is the last thing the log records.
        assert names[-1] == "checkpoint.flush"


class TestRealSigint:
    def test_sigint_flushes_checkpoint_and_exits_130(self, tmp_path):
        """Drive the actual signal path: SIGINT a live ``repro dse`` process.

        A ``hang`` fault parks the sweep on its final point so the test can
        interrupt deterministically after most points completed.
        """
        ckpt = tmp_path / "ckpt"
        env = {
            **dict(__import__("os").environ),
            "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            FAULTS_ENV: f"hang:@indices={SWEEP_POINTS - 1}&sleep=120",
        }
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro"]
            + SWEEP_ARGS
            + [
                "--jobs", "1",
                "--checkpoint-dir", str(ckpt),
                "--checkpoint-every", "1",
                "--json", str(tmp_path / "sigint.json"),
            ],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 120
            checkpoint_file = None
            while time.monotonic() < deadline:
                files = list(ckpt.glob("sweep-*.jsonl"))
                if files and len(files[0].read_text().splitlines()) >= 10:
                    checkpoint_file = files[0]
                    break
                time.sleep(0.05)
            assert checkpoint_file is not None, "checkpoint never grew"
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "--resume" in stderr
        # Every line the interrupted writer left behind must load cleanly
        # (at worst the torn tail is tolerated, never the whole file lost).
        lines = checkpoint_file.read_text().splitlines()
        assert len(lines) >= 10
        assert json.loads(lines[0])["kind"] == "header"


class TestRealSigkill:
    def test_sigkill_mid_sweep_leaves_resumable_state(
        self, tmp_path, clean_bytes
    ):
        """``kill -9`` a live sweep; the survivor state must load cleanly.

        The durability contract (docs/robustness.md): every checkpoint
        append is a single fsync'd ``O_APPEND`` write, so an uncatchable
        SIGKILL can tear at most the final line -- which ``load()``
        tolerates -- and a ``--resume`` run completes byte-identical to a
        clean one with no unquarantined corrupt state left behind.
        """
        import os

        ckpt = tmp_path / "ckpt"
        env = {
            **dict(os.environ),
            "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            # Park the sweep on its final point so the kill lands after
            # most checkpoint writes happened.
            FAULTS_ENV: f"hang:@indices={SWEEP_POINTS - 1}&sleep=120",
        }
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro"]
            + SWEEP_ARGS
            + [
                "--jobs", "1",
                "--checkpoint-dir", str(ckpt),
                "--checkpoint-every", "1",
                "--json", str(tmp_path / "killed.json"),
            ],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 120
            grown = False
            while time.monotonic() < deadline:
                files = list(ckpt.glob("sweep-*.jsonl"))
                if files and len(files[0].read_text().splitlines()) >= 10:
                    grown = True
                    break
                time.sleep(0.05)
            assert grown, "checkpoint never grew"
            proc.kill()  # SIGKILL: no handler, no flush, no cleanup
            proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == -signal.SIGKILL
        assert not (tmp_path / "killed.json").exists()
        resumed = run_cli(
            tmp_path,
            "after-kill",
            ["--jobs", "1", "--checkpoint-dir", str(ckpt), "--resume"],
        )
        assert resumed == clean_bytes
        # Nothing was set aside: the killed writer's file loaded as-is.
        assert not list(ckpt.glob("*.corrupt-*"))
