"""Worker-count invariance: same results, same metrics at any ``--jobs``.

The DSE sweep promises bit-identical design points at every worker count,
and the observability layer promises identically-shaped metrics: counters
are order-independent sums shipped home from each worker, so a ``--jobs 4``
run must report exactly the totals of the serial run.  Both promises are
checked end to end through the real CLI (the ``dse`` alias of ``explore``),
comparing the exported JSON byte for byte.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.events import canonical_event, load_events, schema_errors

SWEEP_ARGS = [
    "dse",
    "--macs", "512",
    "--models", "alexnet",
    "--stride", "997",
    "--profile", "minimal",
]


def run_sweep(
    tmp_path: Path, jobs: int, tag: str
) -> tuple[bytes, dict, list[dict]]:
    result_path = tmp_path / f"result-{tag}.json"
    metrics_path = tmp_path / f"metrics-{tag}.json"
    events_path = tmp_path / f"events-{tag}.jsonl"
    code = main(
        SWEEP_ARGS
        + [
            "--jobs", str(jobs),
            "--json", str(result_path),
            "--metrics-out", str(metrics_path),
            "--events-out", str(events_path),
        ]
    )
    assert code == 0
    events, corrupt = load_events(events_path)
    assert corrupt == 0
    return (
        result_path.read_bytes(),
        json.loads(metrics_path.read_text()),
        events,
    )


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("determinism")
    return {
        "serial": run_sweep(tmp_path, jobs=1, tag="serial"),
        "parallel": run_sweep(tmp_path, jobs=4, tag="parallel"),
    }


class TestResultDeterminism:
    def test_result_json_byte_identical(self, sweeps):
        assert sweeps["serial"][0] == sweeps["parallel"][0]

    def test_result_is_non_trivial(self, sweeps):
        payload = json.loads(sweeps["serial"][0])
        assert payload["swept"] > 0
        assert payload["valid_points"]
        assert payload["recommended"]


class TestMetricsInvariance:
    def test_counters_identical(self, sweeps):
        serial_metrics = sweeps["serial"][1]
        parallel_metrics = sweeps["parallel"][1]
        assert serial_metrics["counters"] == parallel_metrics["counters"]

    def test_metrics_cover_the_instrumented_subsystems(self, sweeps):
        counters = sweeps["serial"][1]["counters"]
        assert counters["dse.points.total"] > 0
        assert counters["mapper.searches.fresh"] > 0
        assert counters["cache.misses"] > 0

    def test_histogram_aggregates_jobs_invariant(self, sweeps):
        # Timing *values* differ run to run, but the observation counts
        # are a pure function of the workload: one sample per evaluated
        # point / fresh search at any worker count.
        serial = sweeps["serial"][1]["histograms"]
        parallel = sweeps["parallel"][1]["histograms"]
        assert set(serial) == set(parallel)
        assert "dse.point_eval_ms" in serial
        for name in serial:
            assert serial[name]["count"] == parallel[name]["count"], name

    def test_histogram_counts_match_the_counters(self, sweeps):
        metrics = sweeps["serial"][1]
        assert (
            metrics["histograms"]["dse.point_eval_ms"]["count"]
            == metrics["counters"]["dse.points.evaluated"]
        )


class TestEventLogInvariance:
    def test_event_logs_schema_valid(self, sweeps):
        for tag in ("serial", "parallel"):
            events = sweeps[tag][2]
            assert events, f"{tag} run produced no events"
            assert schema_errors(events) == []

    def test_event_sets_jobs_invariant(self, sweeps):
        serial = sorted(canonical_event(e) for e in sweeps["serial"][2])
        parallel = sorted(canonical_event(e) for e in sweeps["parallel"][2])
        assert serial == parallel

    def test_lifecycle_brackets_present(self, sweeps):
        names = [e["event"] for e in sweeps["serial"][2]]
        assert names[0] == "run.start" and names[-1] == "run.finish"
        assert "phase.start" in names and "point.batch" in names
