"""Worker-count invariance: same results, same metrics at any ``--jobs``.

The DSE sweep promises bit-identical design points at every worker count,
and the observability layer promises identically-shaped metrics: counters
are order-independent sums shipped home from each worker, so a ``--jobs 4``
run must report exactly the totals of the serial run.  Both promises are
checked end to end through the real CLI (the ``dse`` alias of ``explore``),
comparing the exported JSON byte for byte.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

SWEEP_ARGS = [
    "dse",
    "--macs", "512",
    "--models", "alexnet",
    "--stride", "997",
    "--profile", "minimal",
]


def run_sweep(tmp_path: Path, jobs: int, tag: str) -> tuple[bytes, dict]:
    result_path = tmp_path / f"result-{tag}.json"
    metrics_path = tmp_path / f"metrics-{tag}.json"
    code = main(
        SWEEP_ARGS
        + [
            "--jobs", str(jobs),
            "--json", str(result_path),
            "--metrics-out", str(metrics_path),
        ]
    )
    assert code == 0
    return result_path.read_bytes(), json.loads(metrics_path.read_text())


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("determinism")
    return {
        "serial": run_sweep(tmp_path, jobs=1, tag="serial"),
        "parallel": run_sweep(tmp_path, jobs=4, tag="parallel"),
    }


class TestResultDeterminism:
    def test_result_json_byte_identical(self, sweeps):
        serial_bytes, _ = sweeps["serial"]
        parallel_bytes, _ = sweeps["parallel"]
        assert serial_bytes == parallel_bytes

    def test_result_is_non_trivial(self, sweeps):
        payload = json.loads(sweeps["serial"][0])
        assert payload["swept"] > 0
        assert payload["valid_points"]
        assert payload["recommended"]


class TestMetricsInvariance:
    def test_counters_identical(self, sweeps):
        _, serial_metrics = sweeps["serial"]
        _, parallel_metrics = sweeps["parallel"]
        assert serial_metrics["counters"] == parallel_metrics["counters"]

    def test_metrics_cover_the_instrumented_subsystems(self, sweeps):
        counters = sweeps["serial"][1]["counters"]
        assert counters["dse.points.total"] > 0
        assert counters["mapper.searches.fresh"] > 0
        assert counters["cache.misses"] > 0
