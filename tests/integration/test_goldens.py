"""Golden regression values: the paper's worked examples, frozen exactly.

The formula-based tests in ``tests/core/test_c3p.py`` check relationships
(penalties multiply, boundaries flip at Cc_k); these tests pin the *actual
numbers* of the Figure 6(c)-(f) walkthroughs, the 800 B A-L1 case study and
the Table II design-space counts.  A refactor that changes any of them --
even one that keeps every relationship intact -- must consciously update
these constants with a paper-derivation for the new value.
"""

from collections import Counter

from repro.arch.config import KB, MemoryConfig, build_hardware, case_study_hardware
from repro.core.c3p import (
    analyze_activation_l1,
    analyze_activation_l2,
    analyze_weight_buffer,
)
from repro.core.dse import DesignSpace
from repro.core.partition import PlanarGrid
from repro.core.primitives import LoopOrder
from repro.workloads.layer import ConvLayer
from tests.core.test_c3p import build_nest


def common_layer() -> ConvLayer:
    """The 56x56x64 -> 256, 3x3 layer the Figure 6 examples walk."""
    return ConvLayer(
        "c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1
    )


def two_chiplet_hw():
    return build_hardware(
        2,
        2,
        8,
        8,
        memory=MemoryConfig(
            a_l1_bytes=4 * KB,
            w_l1_bytes=4 * KB,
            o_l1_bytes=1536,
            a_l2_bytes=64 * KB,
        ),
    )


class TestFig6cWeightWalkExample1:
    """Channel-priority weight walk: nest C1:16 -> W1:4 -> H1:7."""

    def _nest(self):
        return build_nest(
            common_layer(),
            two_chiplet_hw(),
            chip_order=LoopOrder.CHANNEL_PRIORITY,
            tile=(56, 56, 128),
        )

    def test_critical_capacities(self):
        # One block's filters: 3*3*64*8 = 4608 B; Cc1 = 16 * 4608 = 73728 B.
        analysis = analyze_weight_buffer(self._nest(), 0)
        assert [cp.capacity_bytes for cp in analysis.critical_points] == [
            4608.0,
            73728.0,
            73728.0,
        ]

    def test_penalties(self):
        # The W1 x H1 = 4 * 7 = 28 region guards Cc1; the block and outer
        # regions are penalty-free.
        analysis = analyze_weight_buffer(self._nest(), 0)
        assert [cp.penalty for cp in analysis.critical_points] == [1, 28, 1]

    def test_intrinsic_access_bits(self):
        # A_0 = 4608 B * 8 * C1(16) = 589824 bits per core.
        assert analyze_weight_buffer(self._nest(), 0).a0_bits == 589824.0

    def test_total_access_small_buffer(self):
        # Below Cc1 the full 28x penalty applies: 589824 * 28 bits.
        assert analyze_weight_buffer(self._nest(), 0).fill_bits == 16515072.0
        # The machine's actual 4 KB W-L1 sits below Cc1 -- same total.
        assert analyze_weight_buffer(self._nest(), 4 * KB).fill_bits == 16515072.0

    def test_total_access_at_cc1(self):
        assert analyze_weight_buffer(self._nest(), 73728).fill_bits == 589824.0


class TestFig6dWeightWalkExample2:
    """Plane-priority weight walk: the boundary critical position is free."""

    def _nest(self):
        return build_nest(
            common_layer(),
            two_chiplet_hw(),
            chip_order=LoopOrder.PLANE_PRIORITY,
            tile=(56, 56, 128),
        )

    def test_penalty_moves_to_the_block_region(self):
        # Nest W1 -> H1 -> C1: the 28x region now sits below Cc0 = 4608 B,
        # and C1's critical position is at the level boundary (penalty 1).
        analysis = analyze_weight_buffer(self._nest(), 0)
        assert [cp.penalty for cp in analysis.critical_points] == [28, 1, 1]

    def test_4608_bytes_suffice(self):
        # One byte below the block's filters still pays 28x; at exactly
        # 4608 B the whole penalty disappears -- 16x less capacity than
        # example-1 needs for the same traffic.
        assert analyze_weight_buffer(self._nest(), 4607).reload_factor == 28.0
        assert analyze_weight_buffer(self._nest(), 4608).reload_factor == 1.0
        assert analyze_weight_buffer(self._nest(), 4608).fill_bits == 589824.0


class TestFig6eCaseStudyAL1:
    """The 800 B A-L1 case study: Cc0 = 10 * 10 * 8 = 800 bytes."""

    def _nest(self):
        layer = ConvLayer("v", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        return build_nest(
            layer,
            case_study_hardware(),
            tile=(16, 32, 16),
            chip_grid=PlanarGrid(2, 4),
        )

    def test_cc0_is_exactly_800_bytes(self):
        analysis = analyze_activation_l1(self._nest(), 800)
        cc0 = analysis.critical_points[0]
        assert cc0.capacity_bytes == 800.0
        assert cc0.penalty == 9  # the 3x3 kernel sweep
        assert cc0.satisfied

    def test_critical_capacities_and_penalties(self):
        analysis = analyze_activation_l1(self._nest(), 800)
        assert [cp.capacity_bytes for cp in analysis.critical_points] == [
            800.0,
            6400.0,
            6400.0,
        ]
        assert [cp.penalty for cp in analysis.critical_points] == [9, 2, 1]

    def test_access_totals_at_the_boundary(self):
        # At 800 B only the C1:2 reuse region penalizes (factor 2); one
        # byte less adds the 9x kernel sweep on top (factor 18).
        nest = self._nest()
        assert analyze_activation_l1(nest, 800).a0_bits == 409600.0
        assert analyze_activation_l1(nest, 800).fill_bits == 819200.0
        assert analyze_activation_l1(nest, 799).fill_bits == 7372800.0


class TestFig6fBadCaseAL1:
    """Channel-priority A-L1 bad case: no gain until the full-CI window."""

    def _nest(self):
        return build_nest(
            common_layer(), case_study_hardware(), tile=(16, 28, 128)
        )

    def test_full_window_is_3840_bytes(self):
        nest = self._nest()
        window = (
            nest.layer.input_rows_for(nest.core_ho)
            * nest.layer.input_cols_for(nest.core_wo)
            * nest.layer.ci
        )
        assert window == 3840

    def test_reload_steps_from_8_to_1_at_the_window(self):
        nest = self._nest()
        assert analyze_activation_l1(nest, 3839).reload_factor == 8.0
        assert analyze_activation_l1(nest, 3840).reload_factor == 1.0


class TestAL2UnionWindow:
    def test_intrinsic_fill_bits(self):
        # 28x28 tile, 3x3 kernel: the A-L2 serves the (30*30*64) B union
        # window once per chiplet workload, times w2*h2 = 4 workloads:
        # 1843200 bits.
        nest = build_nest(
            common_layer(), case_study_hardware(), tile=(28, 28, 64)
        )
        analysis = analyze_activation_l2(nest, 10**9)
        assert analysis.a0_bits == 1843200.0


class TestTableIIDesignSpace:
    """Table II computation-option counts at the paper's 2048-MAC budget."""

    def test_total_options(self):
        configs = DesignSpace().computation_configs(2048)
        assert len(configs) == 32

    def test_options_by_chiplet_count(self):
        by_chiplets = Counter(c[0] for c in DesignSpace().computation_configs(2048))
        assert by_chiplets[1] == 3
        assert by_chiplets[4] == 10
        assert dict(by_chiplets) == {1: 3, 2: 6, 4: 10, 8: 13}

    def test_every_option_hits_the_budget_exactly(self):
        for n_p, n_c, lane, vec in DesignSpace().computation_configs(2048):
            assert n_p * n_c * lane * vec == 2048
