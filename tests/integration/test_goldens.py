"""Golden regression values: the paper's worked examples, frozen exactly.

The formula-based tests in ``tests/core/test_c3p.py`` check relationships
(penalties multiply, boundaries flip at Cc_k); these tests pin the *actual
numbers* of the Figure 6(c)-(f) walkthroughs, the 800 B A-L1 case study,
the Table I/II constants and the Figure 10 fits.  The frozen values live
in :mod:`repro.obs.goldens` -- the single registry the ``repro bench``
fidelity block consumes too -- so a refactor that changes any of them
(even one that keeps every relationship intact) must consciously update
the registry with a paper-derivation for the new value, and both this
suite and the cross-run bench compare gate flag the drift.
"""

from collections import Counter

import pytest

from repro.core.c3p import analyze_activation_l1, analyze_weight_buffer
from repro.core.dse import DesignSpace
from repro.obs.goldens import (
    GOLDENS,
    evaluate_goldens,
    fidelity_block,
    fig6c_nest,
    fig6e_nest,
    golden,
)


class TestRegistry:
    """Every frozen golden reproduces exactly from the live model code."""

    @pytest.mark.parametrize(
        "entry", GOLDENS, ids=[entry.name for entry in GOLDENS]
    )
    def test_golden_reproduces_exactly(self, entry):
        actual = entry.compute()
        assert actual == entry.expected, (
            f"{entry.name} ({entry.source}): expected {entry.expected!r}, "
            f"recomputed {actual!r} -- if this change is intentional, "
            f"update repro.obs.goldens with a paper derivation"
        )

    def test_names_are_unique(self):
        names = [entry.name for entry in GOLDENS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert golden("table1.dram_pj_per_bit").expected == 8.75
        with pytest.raises(KeyError):
            golden("nope")

    def test_evaluate_goldens_covers_the_registry(self):
        results = evaluate_goldens()
        assert [r.name for r in results] == [g.name for g in GOLDENS]
        assert all(r.deviation == 0.0 for r in results)

    def test_fidelity_block_is_clean_at_head(self):
        block = fidelity_block()
        assert block["ok"]
        assert block["max_abs_deviation"] == 0.0
        assert set(block["goldens"]) == {g.name for g in GOLDENS}


class TestFig6cStructure:
    """Relationship checks the scalar registry cannot express."""

    def test_cc0_is_satisfied_even_at_zero_capacity(self):
        # The block region's critical position is a boundary: penalty-free
        # regardless of capacity.
        analysis = analyze_weight_buffer(fig6c_nest(), 0)
        assert analysis.critical_points[0].penalty == 1

    def test_capacity_staircase_is_monotone(self):
        # fill_bits can only shrink as the buffer grows.
        nest = fig6c_nest()
        fills = [
            analyze_weight_buffer(nest, size).fill_bits
            for size in (0, 4096, 73728, 10**6)
        ]
        assert fills == sorted(fills, reverse=True)


class TestFig6eStructure:
    def test_cc0_satisfied_exactly_at_800_bytes(self):
        analysis = analyze_activation_l1(fig6e_nest(), 800)
        cc0 = analysis.critical_points[0]
        assert cc0.capacity_bytes == 800.0
        assert cc0.satisfied

    def test_one_byte_less_pays_the_kernel_sweep(self):
        nest = fig6e_nest()
        at_800 = analyze_activation_l1(nest, 800).fill_bits
        at_799 = analyze_activation_l1(nest, 799).fill_bits
        # The 9x kernel sweep multiplies onto the factor-2 reuse region.
        assert at_799 == 9 * at_800


class TestTransformerGoldens:
    """The transformer end-to-end goldens plus the sweep-optimum label.

    The registry freezes the numeric energy/cycles; the recommended
    hardware *label* is a string, so it is pinned here instead -- moving
    the optimum to a different granularity is exactly the kind of silent
    model drift these goldens exist to surface.
    """

    #: The 512-MAC encoder-block sweep's EDP optimum (chiplets-cores-
    #: lanes-vector).
    BERT_SWEEP_OPTIMUM = "4-2-16-4"

    def test_bert_sweep_recommends_frozen_optimum(self):
        from repro.obs.goldens import bert_block_predesign

        result = bert_block_predesign()
        assert result.recommended is not None
        assert result.recommended.hw.name == self.BERT_SWEEP_OPTIMUM

    def test_bert_sweep_covers_every_structural_point(self):
        from repro.obs.goldens import bert_block_predesign

        result = bert_block_predesign()
        assert len(result.points) == 50
        assert all(p.valid for p in result.points)

    def test_llm_decode_golden_matches_live_mapping(self):
        from repro.obs.goldens import golden, llm_decode_postdesign

        result = llm_decode_postdesign()
        assert float(result.energy.total_pj) == golden(
            "transformer.llm_decode_energy_pj"
        ).expected
        assert float(result.cycles) == golden(
            "transformer.llm_decode_cycles"
        ).expected


class TestTableIIDesignSpace:
    """Structural Table II checks beyond the registry's frozen counts."""

    def test_options_by_chiplet_count(self):
        by_chiplets = Counter(
            c[0] for c in DesignSpace().computation_configs(2048)
        )
        assert dict(by_chiplets) == {1: 3, 2: 6, 4: 10, 8: 13}

    def test_every_option_hits_the_budget_exactly(self):
        for n_p, n_c, lane, vec in DesignSpace().computation_configs(2048):
            assert n_p * n_c * lane * vec == 2048
