"""Closed-form validation: hand-computed costs for degenerate machines.

On a single-chiplet, single-core machine with buffers far larger than the
workload, every C3P reload factor is 1 and the traffic collapses to
closed-form expressions.  These tests pin the whole evaluation stack
(loop nest -> C3P -> traffic -> energy) against numbers computed by hand.
"""

import pytest

from repro.arch.config import KB, MemoryConfig, build_hardware
from repro.core.cost import evaluate_mapping
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.primitives import (
    LoopOrder,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.core.traffic import compute_traffic
from repro.workloads.layer import ConvLayer


def huge_memory():
    return MemoryConfig(
        a_l1_bytes=8 * 1024 * KB,
        w_l1_bytes=8 * 1024 * KB,
        o_l1_bytes=64 * KB,
        a_l2_bytes=64 * 1024 * KB,
    )


def single_core_hw(lanes=8, vector=8):
    return build_hardware(1, 1, lanes, vector, memory=huge_memory())


def whole_layer_mapping(layer, lanes):
    return Mapping(
        package_spatial=SpatialPrimitive.channel(1),
        package_temporal=TemporalPrimitive(
            LoopOrder.CHANNEL_PRIORITY, layer.ho, layer.wo, layer.co
        ),
        chiplet_spatial=SpatialPrimitive.channel(1),
        chiplet_temporal=TemporalPrimitive(
            LoopOrder.CHANNEL_PRIORITY, layer.ho, layer.wo, lanes
        ),
    )


class TestPointwiseClosedForm:
    """A 1x1 convolution with one giant core: everything moves exactly once."""

    LAYER = ConvLayer("pw", h=16, w=16, ci=64, co=64, kh=1, kw=1)

    def test_dram_traffic_exact(self):
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        assert nest.is_valid(), nest.validity_errors()
        traffic, _ = compute_traffic(nest)
        assert traffic.dram_input_bits == 16 * 16 * 64 * 8
        assert traffic.dram_weight_bits == 64 * 64 * 8
        assert traffic.dram_output_bits == 16 * 16 * 64 * 8

    def test_cycles_exact(self):
        # 16x16 pixels, 1 kernel position, ceil(64/8)=8 ci chunks per block,
        # 8 channel blocks (co=64, L=8).
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        assert nest.block_cycles() == 16 * 16 * 8
        assert nest.total_cycles() == 16 * 16 * 8 * 8
        assert nest.utilization() == pytest.approx(1.0)

    def test_rf_traffic_exact(self):
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        traffic, _ = compute_traffic(nest)
        macs = self.LAYER.macs
        assert traffic.rf_rmw_bits == pytest.approx(macs / 8 * 24)
        assert traffic.rf_drain_bits == 16 * 16 * 64 * 24

    def test_mac_energy_exact(self):
        hw = single_core_hw()
        report = evaluate_mapping(
            self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes)
        )
        assert report.energy.mac_pj == pytest.approx(self.LAYER.macs * 0.024)

    def test_dram_energy_exact(self):
        hw = single_core_hw()
        report = evaluate_mapping(
            self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes)
        )
        total_bits = (16 * 16 * 64 * 2 + 64 * 64) * 8
        assert report.energy.dram_pj == pytest.approx(total_bits * 8.75)


class Test3x3ClosedForm:
    """A 3x3 same-padding convolution, one giant core."""

    LAYER = ConvLayer("c3", h=16, w=16, ci=32, co=32, kh=3, kw=3, padding=1)

    def test_input_window_counts_padding(self):
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        traffic, _ = compute_traffic(nest)
        # One planar tile covering the whole plane: the padded 18x18 window.
        assert traffic.dram_input_bits == 18 * 18 * 32 * 8

    def test_w_l1_reads_once_per_block(self):
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        traffic, _ = compute_traffic(nest)
        # 4 channel blocks (co=32, L=8); each block reads its own
        # 3*3*32*8 weights once from W-L1.
        assert traffic.w_l1_read_bits == 4 * (3 * 3 * 32 * 8) * 8

    def test_cycles_exact(self):
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        # 16*16 pixels * 9 kernel positions * 4 ci chunks * 4 co blocks.
        assert nest.total_cycles() == 16 * 16 * 9 * 4 * 4


class TestDepthwiseClosedForm:
    """A depthwise layer: one input channel per lane."""

    LAYER = ConvLayer(
        "dw", h=16, w=16, ci=32, co=32, kh=3, kw=3, padding=1, groups=32
    )

    def test_weights_are_per_group(self):
        assert self.LAYER.weight_elements == 3 * 3 * 32

    def test_dram_weight_traffic(self):
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        traffic, _ = compute_traffic(nest)
        assert traffic.dram_weight_bits == 3 * 3 * 32 * 8

    def test_cycles_reflect_channel_serialization(self):
        hw = single_core_hw()
        nest = LoopNest(self.LAYER, hw, whole_layer_mapping(self.LAYER, hw.lanes))
        # Per block: 8 output channels need 8 input channels = 1 chunk of P=8;
        # 4 blocks cover co=32.
        assert nest.total_cycles() == 16 * 16 * 9 * 1 * 4
        # 9216 useful MACs per block over 2304 cycles x 64 MACs: 1/8 util.
        assert nest.utilization() == pytest.approx(1 / 8)


class TestFourChipletRotationClosedForm:
    """Four chiplets, C-type split, rotation: exact DRAM / ring split."""

    LAYER = ConvLayer("pw4", h=16, w=16, ci=64, co=256, kh=1, kw=1)

    def test_rotation_arithmetic(self):
        from repro.core.primitives import RotationKind

        hw = build_hardware(4, 1, 8, 8, memory=huge_memory())
        mapping = Mapping(
            package_spatial=SpatialPrimitive.channel(4),
            package_temporal=TemporalPrimitive(
                LoopOrder.CHANNEL_PRIORITY, 16, 16, 64
            ),
            chiplet_spatial=SpatialPrimitive.channel(1),
            chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 16, 16, 8),
            rotation=RotationKind.ACTIVATIONS,
        )
        nest = LoopNest(self.LAYER, hw, mapping)
        assert nest.is_valid(), nest.validity_errors()
        traffic, _ = compute_traffic(nest)
        input_bits = 16 * 16 * 64 * 8
        assert traffic.dram_input_bits == input_bits            # fetched once
        assert traffic.d2d_bit_hops == input_bits * 3           # N_P - 1 hops
        # Each chiplet fetches its distinct quarter of the weights.
        assert traffic.dram_weight_bits == 64 * 256 * 8
