"""Tests for workload statistics."""

import pytest

from repro.workloads.extraction import LayerKind
from repro.workloads.models import mobilenetv2, resnet50, vgg16
from repro.workloads.stats import LayerStats, ModelStats
from repro.workloads.layer import ConvLayer


class TestLayerStats:
    def test_arithmetic_intensity(self):
        layer = ConvLayer("c", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        stats = LayerStats.of(layer)
        moved = layer.input_elements + layer.weight_elements + layer.output_elements
        assert stats.arithmetic_intensity == pytest.approx(layer.macs / moved)

    def test_depthwise_has_low_intensity(self):
        dense = LayerStats.of(
            ConvLayer("d", h=28, w=28, ci=128, co=128, kh=3, kw=3, padding=1)
        )
        dwise = LayerStats.of(
            ConvLayer("dw", h=28, w=28, ci=128, co=128, kh=3, kw=3, padding=1, groups=128)
        )
        assert dwise.arithmetic_intensity < dense.arithmetic_intensity / 10

    def test_kind_recorded(self):
        layer = ConvLayer("pw", h=28, w=28, ci=64, co=64, kh=1, kw=1)
        assert LayerStats.of(layer).kind is LayerKind.POINTWISE


class TestModelStats:
    def test_vgg_summary(self):
        stats = ModelStats.of("vgg16", vgg16())
        assert stats.layers == 16
        assert stats.total_macs == pytest.approx(15.47e9, rel=0.02)
        assert stats.kind_histogram[LayerKind.MATMUL] == 3  # the FCs

    def test_resnet_has_many_pointwise(self):
        stats = ModelStats.of("resnet50", resnet50())
        assert stats.kind_histogram[LayerKind.POINTWISE] > 20
        assert stats.kind_histogram[LayerKind.LARGE_KERNEL] == 1

    def test_mobilenet_low_intensity(self):
        mobile = ModelStats.of("mobilenetv2", mobilenetv2())
        vgg = ModelStats.of("vgg16", vgg16())
        assert mobile.mean_arithmetic_intensity < vgg.mean_arithmetic_intensity

    def test_histogram_covers_all_layers(self):
        stats = ModelStats.of("vgg16", vgg16())
        assert sum(stats.kind_histogram.values()) == stats.layers

    def test_describe(self):
        text = ModelStats.of("vgg16", vgg16()).describe()
        assert "vgg16" in text and "GMACs" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModelStats.of("empty", [])
