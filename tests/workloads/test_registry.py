"""Tests for the model registry."""

import pytest

from repro.workloads.registry import get_model, list_models


class TestRegistry:
    def test_all_registered_models_listed(self):
        assert list_models() == [
            "alexnet", "bertbase", "darknet19", "llmdecode",
            "mobilenetv2", "resnet50", "vgg16", "vitb16",
        ]

    def test_get_by_name(self):
        assert len(get_model("vgg16")) == 16

    def test_case_insensitive(self):
        assert len(get_model("VGG16")) == 16

    def test_resolution_argument(self):
        layers = get_model("vgg16", resolution=512)
        assert layers[0].h == 512

    def test_at_suffix_overrides_resolution(self):
        layers = get_model("vgg16@512", resolution=224)
        assert layers[0].h == 512

    def test_include_fc_flag(self):
        assert len(get_model("vgg16", include_fc=False)) == 13

    def test_unknown_model_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_model("mobilenet-v9")
        assert "vgg16" in str(excinfo.value)

    def test_separator_characters_ignored(self):
        assert len(get_model("mobilenet_v2")) == len(get_model("mobilenetv2"))
        assert len(get_model("MobileNet-V2")) == len(get_model("mobilenetv2"))

    def test_separator_and_resolution_suffix_compose(self):
        layers = get_model("mobilenet_v2@512")
        assert layers[0].h == 512
