"""Tests for grouped / depthwise convolution support and MobileNetV2."""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.simba import evaluate_simba
from repro.workloads.layer import ConvLayer
from repro.workloads.models import mobilenetv2


def depthwise(plane=56, ch=64, stride=1):
    return ConvLayer(
        "dw", h=plane, w=plane, ci=ch, co=ch, kh=3, kw=3,
        stride=stride, padding=1, groups=ch,
    )


class TestGroupedGeometry:
    def test_depthwise_detection(self):
        assert depthwise().is_depthwise
        assert not ConvLayer("d", h=8, w=8, ci=8, co=8, kh=1, kw=1).is_depthwise

    def test_grouped_weight_count(self):
        layer = ConvLayer("g", h=8, w=8, ci=32, co=64, kh=3, kw=3, padding=1, groups=4)
        assert layer.weight_elements == 3 * 3 * 8 * 64

    def test_depthwise_macs(self):
        layer = depthwise(ch=64)
        assert layer.macs == 56 * 56 * 64 * 9  # one input channel per output

    def test_groups_must_divide_channels(self):
        with pytest.raises(ValueError):
            ConvLayer("bad", h=8, w=8, ci=10, co=8, kh=1, kw=1, groups=4)

    def test_input_channels_for_dense(self):
        layer = ConvLayer("d", h=8, w=8, ci=32, co=64, kh=1, kw=1)
        assert layer.input_channels_for(8) == 32

    def test_input_channels_for_depthwise(self):
        assert depthwise(ch=64).input_channels_for(8) == 8
        assert depthwise(ch=64).input_channels_for(64) == 64

    def test_input_channels_for_grouped(self):
        layer = ConvLayer("g", h=8, w=8, ci=32, co=64, kh=1, kw=1, groups=4)
        # 16 outputs per group, 8 inputs per group.
        assert layer.input_channels_for(16) == 8
        assert layer.input_channels_for(17) == 16
        assert layer.input_channels_for(64) == 32

    def test_zero_outputs(self):
        assert depthwise().input_channels_for(0) == 0


class TestGroupedMapping:
    def test_depthwise_layer_maps(self):
        hw = case_study_hardware()
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        result = mapper.search_layer(depthwise())
        assert result.best.energy_pj > 0

    def test_depthwise_utilization_is_poor(self):
        # A P-wide vector MAC does one useful multiply per lane per cycle on
        # depthwise layers: utilization is capped near 1/P.
        hw = case_study_hardware()
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        dw = mapper.search_layer(depthwise())
        dense = mapper.search_layer(
            ConvLayer("dense", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        )
        assert dw.best.utilization < 0.3
        assert dense.best.utilization > 2 * dw.best.utilization

    def test_depthwise_cheaper_than_dense(self):
        # 64x fewer MACs and weights must show up as far less energy.
        hw = case_study_hardware()
        mapper = Mapper(hw=hw, profile=SearchProfile.FAST)
        dw = mapper.search_layer(depthwise())
        dense = mapper.search_layer(
            ConvLayer("dense", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        )
        assert dw.best.energy_pj < dense.best.energy_pj

    def test_simba_handles_depthwise(self):
        hw = case_study_hardware()
        report = evaluate_simba(depthwise(), hw)
        # Depthwise has a 1-channel reduction: no CI split, hence no psum
        # movement across chiplets.
        assert report.grid.ci_ways == 1
        assert report.energy.d2d_pj == 0.0


class TestMobileNetV2:
    def test_layer_count(self):
        assert len(mobilenetv2(include_fc=True)) == 53

    def test_macs_match_published(self):
        total = sum(l.macs for l in mobilenetv2())
        assert total == pytest.approx(300e6, rel=0.05)

    def test_weights_match_published(self):
        total = sum(l.weight_elements for l in mobilenetv2())
        assert total == pytest.approx(3.4e6, rel=0.05)

    def test_depthwise_layer_per_block(self):
        dwise = [l for l in mobilenetv2(include_fc=False) if l.groups > 1]
        assert len(dwise) == 17  # one per inverted-residual block
        assert all(l.is_depthwise for l in dwise)

    def test_plane_ends_at_seven(self):
        last_conv = mobilenetv2(include_fc=False)[-1]
        assert last_conv.ho == 7

    def test_expansion_structure(self):
        layers = {l.name: l for l in mobilenetv2(include_fc=False)}
        assert "block1_expand" not in layers  # first block has t=1
        assert layers["block2_expand"].co == 6 * layers["block2_expand"].ci
