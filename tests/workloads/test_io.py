"""Tests for the JSON workload import/export format."""

import json

import pytest

from repro.workloads.io import (
    layer_from_spec,
    layers_from_specs,
    load_model_file,
    save_model_file,
)
from repro.workloads.layer import ConvLayer
from repro.workloads.models import mobilenetv2, vgg16


class TestLayerFromSpec:
    def test_conv_spec(self):
        layer = layer_from_spec(
            {"name": "c", "h": 32, "w": 32, "ci": 16, "co": 32, "kh": 3, "kw": 3,
             "stride": 1, "padding": 1}
        )
        assert layer.name == "c" and layer.ho == 32

    def test_defaults(self):
        layer = layer_from_spec({"h": 8, "w": 8, "ci": 4, "co": 4, "kh": 1, "kw": 1})
        assert layer.stride == 1 and layer.padding == 0 and layer.groups == 1
        assert layer.name == "layer"

    def test_fc_spec(self):
        layer = layer_from_spec({"name": "fc", "fc_in": 2048, "fc_out": 1000})
        assert layer.is_pointwise and (layer.ci, layer.co) == (2048, 1000)

    def test_grouped_spec(self):
        layer = layer_from_spec(
            {"h": 8, "w": 8, "ci": 16, "co": 16, "kh": 3, "kw": 3, "padding": 1,
             "groups": 16}
        )
        assert layer.is_depthwise

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="dilation"):
            layer_from_spec(
                {"h": 8, "w": 8, "ci": 4, "co": 4, "kh": 1, "kw": 1, "dilation": 2}
            )

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            layer_from_spec({"h": 8, "w": 8, "ci": 4, "co": 4})

    def test_unknown_fc_key_rejected(self):
        with pytest.raises(ValueError):
            layer_from_spec({"fc_in": 8, "fc_out": 4, "stride": 2})


class TestModelFiles:
    def test_error_carries_layer_index(self):
        with pytest.raises(ValueError, match="layer 1"):
            layers_from_specs(
                [
                    {"h": 8, "w": 8, "ci": 4, "co": 4, "kh": 1, "kw": 1},
                    {"h": 8, "w": 8, "ci": 4},
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            layers_from_specs([])

    def test_round_trip_vgg(self, tmp_path):
        layers = vgg16(include_fc=False)
        path = tmp_path / "vgg.json"
        save_model_file(layers, path)
        assert load_model_file(path) == layers

    def test_round_trip_mobilenet_groups(self, tmp_path):
        layers = mobilenetv2(include_fc=False)
        path = tmp_path / "mb.json"
        save_model_file(layers, path)
        restored = load_model_file(path)
        assert restored == layers
        assert any(l.groups > 1 for l in restored)

    def test_non_list_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"layers": []}))
        with pytest.raises(ValueError, match="list"):
            load_model_file(path)

    def test_saved_file_omits_defaults(self, tmp_path):
        path = tmp_path / "m.json"
        save_model_file(
            [ConvLayer("c", h=8, w=8, ci=4, co=4, kh=1, kw=1)], path
        )
        spec = json.loads(path.read_text())[0]
        assert "stride" not in spec and "groups" not in spec


class TestThinLayerSupport:
    """Layers with fewer channels than parallel units still map."""

    def test_ten_class_head_maps(self):
        from repro.arch.config import case_study_hardware
        from repro.core.mapper import Mapper
        from repro.core.space import SearchProfile

        fc = layer_from_spec({"name": "head", "fc_in": 1024, "fc_out": 10})
        result = Mapper(
            hw=case_study_hardware(), profile=SearchProfile.FAST
        ).search_layer(fc)
        assert result.best.energy_pj > 0
        # 10 channels over 2048 MACs: utilization is necessarily tiny.
        assert result.best.utilization < 0.1

    def test_single_channel_layer_maps(self):
        from repro.arch.config import case_study_hardware
        from repro.core.mapper import Mapper
        from repro.core.space import SearchProfile

        mono = ConvLayer("mono", h=64, w=64, ci=1, co=1, kh=3, kw=3, padding=1)
        result = Mapper(
            hw=case_study_hardware(), profile=SearchProfile.FAST
        ).search_layer(mono)
        assert result.best.energy_pj > 0
