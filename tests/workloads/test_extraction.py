"""Tests for representative-layer extraction and classification."""

from repro.workloads.extraction import LayerKind, classify_layer, representative_layers
from repro.workloads.layer import ConvLayer, fc_as_pointwise, matmul


class TestClassification:
    def test_large_kernel_takes_precedence(self):
        layer = ConvLayer("c", h=224, w=224, ci=3, co=64, kh=7, kw=7, stride=2, padding=3)
        assert classify_layer(layer) is LayerKind.LARGE_KERNEL

    def test_pointwise(self):
        layer = ConvLayer("c", h=56, w=56, ci=64, co=64, kh=1, kw=1)
        assert classify_layer(layer) is LayerKind.POINTWISE

    def test_fc_classified_matmul(self):
        # FC layers route through the native matmul path and classify as
        # MATMUL (they are GEMVs), not as pointwise convolutions.
        assert classify_layer(fc_as_pointwise("fc", 4096, 1000)) is LayerKind.MATMUL

    def test_matmul_kind(self):
        assert classify_layer(matmul("mm", m=128, k=768, n=768)) is LayerKind.MATMUL

    def test_grouped_matmul_is_matmul_not_depthwise(self):
        # A multi-head einsum uses groups=heads; it must classify as MATMUL
        # even though groups > 1 would otherwise look depthwise.
        layer = matmul("scores", m=128, k=768, n=1536, heads=12)
        assert classify_layer(layer) is LayerKind.MATMUL

    def test_activation_intensive(self):
        layer = ConvLayer("c", h=224, w=224, ci=3, co=64, kh=3, kw=3, padding=1)
        assert classify_layer(layer) is LayerKind.ACTIVATION_INTENSIVE

    def test_weight_intensive(self):
        layer = ConvLayer("c", h=14, w=14, ci=512, co=512, kh=3, kw=3, padding=1)
        assert classify_layer(layer) is LayerKind.WEIGHT_INTENSIVE

    def test_common(self):
        layer = ConvLayer("c", h=56, w=56, ci=64, co=64, kh=3, kw=3, padding=1)
        assert classify_layer(layer) is LayerKind.COMMON

    def test_depthwise_extension_kind(self):
        layer = ConvLayer(
            "dw", h=28, w=28, ci=64, co=64, kh=3, kw=3, padding=1, groups=64
        )
        assert classify_layer(layer) is LayerKind.DEPTHWISE


class TestRepresentativeLayers:
    def test_all_five_paper_kinds_present(self):
        layers = representative_layers()
        # The paper's five categories; DEPTHWISE and MATMUL are this repo's
        # extensions and have no dense conv representative layer.
        assert set(layers) == set(LayerKind) - {
            LayerKind.DEPTHWISE,
            LayerKind.MATMUL,
        }

    def test_paper_layer_choices(self):
        layers = representative_layers()
        assert layers[LayerKind.ACTIVATION_INTENSIVE].name == "conv1"      # VGG-16
        assert layers[LayerKind.WEIGHT_INTENSIVE].name == "conv12"         # VGG-16
        assert layers[LayerKind.LARGE_KERNEL].name == "conv1"              # ResNet-50
        assert layers[LayerKind.POINTWISE].name == "res2a_branch2a"
        assert layers[LayerKind.COMMON].name == "res2a_branch2b"

    def test_layers_classify_as_their_kind(self):
        for kind, layer in representative_layers().items():
            assert classify_layer(layer) is kind

    def test_resolution_512_variant(self):
        layers = representative_layers(512)
        assert layers[LayerKind.ACTIVATION_INTENSIVE].h == 512

    def test_large_kernel_is_7x7_stride_2(self):
        layer = representative_layers()[LayerKind.LARGE_KERNEL]
        assert (layer.kh, layer.stride) == (7, 2)
