"""Tests for convolution layer geometry and tile arithmetic."""

import pytest

from repro.workloads.layer import ConvLayer, ceil_div, fc_as_pointwise, tile_extent


def layer_3x3(h=56, w=56, ci=64, co=128):
    return ConvLayer("t", h=h, w=w, ci=ci, co=co, kh=3, kw=3, stride=1, padding=1)


class TestGeometry:
    def test_same_padding_preserves_plane(self):
        layer = layer_3x3()
        assert (layer.ho, layer.wo) == (56, 56)

    def test_strided_large_kernel(self):
        # ResNet-50 conv1: 224x224, 7x7, s2, p3 -> 112x112.
        layer = ConvLayer("c1", h=224, w=224, ci=3, co=64, kh=7, kw=7, stride=2, padding=3)
        assert (layer.ho, layer.wo) == (112, 112)

    def test_alexnet_conv1(self):
        layer = ConvLayer("c1", h=224, w=224, ci=3, co=96, kh=11, kw=11, stride=4, padding=2)
        assert (layer.ho, layer.wo) == (55, 55)

    def test_macs(self):
        layer = layer_3x3()
        assert layer.macs == 56 * 56 * 128 * 3 * 3 * 64

    def test_element_counts(self):
        layer = layer_3x3()
        assert layer.output_elements == 56 * 56 * 128
        assert layer.input_elements == 56 * 56 * 64
        assert layer.weight_elements == 3 * 3 * 64 * 128

    def test_halo_is_kernel_minus_stride(self):
        layer = ConvLayer("c", h=64, w=64, ci=8, co=8, kh=7, kw=7, stride=2, padding=3)
        assert layer.halo_rows == 5  # the paper's "five elements on each side"
        assert layer.halo_cols == 5

    def test_no_halo_when_stride_matches_kernel(self):
        layer = ConvLayer("c", h=64, w=64, ci=8, co=8, kh=2, kw=2, stride=2)
        assert layer.halo_rows == 0

    def test_pointwise_detection(self):
        assert fc_as_pointwise("fc", 512, 10).is_pointwise
        assert not layer_3x3().is_pointwise

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            ConvLayer("bad", h=2, w=2, ci=1, co=1, kh=5, kw=5)

    @pytest.mark.parametrize("field", ["h", "w", "ci", "co", "kh", "kw", "stride"])
    def test_nonpositive_dims_raise(self, field):
        kwargs = dict(h=8, w=8, ci=4, co=4, kh=3, kw=3, stride=1, padding=1)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            ConvLayer("bad", **kwargs)


class TestTileArithmetic:
    def test_input_rows_sliding_window(self):
        layer = layer_3x3()
        assert layer.input_rows_for(1) == 3
        assert layer.input_rows_for(8) == 10

    def test_input_rows_with_stride(self):
        layer = ConvLayer("c", h=64, w=64, ci=8, co=8, kh=7, kw=7, stride=2, padding=3)
        assert layer.input_rows_for(4) == 3 * 2 + 7  # (n-1)*s + k

    def test_zero_rows(self):
        assert layer_3x3().input_rows_for(0) == 0

    def test_input_tile_elements_full_ci_default(self):
        layer = layer_3x3()
        assert layer.input_tile_elements(8, 8) == 10 * 10 * 64

    def test_input_tile_elements_channel_subset(self):
        layer = layer_3x3()
        assert layer.input_tile_elements(8, 8, channels=8) == 10 * 10 * 8

    def test_weights_for(self):
        layer = layer_3x3()
        assert layer.weights_for(8) == 3 * 3 * 64 * 8
        assert layer.weights_for(8, in_channels=16) == 3 * 3 * 16 * 8

    def test_negative_tile_raises(self):
        with pytest.raises(ValueError):
            layer_3x3().input_rows_for(-1)


class TestScaling:
    def test_scale_to_512(self):
        layer = layer_3x3(h=224, w=224).scaled_to(512)
        assert layer.h == 512 and layer.w == 512

    def test_scale_identity(self):
        layer = layer_3x3()
        assert layer.scaled_to(224) is layer

    def test_fc_does_not_scale(self):
        fc = fc_as_pointwise("fc", 512, 10)
        assert fc.scaled_to(512) is fc

    def test_scale_never_below_kernel(self):
        tiny = ConvLayer("c", h=7, w=7, ci=8, co=8, kh=7, kw=7, stride=1, padding=3)
        scaled = tiny.scaled_to(112, base_resolution=224)
        assert scaled.h >= scaled.kh


class TestHelpers:
    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(8, 2) == 4
        assert ceil_div(0, 3) == 0

    def test_ceil_div_invalid(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_tile_extent_partition_sums_to_total(self):
        for total, ways in [(56, 4), (55, 8), (7, 3), (10, 16)]:
            extents = [tile_extent(total, ways, i) for i in range(ways)]
            assert sum(extents) == total
            assert all(e >= 0 for e in extents)

    def test_tile_extent_first_is_largest(self):
        assert tile_extent(55, 8, 0) >= tile_extent(55, 8, 7)

    def test_tile_extent_bounds(self):
        with pytest.raises(ValueError):
            tile_extent(10, 2, 2)
        with pytest.raises(ValueError):
            tile_extent(10, 0, 0)

    def test_fc_as_pointwise_shape(self):
        fc = fc_as_pointwise("fc6", 9216, 4096)
        assert (fc.h, fc.w, fc.ci, fc.co) == (1, 1, 9216, 4096)
        assert fc.macs == 9216 * 4096

    def test_fc_invalid(self):
        with pytest.raises(ValueError):
            fc_as_pointwise("fc", 0, 10)

    def test_describe_mentions_shape(self):
        text = layer_3x3().describe()
        assert "56x56" in text and "k=3x3" in text
