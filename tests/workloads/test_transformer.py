"""Tests for native matmul/attention layers and the transformer builders."""

import pytest

from repro.arch.config import build_hardware
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.workloads.io import layer_from_spec, layers_from_specs, save_model_file
from repro.workloads.layer import ConvLayer, MatmulLayer, fc_as_pointwise, matmul
from repro.workloads.registry import get_model
from repro.workloads.transformer import (
    AttentionLayer,
    bert_base,
    encoder_block,
    llm_decode,
    vit_b16,
)


class TestMatmulLayer:
    def test_gemm_geometry(self):
        layer = matmul("mm", m=128, k=768, n=3072)
        assert isinstance(layer, MatmulLayer)
        assert (layer.m, layer.k, layer.n) == (128, 768, 3072)
        assert layer.batch == 1
        assert layer.heads == 1
        # The conv embedding: h=m, w=batch, ci=k, co=n, 1x1 kernel.
        assert (layer.h, layer.w, layer.ci, layer.co) == (128, 1, 768, 3072)
        assert (layer.kh, layer.kw, layer.groups) == (1, 1, 1)

    def test_macs_match_gemm_arithmetic(self):
        layer = matmul("mm", m=128, k=768, n=3072, batch=4)
        assert layer.macs == 4 * 128 * 768 * 3072

    def test_multi_head_reduces_per_head(self):
        # groups=heads: each head reduces over k/heads and produces n/heads.
        layer = matmul("scores", m=128, k=768, n=12 * 128, heads=12)
        assert layer.macs == 12 * (128 * (768 // 12) * 128)

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            matmul("bad", m=8, k=10, n=16, heads=3)

    def test_dims_must_be_positive(self):
        with pytest.raises(ValueError):
            matmul("bad", m=0, k=8, n=8)

    def test_is_a_conv_layer(self):
        # Everything downstream (C3P walks, cost model, DES) only sees
        # ConvLayer; MatmulLayer must be substitutable.
        assert isinstance(matmul("mm", m=4, k=4, n=4), ConvLayer)

    def test_describe_in_gemm_terms(self):
        # Per-head GEMM dims: (m x k/heads) @ (k/heads x n/heads).
        text = matmul("mm", m=128, k=768, n=768, heads=12).describe()
        assert "(128x64)@(64x64)" in text and "heads=12" in text


class TestFcAsPointwise:
    def test_batch_one_matches_legacy_geometry(self):
        # The FC path used to build ConvLayer(h=1, w=1, ci=in, co=out); the
        # native matmul route must preserve that geometry exactly so every
        # existing FC pin (shape, macs, classification precedence) holds.
        fc = fc_as_pointwise("fc", 4096, 1000)
        legacy = ConvLayer("fc", h=1, w=1, ci=4096, co=1000, kh=1, kw=1)
        assert (fc.h, fc.w, fc.ci, fc.co, fc.kh, fc.kw) == (
            legacy.h, legacy.w, legacy.ci, legacy.co, legacy.kh, legacy.kw
        )
        assert fc.macs == legacy.macs

    def test_batch_one_matches_legacy_cost(self):
        # Regression for the FC batch handling: at batch=1 the native
        # matmul route must cost identically to the old pointwise conv.
        hw = build_hardware(2, 2, 8, 8)
        mapper = Mapper(hw=hw, profile=SearchProfile.MINIMAL)
        fc = mapper.search_layer(fc_as_pointwise("fc", 512, 1000))
        legacy = mapper.search_layer(
            ConvLayer("fc", h=1, w=1, ci=512, co=1000, kh=1, kw=1)
        )
        assert fc.best.energy_pj == legacy.best.energy_pj
        assert fc.best.cycles == legacy.best.cycles

    def test_batch_scales_macs(self):
        # The bug the native route fixes: batch > 1 used to be
        # unrepresentable (the pointwise embedding had nowhere to put it).
        single = fc_as_pointwise("fc", 512, 1000)
        batched = fc_as_pointwise("fc", 512, 1000, batch=8)
        assert batched.macs == 8 * single.macs
        # The batch rides the GEMM's m dimension: (batch x in) @ (in x out).
        assert batched.m == 8


class TestAttentionLayer:
    def test_six_sublayers(self):
        attn = AttentionLayer("enc0", seq=128, d_model=768, heads=12)
        subs = attn.sublayers()
        assert len(subs) == 6
        assert [s.name for s in subs] == [
            "enc0_q", "enc0_k", "enc0_v",
            "enc0_scores", "enc0_context", "enc0_out",
        ]
        assert all(isinstance(s, MatmulLayer) for s in subs)

    def test_macs_sum_of_sublayers(self):
        attn = AttentionLayer("a", seq=128, d_model=768, heads=12)
        assert attn.macs == sum(s.macs for s in attn.sublayers())

    def test_projection_arithmetic(self):
        # Each of q/k/v/out is seq x d x d.
        attn = AttentionLayer("a", seq=128, d_model=768, heads=12)
        q = attn.sublayers()[0]
        assert q.macs == 128 * 768 * 768

    def test_kv_cache_decode_shape(self):
        # LLM decode: one query token against a 512-token KV cache.
        attn = AttentionLayer("d", seq=1, d_model=4096, heads=32, kv_seq=512)
        scores = next(s for s in attn.sublayers() if s.name == "d_scores")
        assert scores.m == 1
        assert scores.n == 32 * 512
        assert scores.heads == 32

    def test_heads_must_divide_d_model(self):
        with pytest.raises(ValueError):
            AttentionLayer("bad", seq=8, d_model=10, heads=3)


class TestModelBuilders:
    def test_bert_base_structure(self):
        layers = bert_base()
        # 12 encoder blocks x 8 GEMMs + pooler + classifier.
        assert len(layers) == 12 * 8 + 2
        assert sum(l.macs for l in layers) > 10e9
        assert all(isinstance(l, ConvLayer) for l in layers)

    def test_bert_resolution_reinterpreted_as_seq(self):
        layers = bert_base(resolution=256)
        q = next(l for l in layers if l.name == "enc0_attn_q")
        assert q.m == 256

    def test_vit_has_conv_patch_embedding(self):
        layers = vit_b16()
        assert layers[0].kh == 16 and layers[0].stride == 16
        assert not isinstance(layers[0], MatmulLayer)
        # seq = (224/16)^2 + 1 CLS token.
        q = next(l for l in layers if l.name == "enc0_attn_q")
        assert q.m == 14 * 14 + 1

    def test_vit_rejects_indivisible_resolution(self):
        with pytest.raises(ValueError):
            vit_b16(resolution=225)

    def test_llm_decode_is_gemv_dominated(self):
        layers = llm_decode()
        assert all(isinstance(l, ConvLayer) for l in layers)
        ffn1 = next(l for l in layers if l.name == "dec0_ffn1")
        assert ffn1.m == 1 and ffn1.k == 4096 and ffn1.n == 11008

    def test_encoder_block_includes_ffn_pair(self):
        layers = encoder_block("b", seq=64, d_model=256, heads=4, ffn=1024)
        names = [l.name for l in layers]
        assert "b_ffn1" in names and "b_ffn2" in names
        assert len(layers) == 8

    def test_registry_resolves_transformers(self):
        assert len(get_model("bert_base")) == len(bert_base())
        assert len(get_model("llm-decode")) == len(llm_decode())
        assert len(get_model("vit_b16@160")) == len(vit_b16(resolution=160))


class TestIoRoundTrip:
    def test_matmul_spec(self):
        layer = layer_from_spec({"name": "mm", "m": 64, "k": 128, "n": 256})
        assert isinstance(layer, MatmulLayer)
        assert (layer.m, layer.k, layer.n) == (64, 128, 256)

    def test_attention_spec_expands(self):
        layers = layers_from_specs(
            [{"name": "enc", "attn_seq": 64, "attn_d": 256, "attn_heads": 4}]
        )
        assert len(layers) == 6

    def test_attention_rejected_in_single_layer_hook(self):
        with pytest.raises(ValueError):
            layer_from_spec({"name": "enc", "attn_seq": 64, "attn_d": 256,
                             "attn_heads": 4})

    def test_fc_spec_accepts_batch(self):
        layer = layer_from_spec(
            {"name": "fc", "fc_in": 512, "fc_out": 100, "batch": 4}
        )
        assert layer.m == 4
        assert layer.macs == 4 * 512 * 100

    def test_save_load_preserves_matmul_type(self, tmp_path):
        from repro.workloads.io import load_model_file

        original = llm_decode()
        path = tmp_path / "model.json"
        save_model_file(original, path)
        restored = load_model_file(path)
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert type(a) is type(b)
            assert a == b
