"""Tests pinning the four benchmark networks to their published shapes."""

import pytest

from repro.workloads.models import (
    alexnet,
    darknet19,
    peak_activation_elements,
    peak_weight_elements,
    resnet50,
    vgg16,
)


class TestAlexNet:
    def test_layer_count(self):
        assert len(alexnet(include_fc=False)) == 5
        assert len(alexnet(include_fc=True)) == 8

    def test_kernel_diversity(self):
        # "AlexNet contains convolution layers of diverse kernel sizes,
        # ranging from 3x3 to 11x11."
        kernels = {l.kh for l in alexnet(include_fc=False)}
        assert 11 in kernels and 3 in kernels and 5 in kernels

    def test_total_macs_about_1_1g(self):
        total = sum(l.macs for l in alexnet())
        assert total == pytest.approx(1.14e9, rel=0.1)


class TestVGG16:
    def test_layer_count(self):
        assert len(vgg16(include_fc=False)) == 13
        assert len(vgg16(include_fc=True)) == 16

    def test_total_macs_about_15_5g(self):
        total = sum(l.macs for l in vgg16())
        assert total == pytest.approx(15.47e9, rel=0.02)

    def test_all_convs_are_3x3(self):
        assert all(l.kh == 3 for l in vgg16(include_fc=False))

    def test_conv1_is_activation_intensive(self):
        conv1 = vgg16(include_fc=False)[0]
        assert conv1.input_elements + conv1.output_elements > 10 * conv1.weight_elements

    def test_conv12_is_weight_intensive(self):
        conv12 = next(l for l in vgg16(include_fc=False) if l.name == "conv12")
        assert conv12.weight_elements > 4 * conv12.input_elements

    def test_weight_total_about_138m(self):
        total = sum(l.weight_elements for l in vgg16())
        assert total == pytest.approx(138.3e6, rel=0.02)


class TestResNet50:
    def test_layer_count(self):
        # conv1 + 16 bottlenecks x 3 + 4 projections + fc = 54.
        assert len(resnet50(include_fc=True)) == 54

    def test_total_macs_about_3_9g(self):
        total = sum(l.macs for l in resnet50())
        assert total == pytest.approx(3.86e9, rel=0.05)

    def test_wide_model_reaches_2048_channels(self):
        # "ResNet-50 and DarkNet-19 are wide models with up to 2048 channels."
        assert max(l.co for l in resnet50(include_fc=False)) == 2048

    def test_case_study_layers_exist(self):
        names = {l.name for l in resnet50(include_fc=False)}
        assert {"conv1", "res2a_branch2a", "res2a_branch2b"} <= names

    def test_res2a_branch2a_shape(self):
        layer = next(l for l in resnet50() if l.name == "res2a_branch2a")
        assert (layer.h, layer.ci, layer.co, layer.kh) == (56, 64, 64, 1)

    def test_plane_shrinks_early(self):
        # "The feature map size in ResNet-50 reduces earlier than that in
        # VGG-16 and DarkNet-19": peak activations ~4x smaller.
        res_peak = peak_activation_elements(resnet50(include_fc=False))
        vgg_peak = peak_activation_elements(vgg16(include_fc=False))
        assert vgg_peak >= 3 * res_peak


class TestDarkNet19:
    def test_layer_count(self):
        assert len(darknet19(include_fc=False)) == 18
        assert len(darknet19(include_fc=True)) == 19

    def test_alternating_kernels(self):
        kernels = [l.kh for l in darknet19(include_fc=False)]
        assert set(kernels) == {1, 3}

    def test_total_macs_about_2_8g(self):
        total = sum(l.macs for l in darknet19())
        assert total == pytest.approx(2.79e9, rel=0.05)

    def test_head_is_pointwise(self):
        head = darknet19(include_fc=True)[-1]
        assert head.is_pointwise and head.co == 1000

    def test_peak_weights_larger_than_resnet_convs(self):
        # Section VI-B2: DarkNet's peak weight storage (4.5 MB layer) exceeds
        # VGG/ResNet convolution layers (2.25 MB).
        dark = peak_weight_elements(darknet19(include_fc=False))
        res = peak_weight_elements(resnet50(include_fc=False))
        assert dark == 2 * res


class TestResolutionScaling:
    @pytest.mark.parametrize("builder", [alexnet, vgg16, resnet50, darknet19])
    def test_512_scales_planes_not_channels(self, builder):
        base = builder(224, include_fc=False)
        scaled = builder(512, include_fc=False)
        assert scaled[0].h == pytest.approx(base[0].h * 512 / 224, abs=2)
        assert [l.ci for l in scaled] == [l.ci for l in base]
        assert [l.co for l in scaled] == [l.co for l in base]

    @pytest.mark.parametrize("builder", [vgg16, resnet50, darknet19])
    def test_512_macs_grow_quadratically(self, builder):
        base = sum(l.macs for l in builder(224, include_fc=False))
        scaled = sum(l.macs for l in builder(512, include_fc=False))
        assert scaled / base == pytest.approx((512 / 224) ** 2, rel=0.1)

    def test_peak_helpers_reject_empty(self):
        with pytest.raises(ValueError):
            peak_activation_elements([])
        with pytest.raises(ValueError):
            peak_weight_elements([])
