"""Tests for the tile-pipeline engine's DRAM halo-conflict modeling."""

import pytest

from repro.arch.config import case_study_hardware
from repro.core.loopnest import LoopNest
from repro.core.mapping import Mapping
from repro.core.partition import PlanarGrid
from repro.core.primitives import (
    LoopOrder,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.sim.engine import TilePipelineModel
from repro.workloads.layer import ConvLayer


def halo_layer():
    """A 3x3 stride-1 layer: planar splits overlap by two rows/columns."""
    return ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


def p_type_mapping(grid: PlanarGrid) -> Mapping:
    return Mapping(
        package_spatial=SpatialPrimitive.plane(grid),
        package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 28, 28, 64),
        chiplet_spatial=SpatialPrimitive.channel(8),
        chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
    )


def build_model(grid: PlanarGrid) -> TilePipelineModel:
    layer = halo_layer()
    hw = case_study_hardware()
    nest = LoopNest(layer=layer, hw=hw, mapping=p_type_mapping(grid))
    assert nest.is_valid(), nest.validity_errors()
    return TilePipelineModel(nest)


class TestHaloConflictSpread:
    def test_square_grid_has_degree_four(self):
        model = build_model(PlanarGrid(2, 2))
        assert model.conflict_degree == 4
        assert model.conflict_bits > 0

    def test_square_conflict_spread_across_three_neighbours(self):
        # Regression: all (degree - 1) extra halo requests used to queue on
        # the single (index + 1) % n channel as one over-serialized transfer.
        # Each chiplet must now hit degree - 1 = 3 distinct neighbour
        # channels with one share each.
        model = build_model(PlanarGrid(2, 2))
        model.run()
        share = model.conflict_bits / (model.conflict_degree - 1)
        iters = model.iterations
        for channel in model.dram_channels:
            sizes = sorted(span.bits for span in channel.spans)
            expected = sorted(
                [model.dram_load_bits] * iters
                + [model.writeback_bits] * iters
                + [share] * (3 * iters)
            )
            assert sizes == pytest.approx(expected)
            # No request of the old over-serialized full conflict size.
            assert all(
                abs(span.bits - model.conflict_bits) > 1e-6
                for span in channel.spans
                if abs(span.bits - model.dram_load_bits) > 1e-6
                and abs(span.bits - model.writeback_bits) > 1e-6
            )

    def test_rectangle_grid_keeps_single_neighbour(self):
        # A 1x4 stripe caps the conflict degree at two (Figure 8): one
        # neighbour serves the whole conflicted share, as before.
        model = build_model(PlanarGrid(1, 4))
        assert model.conflict_degree == 2
        model.run()
        iters = model.iterations
        for channel in model.dram_channels:
            conflict_spans = [
                span
                for span in channel.spans
                if abs(span.bits - model.dram_load_bits) > 1e-6
                and abs(span.bits - model.writeback_bits) > 1e-6
            ]
            assert len(conflict_spans) == iters
            for span in conflict_spans:
                assert span.bits == pytest.approx(model.conflict_bits)

    def test_channels_balanced_under_square_split(self):
        model = build_model(PlanarGrid(2, 2))
        model.run()
        totals = [channel.bits_requested for channel in model.dram_channels]
        assert max(totals) == pytest.approx(min(totals))

    def test_spread_not_slower_than_serialized(self):
        # Spreading the conflicted halo can only relieve the neighbour
        # channel: the square split's makespan must not exceed what the
        # over-serialized assignment produced for the same traffic.
        model = build_model(PlanarGrid(2, 2))
        cycles = model.run()
        serialized = build_model(PlanarGrid(2, 2))
        serialized.conflict_degree = 2  # forces one neighbour, full bits
        serialized_cycles = serialized.run()
        assert cycles <= serialized_cycles + 1e-6
