"""Tests for bandwidth-served resources."""

import pytest

from repro.sim.resources import BandwidthResource, ResourceInvariantError


class TestBandwidthResource:
    def test_service_time(self):
        resource = BandwidthResource("dram", bits_per_cycle=256.0)
        assert resource.service_time(2560) == pytest.approx(10.0)

    def test_request_when_idle_starts_immediately(self):
        resource = BandwidthResource("dram", 256.0)
        assert resource.request(arrival=5.0, bits=256) == pytest.approx(6.0)

    def test_fifo_queueing(self):
        resource = BandwidthResource("dram", 100.0)
        first = resource.request(0.0, 1000)   # busy until 10
        second = resource.request(2.0, 500)   # queued behind first
        assert first == pytest.approx(10.0)
        assert second == pytest.approx(15.0)

    def test_idle_gap_not_carried(self):
        resource = BandwidthResource("dram", 100.0)
        resource.request(0.0, 100)            # done at 1
        late = resource.request(50.0, 100)    # arrives long after
        assert late == pytest.approx(51.0)

    def test_busy_accounting_and_utilization(self):
        resource = BandwidthResource("dram", 100.0)
        resource.request(0.0, 500)
        resource.request(0.0, 500)
        assert resource.busy_cycles == pytest.approx(10.0)
        assert resource.utilization(20.0) == pytest.approx(0.5)
        assert resource.utilization(10.0) == pytest.approx(1.0)
        assert resource.utilization(0.0) == 0.0

    def test_utilization_above_one_is_an_error_not_a_clamp(self):
        resource = BandwidthResource("dram", 100.0)
        resource.request(0.0, 1000)           # busy 10 cycles
        with pytest.raises(ResourceInvariantError):
            resource.utilization(5.0)         # elapsed < busy: impossible

    def test_bits_conservation_accounting(self):
        resource = BandwidthResource("dram", 100.0)
        resource.request(0.0, 300)
        resource.request(1.0, 700)
        assert resource.bits_requested == pytest.approx(1000.0)
        assert resource.bits_served == pytest.approx(1000.0)
        assert sum(s.bits for s in resource.spans) == pytest.approx(1000.0)
        assert resource.invariant_violations() == []

    def test_span_log_is_fifo_and_non_overlapping(self):
        resource = BandwidthResource("dram", 100.0)
        resource.request(0.0, 500)
        resource.request(2.0, 500)            # queued behind the first
        resource.request(20.0, 100)           # idle gap, then service
        first, second, third = resource.spans
        assert first.end == pytest.approx(5.0)
        assert second.start == pytest.approx(5.0)
        assert third.start == pytest.approx(20.0)
        assert resource.invariant_violations() == []

    def test_corrupted_busy_counter_detected(self):
        resource = BandwidthResource("dram", 100.0)
        resource.request(0.0, 500)
        resource.busy_cycles += 3.0           # simulate a bookkeeping bug
        assert any(
            "busy counter" in v for v in resource.invariant_violations()
        )

    def test_corrupted_bits_counter_detected(self):
        resource = BandwidthResource("dram", 100.0)
        resource.request(0.0, 500)
        resource.bits_served += 100.0         # simulate a double-serve bug
        assert any(
            "conservation" in v or "span log" in v
            for v in resource.invariant_violations()
        )

    def test_zero_bits_is_free(self):
        resource = BandwidthResource("link", 64.0)
        assert resource.request(3.0, 0) == pytest.approx(3.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            BandwidthResource("bad", 0.0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            BandwidthResource("dram", 10.0).request(0.0, -1)
