"""Tests for the tile-pipeline runtime simulator."""

import dataclasses

import pytest

from repro.arch.config import case_study_hardware
from repro.core.mapper import Mapper
from repro.core.mapping import Mapping
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.core.space import SearchProfile
from repro.sim.runtime import simulate_runtime
from repro.workloads.extraction import representative_layers
from repro.workloads.layer import ConvLayer


def common_layer():
    return ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


def rotating_mapping():
    return Mapping(
        package_spatial=SpatialPrimitive.channel(4),
        package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 28, 28, 64),
        chiplet_spatial=SpatialPrimitive.channel(8),
        chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
        rotation=RotationKind.ACTIVATIONS,
    )


class TestSimulateRuntime:
    def test_simulated_at_least_compute_bound(self):
        hw = case_study_hardware()
        result = simulate_runtime(common_layer(), hw, rotating_mapping())
        assert result.cycles >= result.compute_cycles
        assert result.stall_cycles >= 0

    def test_compute_bound_matches_analytical(self):
        hw = case_study_hardware()
        mapper = Mapper(hw=hw, profile=SearchProfile.MINIMAL)
        best = mapper.search_layer(common_layer())
        result = simulate_runtime(common_layer(), hw, best.mapping)
        assert result.compute_cycles == best.best.cycles

    def test_oversubscribed_mapping_rejected(self):
        hw = case_study_hardware()
        bad = dataclasses.replace(
            rotating_mapping(), package_spatial=SpatialPrimitive.channel(8)
        )
        with pytest.raises(ValueError):
            simulate_runtime(common_layer(), hw, bad)

    def test_partial_occupancy_simulates(self):
        hw = case_study_hardware()
        partial = dataclasses.replace(
            rotating_mapping(), package_spatial=SpatialPrimitive.channel(2)
        )
        result = simulate_runtime(common_layer(), hw, partial)
        assert result.cycles >= result.compute_cycles

    def test_runtime_seconds(self):
        hw = case_study_hardware()
        result = simulate_runtime(common_layer(), hw, rotating_mapping())
        assert result.runtime_s(hw) == pytest.approx(result.cycles * 2e-9)

    def test_tiny_dram_bandwidth_makes_memory_bound(self):
        hw = case_study_hardware()
        slow = dataclasses.replace(
            hw, tech=dataclasses.replace(hw.tech, dram_bandwidth_bits_per_cycle=0.5)
        )
        fast_result = simulate_runtime(common_layer(), hw, rotating_mapping())
        slow_result = simulate_runtime(common_layer(), slow, rotating_mapping())
        assert slow_result.cycles > fast_result.cycles
        assert slow_result.memory_bound

    def test_rotation_engages_ring_links(self):
        hw = case_study_hardware()
        narrow_ring = dataclasses.replace(
            hw, tech=dataclasses.replace(hw.tech, ring_bandwidth_bits_per_cycle=0.5)
        )
        base = simulate_runtime(common_layer(), hw, rotating_mapping())
        slowed = simulate_runtime(common_layer(), narrow_ring, rotating_mapping())
        assert slowed.cycles > base.cycles

    def test_no_rotation_ignores_ring_bandwidth(self):
        hw = case_study_hardware()
        mapping = dataclasses.replace(rotating_mapping(), rotation=RotationKind.NONE)
        narrow_ring = dataclasses.replace(
            hw, tech=dataclasses.replace(hw.tech, ring_bandwidth_bits_per_cycle=0.5)
        )
        base = simulate_runtime(common_layer(), hw, mapping)
        same = simulate_runtime(common_layer(), narrow_ring, mapping)
        assert same.cycles == pytest.approx(base.cycles)

    def test_deterministic(self):
        hw = case_study_hardware()
        a = simulate_runtime(common_layer(), hw, rotating_mapping())
        b = simulate_runtime(common_layer(), hw, rotating_mapping())
        assert a.cycles == b.cycles

    @pytest.mark.parametrize("resolution", [224])
    def test_representative_layers_simulate(self, resolution):
        hw = case_study_hardware()
        mapper = Mapper(hw=hw, profile=SearchProfile.MINIMAL)
        for kind, layer in representative_layers(resolution).items():
            best = mapper.search_layer(layer)
            result = simulate_runtime(layer, hw, best.mapping)
            assert result.cycles >= result.compute_cycles, kind
            # Sanity: stalls are bounded (well under 10x compute).
            assert result.cycles < 10 * result.compute_cycles, kind
