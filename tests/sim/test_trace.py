"""Tests for execution-trace recording and its pipeline invariants."""

import dataclasses

import pytest

from repro.arch.config import case_study_hardware
from repro.core.mapping import Mapping
from repro.core.primitives import (
    LoopOrder,
    RotationKind,
    SpatialPrimitive,
    TemporalPrimitive,
)
from repro.sim import Phase, Trace, TraceRecord, simulate_runtime
from repro.workloads.layer import ConvLayer


def common_layer():
    return ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, stride=1, padding=1)


def rotating_mapping():
    return Mapping(
        package_spatial=SpatialPrimitive.channel(4),
        package_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 28, 28, 64),
        chiplet_spatial=SpatialPrimitive.channel(8),
        chiplet_temporal=TemporalPrimitive(LoopOrder.CHANNEL_PRIORITY, 8, 8, 8),
        rotation=RotationKind.ACTIVATIONS,
    )


class TestTraceDataStructure:
    def test_record_duration(self):
        record = TraceRecord(0, 0, Phase.COMPUTE, 10.0, 25.0)
        assert record.duration == 15.0

    def test_inverted_record_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0, 0, Phase.COMPUTE, 25.0, 10.0)

    def test_filters(self):
        trace = Trace()
        trace.add(0, 0, Phase.DRAM_LOAD, 0.0, 5.0)
        trace.add(1, 0, Phase.COMPUTE, 5.0, 10.0)
        assert len(trace.for_chiplet(0)) == 1
        assert len(trace.for_phase(Phase.COMPUTE)) == 1
        assert trace.busy_cycles(Phase.DRAM_LOAD) == 5.0
        assert trace.makespan() == 10.0

    def test_empty_trace(self):
        trace = Trace()
        assert trace.makespan() == 0.0
        assert trace.validate_ordering() == []

    def test_ordering_violation_detected(self):
        trace = Trace()
        trace.add(0, 0, Phase.DRAM_LOAD, 0.0, 10.0)
        trace.add(0, 0, Phase.COMPUTE, 5.0, 15.0)  # starts before load ends
        assert trace.validate_ordering()


class TestSimulatedTrace:
    @pytest.fixture(scope="class")
    def result(self):
        hw = case_study_hardware()
        return simulate_runtime(
            common_layer(), hw, rotating_mapping(), collect_trace=True
        )

    def test_trace_collected_on_request(self, result):
        assert result.trace is not None
        assert result.trace.records

    def test_trace_absent_by_default(self):
        hw = case_study_hardware()
        plain = simulate_runtime(common_layer(), hw, rotating_mapping())
        assert plain.trace is None

    def test_pipeline_ordering_invariants_hold(self, result):
        assert result.trace.validate_ordering() == []

    def test_every_phase_present_with_rotation(self, result):
        phases = {r.phase for r in result.trace.records}
        assert phases == {
            Phase.DRAM_LOAD,
            Phase.RING_ROTATE,
            Phase.COMPUTE,
            Phase.WRITEBACK,
        }

    def test_all_chiplets_and_iterations_covered(self, result):
        hw = case_study_hardware()
        computes = result.trace.for_phase(Phase.COMPUTE)
        chiplets = {r.chiplet for r in computes}
        assert chiplets == set(range(hw.n_chiplets))
        iterations = {r.iteration for r in computes if r.chiplet == 0}
        assert iterations == set(range(max(iterations) + 1))

    def test_makespan_within_reported_cycles(self, result):
        assert result.trace.makespan() <= result.cycles + 1e-6

    def test_no_rotation_has_no_ring_phase(self):
        hw = case_study_hardware()
        mapping = dataclasses.replace(
            rotating_mapping(), rotation=RotationKind.NONE
        )
        result = simulate_runtime(common_layer(), hw, mapping, collect_trace=True)
        assert not result.trace.for_phase(Phase.RING_ROTATE)

    def test_utilizations_reported(self, result):
        assert 0 < result.dram_utilization <= 1
        assert 0 < result.ring_utilization <= 1
