"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.events import EventQueue, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, lambda s: order.append("b"))
        queue.push(1.0, lambda s: order.append("a"))
        queue.push(9.0, lambda s: order.append("c"))
        while queue:
            queue.pop().action(None)
        assert order == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.push(3.0, lambda s, t=tag: order.append(t))
        while queue:
            queue.pop().action(None)
        assert order == ["first", "second", "third"]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(1.0, lambda s: None)
        assert queue and len(queue) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda s: None)


class TestSimulator:
    def test_run_advances_time(self):
        sim = Simulator()
        sim.at(10.0, lambda s: None)
        assert sim.run() == 10.0

    def test_actions_can_schedule_followups(self):
        sim = Simulator()
        seen = []

        def first(s):
            seen.append(s.now)
            s.after(5.0, second)

        def second(s):
            seen.append(s.now)

        sim.at(2.0, first)
        sim.run()
        assert seen == [2.0, 7.0]

    def test_at_clamps_to_now(self):
        sim = Simulator()
        times = []

        def late(s):
            s.at(0.0, lambda s2: times.append(s2.now))  # in the past -> now

        sim.at(4.0, late)
        sim.run()
        assert times == [4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda s: None)

    def test_horizon_stops_early(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda s: fired.append(1))
        sim.at(100.0, lambda s: fired.append(100))
        sim.run(horizon=10.0)
        assert fired == [1]
        assert sim.now == 10.0

    def test_event_count(self):
        sim = Simulator()
        for t in range(5):
            sim.at(float(t), lambda s: None)
        sim.run()
        assert sim.events_processed == 5

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            log = []
            for i in range(10):
                sim.at(float(i % 3), lambda s, i=i: log.append((s.now, i)))
            sim.run()
            return log

        assert run_once() == run_once()
