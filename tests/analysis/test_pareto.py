"""Tests for Pareto utilities."""

from repro.analysis.pareto import dominates, pareto_points


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_one_axis_tie(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_tradeoff_no_domination(self):
        assert not dominates((1.0, 3.0), (2.0, 1.0))
        assert not dominates((2.0, 1.0), (1.0, 3.0))


class TestParetoPoints:
    def test_filters_dominated(self):
        items = [(1, 3), (2, 2), (3, 1), (3, 3), (2.5, 2.5)]
        front = pareto_points(items, x=lambda p: p[0], y=lambda p: p[1])
        assert front == [(1, 3), (2, 2), (3, 1)]

    def test_sorted_by_x(self):
        items = [(3, 1), (1, 3), (2, 2)]
        front = pareto_points(items, x=lambda p: p[0], y=lambda p: p[1])
        assert [p[0] for p in front] == [1, 2, 3]

    def test_single_item(self):
        assert pareto_points([(5, 5)], x=lambda p: p[0], y=lambda p: p[1]) == [(5, 5)]

    def test_empty(self):
        assert pareto_points([], x=lambda p: p[0], y=lambda p: p[1]) == []

    def test_duplicates_all_kept(self):
        items = [(1, 1), (1, 1)]
        front = pareto_points(items, x=lambda p: p[0], y=lambda p: p[1])
        assert len(front) == 2
