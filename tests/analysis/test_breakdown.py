"""Tests for breakdown normalization and stacked-bar rendering."""

import pytest

from repro.analysis.breakdown import (
    COMPONENT_GLYPHS,
    aggregate,
    dominant_component,
    normalize,
    shares,
    stacked_bar,
    stacked_bar_chart,
)
from repro.core.cost import EnergyBreakdown


def sample():
    return EnergyBreakdown(
        dram_pj=50, d2d_pj=10, a_l2_pj=8, o_l2_pj=2, a_l1_pj=15, w_l1_pj=5, rf_pj=7, mac_pj=3
    )


class TestNormalization:
    def test_normalize_against_baseline(self):
        norm = normalize(sample(), baseline_pj=200)
        assert norm["dram"] == pytest.approx(0.25)
        assert sum(norm.values()) == pytest.approx(0.5)

    def test_normalize_invalid_baseline(self):
        with pytest.raises(ValueError):
            normalize(sample(), 0)

    def test_shares_sum_to_one(self):
        assert sum(shares(sample()).values()) == pytest.approx(1.0)

    def test_shares_of_zero_breakdown(self):
        assert sum(shares(EnergyBreakdown.zero()).values()) == 0.0

    def test_dominant_component(self):
        assert dominant_component(sample()) == "dram"


class TestStackedBars:
    def test_bar_length_proportional(self):
        bar = stacked_bar(sample(), scale_pj=sample().total_pj, width=100)
        assert len(bar) == pytest.approx(100, abs=4)  # rounding slack

    def test_glyph_counts_match_shares(self):
        bar = stacked_bar(sample(), scale_pj=100, width=100)
        assert bar.count("D") == 50
        assert bar.count("m") == 3

    def test_every_component_has_a_glyph(self):
        assert set(COMPONENT_GLYPHS) == set(EnergyBreakdown.zero().as_dict())

    def test_chart_shared_scale(self):
        big = sample()
        small = EnergyBreakdown(5, 1, 1, 0, 1, 1, 1, 0)
        chart = stacked_bar_chart([("big", big), ("small", small)], width=40)
        lines = chart.splitlines()
        assert "legend:" in lines[-1]
        big_bar = lines[0].split("|")[1]
        small_bar = lines[1].split("|")[1]
        assert big_bar.strip()
        assert len(small_bar.strip()) < len(big_bar.strip())

    def test_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            stacked_bar_chart([])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            stacked_bar(sample(), 0)


class TestAggregate:
    def test_sums_components(self):
        total = aggregate({"a": sample(), "b": sample()})
        assert total.total_pj == pytest.approx(2 * sample().total_pj)

    def test_empty_is_zero(self):
        assert aggregate({}).total_pj == 0.0
