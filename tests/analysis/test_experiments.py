"""Tests for the experiment drivers (fast variants of each figure)."""

import pytest

from repro.analysis.experiments import (
    FIG11_COMBOS,
    best_by_combo,
    fig7_data,
    fig8_data,
    fig10_data,
    fig12_data,
    table1_rows,
    table2_data,
)
from repro.arch.config import case_study_hardware
from repro.core.space import SearchProfile
from repro.workloads.extraction import LayerKind, representative_layers


class TestTable1:
    def test_six_rows(self):
        assert len(table1_rows()) == 6


class TestFig7:
    def test_both_layers_and_patterns(self):
        points = fig7_data(tile_elements=(16, 64))
        layers = {p.layer for p in points}
        patterns = {p.pattern for p in points}
        assert layers == {"conv1", "conv2"}
        assert patterns == {"1:1", "1:4"}

    def test_redundancy_falls_with_tile_size(self):
        points = fig7_data(tile_elements=(4, 64, 1024))
        conv1_sq = [
            p.redundancy
            for p in points
            if p.layer == "conv1" and p.pattern == "1:1"
        ]
        assert conv1_sq == sorted(conv1_sq, reverse=True)

    def test_square_beats_one_to_four(self):
        for elements in (16, 64, 256):
            points = {
                p.pattern: p.redundancy
                for p in fig7_data(tile_elements=(elements,))
                if p.layer == "conv1"
            }
            assert points["1:1"] < points["1:4"]

    def test_seven_by_seven_worse_than_three_by_three(self):
        points = fig7_data(tile_elements=(64,))
        conv1 = next(p for p in points if p.layer == "conv1" and p.pattern == "1:1")
        conv2 = next(p for p in points if p.layer == "conv2" and p.pattern == "1:1")
        assert conv1.redundancy > conv2.redundancy

    def test_fine_tiles_reach_paper_scale(self):
        points = fig7_data(tile_elements=(4,))
        worst = max(p.redundancy for p in points if p.layer == "conv1")
        assert worst > 3.0  # the paper reports up to 650%

    def test_non_square_elements_rejected(self):
        with pytest.raises(ValueError):
            fig7_data(tile_elements=(8,))


class TestFig8:
    def test_square_vs_rectangle_degrees(self):
        points = {p.pattern: p for p in fig8_data()}
        assert points["square"].max_conflict_degree == 4
        assert points["rectangle"].max_conflict_degree == 2

    def test_conflict_elements_positive(self):
        for point in fig8_data():
            assert point.conflict_elements > 0


class TestFig10:
    def test_fits_are_linear(self):
        data = fig10_data()
        assert data.area_fit.r_squared > 0.99
        assert data.energy_fit.r_squared > 0.99

    def test_energy_fit_matches_table_i_anchors(self):
        data = fig10_data()
        assert data.energy_fit(1.0) == pytest.approx(0.30, rel=0.1)
        assert data.energy_fit(32.0) == pytest.approx(0.81, rel=0.1)


class TestFig11:
    def test_combo_constant_covers_six(self):
        assert len(FIG11_COMBOS) == 6

    def test_best_by_combo_on_common_layer(self):
        layer = representative_layers()[LayerKind.COMMON]
        results = best_by_combo(layer, case_study_hardware(), SearchProfile.FAST)
        assert set(results) <= set(FIG11_COMBOS)
        assert len(results) >= 3
        for report in results.values():
            assert report.energy_pj > 0

    def test_small_channel_layer_drops_cc(self):
        # VGG conv1 (64 output channels): the (C, C) combination leaves cores
        # under-filled and is removed, as in the paper's Figure 11(a).
        layer = representative_layers()[LayerKind.ACTIVATION_INTENSIVE]
        results = best_by_combo(layer, case_study_hardware(), SearchProfile.FAST)
        assert ("C", "C") not in results


class TestFig12:
    def test_savings_positive_everywhere(self):
        points = fig12_data(profile=SearchProfile.FAST)
        assert len(points) == 5
        for point in points:
            assert point.saving > 0, point.kind
            assert point.movement_saving >= point.saving


class TestTable2:
    def test_counts(self):
        data = table2_data()
        assert data.granularity_configs_2048 == 32
        assert data.granularity_configs_4096 == 20
        assert data.sweep_size_4096 > 5000
