"""Tests for plain-text reporting helpers."""

import pytest

from repro.analysis.reporting import (
    format_bar,
    format_percent,
    format_scatter,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "long-name" in lines[3]

    def test_title(self):
        text = format_table(["x"], [["1"]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatBar:
    def test_proportional(self):
        assert format_bar(5, 10, width=10) == "#####"

    def test_clamped(self):
        assert format_bar(20, 10, width=10) == "#" * 10
        assert format_bar(-5, 10, width=10) == ""

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            format_bar(1, 0)
        with pytest.raises(ValueError):
            format_bar(1, 1, width=0)


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.225) == "22.5%"
        assert format_percent(0.4401, digits=0) == "44%"


class TestFormatScatter:
    def test_renders_points(self):
        text = format_scatter(
            [(0.0, 0.0, "a"), (1.0, 1.0, "b"), (0.5, 0.2, "c")],
            width=20,
            height=5,
            x_label="area",
            y_label="edp",
        )
        assert "a" in text and "b" in text and "c" in text
        assert "area" in text and "edp" in text

    def test_single_point(self):
        text = format_scatter([(1.0, 2.0, "x")], width=10, height=3)
        assert "x" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_scatter([])
