"""Tests for the roofline analysis."""

import pytest

from repro.analysis.roofline import Roofline
from repro.arch.config import case_study_hardware
from repro.core.loopnest import LoopNest
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer, fc_as_pointwise


@pytest.fixture
def roofline():
    return Roofline(case_study_hardware())


def mapped(layer, hw):
    return Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer)


class TestRooflineModel:
    def test_peak_is_total_macs(self, roofline):
        assert roofline.peak_macs_per_cycle == 2048

    def test_dram_bandwidth_aggregates_channels(self, roofline):
        hw = case_study_hardware()
        expected = hw.tech.dram_bandwidth_bits_per_cycle / 8 * 4
        assert roofline.dram_bytes_per_cycle == expected

    def test_ridge_point(self, roofline):
        assert roofline.ridge_intensity == pytest.approx(
            roofline.peak_macs_per_cycle / roofline.dram_bytes_per_cycle
        )

    def test_attainable_clamps_at_peak(self, roofline):
        assert roofline.attainable(1e9) == roofline.peak_macs_per_cycle
        assert roofline.attainable(0.0) == 0.0

    def test_attainable_linear_below_ridge(self, roofline):
        half = roofline.ridge_intensity / 2
        assert roofline.attainable(half) == pytest.approx(
            roofline.peak_macs_per_cycle / 2
        )

    def test_negative_intensity_rejected(self, roofline):
        with pytest.raises(ValueError):
            roofline.attainable(-1)


class TestLayerPlacement:
    def test_dense_conv_is_compute_bound(self, roofline):
        hw = case_study_hardware()
        layer = ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, padding=1)
        point = roofline.locate_report(mapped(layer, hw).best)
        assert point.compute_bound
        assert point.attainable_macs_per_cycle == roofline.peak_macs_per_cycle

    def test_fc_layer_is_memory_bound(self, roofline):
        # An FC layer reads every weight once and reuses nothing: intensity
        # barely exceeds 1 MAC/byte, far below the ridge.
        hw = case_study_hardware()
        layer = fc_as_pointwise("fc", 4096, 4096)
        point = roofline.locate_report(mapped(layer, hw).best)
        assert not point.compute_bound
        assert point.intensity_macs_per_byte < roofline.ridge_intensity

    def test_locate_matches_locate_report(self, roofline):
        hw = case_study_hardware()
        layer = ConvLayer("c", h=28, w=28, ci=64, co=128, kh=3, kw=3, padding=1)
        result = mapped(layer, hw)
        nest = LoopNest(layer, hw, result.mapping)
        a = roofline.locate(layer, nest)
        b = roofline.locate_report(result.best)
        assert a.intensity_macs_per_byte == pytest.approx(b.intensity_macs_per_byte)

    def test_better_mapping_higher_intensity(self, roofline):
        # The optimal mapping's DRAM traffic is minimal, so its operational
        # intensity is at least that of any other legal candidate.
        hw = case_study_hardware()
        layer = ConvLayer("c", h=28, w=28, ci=128, co=256, kh=3, kw=3, padding=1)
        from repro.core.cost import evaluate_mapping
        from repro.core.space import MappingSpace

        best = mapped(layer, hw).best
        best_point = roofline.locate_report(best)
        space = MappingSpace(hw, SearchProfile.MINIMAL)
        worst_intensity = best_point.intensity_macs_per_byte
        for mapping in space.unique_candidates(layer):
            try:
                report = evaluate_mapping(layer, hw, mapping)
            except Exception:
                continue
            point = roofline.locate_report(report)
            worst_intensity = min(worst_intensity, point.intensity_macs_per_byte)
        # The best-energy mapping is never the most DRAM-hungry one.
        assert best_point.intensity_macs_per_byte >= worst_intensity
