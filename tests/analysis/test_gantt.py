"""Tests for Gantt rendering of simulator traces."""

import pytest

from repro.analysis.gantt import PHASE_GLYPHS, phase_summary, render_gantt
from repro.arch.config import case_study_hardware
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.sim import Phase, Trace, simulate_runtime
from repro.workloads.layer import ConvLayer


def traced_run():
    hw = case_study_hardware()
    layer = ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, padding=1)
    mapping = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer).mapping
    return simulate_runtime(layer, hw, mapping, collect_trace=True)


class TestRenderGantt:
    def test_synthetic_trace(self):
        trace = Trace()
        trace.add(0, 0, Phase.DRAM_LOAD, 0, 10)
        trace.add(0, 0, Phase.COMPUTE, 10, 50)
        trace.add(1, 0, Phase.DRAM_LOAD, 0, 20)
        trace.add(1, 0, Phase.COMPUTE, 20, 50)
        text = render_gantt(trace, width=50)
        lines = text.splitlines()
        assert lines[0].startswith("chiplet 0")
        assert "L" in lines[0] and "C" in lines[0]
        assert "legend:" in lines[-1]

    def test_compute_overwrites_overlapping_load(self):
        trace = Trace()
        trace.add(0, 0, Phase.DRAM_LOAD, 0, 100)
        trace.add(0, 0, Phase.COMPUTE, 0, 100)
        text = render_gantt(trace, width=20)
        row = text.splitlines()[0]
        assert "C" in row and "L" not in row

    def test_simulated_trace_renders(self):
        result = traced_run()
        text = render_gantt(result.trace, width=80)
        assert text.count("chiplet") == 4
        assert "C" in text

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            render_gantt(Trace())

    def test_narrow_width_rejected(self):
        trace = Trace()
        trace.add(0, 0, Phase.COMPUTE, 0, 10)
        with pytest.raises(ValueError):
            render_gantt(trace, width=5)

    def test_all_phases_have_glyphs(self):
        assert set(PHASE_GLYPHS) == set(Phase)


class TestPhaseSummary:
    def test_totals(self):
        trace = Trace()
        trace.add(0, 0, Phase.DRAM_LOAD, 0, 10)
        trace.add(1, 0, Phase.DRAM_LOAD, 0, 12)
        trace.add(0, 0, Phase.COMPUTE, 10, 50)
        summary = phase_summary(trace)
        assert summary["dram_load"] == 22
        assert summary["compute"] == 40
        assert summary["writeback"] == 0

    def test_simulated_summary_dominated_by_compute(self):
        result = traced_run()
        summary = phase_summary(result.trace)
        assert summary["compute"] > summary["dram_load"]
