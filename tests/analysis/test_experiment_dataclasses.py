"""Tests for the experiment result dataclasses (tiny-model fixtures)."""

import pytest

from repro.analysis.experiments import (
    Fig13Point,
    fig14_data,
    fig15_data,
    fig15_models,
)
from repro.core.dse import DesignSpace
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


def tiny_builder(resolution=224, include_fc=True):
    return [
        ConvLayer("c1", h=28, w=28, ci=32, co=64, kh=3, kw=3, stride=1, padding=1),
        ConvLayer("c2", h=14, w=14, ci=64, co=128, kh=1, kw=1),
    ]


SMALL_SPACE = DesignSpace(
    vector_sizes=(8,),
    lanes=(8,),
    cores=(2, 4),
    chiplets=(2, 4),
    o_l1_per_lane_bytes=(96,),
    a_l1_kb=(1, 4),
    w_l1_kb=(18,),
    a_l2_kb=(64,),
)


class TestFig13Point:
    def test_savings_math(self):
        point = Fig13Point(
            model="m",
            resolution=224,
            simba_energy_pj=100.0,
            baton_energy_pj=75.0,
            simba_movement_pj=60.0,
            baton_movement_pj=30.0,
        )
        assert point.saving == pytest.approx(0.25)
        assert point.movement_saving == pytest.approx(0.5)

    def test_zero_movement_baseline(self):
        point = Fig13Point("m", 224, 10.0, 10.0, 0.0, 0.0)
        assert point.movement_saving == 0.0


class TestFig14Data:
    @pytest.fixture(scope="class")
    def data(self):
        return fig14_data(
            total_macs=256,
            area_constraint_mm2=5.0,
            profile=SearchProfile.MINIMAL,
            models={"tiny": tiny_builder},
        )

    def test_by_chiplets_filters(self, data):
        for n in (2, 4):
            for point in data.by_chiplets(n):
                assert point.hw.n_chiplets == n

    def test_best_respects_constraint(self, data):
        constrained = data.best("tiny", constrained=True)
        if constrained is not None:
            assert constrained.chiplet_area_mm2 <= data.area_constraint_mm2

    def test_edp_winner_is_minimal(self, data):
        winner = data.edp_winner("tiny")
        assert winner is not None
        for point in data.points:
            if point.valid and point.meets_area(data.area_constraint_mm2):
                assert winner.edp("tiny") <= point.edp("tiny") + 1e-20


class TestFig15Data:
    @pytest.fixture(scope="class")
    def data(self):
        return fig15_data(
            required_macs=256,
            area_constraint_mm2=5.0,
            memory_stride=1,
            profile=SearchProfile.MINIMAL,
            models={"tiny": tiny_builder()},
            space=SMALL_SPACE,
        )

    def test_swept_counts_full_structural_space(self, data):
        assert data.swept >= len(data.valid_points)

    def test_valid_points_evaluated(self, data):
        assert data.valid_points
        for point in data.valid_points:
            assert point.energy_pj["tiny"] > 0

    def test_optimum_under_constraint(self, data):
        optimum = data.optimum("tiny")
        assert optimum is not None
        assert optimum.chiplet_area_mm2 <= data.area_constraint_mm2


class TestFig15Models:
    def test_benchmark_trio(self):
        models = fig15_models()
        assert set(models) == {"vgg16@512", "resnet50@512", "darknet19@224"}
        assert models["vgg16@512"][0].h == 512
        assert models["darknet19@224"][0].h == 224
