"""Tests for hardware configuration serialization."""

import dataclasses
import json

import pytest

from repro.arch.config import build_hardware, case_study_hardware
from repro.arch.io import (
    hardware_from_dict,
    hardware_to_dict,
    load_hardware,
    save_hardware,
)
from repro.arch.topology import Topology


class TestRoundTrip:
    def test_case_study_round_trip(self):
        hw = case_study_hardware()
        restored = hardware_from_dict(hardware_to_dict(hw))
        assert restored == hw

    def test_mesh_topology_round_trip(self):
        hw = build_hardware(16, 2, 8, 8, topology=Topology.MESH)
        restored = hardware_from_dict(hardware_to_dict(hw))
        assert restored.topology is Topology.MESH
        assert restored == hw

    def test_tech_overrides_round_trip(self):
        hw = case_study_hardware()
        custom = dataclasses.replace(
            hw, tech=dataclasses.replace(hw.tech, frequency_mhz=1000.0)
        )
        data = hardware_to_dict(custom)
        assert data["tech_overrides"] == {"frequency_mhz": 1000.0}
        restored = hardware_from_dict(data)
        assert restored.tech.frequency_mhz == 1000.0
        assert restored.tech.mac_energy_pj == 0.024  # defaults preserved

    def test_default_tech_stores_no_overrides(self):
        data = hardware_to_dict(case_study_hardware())
        assert data["tech_overrides"] == {}

    def test_file_round_trip(self, tmp_path):
        hw = case_study_hardware()
        path = tmp_path / "machine.json"
        save_hardware(hw, path)
        assert load_hardware(path) == hw
        # And the file is plain, readable JSON.
        data = json.loads(path.read_text())
        assert data["chiplets"] == 4

    def test_unknown_tech_override_rejected(self):
        data = hardware_to_dict(case_study_hardware())
        data["tech_overrides"] = {"flux_capacitor_pj": 1.21}
        with pytest.raises(ValueError, match="flux_capacitor_pj"):
            hardware_from_dict(data)

    def test_missing_field_raises(self):
        from repro.arch.io import HardwareSpecError

        data = hardware_to_dict(case_study_hardware())
        del data["memory"]
        with pytest.raises(HardwareSpecError, match="memory"):
            hardware_from_dict(data)

    def test_topology_defaults_to_ring(self):
        data = hardware_to_dict(case_study_hardware())
        del data["topology"]
        assert hardware_from_dict(data).topology is Topology.RING


class TestCliIntegration:
    def test_map_with_hw_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "machine.json"
        save_hardware(build_hardware(2, 4, 8, 8), path)
        assert (
            main(
                [
                    "map",
                    "alexnet",
                    "--hw-file",
                    str(path),
                    "--profile",
                    "minimal",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2-4-8-8" in out

    def test_explore_csv_export(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "points.csv"
        assert (
            main(
                [
                    "explore",
                    "--macs",
                    "512",
                    "--models",
                    "alexnet",
                    "--stride",
                    "48",
                    "--csv",
                    str(csv_path),
                ]
            )
            == 0
        )
        content = csv_path.read_text()
        assert "energy_pj[alexnet]" in content
        assert len(content.splitlines()) > 1
