"""Tests for the technology operating point and Table I."""

import pytest

from repro.arch.technology import (
    DEFAULT_TECHNOLOGY,
    TABLE_I,
    TechnologyParams,
    table_i_row,
)


class TestTableI:
    def test_has_six_operations(self):
        assert len(TABLE_I) == 6

    def test_published_energies(self):
        assert table_i_row("DRAM").energy_pj_per_bit == 8.75
        assert table_i_row("die-to-die").energy_pj_per_bit == 1.17
        assert table_i_row("L2").energy_pj_per_bit == 0.81
        assert table_i_row("L1").energy_pj_per_bit == 0.30
        assert table_i_row("register").energy_pj_per_bit == 0.104
        assert table_i_row("MAC").energy_pj_per_bit == 0.024

    def test_relative_costs_normalize_to_mac(self):
        mac = table_i_row("MAC")
        assert mac.relative_cost == 1.0
        # DRAM's published 364.58x is (8.75 / 0.024) for equal bit counts.
        dram = table_i_row("DRAM")
        assert dram.relative_cost == pytest.approx(
            dram.energy_pj_per_bit / mac.energy_pj_per_bit, rel=0.01
        )

    def test_rows_ordered_most_to_least_expensive(self):
        energies = [row.energy_pj_per_bit for row in TABLE_I]
        assert energies == sorted(energies, reverse=True)

    def test_unknown_row_raises(self):
        with pytest.raises(KeyError):
            table_i_row("NVLink")


class TestTechnologyParams:
    def test_defaults_match_paper(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.process_nm == 16
        assert tech.frequency_mhz == 500.0
        assert tech.mac_area_um2 == 135.1
        assert tech.grs_phy_area_mm2 == 0.38
        assert tech.data_bits == 8
        assert tech.psum_bits == 24

    def test_cycle_time_at_500mhz_is_2ns(self):
        assert DEFAULT_TECHNOLOGY.cycle_time_ns() == pytest.approx(2.0)

    def test_sram_energy_hits_both_anchors(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.sram_energy_pj_per_bit(1.0) == pytest.approx(0.30)
        assert tech.sram_energy_pj_per_bit(32.0) == pytest.approx(0.81)

    def test_sram_energy_linear_between_anchors(self):
        tech = DEFAULT_TECHNOLOGY
        mid = tech.sram_energy_pj_per_bit(16.5)
        assert mid == pytest.approx((0.30 + 0.81) / 2, rel=0.02)

    def test_sram_energy_clamped_at_rf_floor(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.sram_energy_pj_per_bit(0.0) >= tech.rf_rmw_energy_pj_per_bit

    def test_sram_energy_monotone_in_size(self):
        tech = DEFAULT_TECHNOLOGY
        sizes = [1, 2, 8, 32, 128, 512]
        energies = [tech.sram_energy_pj_per_bit(s) for s in sizes]
        assert energies == sorted(energies)

    def test_sram_area_zero_for_zero_size(self):
        assert DEFAULT_TECHNOLOGY.sram_area_mm2(0) == 0.0

    def test_sram_area_linear_slope(self):
        tech = DEFAULT_TECHNOLOGY
        delta = tech.sram_area_mm2(64) - tech.sram_area_mm2(32)
        assert delta == pytest.approx(32 * tech.sram_area_mm2_per_kb)

    def test_mac_area_scales_linearly(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.mac_area_mm2(2048) == pytest.approx(2048 * 135.1e-6)

    def test_negative_inputs_raise(self):
        tech = DEFAULT_TECHNOLOGY
        with pytest.raises(ValueError):
            tech.sram_energy_pj_per_bit(-1)
        with pytest.raises(ValueError):
            tech.sram_area_mm2(-1)
        with pytest.raises(ValueError):
            tech.rf_area_mm2(-0.5)
        with pytest.raises(ValueError):
            tech.mac_area_mm2(-8)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_TECHNOLOGY.mac_energy_pj = 1.0

    def test_custom_technology_point(self):
        tech = TechnologyParams(frequency_mhz=1000.0)
        assert tech.cycle_time_ns() == pytest.approx(1.0)
