"""Tests for the per-access energy model."""

import pytest

from repro.arch.config import KB, MemoryConfig, case_study_hardware
from repro.arch.energy import EnergyModel


@pytest.fixture
def model():
    return EnergyModel(case_study_hardware())


class TestPerBitEnergies:
    def test_dram_is_table_i(self, model):
        assert model.dram_pj_per_bit == 8.75

    def test_d2d_is_grs(self, model):
        assert model.d2d_pj_per_bit == 1.17

    def test_rf_is_table_i(self, model):
        assert model.rf_rmw_pj_per_bit == 0.104

    def test_mac_is_table_i(self, model):
        assert model.mac_pj_per_op == 0.024

    def test_a_l2_near_published_anchor(self, model):
        # 64 KB A-L2 sits above the 32 KB anchor on the linear law.
        assert model.a_l2_pj_per_bit > 0.81
        assert model.a_l2_pj_per_bit < 2.0

    def test_a_l1_below_w_l1(self, model):
        # 800 B A-L1 is smaller than 18 KB W-L1, so cheaper per bit.
        assert model.a_l1_pj_per_bit < model.w_l1_pj_per_bit

    def test_energy_ordering_matches_table_i(self, model):
        # DRAM dominates everything; L2 > L1 > RF.  (The configured 64 KB
        # A-L2 sits above the 32 KB Table I anchor, so it may exceed one
        # D2D hop -- the table's ordering is for the anchor sizes.)
        assert model.dram_pj_per_bit > model.a_l2_pj_per_bit
        assert model.dram_pj_per_bit > model.d2d_pj_per_bit
        assert (
            model.a_l2_pj_per_bit
            > model.a_l1_pj_per_bit
            > model.rf_rmw_pj_per_bit
        )

    def test_o_l2_scales_with_workload_size(self, model):
        assert model.o_l2_pj_per_bit(64 * KB) > model.o_l2_pj_per_bit(4 * KB)


class TestTotals:
    def test_mac_energy(self, model):
        assert model.mac_energy_pj(1000) == pytest.approx(24.0)

    def test_dram_energy(self, model):
        assert model.dram_energy_pj(8) == pytest.approx(70.0)

    def test_d2d_energy_counts_hops(self, model):
        # 100 bits forwarded across 3 links = 300 bit-hops.
        assert model.d2d_energy_pj(300) == pytest.approx(351.0)

    @pytest.mark.parametrize("method", ["mac_energy_pj", "dram_energy_pj", "d2d_energy_pj"])
    def test_negative_raises(self, model, method):
        with pytest.raises(ValueError):
            getattr(model, method)(-1)

    def test_energy_tracks_buffer_size(self):
        hw = case_study_hardware()
        bigger = hw.with_memory(
            MemoryConfig(
                a_l1_bytes=8 * KB,
                w_l1_bytes=18 * KB,
                o_l1_bytes=1536,
                a_l2_bytes=64 * KB,
            )
        )
        assert (
            EnergyModel(bigger).a_l1_pj_per_bit
            > EnergyModel(hw).a_l1_pj_per_bit
        )
