"""Tests for SRAM/RF macro models and the Figure 10 regression."""

import pytest

from repro.arch.memory import (
    LinearFit,
    MemoryLibrary,
    RegisterFileModel,
    SramModel,
)
from repro.arch.technology import DEFAULT_TECHNOLOGY


class TestLinearFit:
    def test_recovers_exact_line(self):
        xs = [1.0, 2.0, 5.0, 9.0]
        ys = [3.0 + 2.0 * x for x in xs]
        fit = LinearFit.fit(xs, ys)
        assert fit.intercept == pytest.approx(3.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_evaluation(self):
        fit = LinearFit(intercept=1.0, slope=0.5, r_squared=1.0)
        assert fit(4.0) == pytest.approx(3.0)

    def test_constant_data_gives_zero_slope(self):
        fit = LinearFit.fit([1.0, 2.0, 3.0], [7.0, 7.0, 7.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            LinearFit.fit([1.0], [1.0, 2.0])

    def test_single_point_raises(self):
        with pytest.raises(ValueError):
            LinearFit.fit([1.0], [1.0])

    def test_zero_x_variance_raises(self):
        with pytest.raises(ValueError):
            LinearFit.fit([2.0, 2.0], [1.0, 5.0])

    def test_near_duplicate_xs_raise_instead_of_garbage(self):
        # The seed bug: xs one ulp apart returned slope=4.0 for y=3x.
        xs = [0.1, 0.1 + 2e-17]
        ys = [3.0 * x for x in xs]
        with pytest.raises(ValueError, match="degenerate"):
            LinearFit.fit(xs, ys)

    def test_tiny_relative_spread_raises(self):
        xs = [500.0, 500.0 + 1e-8, 500.0 + 2e-8]  # spread 4e-11 of magnitude
        with pytest.raises(ValueError, match="degenerate"):
            LinearFit.fit(xs, [1.0, 2.0, 3.0])

    def test_small_but_resolvable_spread_recovers_line(self):
        # Spread of 1e-3 relative: mean-shifted fsum keeps full precision
        # where the naive accumulation lost every significant digit.
        xs = [100.0, 100.0 + 0.05, 100.0 + 0.1]
        ys = [3.0 * x - 7.0 for x in xs]
        fit = LinearFit.fit(xs, ys)
        assert fit.slope == pytest.approx(3.0, rel=1e-9)
        assert fit.intercept == pytest.approx(-7.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_r_squared_clamped_to_unit_interval(self):
        fit = LinearFit.fit([1.0, 2.0, 3.0, 4.0], [0.0, 5.0, -5.0, 0.0])
        assert 0.0 <= fit.r_squared <= 1.0


class TestSramModel:
    def test_case_study_sizes(self):
        # The paper's anchors: 1 KB L1 at 0.30 pJ/bit, 32 KB L2 at 0.81.
        assert SramModel(1024).energy_pj_per_bit == pytest.approx(0.30)
        assert SramModel(32 * 1024).energy_pj_per_bit == pytest.approx(0.81)

    def test_access_energy_scales_with_bits(self):
        macro = SramModel(1024)
        assert macro.access_energy_pj(1000) == pytest.approx(300.0)

    def test_area_monotone_in_size(self):
        areas = [SramModel(k * 1024).area_mm2 for k in (1, 4, 16, 64)]
        assert areas == sorted(areas)

    def test_zero_size_zero_area(self):
        assert SramModel(0).area_mm2 == 0.0

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            SramModel(-1)

    def test_negative_bits_raise(self):
        with pytest.raises(ValueError):
            SramModel(1024).access_energy_pj(-1)


class TestRegisterFileModel:
    def test_rmw_energy_is_published_value(self):
        rf = RegisterFileModel(1536)
        assert rf.rmw_energy_pj_per_bit == pytest.approx(0.104)

    def test_rmw_energy_total(self):
        rf = RegisterFileModel(1536)
        assert rf.rmw_energy_pj(1000) == pytest.approx(104.0)

    def test_rf_area_exceeds_same_size_sram(self):
        # Register files are area-hungrier per KB than SRAM macros.
        assert RegisterFileModel(4096).area_mm2 > SramModel(4096).area_mm2

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            RegisterFileModel(-8)


class TestMemoryLibrary:
    def test_default_library_has_points(self):
        library = MemoryLibrary()
        assert len(library.points) == len(MemoryLibrary.DEFAULT_SIZES_KB)

    def test_fits_are_near_perfect(self):
        # Figure 10: "the area and power approximately satisfy a linear
        # relationship with the SRAM size".
        library = MemoryLibrary()
        assert library.fit_area().r_squared > 0.99
        assert library.fit_energy().r_squared > 0.99

    def test_fit_slopes_match_technology_laws(self):
        library = MemoryLibrary()
        tech = DEFAULT_TECHNOLOGY
        assert library.fit_area().slope == pytest.approx(
            tech.sram_area_mm2_per_kb, rel=0.05
        )

    def test_extrapolation_between_points(self):
        library = MemoryLibrary()
        predicted = library.extrapolate(48.0)
        assert predicted.size_kb == 48.0
        expected = DEFAULT_TECHNOLOGY.sram_area_mm2(48.0)
        assert predicted.area_mm2 == pytest.approx(expected, rel=0.05)

    def test_extrapolation_beyond_library(self):
        library = MemoryLibrary()
        predicted = library.extrapolate(512.0)
        assert predicted.area_mm2 > library.points[-1].area_mm2

    def test_extrapolation_energy_floored_at_rf(self):
        library = MemoryLibrary()
        tiny = library.extrapolate(0.001)
        assert tiny.energy_pj_per_bit >= DEFAULT_TECHNOLOGY.rf_rmw_energy_pj_per_bit

    def test_deterministic(self):
        a = MemoryLibrary().points
        b = MemoryLibrary().points
        assert a == b

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            MemoryLibrary(sizes_kb=[0])
        with pytest.raises(ValueError):
            MemoryLibrary().extrapolate(0)
