"""Tests for the structural validity rules (DSE pruning)."""

import pytest

from repro.arch.config import (
    KB,
    ChipletConfig,
    CoreConfig,
    HardwareConfig,
    MemoryConfig,
    PackageConfig,
    case_study_hardware,
)
from repro.arch.validate import (
    ConfigValidationError,
    is_valid,
    validate_hardware,
    validation_errors,
)


def _hw(memory: MemoryConfig, chiplets: int = 4) -> HardwareConfig:
    package = PackageConfig(
        chiplets=chiplets,
        chiplet=ChipletConfig(cores=8, core=CoreConfig(lanes=8, vector_size=8)),
    )
    return HardwareConfig(package=package, memory=memory)


GOOD = MemoryConfig(
    a_l1_bytes=800, w_l1_bytes=18 * KB, o_l1_bytes=1536, a_l2_bytes=64 * KB
)


class TestValidityRules:
    def test_case_study_is_valid(self):
        assert is_valid(case_study_hardware())
        validate_hardware(case_study_hardware())  # must not raise

    def test_hierarchy_inversion_rejected(self):
        # The paper's explicit pruning example: A-L2 smaller than A-L1.
        bad = MemoryConfig(
            a_l1_bytes=128 * KB, w_l1_bytes=18 * KB, o_l1_bytes=1536, a_l2_bytes=32 * KB
        )
        errors = validation_errors(_hw(bad))
        assert any("inversion" in e for e in errors)

    def test_tiny_o_l1_rejected(self):
        bad = MemoryConfig(
            a_l1_bytes=800, w_l1_bytes=18 * KB, o_l1_bytes=8, a_l2_bytes=64 * KB
        )
        errors = validation_errors(_hw(bad))
        assert any("O-L1" in e for e in errors)

    def test_tiny_w_l1_rejected(self):
        bad = MemoryConfig(
            a_l1_bytes=800, w_l1_bytes=16, o_l1_bytes=1536, a_l2_bytes=64 * KB
        )
        errors = validation_errors(_hw(bad))
        assert any("W-L1" in e for e in errors)

    def test_tiny_a_l1_rejected(self):
        bad = MemoryConfig(
            a_l1_bytes=4, w_l1_bytes=18 * KB, o_l1_bytes=1536, a_l2_bytes=64 * KB
        )
        errors = validation_errors(_hw(bad))
        assert any("A-L1" in e for e in errors)

    def test_mac_budget_rule(self):
        hw = case_study_hardware()  # 2048 MACs
        assert is_valid(hw, required_macs=2048)
        assert not is_valid(hw, required_macs=4096)

    def test_area_budget_rule(self):
        hw = case_study_hardware()
        assert is_valid(hw, max_chiplet_area_mm2=10.0)
        assert not is_valid(hw, max_chiplet_area_mm2=0.01)

    def test_ring_scale_rule(self):
        # The directional ring model covers 1-to-8 chiplets.
        errors = validation_errors(_hw(GOOD, chiplets=9))
        assert any("ring" in e for e in errors)
        assert not validation_errors(_hw(GOOD, chiplets=8))

    def test_validate_raises_with_all_messages(self):
        bad = MemoryConfig(a_l1_bytes=4, w_l1_bytes=16, o_l1_bytes=8, a_l2_bytes=2)
        with pytest.raises(ConfigValidationError) as excinfo:
            validate_hardware(_hw(bad))
        message = str(excinfo.value)
        assert "O-L1" in message and "W-L1" in message and "A-L1" in message
