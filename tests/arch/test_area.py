"""Tests for chiplet/package area accounting."""

import pytest

from repro.arch.area import AreaModel
from repro.arch.config import build_hardware, case_study_hardware


class TestChipletBreakdown:
    def test_total_is_sum_of_parts(self):
        breakdown = AreaModel(case_study_hardware()).chiplet_breakdown()
        parts = [v for k, v in breakdown.as_dict().items() if k != "total"]
        assert breakdown.total_mm2 == pytest.approx(sum(parts))

    def test_mac_area_matches_published_per_unit(self):
        hw = case_study_hardware()
        breakdown = AreaModel(hw).chiplet_breakdown()
        per_chiplet_macs = hw.n_cores * hw.lanes * hw.vector_size
        assert breakdown.macs_mm2 == pytest.approx(per_chiplet_macs * 135.1e-6)

    def test_grs_phy_present_in_multichip(self):
        breakdown = AreaModel(case_study_hardware()).chiplet_breakdown()
        assert breakdown.d2d_phy_mm2 == pytest.approx(0.38)

    def test_no_grs_phy_for_monolithic(self):
        hw = build_hardware(1, 8, 16, 16)
        assert AreaModel(hw).chiplet_breakdown().d2d_phy_mm2 == 0.0

    def test_case_study_meets_2mm2(self):
        # The paper's 4-chiplet case-study machine respects the Figure 14
        # constraint by construction.
        assert AreaModel(case_study_hardware()).meets_chiplet_constraint(2.0)

    def test_monolithic_2048_violates_2mm2(self):
        # "no implementation meets the constraint using one chiplet"
        for cores, lanes, vec in [(8, 16, 16), (16, 16, 8), (16, 8, 16)]:
            hw = build_hardware(1, cores, lanes, vec)
            assert hw.total_macs == 2048
            assert not AreaModel(hw).meets_chiplet_constraint(2.0)

    def test_package_area_is_chiplets_times_chiplet(self):
        hw = case_study_hardware()
        model = AreaModel(hw)
        assert model.package_area_mm2() == pytest.approx(
            4 * model.chiplet_area_mm2()
        )


class TestAreaMonotonicity:
    def test_more_lanes_more_area(self):
        small = AreaModel(build_hardware(4, 4, 8, 8)).chiplet_area_mm2()
        large = AreaModel(build_hardware(4, 4, 16, 8)).chiplet_area_mm2()
        assert large > small

    def test_more_cores_more_area(self):
        small = AreaModel(build_hardware(4, 4, 8, 8)).chiplet_area_mm2()
        large = AreaModel(build_hardware(4, 8, 8, 8)).chiplet_area_mm2()
        assert large > small

    def test_fewer_chiplets_bigger_chiplets(self):
        # Same 2048 MACs, proportional memory: chiplet area grows as the
        # design concentrates.
        areas = [
            AreaModel(build_hardware(n, 2048 // (n * 64), 8, 8)).chiplet_area_mm2()
            for n in (2, 4, 8)
        ]
        assert areas == sorted(areas, reverse=True)

    def test_o_l2_default_from_a_l2(self):
        hw = case_study_hardware()
        explicit = AreaModel(hw, o_l2_default_bytes=hw.memory.a_l2_bytes // 4)
        implicit = AreaModel(hw)
        assert explicit.chiplet_area_mm2() == pytest.approx(
            implicit.chiplet_area_mm2()
        )

    def test_invalid_constraint_raises(self):
        with pytest.raises(ValueError):
            AreaModel(case_study_hardware()).meets_chiplet_constraint(0)
