"""Tests for the NoP topology models (ring + mesh extension)."""

import pytest

from repro.arch.config import build_hardware
from repro.arch.topology import Topology
from repro.arch.validate import is_valid, validation_errors
from repro.core.mapper import Mapper
from repro.core.space import SearchProfile
from repro.workloads.layer import ConvLayer


class TestTopologyGeometry:
    def test_ring_link_count(self):
        assert Topology.RING.link_count(4) == 4
        assert Topology.RING.link_count(8) == 8
        assert Topology.RING.link_count(1) == 0

    def test_mesh_link_count_simba_6x6(self):
        # 6x6 mesh: 6 rows x 5 + 6 cols x 5 = 60 edges.
        assert Topology.MESH.link_count(36) == 60

    def test_mesh_dims_near_square(self):
        assert Topology.MESH.mesh_dims(36) == (6, 6)
        assert Topology.MESH.mesh_dims(8) == (2, 4)
        assert Topology.MESH.mesh_dims(16) == (4, 4)

    def test_sharing_hops_topology_independent(self):
        # Energy per shared bit is n-1 hops on both (rotation vs multicast
        # spanning tree).
        for n in (2, 4, 8, 16):
            assert Topology.RING.sharing_hops_per_bit(n) == n - 1
            assert Topology.MESH.sharing_hops_per_bit(n) == n - 1

    def test_mesh_shorter_average_distance(self):
        # The mesh's latency advantage at scale.
        for n in (8, 16, 36):
            assert Topology.MESH.average_distance(n) < Topology.RING.average_distance(n)

    def test_validity_ranges(self):
        assert Topology.RING.max_chiplets() == 8
        assert Topology.MESH.max_chiplets() >= 36

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            Topology.RING.link_count(0)
        with pytest.raises(ValueError):
            Topology.MESH.sharing_hops_per_bit(0)


class TestTopologyInHardware:
    def test_ring_default(self):
        assert build_hardware(4, 8, 8, 8).topology is Topology.RING

    def test_ring_caps_at_eight(self):
        hw = build_hardware(16, 2, 8, 8)
        assert any("ring" in e for e in validation_errors(hw))

    def test_mesh_allows_sixteen(self):
        hw = build_hardware(16, 2, 8, 8, topology=Topology.MESH)
        assert is_valid(hw)

    def test_mesh_allows_simba_scale(self):
        hw = build_hardware(36, 1, 8, 8, topology=Topology.MESH)
        assert is_valid(hw)

    def test_sixteen_chiplet_mesh_maps_a_layer(self):
        hw = build_hardware(16, 2, 8, 8, topology=Topology.MESH)
        layer = ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, padding=1)
        result = Mapper(hw=hw, profile=SearchProfile.FAST).search_layer(layer)
        assert result.best.energy_pj > 0

    def test_same_energy_ring_vs_mesh_at_equal_scale(self):
        # The energy model is hop-count based, so at the same chiplet count
        # the topology only changes runtime (link bandwidth), not energy.
        layer = ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, padding=1)
        ring = Mapper(
            hw=build_hardware(4, 8, 8, 8), profile=SearchProfile.MINIMAL
        ).search_layer(layer)
        mesh = Mapper(
            hw=build_hardware(4, 8, 8, 8, topology=Topology.MESH),
            profile=SearchProfile.MINIMAL,
        ).search_layer(layer)
        assert ring.best.energy_pj == pytest.approx(mesh.best.energy_pj)


class TestSwitchTopology:
    def test_link_count_is_port_count(self):
        # A crossbar has one port (link) per chiplet; a single chiplet
        # needs no fabric at all.
        for n in (2, 4, 8, 16):
            assert Topology.SWITCH.link_count(n) == n
        assert Topology.SWITCH.link_count(1) == 0

    def test_sharing_hops_include_uplink(self):
        # Sharing a bit through the switch costs the sender's uplink plus
        # n - 1 downlinks: n hops total (vs n - 1 on ring/mesh).
        for n in (2, 4, 8, 16):
            assert Topology.SWITCH.sharing_hops_per_bit(n) == n
        assert Topology.SWITCH.sharing_hops_per_bit(1) == 0

    def test_constant_average_distance(self):
        # Any-to-any through the crossbar is always two traversals.
        for n in (2, 4, 16):
            assert Topology.SWITCH.average_distance(n) == 2.0

    def test_port_limit(self):
        assert Topology.SWITCH.max_chiplets() == 16
        hw = build_hardware(16, 2, 8, 8, topology=Topology.SWITCH)
        assert is_valid(hw)
        too_big = build_hardware(32, 1, 8, 8, topology=Topology.SWITCH)
        assert any("switch" in e for e in validation_errors(too_big))

    def test_switch_maps_a_layer(self):
        hw = build_hardware(4, 8, 8, 8, topology=Topology.SWITCH)
        layer = ConvLayer("c", h=56, w=56, ci=64, co=256, kh=3, kw=3, padding=1)
        result = Mapper(hw=hw, profile=SearchProfile.MINIMAL).search_layer(layer)
        assert result.best.energy_pj > 0

    def test_serializes_by_value(self):
        assert Topology("switch") is Topology.SWITCH
        assert Topology.SWITCH.value == "switch"


class TestPluggableTopologyRegistry:
    def test_register_topology_swaps_model(self):
        from repro.arch.topology import RingModel, register_topology

        class DoubleRing(RingModel):
            def link_count(self, n_chiplets):
                return 2 * super().link_count(n_chiplets)

        previous = register_topology(Topology.RING, DoubleRing())
        try:
            assert Topology.RING.link_count(4) == 8
        finally:
            register_topology(Topology.RING, previous)
        assert Topology.RING.link_count(4) == 4

    def test_register_non_member_handle_rejected(self):
        from repro.arch.topology import RingModel, register_topology

        with pytest.raises(TypeError):
            register_topology("torus", RingModel())
